package repro

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/harness"
	"repro/internal/mpc"
)

// smokeScale is deliberately tiny: the point is that `go test ./...`
// exercises the bench wiring end-to-end, not that it measures anything.
func smokeScale() harness.Scale {
	return harness.Scale{P: 8, IN: 1 << 8, Seed: 2019, Workers: *workersFlag}
}

// TestSmokeExperimentEndToEnd runs one full experiment — instance
// generation, oracle verification, all four Figure 3 algorithms on the MPC
// simulator, table rendering — through the parallel scheduler.
func TestSmokeExperimentEndToEnd(t *testing.T) {
	tab := harness.Fig3JoinOrder(smokeScale())
	if len(tab.Rows) != 8 {
		t.Fatalf("Fig3 rows = %d, want 8", len(tab.Rows))
	}
	out := tab.Render()
	for _, want := range []string{"one-sided", "doubled", "Line3 (§4.2)", "AcyclicJoin (§5.1)"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered table missing %q:\n%s", want, out)
		}
	}
}

// TestSmokeBenchWiring runs the measure() helper through testing.Benchmark
// so the custom load/rounds/OUT metrics the benchmarks report are checked
// by plain `go test`, not only under -bench.
func TestSmokeBenchWiring(t *testing.T) {
	s := smokeScale()
	in := gen.YannakakisHard(s.IN, 8*s.IN)
	res := testing.Benchmark(func(b *testing.B) {
		measure(b, in, s.P, func(c *mpc.Cluster, em mpc.Emitter) {
			core.Line3(c, in, s.Seed, em)
		})
	})
	if res.Extra["load"] <= 0 {
		t.Errorf("measure reported load = %v, want > 0", res.Extra["load"])
	}
	if res.Extra["rounds"] <= 0 {
		t.Errorf("measure reported rounds = %v, want > 0", res.Extra["rounds"])
	}
	if res.Extra["OUT"] != float64(8*s.IN) {
		t.Errorf("measure reported OUT = %v, want %d", res.Extra["OUT"], 8*s.IN)
	}
}
