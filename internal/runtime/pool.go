// Package runtime schedules independent simulator tasks across OS threads.
//
// The experiment harness is a matrix of independent cells: (catalog entry,
// skew, fanout, server count, algorithm). Each cell builds its own instance
// from a deterministic child seed and runs on its own mpc.Cluster, so cells
// never share mutable state and can execute in any order on any number of
// workers. The Pool shards that matrix over a fixed worker count; results
// are collected by task index, which makes the output of a parallel run
// byte-identical to a serial one.
package runtime

import (
	"fmt"
	stdruntime "runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
)

// Pool executes batches of independent tasks on a fixed number of workers.
// The zero value is not useful; use NewPool.
type Pool struct {
	workers int
}

// DefaultWorkers is the worker count used when none is requested: one per
// logical CPU, the "as fast as the hardware allows" setting.
func DefaultWorkers() int { return stdruntime.NumCPU() }

// NewPool returns a pool of the given width. workers ≤ 0 selects
// DefaultWorkers(); workers == 1 reproduces serial execution exactly (tasks
// run in index order on the calling goroutine, no goroutines spawned).
func NewPool(workers int) *Pool {
	if workers <= 0 {
		workers = DefaultWorkers()
	}
	return &Pool{workers: workers}
}

// Workers reports the pool's width.
func (p *Pool) Workers() int { return p.workers }

// Each runs fn(task) for every task in [0, n), sharded across the pool's
// workers. Tasks are claimed from a shared atomic counter, so uneven task
// costs balance automatically. Each blocks until every task has finished.
// A panicking task stops further claims (in-flight tasks drain) and the
// first panic is re-raised on the caller with the failing task's index and
// stack attached.
func (p *Pool) Each(n int, fn func(task int)) {
	if n <= 0 {
		return
	}
	w := p.workers
	if w > n {
		w = n
	}
	if w <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var (
		next    atomic.Int64
		stop    atomic.Bool
		wg      sync.WaitGroup
		panicMu sync.Mutex
		panicV  any
	)
	wg.Add(w)
	for g := 0; g < w; g++ {
		// Pool workers hold a data-plane token each, so Forks inside
		// cells see a saturated bucket and run inline instead of
		// oversubscribing the machine (see fork.go).
		reserveWorker()
		go func() {
			defer wg.Done()
			defer releaseWorker()
			for !stop.Load() {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				func() {
					defer func() {
						if r := recover(); r != nil {
							stop.Store(true)
							panicMu.Lock()
							if panicV == nil {
								panicV = fmt.Sprintf("runtime: task %d panicked: %v\n%s",
									i, r, debug.Stack())
							}
							panicMu.Unlock()
						}
					}()
					fn(i)
				}()
			}
		}()
	}
	wg.Wait()
	if panicV != nil {
		panic(panicV)
	}
}

// Map runs fn over [0, n) on the pool and returns the results indexed by
// task. The result order depends only on task indices, never on scheduling.
func Map[T any](p *Pool, n int, fn func(task int) T) []T {
	out := make([]T, n)
	p.Each(n, func(i int) { out[i] = fn(i) })
	return out
}
