package runtime

import (
	"fmt"
	stdruntime "runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
)

// The data plane: Fork is the bounded parallel-for the simulator's inner
// loops run on — the exchange's scatter workers, RHier's per-heavy-group
// sub-clusters, the oracle's hash-join probe, the per-server local joins.
//
// Where Pool shards the experiment matrix (the control plane, one task per
// experiment cell), Fork shards the loops inside one cell. Both planes draw
// real parallelism from the same machine, so both are counted in a single
// process-wide token bucket: Pool workers hold a token each for their
// lifetime, and a Fork that finds no free token runs its task inline on
// the caller. A saturated control plane therefore runs the data plane
// inline (the cells themselves are the parallelism), nested forks (a
// recursion that forks at every level) are deadlock-free, and the total
// busy goroutine count stays O(max(pool width, Parallelism())) no matter
// how deep the nesting.
//
// Every user of Fork writes results into per-task slots (slices indexed by
// task) and merges them in task order, so the result bytes are identical
// for every parallelism width — including 1, which runs the exact serial
// loop. SetParallelism(1) is therefore the reference execution.

// dataWidth is the configured data-plane width; 0 selects GOMAXPROCS.
var dataWidth atomic.Int64

// SetParallelism fixes the data-plane width: the maximum number of
// goroutines Fork may have in flight process-wide. n ≤ 0 restores the
// default (GOMAXPROCS). It returns the previous setting (0 = default) so
// tests can restore it.
func SetParallelism(n int) int {
	if n < 0 {
		n = 0
	}
	return int(dataWidth.Swap(int64(n)))
}

// Parallelism reports the current data-plane width.
func Parallelism() int {
	if w := dataWidth.Load(); w > 0 {
		return int(w)
	}
	return stdruntime.GOMAXPROCS(0)
}

// forkTokens counts worker goroutines in flight across the whole process:
// Fork's spawned workers and Pool's cell workers alike.
var forkTokens atomic.Int64

// reserveWorker counts a long-lived worker (a Pool goroutine) in the
// process-wide budget; releaseWorker returns the token. Unconditional:
// the control plane's width is the user's explicit choice.
func reserveWorker() { forkTokens.Add(1) }
func releaseWorker() { forkTokens.Add(-1) }

// acquireToken reserves one extra worker if the process-wide budget allows.
// The budget is width−1: the calling goroutine is always the width-th
// worker, so a width of 1 never spawns.
func acquireToken(width int) bool {
	limit := int64(width - 1)
	for {
		cur := forkTokens.Load()
		if cur >= limit {
			return false
		}
		if forkTokens.CompareAndSwap(cur, cur+1) {
			return true
		}
	}
}

// Fork runs fn(task) for every task in [0, n) and returns when all have
// finished. Tasks run on the caller plus up to Parallelism()−1 spawned
// goroutines (process-wide, shared with every other Fork in flight);
// with no token available the whole loop runs inline, byte-identical to
// the serial execution. Tasks are claimed from an atomic counter, so which
// goroutine runs which task is scheduling-dependent — callers must write
// results into per-task slots. A panicking task stops further claims and
// the first panic is re-raised on the caller once every in-flight task has
// drained, with the failing task's index and stack attached.
func Fork(n int, fn func(task int)) {
	if n <= 0 {
		return
	}
	width := Parallelism()
	if width > n {
		width = n
	}
	spawned := 0
	for spawned < width-1 && acquireToken(width) {
		spawned++
	}
	if spawned == 0 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var (
		next    atomic.Int64
		stop    atomic.Bool
		wg      sync.WaitGroup
		panicMu sync.Mutex
		panicV  any
	)
	worker := func() {
		for !stop.Load() {
			i := int(next.Add(1)) - 1
			if i >= n {
				return
			}
			func() {
				defer func() {
					if r := recover(); r != nil {
						stop.Store(true)
						panicMu.Lock()
						if panicV == nil {
							panicV = fmt.Sprintf("runtime: forked task %d panicked: %v\n%s",
								i, r, debug.Stack())
						}
						panicMu.Unlock()
					}
				}()
				fn(i)
			}()
		}
	}
	wg.Add(spawned)
	for g := 0; g < spawned; g++ {
		go func() {
			defer wg.Done()
			defer forkTokens.Add(-1)
			worker()
		}()
	}
	worker()
	wg.Wait()
	if panicV != nil {
		panic(panicV)
	}
}
