package runtime

import (
	"strings"
	"sync/atomic"
	"testing"
)

func TestForkRunsEveryTaskOnce(t *testing.T) {
	for _, width := range []int{1, 2, 8} {
		prev := SetParallelism(width)
		for _, n := range []int{0, 1, 7, 1000} {
			counts := make([]atomic.Int32, n)
			Fork(n, func(i int) { counts[i].Add(1) })
			for i := range counts {
				if got := counts[i].Load(); got != 1 {
					t.Fatalf("width %d: task %d ran %d times", width, i, got)
				}
			}
		}
		SetParallelism(prev)
	}
}

// TestForkSerialWidthIsInline: width 1 must run tasks in index order on
// the calling goroutine — the reference execution the determinism tests
// compare against.
func TestForkSerialWidthIsInline(t *testing.T) {
	prev := SetParallelism(1)
	defer SetParallelism(prev)
	var order []int
	Fork(50, func(i int) { order = append(order, i) }) // safe: inline only
	for i, v := range order {
		if i != v {
			t.Fatalf("serial order[%d] = %d", i, v)
		}
	}
}

func TestForkPanicPropagates(t *testing.T) {
	for _, width := range []int{1, 4} {
		prev := SetParallelism(width)
		func() {
			defer SetParallelism(prev)
			defer func() {
				r := recover()
				if r == nil {
					t.Fatalf("width %d: panic did not propagate", width)
				}
				msg, ok := r.(string)
				if width > 1 && (!ok || !strings.Contains(msg, "panicked: boom")) {
					t.Fatalf("width %d: panic %v lost the cause", width, r)
				}
			}()
			Fork(64, func(i int) {
				if i == 13 {
					panic("boom")
				}
			})
		}()
	}
}

// TestForkReleasesTokens: the process-wide budget must be whole again
// after every Fork, or nesting would degenerate to serial forever.
func TestForkReleasesTokens(t *testing.T) {
	prev := SetParallelism(4)
	defer SetParallelism(prev)
	for round := 0; round < 50; round++ {
		Fork(16, func(int) {})
		if got := forkTokens.Load(); got != 0 {
			t.Fatalf("round %d: %d tokens leaked", round, got)
		}
	}
	// Nested forks must not deadlock even when tokens are exhausted.
	Fork(4, func(int) {
		Fork(4, func(int) {
			Fork(2, func(int) {})
		})
	})
	if got := forkTokens.Load(); got != 0 {
		t.Fatalf("nested forks leaked %d tokens", got)
	}
}
