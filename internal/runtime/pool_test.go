package runtime

import (
	"sync/atomic"
	"testing"
)

func TestMapOrderIndependentOfWorkers(t *testing.T) {
	want := make([]int, 100)
	for i := range want {
		want[i] = i * i
	}
	for _, w := range []int{1, 2, 7, 64} {
		got := Map(NewPool(w), len(want), func(i int) int { return i * i })
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: got[%d]=%d, want %d", w, i, got[i], want[i])
			}
		}
	}
}

func TestEachRunsEveryTaskOnce(t *testing.T) {
	const n = 500
	var counts [n]atomic.Int32
	NewPool(8).Each(n, func(i int) { counts[i].Add(1) })
	for i := range counts {
		if c := counts[i].Load(); c != 1 {
			t.Fatalf("task %d ran %d times", i, c)
		}
	}
}

func TestEachEmptyAndSingle(t *testing.T) {
	NewPool(4).Each(0, func(int) { t.Fatal("task ran for n=0") })
	ran := false
	NewPool(4).Each(1, func(i int) { ran = i == 0 })
	if !ran {
		t.Fatal("single task did not run")
	}
}

func TestPoolDefaults(t *testing.T) {
	if w := NewPool(0).Workers(); w != DefaultWorkers() {
		t.Errorf("NewPool(0).Workers() = %d, want %d", w, DefaultWorkers())
	}
	if w := NewPool(-3).Workers(); w < 1 {
		t.Errorf("NewPool(-3).Workers() = %d", w)
	}
	if w := NewPool(5).Workers(); w != 5 {
		t.Errorf("NewPool(5).Workers() = %d, want 5", w)
	}
}

func TestEachPropagatesPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("panic in task did not propagate")
		}
	}()
	NewPool(4).Each(16, func(i int) {
		if i == 7 {
			panic("task failure")
		}
	})
}
