package mpc

import "repro/internal/relation"

// Rng is a splitmix64 pseudo-random generator: tiny, fast, and with
// explicit state so every simulation is reproducible from its seed.
type Rng struct{ state uint64 }

// NewRng returns a generator seeded with seed.
func NewRng(seed uint64) *Rng { return &Rng{state: seed} }

// Next returns the next 64 random bits.
func (r *Rng) Next() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a uniform int in [0, n). n must be positive.
func (r *Rng) Intn(n int) int {
	if n <= 0 {
		panic("mpc: Intn with non-positive n")
	}
	return int(r.Next() % uint64(n))
}

// Float64 returns a uniform float64 in [0, 1).
func (r *Rng) Float64() float64 {
	return float64(r.Next()>>11) / (1 << 53)
}

// Perm returns a random permutation of [0, n).
func (r *Rng) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// ChildSeed derives an independent stream seed for a task from a root seed.
// Child streams depend only on (seed, task) — never on shared RNG state —
// so a task produces the same instance whether the experiment matrix runs
// on one worker or many, and in any order.
func ChildSeed(seed uint64, task int) uint64 {
	z := seed ^ (uint64(task)+1)*0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// NewChildRng returns a generator on task's independent stream of seed.
func NewChildRng(seed uint64, task int) *Rng {
	return NewRng(ChildSeed(seed, task))
}

// Hash64 mixes a byte string and a salt into 64 bits (FNV-1a core with a
// splitmix finalizer). Used for key routing; deterministic across runs.
func Hash64(key string, salt uint64) uint64 {
	h := uint64(14695981039346656037) ^ (salt * 0x9e3779b97f4a7c15)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= 1099511628211
	}
	return hashFinalize(h)
}

// HashTupleAt hashes the projection of t onto pos, producing exactly
// Hash64(relation.KeyAt(t, pos), salt) without materializing the key
// string: it feeds the same 8 big-endian bytes per value straight into the
// FNV core, with the byte loop fully unrolled (fnvValue) so the hot
// shuffles hash flat buffer rows with no per-byte loop control and no
// allocation per item.
//
//lint:alloc-ceiling
func HashTupleAt(t relation.Tuple, pos []int, salt uint64) uint64 {
	h := uint64(14695981039346656037) ^ (salt * 0x9e3779b97f4a7c15)
	for _, p := range pos {
		h = fnvValue(h, uint64(t[p])^(1<<63))
	}
	return hashFinalize(h)
}

// fnvValue folds one order-encoded value into the running FNV-1a state as
// 8 big-endian bytes — the unrolled body of Hash64's byte loop, kept
// bit-identical to it (the golden tables pin the routing this produces).
func fnvValue(h, v uint64) uint64 {
	const prime = 1099511628211
	h ^= v >> 56
	h *= prime
	h ^= (v >> 48) & 0xff
	h *= prime
	h ^= (v >> 40) & 0xff
	h *= prime
	h ^= (v >> 32) & 0xff
	h *= prime
	h ^= (v >> 24) & 0xff
	h *= prime
	h ^= (v >> 16) & 0xff
	h *= prime
	h ^= (v >> 8) & 0xff
	h *= prime
	h ^= v & 0xff
	h *= prime
	return h
}

func hashFinalize(h uint64) uint64 {
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	return h ^ (h >> 31)
}
