package mpc

import (
	"sync"

	"repro/internal/relation"
)

// Columns is the flat fixed-width item store of the data plane: one part
// holds a single contiguous value buffer plus the tuple width, so row i is
// values[i*width : (i+1)*width]. There is no per-row slice header and no
// per-row heap object — routing moves value ranges with contiguous copies,
// hashing reads values straight out of the buffer, and the buffer itself is
// the densest possible representation of a fixed-arity relation (the
// layout-over-topology lever from the ROADMAP's flat-encoding item).
//
// Width is a property of the part's schema. A zero-value Columns has no
// width yet; the first Append (or AppendColumns) adopts the width of the
// appended row, and every later row must match. Rows are counted
// explicitly (rows, not len(values)/width) so width-0 tuples — scalar
// aggregates — still count rows.
//
// The annotation column is lazy: annots == nil means every annotation is 1
// (the multiplicative identity of every semiring in the repository). Plain
// joins — the common case — therefore carry no annotation storage through
// any number of exchanges. The invariant is maintained by every mutator:
// appending a non-identity annotation materializes the column, and bulk
// copies from a materialized source materialize the destination before any
// concurrent scatter begins (see exchangePlan.alloc). Because neither the
// representation of "all ones" nor the buffer capacity is unique, compare
// Columns with Equal, which compares values, never representations.
type Columns struct {
	width  int
	rows   int
	values []relation.Value
	annots []int64 // nil ⇒ every annotation is 1
}

// MakeColumns returns an empty column set of the given tuple width with
// room for capacity rows.
func MakeColumns(width, capacity int) Columns {
	return Columns{width: width, values: make([]relation.Value, 0, capacity*width)}
}

// Len returns the number of rows.
func (c *Columns) Len() int { return c.rows }

// Width returns the tuple width (0 until the first row adopts one).
func (c *Columns) Width() int { return c.width }

// Tuple returns row i's tuple as a window into the flat buffer (shared,
// not copied; capacity-clamped so appends cannot spill into row i+1).
func (c *Columns) Tuple(i int) relation.Tuple {
	w := c.width
	return relation.Tuple(c.values[i*w : i*w+w : i*w+w])
}

// Annot returns row i's annotation.
func (c *Columns) Annot(i int) int64 {
	if c.annots == nil {
		return 1
	}
	return c.annots[i]
}

// Item assembles row i as an Item (for callbacks that take items).
func (c *Columns) Item(i int) Item { return Item{T: c.Tuple(i), A: c.Annot(i)} }

// materializeAnnots backfills the annotation column with 1s so that a
// non-identity annotation can be stored.
func (c *Columns) materializeAnnots() {
	c.annots = make([]int64, c.rows, max(c.rows, 8))
	for i := range c.annots {
		c.annots[i] = 1
	}
}

// adoptWidth fixes the part's width from its first row. While the part is
// empty any width may be adopted (a zero-value Columns carries no width);
// once rows exist every appended row must match.
func (c *Columns) adoptWidth(w int) {
	if c.rows == 0 {
		c.width = w
		c.values = c.values[:0]
		return
	}
	if w != c.width {
		panic("mpc: Columns row width mismatch")
	}
}

// Append adds one row, copying t's values into the flat buffer.
func (c *Columns) Append(t relation.Tuple, a int64) {
	c.adoptWidth(len(t))
	if a != 1 && c.annots == nil {
		c.materializeAnnots()
	}
	c.values = append(c.values, t...)
	c.rows++
	if c.annots != nil {
		c.annots = append(c.annots, a)
	}
}

// AppendItem adds one row from an Item.
func (c *Columns) AppendItem(it Item) { c.Append(it.T, it.A) }

// AppendColumns bulk-appends every row of src, one copy per column.
func (c *Columns) AppendColumns(src *Columns) {
	if src.rows == 0 {
		return
	}
	c.adoptWidth(src.width)
	if src.annots != nil && c.annots == nil {
		c.materializeAnnots()
	}
	c.values = append(c.values, src.values[:src.rows*src.width]...)
	c.rows += src.rows
	if c.annots == nil {
		return
	}
	if src.annots != nil {
		c.annots = append(c.annots, src.annots[:src.rows]...)
		return
	}
	for i := 0; i < src.rows; i++ {
		c.annots = append(c.annots, 1)
	}
}

// resize sets the width and row count, allocating exactly once per column;
// the annotation column is allocated only when asked for. Used by the
// exchange to pre-size destination parts before the parallel scatter.
func (c *Columns) resize(width, n int, withAnnots bool) {
	c.width = width
	c.rows = n
	c.values = make([]relation.Value, n*width)
	if withAnnots {
		c.annots = make([]int64, n)
	}
}

// copyAt block-copies src rows [lo, hi) into c starting at row off, one
// contiguous copy per column. c must be pre-sized (resize) with src's
// width; when c carries annotations and src does not, the window is filled
// with 1s.
func (c *Columns) copyAt(off int, src *Columns, lo, hi int) {
	w := c.width
	copy(c.values[off*w:], src.values[lo*w:hi*w])
	if c.annots == nil {
		return
	}
	if src.annots != nil {
		copy(c.annots[off:], src.annots[lo:hi])
		return
	}
	for i := off; i < off+(hi-lo); i++ {
		c.annots[i] = 1
	}
}

// setRow writes one pre-sized row. The caller must have materialized the
// annotation column whenever a non-identity annotation can occur (the
// exchange decides this once, before the scatter fans out).
func (c *Columns) setRow(i int, t relation.Tuple, a int64) {
	w := c.width
	copy(c.values[i*w:i*w+w], t)
	if c.annots != nil {
		c.annots[i] = a
	} else if a != 1 {
		panic("mpc: setRow with annotation on an identity column")
	}
}

// Swap exchanges rows i and j in every column.
func (c *Columns) Swap(i, j int) {
	w := c.width
	for k := 0; k < w; k++ {
		c.values[i*w+k], c.values[j*w+k] = c.values[j*w+k], c.values[i*w+k]
	}
	if c.annots != nil {
		c.annots[i], c.annots[j] = c.annots[j], c.annots[i]
	}
}

// Equal reports whether the two column sets hold the same rows — tuple
// values and annotation values — regardless of buffer capacity and of
// whether either annotation column is materialized. Two empty parts are
// equal whatever widths they have adopted.
func (c *Columns) Equal(o *Columns) bool {
	if c.rows != o.rows {
		return false
	}
	if c.rows == 0 {
		return true
	}
	if c.width != o.width {
		return false
	}
	n := c.rows * c.width
	for i := 0; i < n; i++ {
		if c.values[i] != o.values[i] {
			return false
		}
	}
	for i := 0; i < c.rows; i++ {
		if c.Annot(i) != o.Annot(i) {
			return false
		}
	}
	return true
}

// hasAnnots reports whether the annotation column is materialized.
func (c *Columns) hasAnnots() bool { return c.annots != nil }

// The exchange's per-task scratch — flat destination lists, fan-outs,
// batch counts, write cursors — is recycled through a pool: the buffers
// never escape a route call, so steady-state exchanges allocate only the
// output parts themselves.
var int32Pool sync.Pool

// getInt32Cap returns a length-0 slice with capacity ≥ n.
func getInt32Cap(n int) []int32 {
	if v := int32Pool.Get(); v != nil {
		s := v.([]int32)
		if cap(s) >= n {
			return s[:0]
		}
	}
	return make([]int32, 0, n)
}

// getInt32Zero returns a zeroed slice of length n.
func getInt32Zero(n int) []int32 {
	s := getInt32Cap(n)[:n]
	for i := range s {
		s[i] = 0
	}
	return s
}

// putInt32 recycles a scratch slice (contents need not be cleared: the
// slices carry no pointers and every consumer initializes before reading).
func putInt32(s []int32) {
	if cap(s) > 0 {
		int32Pool.Put(s[:0])
	}
}

// bytePool recycles the hash fast path's per-row destination bytes (valid
// whenever the cluster has ≤ 256 servers — every configuration in the
// repository). One byte per row instead of one int32 keeps the scatter's
// destination reads inside a quarter of the cache footprint.
var bytePool sync.Pool

// getByteCap returns a length-0 byte slice with capacity ≥ n.
func getByteCap(n int) []byte {
	if v := bytePool.Get(); v != nil {
		s := v.([]byte)
		if cap(s) >= n {
			return s[:0]
		}
	}
	return make([]byte, 0, n)
}

// putByte recycles a destination-byte buffer.
func putByte(s []byte) {
	if cap(s) > 0 {
		bytePool.Put(s[:0])
	}
}
