package mpc

import (
	"sync"

	"repro/internal/relation"
)

// Columns is the struct-of-arrays item store of the data plane: the tuples
// and annotations of one server's part live in two parallel slices instead
// of one []Item. Routing then moves each column with contiguous copies
// (memcpy-style block moves, the ROADMAP's columnar-storage item) instead
// of one 32-byte struct at a time, and stages that never look at
// annotations never touch — or allocate — the annotation column at all.
//
// The annotation column is lazy: annots == nil means every annotation is 1
// (the multiplicative identity of every semiring in the repository). Plain
// joins — the common case — therefore carry no annotation storage through
// any number of exchanges. The invariant is maintained by every mutator:
// appending a non-identity annotation materializes the column, and bulk
// copies from a materialized source materialize the destination before any
// concurrent scatter begins (see exchangePlan.alloc). Because the
// representation of "all ones" is not unique, compare Columns with Equal,
// which compares values, never representations.
type Columns struct {
	tuples []relation.Tuple
	annots []int64 // nil ⇒ every annotation is 1
}

// MakeColumns returns an empty column set with room for capacity rows.
func MakeColumns(capacity int) Columns {
	return Columns{tuples: make([]relation.Tuple, 0, capacity)}
}

// Len returns the number of rows.
func (c *Columns) Len() int { return len(c.tuples) }

// Tuple returns row i's tuple. The tuple is shared, not copied.
func (c *Columns) Tuple(i int) relation.Tuple { return c.tuples[i] }

// Annot returns row i's annotation.
func (c *Columns) Annot(i int) int64 {
	if c.annots == nil {
		return 1
	}
	return c.annots[i]
}

// Item assembles row i as an Item (for callbacks that take items).
func (c *Columns) Item(i int) Item { return Item{T: c.tuples[i], A: c.Annot(i)} }

// materializeAnnots backfills the annotation column with 1s so that a
// non-identity annotation can be stored.
func (c *Columns) materializeAnnots() {
	c.annots = make([]int64, len(c.tuples), cap(c.tuples))
	for i := range c.annots {
		c.annots[i] = 1
	}
}

// Append adds one row.
func (c *Columns) Append(t relation.Tuple, a int64) {
	if a != 1 && c.annots == nil {
		c.materializeAnnots()
	}
	c.tuples = append(c.tuples, t)
	if c.annots != nil {
		c.annots = append(c.annots, a)
	}
}

// AppendItem adds one row from an Item.
func (c *Columns) AppendItem(it Item) { c.Append(it.T, it.A) }

// AppendColumns bulk-appends every row of src, one copy per column.
func (c *Columns) AppendColumns(src *Columns) {
	if src.annots != nil && c.annots == nil {
		c.materializeAnnots()
	}
	c.tuples = append(c.tuples, src.tuples...)
	if c.annots == nil {
		return
	}
	if src.annots != nil {
		c.annots = append(c.annots, src.annots...)
		return
	}
	for range src.tuples {
		c.annots = append(c.annots, 1)
	}
}

// resize sets the row count to n, allocating exactly once per column; the
// annotation column is allocated only when asked for. Used by the exchange
// to pre-size destination parts before the parallel scatter.
func (c *Columns) resize(n int, withAnnots bool) {
	c.tuples = make([]relation.Tuple, n)
	if withAnnots {
		c.annots = make([]int64, n)
	}
}

// copyAt block-copies src rows [lo, hi) into c starting at row off, one
// contiguous copy per column. c must be pre-sized (resize); when c carries
// annotations and src does not, the window is filled with 1s.
func (c *Columns) copyAt(off int, src *Columns, lo, hi int) {
	copy(c.tuples[off:], src.tuples[lo:hi])
	if c.annots == nil {
		return
	}
	if src.annots != nil {
		copy(c.annots[off:], src.annots[lo:hi])
		return
	}
	for i := off; i < off+(hi-lo); i++ {
		c.annots[i] = 1
	}
}

// setRow writes one pre-sized row. The caller must have materialized the
// annotation column whenever a non-identity annotation can occur (the
// exchange decides this once, before the scatter fans out).
func (c *Columns) setRow(i int, t relation.Tuple, a int64) {
	c.tuples[i] = t
	if c.annots != nil {
		c.annots[i] = a
	} else if a != 1 {
		panic("mpc: setRow with annotation on an identity column")
	}
}

// Swap exchanges rows i and j in every column.
func (c *Columns) Swap(i, j int) {
	c.tuples[i], c.tuples[j] = c.tuples[j], c.tuples[i]
	if c.annots != nil {
		c.annots[i], c.annots[j] = c.annots[j], c.annots[i]
	}
}

// Equal reports whether the two column sets hold the same rows — tuple
// values and annotation values — regardless of whether either annotation
// column is materialized.
func (c *Columns) Equal(o *Columns) bool {
	if c.Len() != o.Len() {
		return false
	}
	for i := range c.tuples {
		a, b := c.tuples[i], o.tuples[i]
		if len(a) != len(b) {
			return false
		}
		for j := range a {
			if a[j] != b[j] {
				return false
			}
		}
		if c.Annot(i) != o.Annot(i) {
			return false
		}
	}
	return true
}

// hasAnnots reports whether the annotation column is materialized.
func (c *Columns) hasAnnots() bool { return c.annots != nil }

// The exchange's per-task scratch — flat destination lists, fan-outs,
// batch counts, write cursors — is recycled through a pool: the buffers
// never escape a route call, so steady-state exchanges allocate only the
// output parts themselves.
var int32Pool sync.Pool

// getInt32Cap returns a length-0 slice with capacity ≥ n.
func getInt32Cap(n int) []int32 {
	if v := int32Pool.Get(); v != nil {
		s := v.([]int32)
		if cap(s) >= n {
			return s[:0]
		}
	}
	return make([]int32, 0, n)
}

// getInt32Zero returns a zeroed slice of length n.
func getInt32Zero(n int) []int32 {
	s := getInt32Cap(n)[:n]
	for i := range s {
		s[i] = 0
	}
	return s
}

// putInt32 recycles a scratch slice (contents need not be cleared: the
// slices carry no pointers and every consumer initializes before reading).
func putInt32(s []int32) {
	if cap(s) > 0 {
		int32Pool.Put(s[:0])
	}
}
