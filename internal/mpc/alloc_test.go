package mpc

import (
	"testing"

	"repro/internal/relation"
	"repro/internal/runtime"
)

// TestExchangeScatterAllocCeiling is the allocation-regression guard for
// the batched exchange: a steady-state hash shuffle allocates the output
// columns and the plan bookkeeping — NEVER anything per item. Before the
// columnar refactor a shuffle cost ~3 allocations per item (key string,
// destination slice, part growth); the pooled columnar plan sits around 33
// for this configuration. The ceiling leaves room for pool misses after a
// GC, but any per-item regression blows through it by two orders of
// magnitude.
func TestExchangeScatterAllocCeiling(t *testing.T) {
	const p, n, ceiling = 16, 8192, 120
	prev := runtime.SetParallelism(1)
	defer runtime.SetParallelism(prev)
	c := NewCluster(p)
	d := exchangeTestDist(c, n, 11)
	pos := []int{0}
	d.ShuffleByKey(pos, 7) // warm the scratch pool
	got := testing.AllocsPerRun(20, func() { d.ShuffleByKey(pos, 7) })
	if got > ceiling {
		t.Fatalf("exchange shuffle allocates %.0f per run (n=%d, p=%d), ceiling %d — per-item allocations are back",
			got, n, p, ceiling)
	}
}

// TestColumnsEqualContract pins the flat-buffer equality contract: Equal
// compares rows — tuple values and annotation values — never
// representations. Parts holding identical rows must compare equal no
// matter how their buffers were built (Append growth with slack capacity vs
// exact-size resize+setRow) and no matter whether the all-1s annotation
// column is nil or materialized; any value, annotation, width, or row-count
// difference must break equality.
func TestColumnsEqualContract(t *testing.T) {
	rows := []relation.Tuple{{1, 2, 3}, {4, 5, 6}, {7, 8, 9}}

	// Append-grown, lazy annotations, deliberately oversized capacity.
	grown := MakeColumns(3, 64)
	for _, r := range rows {
		grown.Append(r, 1)
	}
	// Exact-size resize+setRow with a materialized all-1s annotation column
	// — the exchange's scatter-side representation.
	var sized Columns
	sized.resize(3, len(rows), true)
	for i, r := range rows {
		sized.setRow(i, r, 1)
	}
	if grown.hasAnnots() || !sized.hasAnnots() {
		t.Fatal("test premise broken: representations do not differ")
	}
	if !grown.Equal(&sized) || !sized.Equal(&grown) {
		t.Fatal("identical rows in differently-built buffers must compare equal")
	}

	// Width-0 scalar rows still count and compare.
	var s0, s1 Columns
	for i := 0; i < 3; i++ {
		s0.Append(relation.Tuple{}, 1)
		s1.Append(relation.Tuple{}, 1)
	}
	s1.materializeAnnots()
	if !s0.Equal(&s1) {
		t.Fatal("width-0 parts with identical rows must compare equal")
	}
	s1.Append(relation.Tuple{}, 1)
	if s0.Equal(&s1) {
		t.Fatal("row-count difference must break equality")
	}

	// Empty parts compare equal whatever widths they have adopted.
	e2, e5 := MakeColumns(2, 4), MakeColumns(5, 0)
	if !e2.Equal(&e5) {
		t.Fatal("empty parts must compare equal regardless of width")
	}

	// Value, annotation, and width differences each break equality.
	valDiff := MakeColumns(3, 3)
	for _, r := range rows {
		valDiff.Append(r, 1)
	}
	valDiff.values[4] = 99
	if grown.Equal(&valDiff) {
		t.Fatal("value difference must break equality")
	}
	var annotDiff Columns
	annotDiff.resize(3, len(rows), true)
	for i, r := range rows {
		annotDiff.setRow(i, r, 1)
	}
	annotDiff.annots[2] = 7
	if grown.Equal(&annotDiff) {
		t.Fatal("annotation difference must break equality")
	}
	var wideDiff Columns
	wideDiff.resize(9, 1, false)
	var narrow Columns
	narrow.resize(3, 1, false)
	if narrow.Equal(&wideDiff) {
		t.Fatal("width difference must break equality")
	}
}

// TestExchangeAnnotColumnElided pins the lazy annotation column: routing an
// unannotated collection must not materialize annotation storage in any
// output part, while an annotated input materializes it everywhere needed.
func TestExchangeAnnotColumnElided(t *testing.T) {
	c := NewCluster(8)
	plain := FromRelation(c, mkRel(500)).ShuffleByKey([]int{0}, 3)
	for s := range plain.Parts {
		if plain.Parts[s].hasAnnots() {
			t.Fatalf("server %d materialized an annotation column for an unannotated input", s)
		}
	}

	r := mkRel(500)
	r.AddAnnotated(7, 999, 0)
	annotated := FromRelation(c, r).ShuffleByKey([]int{0}, 3)
	sum := int64(0)
	for s := range annotated.Parts {
		part := &annotated.Parts[s]
		for i := 0; i < part.Len(); i++ {
			sum += part.Annot(i)
		}
	}
	if sum != 500+7 {
		t.Fatalf("annotation sum after shuffle = %d, want %d", sum, 500+7)
	}
}
