package mpc

import (
	"testing"

	"repro/internal/runtime"
)

// TestExchangeScatterAllocCeiling is the allocation-regression guard for
// the batched exchange: a steady-state hash shuffle allocates the output
// columns and the plan bookkeeping — NEVER anything per item. Before the
// columnar refactor a shuffle cost ~3 allocations per item (key string,
// destination slice, part growth); the pooled columnar plan sits around 33
// for this configuration. The ceiling leaves room for pool misses after a
// GC, but any per-item regression blows through it by two orders of
// magnitude.
func TestExchangeScatterAllocCeiling(t *testing.T) {
	const p, n, ceiling = 16, 8192, 120
	prev := runtime.SetParallelism(1)
	defer runtime.SetParallelism(prev)
	c := NewCluster(p)
	d := exchangeTestDist(c, n, 11)
	pos := []int{0}
	d.ShuffleByKey(pos, 7) // warm the scratch pool
	got := testing.AllocsPerRun(20, func() { d.ShuffleByKey(pos, 7) })
	if got > ceiling {
		t.Fatalf("exchange shuffle allocates %.0f per run (n=%d, p=%d), ceiling %d — per-item allocations are back",
			got, n, p, ceiling)
	}
}

// TestExchangeAnnotColumnElided pins the lazy annotation column: routing an
// unannotated collection must not materialize annotation storage in any
// output part, while an annotated input materializes it everywhere needed.
func TestExchangeAnnotColumnElided(t *testing.T) {
	c := NewCluster(8)
	plain := FromRelation(c, mkRel(500)).ShuffleByKey([]int{0}, 3)
	for s := range plain.Parts {
		if plain.Parts[s].hasAnnots() {
			t.Fatalf("server %d materialized an annotation column for an unannotated input", s)
		}
	}

	r := mkRel(500)
	r.AddAnnotated(7, 999, 0)
	annotated := FromRelation(c, r).ShuffleByKey([]int{0}, 3)
	sum := int64(0)
	for s := range annotated.Parts {
		part := &annotated.Parts[s]
		for i := 0; i < part.Len(); i++ {
			sum += part.Annot(i)
		}
	}
	if sum != 500+7 {
		t.Fatalf("annotation sum after shuffle = %d, want %d", sum, 500+7)
	}
}
