// Package mpc simulates the massively parallel computation model the paper
// works in: p servers, computation in rounds, cost = load L = the maximum
// number of tuples received by any server in any round.
//
// The simulator executes algorithms at tuple granularity: every exchange
// routes concrete tuples to concrete servers and records per-server,
// per-round receive counts. MaxLoad() is therefore a measurement of the
// paper's L, not a formula. Local computation is free, as in the model;
// emitting join results is free (the paper's zero-cost emit()).
//
// Recursive algorithms (Sections 3.2 and 5.1) run sub-computations on
// sub-clusters and merge their statistics back: sequential phases append
// rounds; parallel sibling groups on disjoint servers take per-round maxima;
// the Cartesian-grid arrangement of Section 3.2 Case 2 adds per-dimension
// maxima (exact, because the grid contains a server at the argmax coordinate
// of every dimension).
package mpc

import (
	"fmt"
	"sync"
)

// Cluster is a simulated MPC deployment of P servers. Round 0 is reserved
// for the initial data distribution, so MaxLoad() ≥ IN/P as in the model.
//
// Receive counts for the open (latest) round are sharded: every recording
// goroutine owns a Shard whose counters only it touches, and shards are
// folded into the merged per-round table at round barriers (newRound and
// every read). The coordinating goroutine — the one that opens rounds —
// records through an implicit shard via receive/Charge/ChargeRound; worker
// goroutines of a parallel inner loop must each obtain their own Shard and
// finish before the coordinator closes the round.
type Cluster struct {
	P int

	mu     sync.Mutex
	rounds [][]int // merged counts: rounds[r][s] = tuples received by server s in round r
	shards []*Shard
	serial *Shard // the coordinator's shard

	// workerShards are the batched exchange's per-task shards, reused
	// across rounds: routes run one at a time (the coordinator contract)
	// and barriers zero the counters between rounds, so the shard count
	// stays bounded by the widest exchange instead of growing per round.
	workerShards []*Shard

	exchange ExchangeStats
}

// Shard is one worker's receive counters for the cluster's open round.
// Receive is lock-free because only the owning worker writes the counters;
// the cluster folds and zeroes them at the next round barrier.
type Shard struct {
	counts []int
}

// Receive records n tuples received by server s in the open round.
func (sh *Shard) Receive(s, n int) { sh.counts[s] += n }

// NewCluster returns a cluster of p ≥ 1 servers.
func NewCluster(p int) *Cluster {
	if p < 1 {
		panic(fmt.Sprintf("mpc: invalid server count %d", p))
	}
	c := &Cluster{P: p, rounds: [][]int{make([]int, p)}}
	c.serial = c.Shard()
	return c
}

// Shard registers a per-worker counter set for the open round. Safe to call
// concurrently; each worker goroutine must use its own Shard.
func (c *Cluster) Shard() *Shard {
	sh := &Shard{counts: make([]int, c.P)}
	c.mu.Lock()
	c.shards = append(c.shards, sh)
	c.mu.Unlock()
	return sh
}

// shardFor returns the reusable shard for exchange task slot, creating it
// on first use. Distinct slots are owned by distinct concurrent tasks;
// slot reuse across sequential rounds is safe because barriers fold and
// zero the counters.
func (c *Cluster) shardFor(slot int) *Shard {
	c.mu.Lock()
	defer c.mu.Unlock()
	for len(c.workerShards) <= slot {
		sh := &Shard{counts: make([]int, c.P)}
		c.workerShards = append(c.workerShards, sh)
		c.shards = append(c.shards, sh)
	}
	return c.workerShards[slot]
}

// recordExchange accumulates the deterministic per-exchange statistics
// from the plan's exact per-destination totals. Coordinator-only.
func (c *Cluster) recordExchange(totals []int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.exchange.Exchanges++
	for _, n := range totals {
		if n > 0 {
			c.exchange.Tuples += int64(n)
			c.exchange.ActiveDests++
		}
	}
}

// Exchange reports the batched exchange's counters for this cluster.
func (c *Cluster) Exchange() ExchangeStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.exchange
}

// barrierLocked folds every shard's counters into the open round and zeroes
// them. Callers hold c.mu; all worker goroutines must already be quiescent,
// which is the round-barrier contract of the MPC model itself.
func (c *Cluster) barrierLocked() {
	cur := c.rounds[len(c.rounds)-1]
	for _, sh := range c.shards {
		for s, n := range sh.counts {
			if n != 0 {
				cur[s] += n
				sh.counts[s] = 0
			}
		}
	}
}

// barrier is barrierLocked for callers not holding the lock.
func (c *Cluster) barrier() {
	c.mu.Lock()
	c.barrierLocked()
	c.mu.Unlock()
}

// newRound closes the open round at a barrier, starts a fresh one, and
// returns its index. Only the coordinating goroutine opens rounds.
//
// This is the ground truth of the static round accounting: every charge in
// the repository reaches a round through this append, so its trusted
// declaration is the axiom the roundcost analyzer composes everything
// else from.
//
//lint:rounds const trust the simulator's single base charge: one append, one round
func (c *Cluster) newRound() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.barrierLocked()
	c.rounds = append(c.rounds, make([]int, c.P))
	return len(c.rounds) - 1
}

// receive records n tuples received by server s in round r on the
// coordinator's shard. Coordinator-only; workers use their own Shard.
func (c *Cluster) receive(r, s, n int) {
	if r == len(c.rounds)-1 {
		c.serial.counts[s] += n
		return
	}
	// A closed round (only reachable through explicit replay in tests).
	c.mu.Lock()
	c.rounds[r][s] += n
	c.mu.Unlock()
}

// input records n tuples placed on server s as part of the initial
// distribution (round 0).
func (c *Cluster) input(s, n int) { c.receive(0, s, n) }

// Rounds returns the number of communication rounds so far (excluding the
// initial distribution).
func (c *Cluster) Rounds() int { return len(c.rounds) - 1 }

// MaxLoad returns the realized load L: the maximum number of tuples
// received by any server in any round, including the initial distribution.
func (c *Cluster) MaxLoad() int {
	c.barrier()
	max := 0
	for _, row := range c.rounds {
		for _, v := range row {
			if v > max {
				max = v
			}
		}
	}
	return max
}

// RoundMax returns the largest per-server receive count of round r.
func (c *Cluster) RoundMax(r int) int {
	c.barrier()
	max := 0
	for _, v := range c.rounds[r] {
		if v > max {
			max = v
		}
	}
	return max
}

// TotalComm returns the total number of tuples communicated (all rounds,
// all servers), excluding the initial distribution.
func (c *Cluster) TotalComm() int {
	c.barrier()
	sum := 0
	for r := 1; r < len(c.rounds); r++ {
		for _, v := range c.rounds[r] {
			sum += v
		}
	}
	return sum
}

// Stats summarizes a (sub-)computation for composition.
type Stats struct {
	P         int
	RoundMaxs []int // per-round maximum per-server load, excluding input
	InputMax  int   // round-0 maximum
	// Exchange carries the sub-computation's batched-exchange counters
	// (its own plus anything already merged into it), folded into the
	// parent by the Merge* calls.
	Exchange ExchangeStats
}

// Snapshot extracts the cluster's statistics.
func (c *Cluster) Snapshot() Stats {
	s := Stats{P: c.P, InputMax: c.RoundMax(0), Exchange: c.Exchange()}
	for r := 1; r < len(c.rounds); r++ {
		s.RoundMaxs = append(s.RoundMaxs, c.RoundMax(r))
	}
	return s
}

// addExchange folds a merged sub-computation's exchange counters into c's.
func (c *Cluster) addExchange(e ExchangeStats) {
	c.mu.Lock()
	c.exchange.Exchanges += e.Exchanges
	c.exchange.Tuples += e.Tuples
	c.exchange.ActiveDests += e.ActiveDests
	c.mu.Unlock()
}

// MergeSequential appends a sub-computation's rounds after the current ones:
// the sub-computation ran on (a subset of) this cluster's servers, after
// everything recorded so far. Per-round maxima are preserved exactly.
//
//lint:rounds const trust appends one round per sub-computation round, a count set by the query's recursion structure
//lint:load linear trust replays the sub-computation's round maxima verbatim; the sub-run's own declarations bound them
func (c *Cluster) MergeSequential(sub Stats) {
	// The sub-computation's input round was a real exchange from this
	// cluster's perspective (data had to reach the sub-cluster's servers),
	// so it is appended as a communication round when non-zero.
	if sub.InputMax > 0 {
		r := c.newRound()
		c.receive(r, 0, sub.InputMax)
	}
	for _, m := range sub.RoundMaxs {
		r := c.newRound()
		c.receive(r, 0, m)
	}
	c.addExchange(sub.Exchange)
}

// MergeParallel merges sibling sub-computations that ran simultaneously on
// disjoint server groups: round r's maximum is the max over the siblings'
// round-r maxima. Input rounds are likewise merged in parallel.
//
//lint:rounds const trust appends max sibling rounds, a count set by the query's recursion structure
//lint:load linear trust replays max sibling round maxima; the sub-runs' own declarations bound them
func (c *Cluster) MergeParallel(subs []Stats) {
	if len(subs) == 0 {
		return
	}
	maxRounds, maxInput := 0, 0
	for _, s := range subs {
		if len(s.RoundMaxs) > maxRounds {
			maxRounds = len(s.RoundMaxs)
		}
		if s.InputMax > maxInput {
			maxInput = s.InputMax
		}
	}
	if maxInput > 0 {
		r := c.newRound()
		c.receive(r, 0, maxInput)
	}
	for i := 0; i < maxRounds; i++ {
		r := c.newRound()
		m := 0
		for _, s := range subs {
			if i < len(s.RoundMaxs) && s.RoundMaxs[i] > m {
				m = s.RoundMaxs[i]
			}
		}
		c.receive(r, 0, m)
	}
	for _, s := range subs {
		c.addExchange(s.Exchange)
	}
}

// MergeGrid merges the per-dimension computations of a Cartesian-grid
// arrangement (Section 3.2 Case 2): every grid server participates in one
// group per dimension, so its load in a round is the SUM over dimensions of
// the load it receives from each group. The per-round maximum over the grid
// is exactly the sum of per-dimension maxima: the grid contains a server
// whose coordinate in every dimension is that dimension's argmax.
//
//lint:rounds const trust appends max per-dimension rounds, a count set by the query's recursion structure
//lint:load linear trust replays summed per-dimension round maxima; the sub-runs' own declarations bound them
func (c *Cluster) MergeGrid(dims []Stats) {
	if len(dims) == 0 {
		return
	}
	maxRounds, sumInput := 0, 0
	for _, s := range dims {
		if len(s.RoundMaxs) > maxRounds {
			maxRounds = len(s.RoundMaxs)
		}
		sumInput += s.InputMax
	}
	if sumInput > 0 {
		r := c.newRound()
		c.receive(r, 0, sumInput)
	}
	for i := 0; i < maxRounds; i++ {
		r := c.newRound()
		sum := 0
		for _, s := range dims {
			if i < len(s.RoundMaxs) {
				sum += s.RoundMaxs[i]
			}
		}
		c.receive(r, 0, sum)
	}
	for _, s := range dims {
		c.addExchange(s.Exchange)
	}
}

// Charge records a synthetic receive of n tuples on server s in a fresh
// round. It models communication whose routing is fully determined (e.g.
// packing whole groups onto designated servers) without materializing it.
//
// Charge, ChargeInput, and ChargeRound are the load classifier's
// intrinsics: repoloadcost recognizes them syntactically at every call site
// and classifies the arithmetic shape of their magnitude arguments, so they
// carry no //lint:load declarations of their own.
//
//lint:rounds const
func (c *Cluster) Charge(s, n int) {
	r := c.newRound()
	c.receive(r, s, n)
}

// ChargeInput records total tuples spread evenly over the servers as part
// of the initial distribution (round 0). Used when a sub-cluster receives a
// sub-problem's input.
//
//lint:rounds zero
func (c *Cluster) ChargeInput(total int) {
	per := total / c.P
	rem := total % c.P
	for s := 0; s < c.P; s++ {
		n := per
		if s < rem {
			n++
		}
		c.input(s, n)
	}
}

// ChargeRound records synthetic receives for several servers in one shared
// round; loads[s] tuples arrive at server s. A loads slice longer than the
// cluster is a caller bug — silently truncating it would under-charge the
// round — so it panics.
//
//lint:rounds const
func (c *Cluster) ChargeRound(loads []int) {
	if len(loads) > c.P {
		panic(fmt.Sprintf("mpc: ChargeRound with %d loads on %d servers", len(loads), c.P))
	}
	r := c.newRound()
	for s, n := range loads {
		c.receive(r, s, n)
	}
}
