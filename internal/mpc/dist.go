package mpc

import (
	"repro/internal/relation"
	"repro/internal/runtime"
)

// Item is a tuple with its semiring annotation (1 for plain joins).
type Item struct {
	T relation.Tuple
	A int64
}

// Dist is a distributed collection of items over a cluster: Parts[s] holds
// the items currently residing on server s. Every routing operation on a
// Dist is one communication round and is charged to the cluster.
type Dist struct {
	C      *Cluster
	Schema relation.Schema
	Parts  [][]Item
}

// NewDist returns an empty distributed collection.
func NewDist(c *Cluster, schema relation.Schema) *Dist {
	return &Dist{C: c, Schema: schema, Parts: make([][]Item, c.P)}
}

// roundRobinParts pre-sizes parts for n items spread round-robin over c
// and charges round 0 per server — the shared batched-placement plan of
// FromRelation and MoveTo: one exact-capacity allocation per server, no
// per-tuple charging.
func roundRobinParts(c *Cluster, n int) [][]Item {
	parts := make([][]Item, c.P)
	for s := 0; s < c.P && s < n; s++ {
		cnt := (n - s + c.P - 1) / c.P
		parts[s] = make([]Item, 0, cnt)
		c.input(s, cnt)
	}
	return parts
}

// FromRelation distributes r round-robin over the cluster, charging the
// initial placement to round 0 (the model's starting state: IN/p each).
func FromRelation(c *Cluster, r *relation.Relation) *Dist {
	d := NewDist(c, r.Schema)
	d.Parts = roundRobinParts(c, len(r.Tuples))
	for i, t := range r.Tuples {
		d.Parts[i%c.P] = append(d.Parts[i%c.P], Item{T: t, A: r.Annot(i)})
	}
	return d
}

// Size returns the total number of items across servers.
func (d *Dist) Size() int {
	n := 0
	for _, p := range d.Parts {
		n += len(p)
	}
	return n
}

// All returns every item (server order). Used by tests and emitters.
func (d *Dist) All() []Item {
	out := make([]Item, 0, d.Size())
	for _, p := range d.Parts {
		out = append(out, p...)
	}
	return out
}

// ToRelation collects the distributed items into a relation (no load is
// charged: this is a test/inspection helper, not an MPC operation).
func (d *Dist) ToRelation(name string) *relation.Relation {
	r := relation.New(name, d.Schema)
	n := d.Size()
	r.Tuples = make([]relation.Tuple, 0, n)
	r.Annots = make([]int64, 0, n)
	for _, p := range d.Parts {
		for _, it := range p {
			r.Tuples = append(r.Tuples, it.T)
			r.Annots = append(r.Annots, it.A)
		}
	}
	return r
}

// Positions resolves attrs against the schema.
func (d *Dist) Positions(attrs []relation.Attr) []int {
	return d.Schema.Positions(attrs)
}

// ShuffleByKey hashes each item's projection onto pos and routes it to
// hash % P. Salt decorrelates successive shuffles of the same keys.
func (d *Dist) ShuffleByKey(pos []int, salt uint64) *Dist {
	p := d.C.P
	return d.route(d.Schema, func(_ int, it Item) []int {
		return []int{int(Hash64(relation.KeyAt(it.T, pos), salt) % uint64(p))}
	})
}

// ShuffleByAttrs hashes each item's projection onto attrs (resolved against
// the schema) and routes it to hash % P.
func (d *Dist) ShuffleByAttrs(attrs []relation.Attr, salt uint64) *Dist {
	return d.ShuffleByKey(d.Positions(attrs), salt)
}

// ShuffleBy routes each item to the single server chosen by f.
func (d *Dist) ShuffleBy(f func(it Item) int) *Dist {
	return d.route(d.Schema, func(_ int, it Item) []int { return []int{f(it)} })
}

// ReplicateBy routes each item to every server chosen by f (used by
// HyperCube-style plans where a tuple is copied along grid dimensions).
func (d *Dist) ReplicateBy(f func(it Item) []int) *Dist {
	return d.route(d.Schema, func(_ int, it Item) []int { return f(it) })
}

// Broadcast copies every item to all servers: one round, load = Size() per
// server. Only used for provably small collections (boundaries, statistics).
func (d *Dist) Broadcast() *Dist {
	all := make([]int, d.C.P)
	for i := range all {
		all[i] = i
	}
	return d.route(d.Schema, func(_ int, _ Item) []int { return all })
}

// GatherTo ships everything to a single server.
func (d *Dist) GatherTo(s int) *Dist {
	return d.route(d.Schema, func(_ int, _ Item) []int { return []int{s} })
}

// MapLocal rewrites every item locally (no communication, no new round).
// f returns the replacement items for one input item; it must be safe for
// concurrent calls — parts are transformed in parallel, one task per part.
func (d *Dist) MapLocal(schema relation.Schema, f func(s int, it Item) []Item) *Dist {
	out := &Dist{C: d.C, Schema: schema, Parts: make([][]Item, d.C.P)}
	runtime.Fork(len(d.Parts), func(s int) {
		part := d.Parts[s]
		if len(part) == 0 {
			return
		}
		res := make([]Item, 0, len(part))
		for _, it := range part {
			res = append(res, f(s, it)...)
		}
		out.Parts[s] = res
	})
	return out
}

// FilterLocal keeps items satisfying pred; local, free. pred must be safe
// for concurrent calls — parts are filtered in parallel, one task per part.
func (d *Dist) FilterLocal(pred func(it Item) bool) *Dist {
	out := &Dist{C: d.C, Schema: d.Schema, Parts: make([][]Item, d.C.P)}
	runtime.Fork(len(d.Parts), func(s int) {
		var res []Item
		for _, it := range d.Parts[s] {
			if pred(it) {
				res = append(res, it)
			}
		}
		out.Parts[s] = res
	})
	return out
}

// Concat unions several collections sharing a schema; local, free.
func Concat(ds ...*Dist) *Dist {
	if len(ds) == 0 {
		panic("mpc: Concat of nothing")
	}
	out := &Dist{C: ds[0].C, Schema: ds[0].Schema, Parts: make([][]Item, ds[0].C.P)}
	for _, d := range ds {
		if !d.Schema.Equal(out.Schema) {
			panic("mpc: Concat schema mismatch")
		}
		for s, part := range d.Parts {
			out.Parts[s] = append(out.Parts[s], part...)
		}
	}
	return out
}

// MoveTo re-registers the collection on another cluster, charging the new
// cluster's round 0 with the items as its initial input. Used when handing
// a sub-problem to a sub-cluster; items are spread round-robin through the
// same batched placement as FromRelation.
func (d *Dist) MoveTo(sub *Cluster) *Dist {
	out := &Dist{C: sub, Schema: d.Schema, Parts: roundRobinParts(sub, d.Size())}
	i := 0
	for _, part := range d.Parts {
		for _, it := range part {
			out.Parts[i%sub.P] = append(out.Parts[i%sub.P], it)
			i++
		}
	}
	return out
}
