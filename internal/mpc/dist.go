package mpc

import (
	"fmt"

	"repro/internal/relation"
)

// Item is a tuple with its semiring annotation (1 for plain joins).
type Item struct {
	T relation.Tuple
	A int64
}

// Dist is a distributed collection of items over a cluster: Parts[s] holds
// the items currently residing on server s. Every routing operation on a
// Dist is one communication round and is charged to the cluster.
type Dist struct {
	C      *Cluster
	Schema relation.Schema
	Parts  [][]Item
}

// NewDist returns an empty distributed collection.
func NewDist(c *Cluster, schema relation.Schema) *Dist {
	return &Dist{C: c, Schema: schema, Parts: make([][]Item, c.P)}
}

// FromRelation distributes r round-robin over the cluster, charging the
// initial placement to round 0 (the model's starting state: IN/p each).
func FromRelation(c *Cluster, r *relation.Relation) *Dist {
	d := NewDist(c, r.Schema)
	for i, t := range r.Tuples {
		s := i % c.P
		d.Parts[s] = append(d.Parts[s], Item{T: t, A: r.Annot(i)})
		c.input(s, 1)
	}
	return d
}

// Size returns the total number of items across servers.
func (d *Dist) Size() int {
	n := 0
	for _, p := range d.Parts {
		n += len(p)
	}
	return n
}

// All returns every item (server order). Used by tests and emitters.
func (d *Dist) All() []Item {
	out := make([]Item, 0, d.Size())
	for _, p := range d.Parts {
		out = append(out, p...)
	}
	return out
}

// ToRelation collects the distributed items into a relation (no load is
// charged: this is a test/inspection helper, not an MPC operation).
func (d *Dist) ToRelation(name string) *relation.Relation {
	r := relation.New(name, d.Schema)
	r.Annots = []int64{}
	for _, p := range d.Parts {
		for _, it := range p {
			r.Tuples = append(r.Tuples, it.T)
			r.Annots = append(r.Annots, it.A)
		}
	}
	return r
}

// Positions resolves attrs against the schema.
func (d *Dist) Positions(attrs []relation.Attr) []int {
	return d.Schema.Positions(attrs)
}

// route ships items to destination servers and charges one round.
func (d *Dist) route(schema relation.Schema, dest func(s int, it Item) []int) *Dist {
	out := &Dist{C: d.C, Schema: schema, Parts: make([][]Item, d.C.P)}
	r := d.C.newRound()
	for s, part := range d.Parts {
		for _, it := range part {
			for _, t := range dest(s, it) {
				if t < 0 || t >= d.C.P {
					panic(fmt.Sprintf("mpc: route to invalid server %d", t))
				}
				out.Parts[t] = append(out.Parts[t], it)
				d.C.receive(r, t, 1)
			}
		}
	}
	return out
}

// ShuffleByKey hashes each item's projection onto pos and routes it to
// hash % P. Salt decorrelates successive shuffles of the same keys.
func (d *Dist) ShuffleByKey(pos []int, salt uint64) *Dist {
	p := d.C.P
	return d.route(d.Schema, func(_ int, it Item) []int {
		return []int{int(Hash64(relation.KeyAt(it.T, pos), salt) % uint64(p))}
	})
}

// ShuffleByAttrs hashes each item's projection onto attrs (resolved against
// the schema) and routes it to hash % P.
func (d *Dist) ShuffleByAttrs(attrs []relation.Attr, salt uint64) *Dist {
	return d.ShuffleByKey(d.Positions(attrs), salt)
}

// ShuffleBy routes each item to the single server chosen by f.
func (d *Dist) ShuffleBy(f func(it Item) int) *Dist {
	return d.route(d.Schema, func(_ int, it Item) []int { return []int{f(it)} })
}

// ReplicateBy routes each item to every server chosen by f (used by
// HyperCube-style plans where a tuple is copied along grid dimensions).
func (d *Dist) ReplicateBy(f func(it Item) []int) *Dist {
	return d.route(d.Schema, func(_ int, it Item) []int { return f(it) })
}

// Broadcast copies every item to all servers: one round, load = Size() per
// server. Only used for provably small collections (boundaries, statistics).
func (d *Dist) Broadcast() *Dist {
	all := make([]int, d.C.P)
	for i := range all {
		all[i] = i
	}
	return d.route(d.Schema, func(_ int, _ Item) []int { return all })
}

// GatherTo ships everything to a single server.
func (d *Dist) GatherTo(s int) *Dist {
	return d.route(d.Schema, func(_ int, _ Item) []int { return []int{s} })
}

// MapLocal rewrites every item locally (no communication, no new round).
// f returns the replacement items for one input item.
func (d *Dist) MapLocal(schema relation.Schema, f func(s int, it Item) []Item) *Dist {
	out := &Dist{C: d.C, Schema: schema, Parts: make([][]Item, d.C.P)}
	for s, part := range d.Parts {
		for _, it := range part {
			out.Parts[s] = append(out.Parts[s], f(s, it)...)
		}
	}
	return out
}

// FilterLocal keeps items satisfying pred; local, free.
func (d *Dist) FilterLocal(pred func(it Item) bool) *Dist {
	out := &Dist{C: d.C, Schema: d.Schema, Parts: make([][]Item, d.C.P)}
	for s, part := range d.Parts {
		for _, it := range part {
			if pred(it) {
				out.Parts[s] = append(out.Parts[s], it)
			}
		}
	}
	return out
}

// Concat unions several collections sharing a schema; local, free.
func Concat(ds ...*Dist) *Dist {
	if len(ds) == 0 {
		panic("mpc: Concat of nothing")
	}
	out := &Dist{C: ds[0].C, Schema: ds[0].Schema, Parts: make([][]Item, ds[0].C.P)}
	for _, d := range ds {
		if !d.Schema.Equal(out.Schema) {
			panic("mpc: Concat schema mismatch")
		}
		for s, part := range d.Parts {
			out.Parts[s] = append(out.Parts[s], part...)
		}
	}
	return out
}

// MoveTo re-registers the collection on another cluster, charging the new
// cluster's round 0 with the items as its initial input. Used when handing
// a sub-problem to a sub-cluster; items are spread round-robin.
func (d *Dist) MoveTo(sub *Cluster) *Dist {
	out := &Dist{C: sub, Schema: d.Schema, Parts: make([][]Item, sub.P)}
	i := 0
	for _, part := range d.Parts {
		for _, it := range part {
			s := i % sub.P
			i++
			out.Parts[s] = append(out.Parts[s], it)
			sub.input(s, 1)
		}
	}
	return out
}
