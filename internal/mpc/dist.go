package mpc

import (
	"repro/internal/relation"
	"repro/internal/runtime"
)

// Item is a tuple with its semiring annotation (1 for plain joins). Parts
// store items as flat fixed-width buffers (see Columns); Item remains the
// row view handed to callbacks and returned by accessors — its tuple is a
// window into the part's buffer, not a copy.
type Item struct {
	T relation.Tuple
	A int64
}

// Dist is a distributed collection of items over a cluster: Parts[s] holds
// the items currently residing on server s, stored as flat fixed-width
// columns. Every routing operation on a Dist is one communication round and
// is charged to the cluster.
type Dist struct {
	C      *Cluster
	Schema relation.Schema
	Parts  []Columns
}

// NewDist returns an empty distributed collection.
func NewDist(c *Cluster, schema relation.Schema) *Dist {
	return &Dist{C: c, Schema: schema, Parts: make([]Columns, c.P)}
}

// hasAnnots reports whether any part carries a materialized annotation
// column — the exchange's one-shot decision for its output layout.
func (d *Dist) hasAnnots() bool {
	for s := range d.Parts {
		if d.Parts[s].hasAnnots() {
			return true
		}
	}
	return false
}

// partsWidth returns the tuple width of the collection's rows: the width
// adopted by the first non-empty part, falling back to the schema's arity
// when every part is empty.
func (d *Dist) partsWidth() int {
	for s := range d.Parts {
		if d.Parts[s].Len() > 0 {
			return d.Parts[s].Width()
		}
	}
	return len(d.Schema)
}

// roundRobinParts pre-sizes parts for n width-w items spread round-robin
// over c and charges round 0 per server — the shared batched-placement plan
// of FromRelation and MoveTo: one exact-size allocation per column per
// server, no per-tuple charging and no intermediate Item structs.
func roundRobinParts(c *Cluster, n, w int, withAnnots bool) []Columns {
	parts := make([]Columns, c.P)
	for s := 0; s < c.P && s < n; s++ {
		cnt := (n - s + c.P - 1) / c.P
		parts[s].resize(w, cnt, withAnnots)
		c.input(s, cnt)
	}
	return parts
}

// FromRelation distributes r round-robin over the cluster, charging the
// initial placement to round 0 (the model's starting state: IN/p each).
// The placement is flat: each server's value buffer is filled with one
// strided pass over the relation, and the annotation column exists only
// when the relation is annotated.
//
//lint:load perP trust round-robin placement puts exactly ceil(n/p) tuples on each server
func FromRelation(c *Cluster, r *relation.Relation) *Dist {
	d := NewDist(c, r.Schema)
	n := len(r.Tuples)
	w := len(r.Schema)
	if n > 0 {
		w = len(r.Tuples[0])
	}
	withAnnots := r.Annots != nil
	d.Parts = roundRobinParts(c, n, w, withAnnots)
	for s := 0; s < c.P && s < n; s++ {
		part := &d.Parts[s]
		for j := 0; j < part.rows; j++ {
			copy(part.values[j*w:(j+1)*w], r.Tuples[s+j*c.P])
		}
		if withAnnots {
			for j := range part.annots {
				part.annots[j] = r.Annots[s+j*c.P]
			}
		}
	}
	return d
}

// Size returns the total number of items across servers.
func (d *Dist) Size() int {
	n := 0
	for s := range d.Parts {
		n += d.Parts[s].Len()
	}
	return n
}

// All returns every item (server order). Used by tests and emitters.
func (d *Dist) All() []Item {
	out := make([]Item, 0, d.Size())
	for s := range d.Parts {
		part := &d.Parts[s]
		for i := 0; i < part.Len(); i++ {
			out = append(out, part.Item(i))
		}
	}
	return out
}

// ToRelation collects the distributed items into a relation (no load is
// charged: this is a test/inspection helper, not an MPC operation). The
// returned tuples are windows into the parts' flat buffers.
func (d *Dist) ToRelation(name string) *relation.Relation {
	r := relation.New(name, d.Schema)
	n := d.Size()
	r.Tuples = make([]relation.Tuple, 0, n)
	r.Annots = make([]int64, 0, n)
	for s := range d.Parts {
		part := &d.Parts[s]
		for i := 0; i < part.Len(); i++ {
			r.Tuples = append(r.Tuples, part.Tuple(i))
			r.Annots = append(r.Annots, part.Annot(i))
		}
	}
	return r
}

// Positions resolves attrs against the schema.
func (d *Dist) Positions(attrs []relation.Attr) []int {
	return d.Schema.Positions(attrs)
}

// ShuffleByKey hashes each item's projection onto pos and routes it to
// hash % P. Salt decorrelates successive shuffles of the same keys. The
// router's hash fast path computes destinations straight off the flat
// value buffer (HashTupleAt), so a hash exchange allocates nothing per
// item and stores at most one destination byte per row.
//
//lint:load linear trust hash routing concentrates duplicate keys: a heavy key lands whole on one server, so only callers can argue balance
//lint:rounds const
func (d *Dist) ShuffleByKey(pos []int, salt uint64) *Dist {
	return d.route(d.Schema, router{hashPos: pos, hashSalt: salt})
}

// ShuffleByAttrs hashes each item's projection onto attrs (resolved against
// the schema) and routes it to hash % P.
//
//lint:load linear
//lint:rounds const
func (d *Dist) ShuffleByAttrs(attrs []relation.Attr, salt uint64) *Dist {
	return d.ShuffleByKey(d.Positions(attrs), salt)
}

// ShuffleBy routes each item to the single server chosen by f.
//
//lint:load linear trust the routing function is caller-supplied; nothing bounds how many items it sends to one server
//lint:rounds const
func (d *Dist) ShuffleBy(f func(it Item) int) *Dist {
	return d.route(d.Schema, router{one: func(_ int, it Item) int { return f(it) }})
}

// ReplicateBy routes each item to every server chosen by f (used by
// HyperCube-style plans where a tuple is copied along grid dimensions).
//
//lint:load linear trust the replication function is caller-supplied; nothing bounds how many items reach one server
//lint:rounds const
func (d *Dist) ReplicateBy(f func(it Item) []int) *Dist {
	return d.route(d.Schema, router{many: func(_ int, it Item) []int { return f(it) }})
}

// Broadcast copies every item to all servers: one round, load = Size() per
// server. Only used for provably small collections (boundaries, statistics).
//
//lint:load linear trust every server receives the whole collection; callers broadcast only provably small ones
//lint:rounds const
func (d *Dist) Broadcast() *Dist {
	all := make([]int, d.C.P)
	for i := range all {
		all[i] = i
	}
	return d.route(d.Schema, router{many: func(_ int, _ Item) []int { return all }})
}

// GatherTo ships everything to a single server.
//
//lint:load linear trust one server receives the whole collection by design
//lint:rounds const
func (d *Dist) GatherTo(s int) *Dist {
	return d.route(d.Schema, router{one: func(_ int, _ Item) int { return s }})
}

// MapLocal rewrites every item locally (no communication, no new round).
// f returns the replacement items for one input item; it must be safe for
// concurrent calls — parts are transformed in parallel, one task per part.
func (d *Dist) MapLocal(schema relation.Schema, f func(s int, it Item) []Item) *Dist {
	out := &Dist{C: d.C, Schema: schema, Parts: make([]Columns, d.C.P)}
	runtime.Fork(len(d.Parts), func(s int) {
		part := &d.Parts[s]
		n := part.Len()
		if n == 0 {
			return
		}
		var res Columns
		for i := 0; i < n; i++ {
			for _, it := range f(s, part.Item(i)) {
				res.AppendItem(it)
			}
		}
		out.Parts[s] = res
	})
	return out
}

// FilterLocal keeps items satisfying pred; local, free. pred must be safe
// for concurrent calls — parts are filtered in parallel, one task per part.
func (d *Dist) FilterLocal(pred func(it Item) bool) *Dist {
	out := &Dist{C: d.C, Schema: d.Schema, Parts: make([]Columns, d.C.P)}
	runtime.Fork(len(d.Parts), func(s int) {
		part := &d.Parts[s]
		var res Columns
		for i := 0; i < part.Len(); i++ {
			if it := part.Item(i); pred(it) {
				res.AppendItem(it)
			}
		}
		out.Parts[s] = res
	})
	return out
}

// Concat unions several collections sharing a schema; local, free. Parts
// merge with one copy per column.
func Concat(ds ...*Dist) *Dist {
	if len(ds) == 0 {
		panic("mpc: Concat of nothing")
	}
	out := &Dist{C: ds[0].C, Schema: ds[0].Schema, Parts: make([]Columns, ds[0].C.P)}
	for _, d := range ds {
		if !d.Schema.Equal(out.Schema) {
			panic("mpc: Concat schema mismatch")
		}
		for s := range d.Parts {
			out.Parts[s].AppendColumns(&d.Parts[s])
		}
	}
	return out
}

// MoveTo re-registers the collection on another cluster, charging the new
// cluster's round 0 with the items as its initial input. Used when handing
// a sub-problem to a sub-cluster; items are spread round-robin through the
// same batched flat placement as FromRelation.
//
//lint:load perP trust round-robin placement puts exactly ceil(n/p) tuples on each sub-cluster server
func (d *Dist) MoveTo(sub *Cluster) *Dist {
	withAnnots := d.hasAnnots()
	w := d.partsWidth()
	out := &Dist{C: sub, Schema: d.Schema, Parts: roundRobinParts(sub, d.Size(), w, withAnnots)}
	i := 0
	for s := range d.Parts {
		part := &d.Parts[s]
		for j := 0; j < part.Len(); j++ {
			dst := &out.Parts[i%sub.P]
			copy(dst.values[(i/sub.P)*w:(i/sub.P+1)*w], part.values[j*w:(j+1)*w])
			if withAnnots {
				dst.annots[i/sub.P] = part.Annot(j)
			}
			i++
		}
	}
	return out
}
