package mpc

import (
	"sync"
	"testing"

	"repro/internal/relation"
)

// TestShardedRoundConcurrentReceives drives the sharded counters the way a
// parallel inner loop would: several workers record receives into the same
// open round through their own shards, and after the barrier the merged
// totals equal the serial sum. Run with -race this is the data-race proof.
func TestShardedRoundConcurrentReceives(t *testing.T) {
	const p, workers, perWorker = 8, 4, 1000
	c := NewCluster(p)
	r := c.newRound()
	if r != 1 {
		t.Fatalf("first round index = %d, want 1", r)
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		sh := c.Shard()
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				sh.Receive((w+i)%p, 1)
			}
		}(w)
	}
	wg.Wait()
	if got, want := c.RoundMax(1), workers*perWorker/p; got != want {
		t.Errorf("RoundMax(1) = %d, want %d", got, want)
	}
	if got, want := c.TotalComm(), workers*perWorker; got != want {
		t.Errorf("TotalComm = %d, want %d", got, want)
	}
}

// TestShardMergeAtRoundBoundary checks that shard counts recorded in one
// round never leak into the next: newRound is a barrier.
func TestShardMergeAtRoundBoundary(t *testing.T) {
	c := NewCluster(4)
	sh := c.Shard()
	c.newRound()
	sh.Receive(2, 5)
	c.newRound() // barrier folds the 5 into round 1
	sh.Receive(3, 7)
	if got := c.RoundMax(1); got != 5 {
		t.Errorf("round 1 max = %d, want 5", got)
	}
	if got := c.RoundMax(2); got != 7 {
		t.Errorf("round 2 max = %d, want 7", got)
	}
	if got := c.MaxLoad(); got != 7 {
		t.Errorf("MaxLoad = %d, want 7", got)
	}
}

// TestSerialPathUnchanged re-checks the coordinator-only API against the
// pre-sharding semantics: reads interleaved with receives stay consistent.
func TestSerialPathUnchanged(t *testing.T) {
	c := NewCluster(3)
	c.input(0, 4)
	if c.MaxLoad() != 4 {
		t.Fatalf("MaxLoad after input = %d", c.MaxLoad())
	}
	c.input(0, 2) // round 0 is still open: input keeps accumulating
	r := c.newRound()
	c.receive(r, 1, 9)
	if c.RoundMax(0) != 6 || c.RoundMax(1) != 9 || c.Rounds() != 1 {
		t.Errorf("round maxima = %d,%d rounds=%d", c.RoundMax(0), c.RoundMax(1), c.Rounds())
	}
}

func TestChildSeedIndependentStreams(t *testing.T) {
	seen := map[uint64]int{}
	for task := 0; task < 1000; task++ {
		s := ChildSeed(2019, task)
		if prev, dup := seen[s]; dup {
			t.Fatalf("tasks %d and %d share child seed %#x", prev, task, s)
		}
		seen[s] = task
	}
	if ChildSeed(1, 0) == ChildSeed(2, 0) {
		t.Error("different root seeds produced the same child seed")
	}
	a, b := NewChildRng(2019, 7), NewChildRng(2019, 7)
	if a.Next() != b.Next() {
		t.Error("child stream not deterministic")
	}
}

func TestCountEmitterMerge(t *testing.T) {
	total := NewCountEmitter(relation.CountRing)
	workers := make([]*CountEmitter, 3)
	for w := range workers {
		workers[w] = NewCountEmitter(relation.CountRing)
		for i := 0; i <= w; i++ {
			workers[w].Emit(0, relation.Tuple{1}, 2)
		}
	}
	total.Merge(workers...)
	if total.N != 6 || total.AnnotSum != 12 {
		t.Errorf("merged N=%d sum=%d, want 6 and 12", total.N, total.AnnotSum)
	}
}

func TestPerServerCounterMerge(t *testing.T) {
	total := NewPerServerCounter(2)
	a, b := NewPerServerCounter(2), NewPerServerCounter(2)
	a.Emit(0, nil, 1)
	b.Emit(0, nil, 1)
	b.Emit(1, nil, 1)
	total.Merge(a, b)
	if total.Counts[0] != 2 || total.Counts[1] != 1 {
		t.Errorf("merged counts = %v", total.Counts)
	}
}

// TestSyncEmitterConcurrent hammers a wrapped materializing emitter from
// several goroutines; with -race this proves Synchronized makes it safe.
func TestSyncEmitterConcurrent(t *testing.T) {
	col := NewCollectEmitter(relation.NewSchema(1))
	em := Synchronized(col)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				em.Emit(0, relation.Tuple{relation.Value(i)}, 1)
			}
		}()
	}
	wg.Wait()
	if col.Rel.Size() != 2000 {
		t.Errorf("collected %d results, want 2000", col.Rel.Size())
	}
}
