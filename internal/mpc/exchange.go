package mpc

import (
	"fmt"

	"repro/internal/relation"
	"repro/internal/runtime"
)

// The batched exchange: every routing operation on a Dist — shuffles,
// replication, broadcast, gather — runs as a two-phase plan/scatter
// protocol instead of a tuple-at-a-time append loop.
//
//  1. Plan (count). The source parts are cut into contiguous spans, one
//     per worker task. Each task walks its span once, resolves every
//     item's destination list exactly once, and records the flattened
//     destinations in (source, item, fan-out) order, the per-item fan-out,
//     and a dense per-destination item count. No output memory is touched.
//  2. Scatter. The coordinator sums the per-task counts into exact
//     per-destination totals, allocates every destination part once at
//     exact capacity, and derives each task's first write offset per
//     destination (prefix sums in task order). Tasks then re-walk their
//     spans and write items into disjoint, pre-sized slices — no locks, no
//     growth reallocation — and charge their deliveries to their own
//     Cluster.Shard, folded at the next round barrier.
//
// The output is byte-identical to the serial tuple-at-a-time loop for
// every worker count: spans are contiguous in source order and offsets are
// prefix sums in span order, so destination parts hold items in exactly
// the serial (source, item, fan-out) order. runtime.SetParallelism(1) is
// the reference execution.
//
// The dest callback must be safe for concurrent calls (a pure function of
// its arguments); every dest function in this repository is.

// exchangeSerialBelow is the item count under which an exchange skips
// multi-task planning: the plan is identical, only the task count changes,
// and the output is byte-identical either way.
const exchangeSerialBelow = 1 << 12

// ExchangeStats counts the work done by the batched exchange on one
// cluster. All values are deterministic: they depend on the routed data
// only, never on the worker count.
type ExchangeStats struct {
	// Exchanges is the number of routed rounds executed.
	Exchanges int
	// Tuples is the total number of items delivered across all exchanges
	// (a broadcast of n items to p servers counts n·p).
	Tuples int64
	// ActiveDests sums, over exchanges, the number of servers that
	// received at least one item.
	ActiveDests int64
}

// span is a contiguous run of items owned by one task, in global
// (source-part, item) order: items [loOff:] of part lo, parts lo+1…hi−2 in
// full, and items [:hiOff] of part hi−1 (all of one part when lo == hi−1).
// Cuts land at item granularity, not part granularity, so a skewed
// distribution concentrated in one part still fans out across tasks.
type span struct {
	lo, hi       int // source parts [lo, hi)
	loOff, hiOff int // item offsets into parts lo and hi−1
}

// each walks the span's items, handing fn each covered source index with
// its covered slice, in order.
func (sp span) each(parts [][]Item, fn func(s int, items []Item)) {
	for s := sp.lo; s < sp.hi; s++ {
		items := parts[s]
		start, end := 0, len(items)
		if s == sp.lo {
			start = sp.loOff
		}
		if s == sp.hi-1 {
			end = sp.hiOff
		}
		if start < end {
			fn(s, items[start:end])
		}
	}
}

// exchangePlan is the counting pass of one exchange.
type exchangePlan struct {
	p      int
	spans  []span
	dests  [][]int32 // per task: flat destinations in (source, item, fan-out) order
	fans   [][]int32 // per task: destinations per item, in (source, item) order
	counts [][]int32 // per task: dense per-destination item counts, len p
	totals []int     // per destination: Σ over tasks
	bases  [][]int32 // per task: first write offset per destination
}

// planSpans cuts the source items into at most tasks contiguous spans of
// near-equal size (the first total%tasks spans carry one extra item).
// Spans partition the items in global (source, item) order, so the
// scatter's concatenation order — and therefore the output — is the same
// for every task count.
func planSpans(parts [][]Item, tasks int) []span {
	total := 0
	for _, p := range parts {
		total += len(p)
	}
	if tasks > total {
		tasks = total
	}
	if tasks < 1 {
		tasks = 1
	}
	if total == 0 {
		return []span{{lo: 0, hi: len(parts)}}
	}
	per, rem := total/tasks, total%tasks
	spans := make([]span, 0, tasks)
	s, off := 0, 0
	for w := 0; w < tasks; w++ {
		want := per
		if w < rem {
			want++
		}
		sp := span{lo: s, loOff: off}
		for want > 0 {
			avail := len(parts[s]) - off
			if avail == 0 {
				s, off = s+1, 0
				continue
			}
			take := want
			if take > avail {
				take = avail
			}
			off += take
			want -= take
		}
		sp.hi, sp.hiOff = s+1, off
		spans = append(spans, sp)
		if off == len(parts[s]) {
			s, off = s+1, 0
		}
	}
	return spans
}

// newExchangePlan runs the counting pass over d with the given task count.
func newExchangePlan(d *Dist, dest func(s int, it Item) []int, tasks int) *exchangePlan {
	p := d.C.P
	plan := &exchangePlan{p: p, spans: planSpans(d.Parts, tasks)}
	n := len(plan.spans)
	plan.dests = make([][]int32, n)
	plan.fans = make([][]int32, n)
	plan.counts = make([][]int32, n)
	runtime.Fork(n, func(w int) {
		sp := plan.spans[w]
		cnt := make([]int32, p)
		items := 0
		sp.each(d.Parts, func(_ int, chunk []Item) { items += len(chunk) })
		flat := make([]int32, 0, items) // fan-out is 1 in the common case
		fan := make([]int32, 0, items)
		sp.each(d.Parts, func(s int, chunk []Item) {
			for _, it := range chunk {
				ts := dest(s, it)
				for _, t := range ts {
					if t < 0 || t >= p {
						panic(fmt.Sprintf("mpc: route to invalid server %d", t))
					}
					flat = append(flat, int32(t))
					cnt[t]++
				}
				fan = append(fan, int32(len(ts)))
			}
		})
		plan.dests[w] = flat
		plan.fans[w] = fan
		plan.counts[w] = cnt
	})
	return plan
}

// alloc sums the per-task counts into exact destination capacities,
// allocates out's parts once, and derives each task's write offsets.
func (plan *exchangePlan) alloc(out *Dist) {
	plan.totals = make([]int, plan.p)
	plan.bases = make([][]int32, len(plan.spans))
	for w := range plan.spans {
		base := make([]int32, plan.p)
		for t, n := range plan.counts[w] {
			base[t] = int32(plan.totals[t])
			plan.totals[t] += int(n)
		}
		plan.bases[w] = base
	}
	for t, n := range plan.totals {
		if n > 0 {
			out.Parts[t] = make([]Item, n)
		}
	}
}

// scatter fans the items out into out's pre-sized parts. Task w writes the
// half-open offset ranges [bases[w][t], bases[w][t]+counts[w][t]) — disjoint
// across tasks by construction — and charges its deliveries to its own
// cluster shard.
func (plan *exchangePlan) scatter(d, out *Dist) {
	runtime.Fork(len(plan.spans), func(w int) {
		sp := plan.spans[w]
		cursor := make([]int32, plan.p)
		copy(cursor, plan.bases[w])
		flat, fan := plan.dests[w], plan.fans[w]
		di, fi := 0, 0
		sp.each(d.Parts, func(_ int, chunk []Item) {
			for _, it := range chunk {
				k := int(fan[fi])
				fi++
				for j := 0; j < k; j++ {
					t := flat[di]
					di++
					out.Parts[t][cursor[t]] = it
					cursor[t]++
				}
			}
		})
		sh := d.C.shardFor(w)
		for t, n := range plan.counts[w] {
			if n > 0 {
				sh.Receive(t, int(n))
			}
		}
	})
}

// route ships items to destination servers and charges one round through
// the batched exchange (see the protocol comment above).
func (d *Dist) route(schema relation.Schema, dest func(s int, it Item) []int) *Dist {
	c := d.C
	out := &Dist{C: c, Schema: schema, Parts: make([][]Item, c.P)}
	c.newRound()

	tasks := runtime.Parallelism()
	if d.Size() < exchangeSerialBelow {
		tasks = 1
	}
	plan := newExchangePlan(d, dest, tasks)
	plan.alloc(out)
	plan.scatter(d, out)
	c.recordExchange(plan.totals)
	return out
}
