package mpc

import (
	"fmt"

	"repro/internal/relation"
	"repro/internal/runtime"
)

// The batched exchange: every routing operation on a Dist — shuffles,
// replication, broadcast, gather — runs as a two-phase plan/scatter
// protocol instead of a tuple-at-a-time append loop.
//
//  1. Plan (count). The source parts are cut into contiguous spans, one
//     per worker task. Each task walks its span once, resolves every
//     item's destination list exactly once, and records the flattened
//     destinations in (source, item, fan-out) order, the per-item fan-out
//     (elided entirely while the span is uniformly fan-out 1), and a dense
//     per-destination item count. No output memory is touched.
//  2. Scatter. The coordinator sums the per-task counts into exact
//     per-destination totals, sizes every destination part's flat buffer
//     once at exact capacity — the annotation column only when some source
//     part carries one — and derives each task's first write offset per
//     destination (prefix sums in task order). Tasks then re-walk their
//     spans and write rows into disjoint, pre-sized buffer windows — no
//     locks, no growth reallocation. Runs of consecutive items bound for
//     the same destination (gathers, sub-cluster hand-offs, skew clusters)
//     move as contiguous block copies of the flat value buffer. Each task
//     charges its deliveries to its own Cluster.Shard, folded at the next
//     round barrier.
//
// Hash shuffles — the hottest exchange in every algorithm — take a fast
// path: the router carries the key positions and salt instead of a
// closure, the counting pass hashes rows straight out of the flat buffer,
// and the recorded destination is one byte per row (every cluster in the
// repository has ≤ 256 servers; larger clusters recompute the hash in the
// scatter). The destination list for a hash shuffle is therefore a quarter
// of the generic plan's footprint and the per-row scatter is a short
// contiguous value copy.
//
// All per-task scratch (destination lists, fan-outs, counts, offsets,
// cursors) is recycled through a pool: a steady-state exchange allocates
// the output columns and nothing else.
//
// The output is byte-identical to the serial tuple-at-a-time loop for
// every worker count: spans are contiguous in source order and offsets are
// prefix sums in span order, so destination parts hold items in exactly
// the serial (source, item, fan-out) order. runtime.SetParallelism(1) is
// the reference execution.
//
// The router callbacks must be safe for concurrent calls (pure functions
// of their arguments); every one in this repository is.

// exchangeSerialBelow is the item count under which an exchange skips
// multi-task planning: the plan is identical, only the task count changes,
// and the output is byte-identical either way.
const exchangeSerialBelow = 1 << 12

// router resolves an item's destinations. Exactly one strategy is set:
// hash shuffles carry the key positions and salt (hashPos non-nil, the
// flat fast path); other single-destination operations (gathers,
// arithmetic placements) use one, which never allocates a per-item slice;
// replicating operations use many.
type router struct {
	one      func(s int, it Item) int
	many     func(s int, it Item) []int
	hashPos  []int // non-nil ⇒ destination is HashTupleAt(row, hashPos, hashSalt) % P
	hashSalt uint64
}

// ExchangeStats counts the work done by the batched exchange on one
// cluster. All values are deterministic: they depend on the routed data
// only, never on the worker count.
type ExchangeStats struct {
	// Exchanges is the number of routed rounds executed.
	Exchanges int
	// Tuples is the total number of items delivered across all exchanges
	// (a broadcast of n items to p servers counts n·p).
	Tuples int64
	// ActiveDests sums, over exchanges, the number of servers that
	// received at least one item.
	ActiveDests int64
}

// span is a contiguous run of items owned by one task, in global
// (source-part, item) order: items [loOff:] of part lo, parts lo+1…hi−2 in
// full, and items [:hiOff] of part hi−1 (all of one part when lo == hi−1).
// Cuts land at item granularity, not part granularity, so a skewed
// distribution concentrated in one part still fans out across tasks.
type span struct {
	lo, hi       int // source parts [lo, hi)
	loOff, hiOff int // item offsets into parts lo and hi−1
}

// each walks the span's rows, handing fn each covered source index with
// its covered row range, in order.
func (sp span) each(parts []Columns, fn func(s int, cols *Columns, lo, hi int)) {
	for s := sp.lo; s < sp.hi; s++ {
		cols := &parts[s]
		start, end := 0, cols.Len()
		if s == sp.lo {
			start = sp.loOff
		}
		if s == sp.hi-1 {
			end = sp.hiOff
		}
		if start < end {
			fn(s, cols, start, end)
		}
	}
}

// exchangePlan is the counting pass of one exchange.
type exchangePlan struct {
	p      int
	spans  []span
	dests  [][]int32 // per task: flat destinations in (source, item, fan-out) order; nil on the hash path
	hdests [][]byte  // per task: one destination byte per row (hash fast path, P ≤ 256)
	fans   [][]int32 // per task: destinations per item, in (source, item) order; nil when uniformly 1
	counts [][]int32 // per task: dense per-destination item counts, len p
	totals []int     // per destination: Σ over tasks
	bases  [][]int32 // per task: first write offset per destination
}

// planSpans cuts the source items into at most tasks contiguous spans of
// near-equal size (the first total%tasks spans carry one extra item).
// Spans partition the items in global (source, item) order, so the
// scatter's concatenation order — and therefore the output — is the same
// for every task count.
func planSpans(parts []Columns, tasks int) []span {
	total := 0
	for s := range parts {
		total += parts[s].Len()
	}
	if tasks > total {
		tasks = total
	}
	if tasks < 1 {
		tasks = 1
	}
	if total == 0 {
		return []span{{lo: 0, hi: len(parts)}}
	}
	per, rem := total/tasks, total%tasks
	spans := make([]span, 0, tasks)
	s, off := 0, 0
	for w := 0; w < tasks; w++ {
		want := per
		if w < rem {
			want++
		}
		sp := span{lo: s, loOff: off}
		for want > 0 {
			avail := parts[s].Len() - off
			if avail == 0 {
				s, off = s+1, 0
				continue
			}
			take := want
			if take > avail {
				take = avail
			}
			off += take
			want -= take
		}
		sp.hi, sp.hiOff = s+1, off
		spans = append(spans, sp)
		if off == parts[s].Len() {
			s, off = s+1, 0
		}
	}
	return spans
}

// newExchangePlan runs the counting pass over d with the given task count.
//
//lint:alloc-ceiling
func newExchangePlan(d *Dist, rt router, tasks int) *exchangePlan {
	p := d.C.P
	plan := &exchangePlan{p: p, spans: planSpans(d.Parts, tasks)}
	n := len(plan.spans)
	if rt.hashPos != nil {
		plan.hdests = make([][]byte, n)
		plan.counts = make([][]int32, n)
		runtime.Fork(n, func(w int) {
			plan.hashCount(d, rt, w)
		})
		return plan
	}
	plan.dests = make([][]int32, n)
	plan.fans = make([][]int32, n)
	plan.counts = make([][]int32, n)
	runtime.Fork(n, func(w int) {
		sp := plan.spans[w]
		cnt := getInt32Zero(p)
		items := 0
		sp.each(d.Parts, func(_ int, _ *Columns, lo, hi int) { items += hi - lo })
		flat := getInt32Cap(items) // fan-out is 1 in the common case
		var fan []int32            // lazily materialized on the first fan-out ≠ 1
		seen := 0
		if rt.one != nil {
			sp.each(d.Parts, func(s int, cols *Columns, lo, hi int) {
				for i := lo; i < hi; i++ {
					t := rt.one(s, cols.Item(i))
					if t < 0 || t >= p {
						panic(fmt.Sprintf("mpc: route to invalid server %d", t))
					}
					flat = append(flat, int32(t))
					cnt[t]++
				}
			})
		} else {
			sp.each(d.Parts, func(s int, cols *Columns, lo, hi int) {
				for i := lo; i < hi; i++ {
					ts := rt.many(s, cols.Item(i))
					for _, t := range ts {
						if t < 0 || t >= p {
							panic(fmt.Sprintf("mpc: route to invalid server %d", t))
						}
						flat = append(flat, int32(t))
						cnt[t]++
					}
					if fan == nil && len(ts) != 1 {
						fan = getInt32Cap(items)
						for k := 0; k < seen; k++ {
							fan = append(fan, 1)
						}
					}
					if fan != nil {
						fan = append(fan, int32(len(ts)))
					}
					seen++
				}
			})
		}
		plan.dests[w] = flat
		plan.fans[w] = fan
		plan.counts[w] = cnt
	})
	return plan
}

// hashCount is task w's counting pass on the hash fast path: destinations
// come straight from the flat value buffer and are recorded as one byte
// per row when they fit (P ≤ 256); otherwise only the counts are kept and
// the scatter recomputes the hash.
//
//lint:alloc-ceiling
func (plan *exchangePlan) hashCount(d *Dist, rt router, w int) {
	p := plan.p
	sp := plan.spans[w]
	cnt := getInt32Zero(p)
	var hd []byte
	if p <= 256 {
		items := 0
		sp.each(d.Parts, func(_ int, _ *Columns, lo, hi int) { items += hi - lo })
		hd = getByteCap(items)
	}
	sp.each(d.Parts, func(_ int, cols *Columns, lo, hi int) {
		for i := lo; i < hi; i++ {
			t := int(HashTupleAt(cols.Tuple(i), rt.hashPos, rt.hashSalt) % uint64(p))
			cnt[t]++
			if hd != nil {
				hd = append(hd, byte(t))
			}
		}
	})
	plan.hdests[w] = hd
	plan.counts[w] = cnt
}

// alloc sums the per-task counts into exact destination capacities, sizes
// out's flat buffers once at the source width, and derives each task's
// write offsets. The output carries annotation columns only when some
// source part does.
//
//lint:alloc-ceiling
func (plan *exchangePlan) alloc(d, out *Dist) {
	withAnnots := d.hasAnnots()
	width := d.partsWidth()
	plan.totals = make([]int, plan.p)
	plan.bases = make([][]int32, len(plan.spans))
	for w := range plan.spans {
		base := getInt32Zero(plan.p)
		for t, n := range plan.counts[w] {
			base[t] = int32(plan.totals[t])
			plan.totals[t] += int(n)
		}
		plan.bases[w] = base
	}
	for t, n := range plan.totals {
		if n > 0 {
			out.Parts[t].resize(width, n, withAnnots)
		}
	}
}

// scatter fans the items out into out's pre-sized buffer windows. Task w
// writes the half-open offset ranges [bases[w][t], bases[w][t]+counts[w][t])
// — disjoint across tasks by construction — moving runs of same-destination
// items as contiguous block copies of the value buffer, and charges its
// deliveries to its own cluster shard.
//
//lint:alloc-ceiling
func (plan *exchangePlan) scatter(d, out *Dist, rt router) {
	runtime.Fork(len(plan.spans), func(w int) {
		cursor := getInt32Zero(plan.p)
		copy(cursor, plan.bases[w])
		if rt.hashPos != nil {
			plan.hashScatter(d, out, rt, w, cursor)
		} else {
			plan.genericScatter(d, out, w, cursor)
		}
		sh := d.C.shardFor(w)
		for t, n := range plan.counts[w] {
			if n > 0 {
				sh.Receive(t, int(n))
			}
		}
		putInt32(cursor)
	})
}

// hashScatter is task w's write pass on the hash fast path: each row's
// destination comes from the per-row byte list (or a hash recomputation
// when P > 256) and the row moves as one contiguous value copy.
//
//lint:alloc-ceiling
func (plan *exchangePlan) hashScatter(d, out *Dist, rt router, w int, cursor []int32) {
	p := plan.p
	sp := plan.spans[w]
	hd, hi0 := plan.hdests[w], 0
	sp.each(d.Parts, func(_ int, cols *Columns, lo, hi int) {
		vw := cols.width
		for i := lo; i < hi; i++ {
			row := cols.values[i*vw : i*vw+vw]
			var t int
			if hd != nil {
				t = int(hd[hi0])
				hi0++
			} else {
				t = int(HashTupleAt(relation.Tuple(row), rt.hashPos, rt.hashSalt) % uint64(p))
			}
			dst := &out.Parts[t]
			off := int(cursor[t])
			cursor[t]++
			copy(dst.values[off*vw:off*vw+vw], row)
			if dst.annots != nil {
				dst.annots[off] = cols.Annot(i)
			}
		}
	})
}

// genericScatter is task w's write pass for closure routers, moving runs
// of same-destination items as per-column block copies.
//
//lint:alloc-ceiling
func (plan *exchangePlan) genericScatter(d, out *Dist, w int, cursor []int32) {
	sp := plan.spans[w]
	flat, fan := plan.dests[w], plan.fans[w]
	di, fi := 0, 0
	sp.each(d.Parts, func(_ int, cols *Columns, lo, hi int) {
		if fan == nil {
			// Uniform fan-out 1: flat[k] is row (lo+k)'s destination.
			// Runs of equal destinations become block copies.
			i := lo
			for i < hi {
				t := flat[di]
				j, dj := i+1, di+1
				for j < hi && flat[dj] == t {
					j++
					dj++
				}
				out.Parts[t].copyAt(int(cursor[t]), cols, i, j)
				cursor[t] += int32(j - i)
				i, di = j, dj
			}
			return
		}
		for i := lo; i < hi; i++ {
			k := int(fan[fi])
			fi++
			t, a := cols.Tuple(i), cols.Annot(i)
			for j := 0; j < k; j++ {
				dst := flat[di]
				di++
				out.Parts[dst].setRow(int(cursor[dst]), t, a)
				cursor[dst]++
			}
		}
	})
}

// release returns the plan's pooled scratch. The plan must not be used
// afterwards.
func (plan *exchangePlan) release() {
	for w := range plan.spans {
		if plan.dests != nil {
			putInt32(plan.dests[w])
		}
		if plan.hdests != nil && plan.hdests[w] != nil {
			putByte(plan.hdests[w])
		}
		if plan.fans != nil && plan.fans[w] != nil {
			putInt32(plan.fans[w])
		}
		putInt32(plan.counts[w])
		if plan.bases != nil {
			putInt32(plan.bases[w])
		}
	}
	plan.dests, plan.hdests, plan.fans, plan.counts, plan.bases = nil, nil, nil, nil, nil
}

// route ships items to destination servers and charges one round through
// the batched exchange (see the protocol comment above).
//
//lint:rounds const
func (d *Dist) route(schema relation.Schema, rt router) *Dist {
	tasks := runtime.Parallelism()
	if d.Size() < exchangeSerialBelow {
		tasks = 1
	}
	return d.routeTasks(schema, rt, tasks)
}

// routeTasks is route with an explicit task count — the fuzz and parity
// tests use it to force multi-task plans below exchangeSerialBelow.
//
//lint:rounds const
func (d *Dist) routeTasks(schema relation.Schema, rt router, tasks int) *Dist {
	c := d.C
	out := &Dist{C: c, Schema: schema, Parts: make([]Columns, c.P)}
	c.newRound()

	plan := newExchangePlan(d, rt, tasks)
	plan.alloc(d, out)
	plan.scatter(d, out, rt)
	c.recordExchange(plan.totals)
	plan.release()
	return out
}
