package mpc

import (
	"reflect"
	"testing"

	"repro/internal/relation"
)

// FuzzExchangeParity fuzzes the batched columnar exchange against the
// retained tuple-at-a-time serialRouteRef: random tuple sets (sizes, key
// skews, annotation presence), every routing shape, and arbitrary task
// counts must produce value-identical parts and byte-identical per-round
// charge tables. Run continuously by `make fuzz-smoke` (part of ci).
func FuzzExchangeParity(f *testing.F) {
	// Seed corpus from the adversarial-skew cases of the parity tests:
	// zipf-ish keys, one gathered (fully skewed) source, a heavy-key set,
	// annotated and unannotated, every shape index, serial and oversized
	// task counts.
	f.Add(uint64(11), uint16(2000), uint8(0), uint8(1), uint8(16), false, false)
	f.Add(uint64(11), uint16(2000), uint8(0), uint8(8), uint8(16), false, false)
	f.Add(uint64(31), uint16(1500), uint8(1), uint8(4), uint8(16), true, false)
	f.Add(uint64(23), uint16(997), uint8(2), uint8(3), uint8(7), false, true)
	f.Add(uint64(5), uint16(64), uint8(3), uint8(2), uint8(4), true, true)
	f.Add(uint64(7), uint16(0), uint8(4), uint8(5), uint8(3), false, false)
	f.Add(uint64(42), uint16(300), uint8(4), uint8(33), uint8(1), true, false)

	shapeNames := []string{"hash", "replicate2", "fanout0to2", "broadcast", "gather"}

	f.Fuzz(func(t *testing.T, seed uint64, n uint16, shape, tasks, p uint8, annotated, gathered bool) {
		pp := int(p)%16 + 1
		nn := int(n) % 4096
		nTasks := int(tasks)%12 + 1
		dest := destFns(pp)[shapeNames[int(shape)%len(shapeNames)]]

		build := func() *Dist {
			c := NewCluster(pp)
			r := relation.New("R", relation.NewSchema(1, 2))
			rng := NewRng(seed)
			for i := 0; i < nn; i++ {
				v := rng.Intn(1 + rng.Intn(1+nn/8))
				if annotated {
					r.AddAnnotated(int64(rng.Intn(5)), relation.Value(v), relation.Value(i))
				} else {
					r.Add(relation.Value(v), relation.Value(i))
				}
			}
			d := FromRelation(c, r)
			if gathered {
				// Fully skewed source: every item in one part.
				d = d.GatherTo(int(seed % uint64(pp)))
			}
			return d
		}

		ref := build()
		refOut := serialRouteRef(ref, ref.Schema, dest)
		refTable := roundTable(ref.C)

		got := build()
		gotOut := got.routeTasks(got.Schema, router{many: dest}, nTasks)
		gotTable := roundTable(got.C)

		if !partsEqual(refOut, gotOut) {
			t.Fatalf("parts differ from serial reference (n=%d p=%d tasks=%d shape=%s)",
				nn, pp, nTasks, shapeNames[int(shape)%len(shapeNames)])
		}
		if !reflect.DeepEqual(refTable, gotTable) {
			t.Fatalf("charge tables differ:\nref %v\ngot %v", refTable, gotTable)
		}
	})
}
