package mpc

import (
	"reflect"
	"testing"

	"repro/internal/relation"
)

// FuzzExchangeParity fuzzes the batched columnar exchange against the
// retained tuple-at-a-time serialRouteRef: random tuple sets (sizes, tuple
// widths, key skews, annotation presence), every routing shape, and
// arbitrary task counts must produce value-identical parts and
// byte-identical per-round charge tables. For the hash shape the flat fast
// path (router.hashPos) additionally runs against the same reference, and
// every output is pushed through the flat↔per-row conversions in both
// directions. Run continuously by `make fuzz-smoke` (part of ci).
func FuzzExchangeParity(f *testing.F) {
	// Seed corpus from the adversarial-skew cases of the parity tests:
	// zipf-ish keys, one gathered (fully skewed) source, a heavy-key set,
	// annotated and unannotated, every shape index, serial and oversized
	// task counts — plus the degenerate tuple widths 0 and 1 and a wide
	// width 3, where flat row indexing breaks first.
	f.Add(uint64(11), uint16(2000), uint8(0), uint8(1), uint8(16), uint8(2), false, false)
	f.Add(uint64(11), uint16(2000), uint8(0), uint8(8), uint8(16), uint8(2), false, false)
	f.Add(uint64(31), uint16(1500), uint8(1), uint8(4), uint8(16), uint8(2), true, false)
	f.Add(uint64(23), uint16(997), uint8(2), uint8(3), uint8(7), uint8(2), false, true)
	f.Add(uint64(5), uint16(64), uint8(3), uint8(2), uint8(4), uint8(2), true, true)
	f.Add(uint64(7), uint16(0), uint8(4), uint8(5), uint8(3), uint8(2), false, false)
	f.Add(uint64(42), uint16(300), uint8(4), uint8(33), uint8(1), uint8(2), true, false)
	f.Add(uint64(13), uint16(800), uint8(0), uint8(4), uint8(8), uint8(0), true, false)  // width-0 scalars
	f.Add(uint64(17), uint16(900), uint8(1), uint8(3), uint8(8), uint8(1), false, false) // width-1
	f.Add(uint64(19), uint16(700), uint8(0), uint8(2), uint8(6), uint8(3), true, true)   // width-3, gathered

	shapeNames := []string{"hash", "replicate2", "fanout0to2", "broadcast", "gather"}

	f.Fuzz(func(t *testing.T, seed uint64, n uint16, shape, tasks, p, width uint8, annotated, gathered bool) {
		pp := int(p)%16 + 1
		nn := int(n) % 4096
		nTasks := int(tasks)%12 + 1
		w := int(width) % 4
		name := shapeNames[int(shape)%len(shapeNames)]
		dest := destFns(pp)[name]

		build := func() *Dist {
			c := NewCluster(pp)
			attrs := make([]relation.Attr, w)
			for j := range attrs {
				attrs[j] = relation.Attr(j + 1)
			}
			r := relation.New("R", relation.NewSchema(attrs...))
			rng := NewRng(seed)
			row := make([]relation.Value, w)
			for i := 0; i < nn; i++ {
				for j := range row {
					row[j] = relation.Value(i*w + j)
				}
				if w > 0 {
					// Zipf-ish first column: heavy keys stress the batches.
					row[0] = relation.Value(rng.Intn(1 + rng.Intn(1+nn/8)))
				}
				if annotated {
					r.AddAnnotated(int64(rng.Intn(5)), row...)
				} else {
					r.Add(row...)
				}
			}
			d := FromRelation(c, r)
			if gathered {
				// Fully skewed source: every item in one part.
				d = d.GatherTo(int(seed % uint64(pp)))
			}
			return d
		}

		ref := build()
		refOut := serialRouteRef(ref, ref.Schema, dest)
		refTable := roundTable(ref.C)

		got := build()
		gotOut := got.routeTasks(got.Schema, router{many: dest}, nTasks)
		gotTable := roundTable(got.C)

		if !partsEqual(refOut, gotOut) {
			t.Fatalf("parts differ from serial reference (n=%d w=%d p=%d tasks=%d shape=%s)",
				nn, w, pp, nTasks, name)
		}
		if !reflect.DeepEqual(refTable, gotTable) {
			t.Fatalf("charge tables differ:\nref %v\ngot %v", refTable, gotTable)
		}

		// The hash shape also has the flat fast path — key positions and
		// salt in the router instead of a closure, destinations hashed
		// straight off the flat buffer. Same parts, same charges.
		if name == "hash" {
			fast := build()
			fastOut := fast.routeTasks(fast.Schema, router{hashPos: hashPosFor(w), hashSalt: 7}, nTasks)
			fastTable := roundTable(fast.C)
			if !partsEqual(refOut, fastOut) {
				t.Fatalf("hash fast path parts differ from serial reference (n=%d w=%d p=%d tasks=%d)",
					nn, w, pp, nTasks)
			}
			if !reflect.DeepEqual(refTable, fastTable) {
				t.Fatalf("hash fast path charge tables differ:\nref %v\ngot %v", refTable, fastTable)
			}
		}

		// Conversion roundtrip, flat → per-row → flat: rebuilding every
		// output part item-at-a-time must reproduce it under Equal.
		for s := range gotOut.Parts {
			src := &gotOut.Parts[s]
			var rebuilt Columns
			for i := 0; i < src.Len(); i++ {
				rebuilt.AppendItem(src.Item(i))
			}
			if !src.Equal(&rebuilt) || !rebuilt.Equal(src) {
				t.Fatalf("part %d: flat→per-row→flat roundtrip broke Equal (w=%d)", s, w)
			}
		}

		// Conversion roundtrip, per-row → flat: FromRelation's strided flat
		// placement must match a per-row Append of the same round-robin
		// distribution.
		rel := gotOut.ToRelation("roundtrip")
		c2 := NewCluster(pp)
		flat := FromRelation(c2, rel)
		expect := &Dist{C: c2, Schema: rel.Schema, Parts: make([]Columns, pp)}
		for i := range rel.Tuples {
			expect.Parts[i%pp].Append(rel.Tuples[i], rel.Annots[i])
		}
		if !partsEqual(expect, flat) {
			t.Fatalf("per-row→flat roundtrip differs from Append reference (n=%d w=%d p=%d)", nn, w, pp)
		}
	})
}
