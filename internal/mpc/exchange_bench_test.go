package mpc

import (
	"fmt"
	"testing"

	"repro/internal/relation"
)

// BenchmarkRoute vs BenchmarkExchange: the old tuple-at-a-time route
// (serialRouteRef, kept verbatim in exchange_test.go) against the batched
// plan/scatter exchange, on the same inputs and routing shapes. Run them
// with `make bench` (counted, benchstat-friendly):
//
//	benchstat <(old) <(new)   # or compare the Route/Exchange rows directly
//
// The batched plane must win on allocations (destination parts are
// allocated once at exact capacity) and ns/op at IN ≥ 10^5.

const benchP = 64

func benchShapes(p int) []struct {
	name string
	dest func(s int, it Item) []int
} {
	return []struct {
		name string
		dest func(s int, it Item) []int
	}{
		{"shuffle", func(_ int, it Item) []int {
			return []int{int(Hash64(relation.KeyAt(it.T, []int{0}), 7) % uint64(p))}
		}},
		{"replicate2", func(_ int, it Item) []int {
			v := int(it.T[1])
			return []int{v % p, (v*7 + 1) % p}
		}},
	}
}

func benchExchangeDist(b *testing.B, n int) *Dist {
	b.Helper()
	c := NewCluster(benchP)
	return exchangeTestDist(c, n, 42)
}

func BenchmarkRoute(b *testing.B) {
	for _, n := range []int{1 << 14, 1 << 17} {
		d := benchExchangeDist(b, n)
		for _, shape := range benchShapes(benchP) {
			b.Run(fmt.Sprintf("%s/n=%d", shape.name, n), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					serialRouteRef(d, d.Schema, shape.dest)
				}
			})
		}
	}
}

func BenchmarkExchange(b *testing.B) {
	for _, n := range []int{1 << 14, 1 << 17} {
		d := benchExchangeDist(b, n)
		for _, shape := range benchShapes(benchP) {
			b.Run(fmt.Sprintf("%s/n=%d", shape.name, n), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					d.route(d.Schema, shape.dest)
				}
			})
		}
	}
}
