package mpc

import (
	"fmt"
	"testing"

	"repro/internal/relation"
)

// BenchmarkRoute vs BenchmarkExchange: the old tuple-at-a-time route
// (serialRouteRef, kept in exchange_test.go) against the batched
// plan/scatter exchange over columnar parts, on the same inputs and
// routing shapes. Run them with `make bench` (counted, benchstat-friendly):
//
//	benchstat <(old) <(new)   # or compare the Route/Exchange rows directly
//
// The batched plane must win on allocations (destination columns are
// allocated once at exact capacity, plan scratch is pooled, hash shuffles
// never build per-item keys or fan-out slices) and ns/op at IN ≥ 10^5.

const benchP = 64

func benchShapes(p int) []struct {
	name string
	dest func(s int, it Item) []int
} {
	return []struct {
		name string
		dest func(s int, it Item) []int
	}{
		{"shuffle", func(_ int, it Item) []int {
			return []int{int(Hash64(relation.KeyAt(it.T, []int{0}), 7) % uint64(p))}
		}},
		{"replicate2", func(_ int, it Item) []int {
			v := int(it.T[1])
			return []int{v % p, (v*7 + 1) % p}
		}},
	}
}

func benchExchangeDist(b *testing.B, n int) *Dist {
	b.Helper()
	c := NewCluster(benchP)
	return exchangeTestDist(c, n, 42)
}

func BenchmarkRoute(b *testing.B) {
	for _, n := range []int{1 << 14, 1 << 17} {
		d := benchExchangeDist(b, n)
		for _, shape := range benchShapes(benchP) {
			b.Run(fmt.Sprintf("%s/n=%d", shape.name, n), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					serialRouteRef(d, d.Schema, shape.dest)
				}
			})
		}
	}
}

// BenchmarkExchange drives the two routing shapes through the public API
// the algorithms use: ShuffleByKey takes the exchange's single-destination
// path (no per-item key string, no per-item fan-out slice), ReplicateBy
// the replicating path. Destinations are identical to BenchmarkRoute's.
func BenchmarkExchange(b *testing.B) {
	for _, n := range []int{1 << 14, 1 << 17} {
		d := benchExchangeDist(b, n)
		b.Run(fmt.Sprintf("shuffle/n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				d.ShuffleByKey([]int{0}, 7)
			}
		})
		replicate2 := func(it Item) []int {
			v := int(it.T[1])
			return []int{v % benchP, (v*7 + 1) % benchP}
		}
		b.Run(fmt.Sprintf("replicate2/n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				d.ReplicateBy(replicate2)
			}
		})
	}
}

// BenchmarkFromRelation measures the columnar round-robin placement: one
// strided pass per server's tuple column, no Item structs, no annotation
// column for unannotated relations.
func BenchmarkFromRelation(b *testing.B) {
	for _, n := range []int{1 << 14, 1 << 17} {
		r := relation.New("R", relation.NewSchema(1, 2))
		rng := NewRng(42)
		for i := 0; i < n; i++ {
			r.Add(relation.Value(rng.Intn(n)), relation.Value(i))
		}
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				FromRelation(NewCluster(benchP), r)
			}
		})
	}
}
