package mpc

import (
	"testing"
	"testing/quick"

	"repro/internal/relation"
)

func mkRel(n int) *relation.Relation {
	r := relation.New("R", relation.NewSchema(1, 2))
	for i := 0; i < n; i++ {
		r.Add(relation.Value(i), relation.Value(i%7))
	}
	return r
}

func TestFromRelationInputLoad(t *testing.T) {
	c := NewCluster(4)
	d := FromRelation(c, mkRel(100))
	if d.Size() != 100 {
		t.Fatalf("Size = %d", d.Size())
	}
	if got := c.MaxLoad(); got != 25 {
		t.Errorf("initial MaxLoad = %d, want 25", got)
	}
	if c.Rounds() != 0 {
		t.Errorf("Rounds = %d, want 0 (input is round 0)", c.Rounds())
	}
}

func TestShuffleByKeyRoundAndLoad(t *testing.T) {
	c := NewCluster(4)
	d := FromRelation(c, mkRel(100))
	s := d.ShuffleByKey(d.Positions([]relation.Attr{1}), 1)
	if s.Size() != 100 {
		t.Fatalf("shuffle lost tuples: %d", s.Size())
	}
	if c.Rounds() != 1 {
		t.Errorf("Rounds = %d, want 1", c.Rounds())
	}
	if c.TotalComm() != 100 {
		t.Errorf("TotalComm = %d, want 100", c.TotalComm())
	}
	// Same key must land on the same server.
	pos := s.Positions([]relation.Attr{1})
	loc := map[string]int{}
	for srv := range s.Parts {
		part := &s.Parts[srv]
		for i := 0; i < part.Len(); i++ {
			k := relation.KeyAt(part.Tuple(i), pos)
			if prev, ok := loc[k]; ok && prev != srv {
				t.Fatalf("key split across servers %d and %d", prev, srv)
			}
			loc[k] = srv
		}
	}
}

func TestShuffleSkewConcentrates(t *testing.T) {
	// All tuples share one key: hashing must place the full relation on a
	// single server (this is exactly the skew the paper's algorithms avoid).
	c := NewCluster(8)
	r := relation.New("R", relation.NewSchema(1))
	for i := 0; i < 64; i++ {
		r.Add(42)
	}
	d := FromRelation(c, r)
	s := d.ShuffleByKey(d.Positions([]relation.Attr{1}), 3)
	max := 0
	for srv := range s.Parts {
		if n := s.Parts[srv].Len(); n > max {
			max = n
		}
	}
	if max != 64 {
		t.Errorf("skewed shuffle max part = %d, want 64", max)
	}
	if c.MaxLoad() != 64 {
		t.Errorf("MaxLoad = %d, want 64", c.MaxLoad())
	}
}

func TestBroadcastLoad(t *testing.T) {
	c := NewCluster(5)
	d := FromRelation(c, mkRel(10))
	b := d.Broadcast()
	if b.Size() != 50 {
		t.Errorf("broadcast size = %d, want 50", b.Size())
	}
	if got := c.RoundMax(1); got != 10 {
		t.Errorf("broadcast round load = %d, want 10", got)
	}
}

func TestGatherTo(t *testing.T) {
	c := NewCluster(4)
	d := FromRelation(c, mkRel(40))
	g := d.GatherTo(2)
	if g.Parts[2].Len() != 40 {
		t.Errorf("gather target has %d", g.Parts[2].Len())
	}
	for s := range g.Parts {
		if s != 2 && g.Parts[s].Len() != 0 {
			t.Errorf("server %d not empty", s)
		}
	}
}

func TestReplicateBy(t *testing.T) {
	c := NewCluster(4)
	d := FromRelation(c, mkRel(10))
	r := d.ReplicateBy(func(it Item) []int { return []int{0, 3} })
	if r.Parts[0].Len() != 10 || r.Parts[3].Len() != 10 {
		t.Errorf("replicate parts = %d,%d", r.Parts[0].Len(), r.Parts[3].Len())
	}
}

func TestRouteInvalidServerPanics(t *testing.T) {
	c := NewCluster(2)
	d := FromRelation(c, mkRel(1))
	defer func() {
		if recover() == nil {
			t.Fatal("routing to invalid server did not panic")
		}
	}()
	d.ShuffleBy(func(it Item) int { return 7 })
}

func TestMapFilterLocalFree(t *testing.T) {
	c := NewCluster(4)
	d := FromRelation(c, mkRel(20))
	before := c.Rounds()
	m := d.MapLocal(d.Schema, func(s int, it Item) []Item {
		if it.T[0]%2 == 0 {
			return []Item{it}
		}
		return nil
	})
	f := d.FilterLocal(func(it Item) bool { return it.T[0]%2 == 0 })
	if m.Size() != f.Size() || m.Size() != 10 {
		t.Errorf("sizes: map=%d filter=%d want 10", m.Size(), f.Size())
	}
	if c.Rounds() != before {
		t.Errorf("local ops charged rounds: %d -> %d", before, c.Rounds())
	}
}

func TestConcatSchemaMismatchPanics(t *testing.T) {
	c := NewCluster(2)
	a := NewDist(c, relation.NewSchema(1))
	b := NewDist(c, relation.NewSchema(2))
	defer func() {
		if recover() == nil {
			t.Fatal("Concat with schema mismatch did not panic")
		}
	}()
	Concat(a, b)
}

func TestMoveToChargesSubInput(t *testing.T) {
	c := NewCluster(8)
	d := FromRelation(c, mkRel(64))
	sub := NewCluster(2)
	m := d.MoveTo(sub)
	if m.Size() != 64 {
		t.Fatalf("MoveTo lost tuples")
	}
	if sub.MaxLoad() != 32 {
		t.Errorf("sub input load = %d, want 32", sub.MaxLoad())
	}
}

func TestMergeSequential(t *testing.T) {
	c := NewCluster(4)
	sub := NewCluster(2)
	sub.input(0, 10)
	r := sub.newRound()
	sub.receive(r, 1, 7)
	c.MergeSequential(sub.Snapshot())
	if c.MaxLoad() != 10 {
		t.Errorf("MaxLoad = %d, want 10", c.MaxLoad())
	}
	if c.Rounds() != 2 {
		t.Errorf("Rounds = %d, want 2 (input + 1)", c.Rounds())
	}
}

func TestMergeParallel(t *testing.T) {
	c := NewCluster(4)
	mk := func(load int) Stats {
		s := NewCluster(2)
		r := s.newRound()
		s.receive(r, 0, load)
		return s.Snapshot()
	}
	c.MergeParallel([]Stats{mk(5), mk(9), mk(3)})
	if c.MaxLoad() != 9 {
		t.Errorf("parallel merge MaxLoad = %d, want 9", c.MaxLoad())
	}
}

func TestMergeGridSums(t *testing.T) {
	c := NewCluster(4)
	mk := func(load int) Stats {
		s := NewCluster(2)
		r := s.newRound()
		s.receive(r, 0, load)
		return s.Snapshot()
	}
	c.MergeGrid([]Stats{mk(5), mk(9)})
	if c.MaxLoad() != 14 {
		t.Errorf("grid merge MaxLoad = %d, want 14", c.MaxLoad())
	}
}

func TestChargeRound(t *testing.T) {
	c := NewCluster(3)
	c.ChargeRound([]int{1, 5, 2})
	if c.MaxLoad() != 5 {
		t.Errorf("MaxLoad = %d, want 5", c.MaxLoad())
	}
	c.Charge(0, 9)
	if c.MaxLoad() != 9 || c.Rounds() != 2 {
		t.Errorf("after Charge: load=%d rounds=%d", c.MaxLoad(), c.Rounds())
	}
}

func TestRngDeterminism(t *testing.T) {
	a, b := NewRng(42), NewRng(42)
	for i := 0; i < 100; i++ {
		if a.Next() != b.Next() {
			t.Fatal("Rng not deterministic")
		}
	}
	if NewRng(1).Next() == NewRng(2).Next() {
		t.Error("different seeds produced same first value")
	}
}

func TestRngIntnRange(t *testing.T) {
	r := NewRng(7)
	f := func(n uint8) bool {
		m := int(n%50) + 1
		v := r.Intn(m)
		return v >= 0 && v < m
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRngPerm(t *testing.T) {
	r := NewRng(9)
	p := r.Perm(20)
	seen := make([]bool, 20)
	for _, v := range p {
		if v < 0 || v >= 20 || seen[v] {
			t.Fatalf("bad permutation %v", p)
		}
		seen[v] = true
	}
}

// TestHashTupleAtMatchesHash64 pins the bit-identity ShuffleByKey's
// routing depends on: hashing tuple values directly must equal hashing
// the encoded key string, for random tuples, projections and salts.
func TestHashTupleAtMatchesHash64(t *testing.T) {
	rng := NewRng(77)
	for trial := 0; trial < 500; trial++ {
		width := 1 + rng.Intn(5)
		tu := make(relation.Tuple, width)
		for i := range tu {
			// Mix small, negative, and full-range values.
			tu[i] = relation.Value(rng.Next()) >> uint(rng.Intn(64))
			if rng.Intn(2) == 0 {
				tu[i] = -tu[i]
			}
		}
		k := 1 + rng.Intn(width)
		pos := make([]int, k)
		for i := range pos {
			pos[i] = rng.Intn(width)
		}
		salt := rng.Next()
		if got, want := HashTupleAt(tu, pos, salt), Hash64(relation.KeyAt(tu, pos), salt); got != want {
			t.Fatalf("trial %d: HashTupleAt=%#x, Hash64(KeyAt)=%#x (tuple %v, pos %v, salt %#x)",
				trial, got, want, tu, pos, salt)
		}
	}
}

func TestHash64SaltMatters(t *testing.T) {
	if Hash64("abc", 1) == Hash64("abc", 2) {
		t.Error("salt has no effect")
	}
	if Hash64("abc", 1) != Hash64("abc", 1) {
		t.Error("hash not deterministic")
	}
}

func TestEmitters(t *testing.T) {
	ce := NewCountEmitter(relation.CountRing)
	ce.Emit(0, relation.Tuple{1}, 2)
	ce.Emit(1, relation.Tuple{2}, 3)
	if ce.N != 2 || ce.AnnotSum != 5 {
		t.Errorf("count emitter N=%d sum=%d", ce.N, ce.AnnotSum)
	}
	col := NewCollectEmitter(relation.NewSchema(1))
	psc := NewPerServerCounter(2)
	m := MultiEmitter{col, psc}
	m.Emit(1, relation.Tuple{5}, 1)
	if col.Rel.Size() != 1 || psc.Counts[1] != 1 {
		t.Errorf("multi emitter failed")
	}
}

func TestClusterInvalidP(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewCluster(0) did not panic")
		}
	}()
	NewCluster(0)
}
