package mpc

import (
	"sync"

	"repro/internal/relation"
)

// Emitter receives join results. Emission is the model's zero-cost emit():
// it charges no load. The schema of emitted tuples is fixed per join.
type Emitter interface {
	Emit(server int, t relation.Tuple, annot int64)
}

// CountEmitter counts results and sums annotations (for COUNT-style
// verification) without materializing tuples.
type CountEmitter struct {
	N        int64
	AnnotSum int64
	ring     relation.Semiring
}

// NewCountEmitter returns a counter aggregating annotations in ring.
func NewCountEmitter(ring relation.Semiring) *CountEmitter {
	return &CountEmitter{AnnotSum: ring.Zero, ring: ring}
}

// Emit implements Emitter.
func (e *CountEmitter) Emit(_ int, _ relation.Tuple, annot int64) {
	e.N++
	e.AnnotSum = e.ring.Add(e.AnnotSum, annot)
}

// Merge folds the counts of per-worker counters into e. The parallel
// pattern mirrors the cluster's shards: give every worker its own
// CountEmitter over the same ring, then Merge them at the join point.
func (e *CountEmitter) Merge(workers ...*CountEmitter) {
	for _, w := range workers {
		e.N += w.N
		e.AnnotSum = e.ring.Add(e.AnnotSum, w.AnnotSum)
	}
}

// CollectEmitter materializes every result into a relation; test use only.
type CollectEmitter struct {
	Rel *relation.Relation
}

// NewCollectEmitter returns a collector over the given output schema.
func NewCollectEmitter(schema relation.Schema) *CollectEmitter {
	r := relation.New("out", schema)
	r.Annots = []int64{}
	return &CollectEmitter{Rel: r}
}

// Emit implements Emitter.
func (e *CollectEmitter) Emit(_ int, t relation.Tuple, annot int64) {
	e.Rel.Tuples = append(e.Rel.Tuples, t.Clone())
	e.Rel.Annots = append(e.Rel.Annots, annot)
}

// PerServerCounter tracks how many results each server emits; used by tests
// asserting that grid arrangements emit without redundancy.
type PerServerCounter struct {
	Counts []int64
}

// NewPerServerCounter returns a counter for p servers.
func NewPerServerCounter(p int) *PerServerCounter {
	return &PerServerCounter{Counts: make([]int64, p)}
}

// Emit implements Emitter.
func (e *PerServerCounter) Emit(server int, _ relation.Tuple, _ int64) {
	if server >= 0 && server < len(e.Counts) {
		e.Counts[server]++
	}
}

// Merge adds per-worker counters into e; the slices must be equal length.
func (e *PerServerCounter) Merge(workers ...*PerServerCounter) {
	for _, w := range workers {
		for s, n := range w.Counts {
			e.Counts[s] += n
		}
	}
}

// SyncEmitter serializes emissions with a mutex, making any Emitter —
// in particular materializing ones like CollectEmitter — safe for
// concurrent emitters. Counting emitters should prefer per-worker
// emitters merged at the barrier, which stay lock-free on the hot path.
type SyncEmitter struct {
	mu    sync.Mutex
	Inner Emitter
}

// Synchronized wraps e for concurrent use.
func Synchronized(e Emitter) *SyncEmitter { return &SyncEmitter{Inner: e} }

// Emit implements Emitter.
func (e *SyncEmitter) Emit(server int, t relation.Tuple, annot int64) {
	e.mu.Lock()
	e.Inner.Emit(server, t, annot)
	e.mu.Unlock()
}

// MultiEmitter fans one emission out to several emitters.
type MultiEmitter []Emitter

// Emit implements Emitter.
func (m MultiEmitter) Emit(server int, t relation.Tuple, annot int64) {
	for _, e := range m {
		e.Emit(server, t, annot)
	}
}
