package mpc

import (
	"sync"

	"repro/internal/relation"
)

// Emitter receives join results. Emission is the model's zero-cost emit():
// it charges no load. The schema of emitted tuples is fixed per join.
type Emitter interface {
	Emit(server int, t relation.Tuple, annot int64)
}

// A PartitionedSink is an emitter that is lock-free under the exchange's
// per-partition ownership contract: concurrent producers are safe as long
// as each partition (server) has exactly one. Parallel emission paths
// discover the capability through this interface rather than enumerating
// concrete types.
type PartitionedSink interface {
	Emitter
	// Partitioned reports whether the sink accepts parts concurrent
	// producers, one per partition.
	Partitioned(parts int) bool
}

// A ForkingSink is an emitter that parallelizes by handing each worker its
// own lock-free emitter and folding them back in worker order. The merge
// must be deterministic for any grouping of the emissions (counting sinks
// over commutative semirings are).
type ForkingSink interface {
	Emitter
	// ForkWorker returns a fresh emitter owned by one worker.
	ForkWorker() Emitter
	// MergeWorkers folds the forked workers back, in the given order.
	MergeWorkers(workers []Emitter)
}

// CountEmitter counts results and sums annotations (for COUNT-style
// verification) without materializing tuples.
type CountEmitter struct {
	N        int64
	AnnotSum int64
	ring     relation.Semiring
}

// NewCountEmitter returns a counter aggregating annotations in ring.
func NewCountEmitter(ring relation.Semiring) *CountEmitter {
	return &CountEmitter{AnnotSum: ring.Zero, ring: ring}
}

// Emit implements Emitter.
func (e *CountEmitter) Emit(_ int, _ relation.Tuple, annot int64) {
	e.N++
	e.AnnotSum = e.ring.Add(e.AnnotSum, annot)
}

// Merge folds the counts of per-worker counters into e. The parallel
// pattern mirrors the cluster's shards: give every worker its own
// CountEmitter over the same ring (Fork), then Merge them at the join
// point.
func (e *CountEmitter) Merge(workers ...*CountEmitter) {
	for _, w := range workers {
		e.N += w.N
		e.AnnotSum = e.ring.Add(e.AnnotSum, w.AnnotSum)
	}
}

// Fork returns a fresh per-worker counter over e's ring, to be folded back
// with Merge.
func (e *CountEmitter) Fork() *CountEmitter { return NewCountEmitter(e.ring) }

// ForkWorker implements ForkingSink.
func (e *CountEmitter) ForkWorker() Emitter { return e.Fork() }

// MergeWorkers implements ForkingSink.
func (e *CountEmitter) MergeWorkers(workers []Emitter) {
	for _, w := range workers {
		e.Merge(w.(*CountEmitter))
	}
}

// CollectEmitter materializes every result into a relation on a single
// goroutine: the engine and the tests use it for serial materializing
// runs. Concurrent producers use ShardedEmitter (lock-free) or wrap a
// CollectEmitter in Synchronized (one mutex).
type CollectEmitter struct {
	Rel *relation.Relation
}

// NewCollectEmitter returns a collector over the given output schema.
func NewCollectEmitter(schema relation.Schema) *CollectEmitter {
	r := relation.New("out", schema)
	r.Annots = []int64{}
	return &CollectEmitter{Rel: r}
}

// Emit implements Emitter.
func (e *CollectEmitter) Emit(_ int, t relation.Tuple, annot int64) {
	e.Rel.Tuples = append(e.Rel.Tuples, t.Clone())
	e.Rel.Annots = append(e.Rel.Annots, annot)
}

// PerServerCounter tracks how many results each server emits; used by tests
// asserting that grid arrangements emit without redundancy.
type PerServerCounter struct {
	Counts []int64
}

// NewPerServerCounter returns a counter for p servers.
func NewPerServerCounter(p int) *PerServerCounter {
	return &PerServerCounter{Counts: make([]int64, p)}
}

// Emit implements Emitter.
func (e *PerServerCounter) Emit(server int, _ relation.Tuple, _ int64) {
	if server >= 0 && server < len(e.Counts) {
		e.Counts[server]++
	}
}

// Partitioned implements PartitionedSink: Emit only touches
// Counts[server], so one producer per server is race-free.
func (e *PerServerCounter) Partitioned(parts int) bool { return len(e.Counts) >= parts }

// Merge adds per-worker counters into e; the slices must be equal length.
func (e *PerServerCounter) Merge(workers ...*PerServerCounter) {
	for _, w := range workers {
		for s, n := range w.Counts {
			e.Counts[s] += n
		}
	}
}

// ShardedEmitter materializes results into per-partition buffers: the
// producer owning partition s (usually server s of the cluster) appends to
// buffer s without any lock, because no other producer touches it. The
// merged relation is assembled in partition order with the emission order
// preserved inside each partition, so the result is byte-identical for
// every worker count — including a single goroutine emitting partitions in
// order, which makes ShardedEmitter a drop-in for CollectEmitter in serial
// runs. This is what lets materializing runs drop Synchronized's mutex.
type ShardedEmitter struct {
	schema relation.Schema
	parts  []Columns
}

// NewShardedEmitter returns a sharded collector over the given output
// schema with one buffer per partition (one per server of the emitting
// cluster). Buffers are columnar: plain joins never materialize an
// annotation column in the buffers.
func NewShardedEmitter(schema relation.Schema, parts int) *ShardedEmitter {
	if parts < 1 {
		parts = 1
	}
	return &ShardedEmitter{schema: schema, parts: make([]Columns, parts)}
}

// Emit implements Emitter. Concurrent calls are safe if and only if each
// partition has a single producer — the exchange's disjoint-ownership
// contract. The flat buffer copies t's values on append, so no defensive
// Clone is needed however the producer reuses its tuple scratch.
func (e *ShardedEmitter) Emit(server int, t relation.Tuple, annot int64) {
	if server < 0 || server >= len(e.parts) {
		panic("mpc: ShardedEmitter partition out of range")
	}
	e.parts[server].Append(t, annot)
}

// Partitions reports the number of buffers.
func (e *ShardedEmitter) Partitions() int { return len(e.parts) }

// Partitioned implements PartitionedSink.
func (e *ShardedEmitter) Partitioned(parts int) bool { return len(e.parts) >= parts }

// N returns the total number of emitted results across partitions.
func (e *ShardedEmitter) N() int64 {
	n := int64(0)
	for s := range e.parts {
		n += int64(e.parts[s].Len())
	}
	return n
}

// Rel merges the buffers into one relation, partition-major; the returned
// tuples are windows into the partitions' flat value buffers.
func (e *ShardedEmitter) Rel() *relation.Relation {
	r := relation.New("out", e.schema)
	n := e.N()
	r.Tuples = make([]relation.Tuple, 0, n)
	r.Annots = make([]int64, 0, n)
	for s := range e.parts {
		p := &e.parts[s]
		for i := 0; i < p.Len(); i++ {
			r.Tuples = append(r.Tuples, p.Tuple(i))
			r.Annots = append(r.Annots, p.Annot(i))
		}
	}
	return r
}

// SyncEmitter serializes emissions with a mutex, making any Emitter —
// in particular materializing ones like CollectEmitter — safe for
// concurrent emitters sharing it across partitions. Counting emitters
// should prefer per-worker emitters merged at the barrier, and
// materializing runs with per-partition producers should prefer
// ShardedEmitter; both stay lock-free on the hot path.
type SyncEmitter struct {
	mu    sync.Mutex
	Inner Emitter
}

// Synchronized wraps e for concurrent use.
func Synchronized(e Emitter) *SyncEmitter { return &SyncEmitter{Inner: e} }

// Emit implements Emitter.
func (e *SyncEmitter) Emit(server int, t relation.Tuple, annot int64) {
	e.mu.Lock()
	e.Inner.Emit(server, t, annot)
	e.mu.Unlock()
}

// MultiEmitter fans one emission out to several emitters.
type MultiEmitter []Emitter

// Emit implements Emitter.
func (m MultiEmitter) Emit(server int, t relation.Tuple, annot int64) {
	for _, e := range m {
		e.Emit(server, t, annot)
	}
}
