package mpc

import (
	"repro/internal/relation"
)

// Emitter receives join results. Emission is the model's zero-cost emit():
// it charges no load. The schema of emitted tuples is fixed per join.
type Emitter interface {
	Emit(server int, t relation.Tuple, annot int64)
}

// CountEmitter counts results and sums annotations (for COUNT-style
// verification) without materializing tuples.
type CountEmitter struct {
	N        int64
	AnnotSum int64
	ring     relation.Semiring
}

// NewCountEmitter returns a counter aggregating annotations in ring.
func NewCountEmitter(ring relation.Semiring) *CountEmitter {
	return &CountEmitter{AnnotSum: ring.Zero, ring: ring}
}

// Emit implements Emitter.
func (e *CountEmitter) Emit(_ int, _ relation.Tuple, annot int64) {
	e.N++
	e.AnnotSum = e.ring.Add(e.AnnotSum, annot)
}

// CollectEmitter materializes every result into a relation; test use only.
type CollectEmitter struct {
	Rel *relation.Relation
}

// NewCollectEmitter returns a collector over the given output schema.
func NewCollectEmitter(schema relation.Schema) *CollectEmitter {
	r := relation.New("out", schema)
	r.Annots = []int64{}
	return &CollectEmitter{Rel: r}
}

// Emit implements Emitter.
func (e *CollectEmitter) Emit(_ int, t relation.Tuple, annot int64) {
	e.Rel.Tuples = append(e.Rel.Tuples, t.Clone())
	e.Rel.Annots = append(e.Rel.Annots, annot)
}

// PerServerCounter tracks how many results each server emits; used by tests
// asserting that grid arrangements emit without redundancy.
type PerServerCounter struct {
	Counts []int64
}

// NewPerServerCounter returns a counter for p servers.
func NewPerServerCounter(p int) *PerServerCounter {
	return &PerServerCounter{Counts: make([]int64, p)}
}

// Emit implements Emitter.
func (e *PerServerCounter) Emit(server int, _ relation.Tuple, _ int64) {
	if server >= 0 && server < len(e.Counts) {
		e.Counts[server]++
	}
}

// MultiEmitter fans one emission out to several emitters.
type MultiEmitter []Emitter

// Emit implements Emitter.
func (m MultiEmitter) Emit(server int, t relation.Tuple, annot int64) {
	for _, e := range m {
		e.Emit(server, t, annot)
	}
}
