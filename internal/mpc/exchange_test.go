package mpc

import (
	"fmt"
	"reflect"
	"strings"
	"sync"
	"testing"

	"repro/internal/relation"
	"repro/internal/runtime"
)

// serialRouteRef is the pre-batching tuple-at-a-time route, kept as the
// parity and benchmark reference: the batched exchange must produce
// value-identical parts and byte-identical charges.
func serialRouteRef(d *Dist, schema relation.Schema, dest func(s int, it Item) []int) *Dist {
	out := &Dist{C: d.C, Schema: schema, Parts: make([]Columns, d.C.P)}
	r := d.C.newRound()
	for s := range d.Parts {
		part := &d.Parts[s]
		for i := 0; i < part.Len(); i++ {
			it := part.Item(i)
			for _, t := range dest(s, it) {
				if t < 0 || t >= d.C.P {
					panic(fmt.Sprintf("mpc: route to invalid server %d", t))
				}
				out.Parts[t].AppendItem(it)
				d.C.receive(r, t, 1)
			}
		}
	}
	return out
}

// partsEqual compares two distributed collections row-by-row (tuple values
// and annotation values; the lazy annotation column makes representations
// non-unique, so DeepEqual would be too strict).
func partsEqual(a, b *Dist) bool {
	if len(a.Parts) != len(b.Parts) {
		return false
	}
	for s := range a.Parts {
		if !a.Parts[s].Equal(&b.Parts[s]) {
			return false
		}
	}
	return true
}

// exchangeTestDist builds a skewed random distributed relation: sizes well
// above exchangeSerialBelow exercise the multi-task plan.
func exchangeTestDist(c *Cluster, n int, seed uint64) *Dist {
	r := relation.New("R", relation.NewSchema(1, 2))
	rng := NewRng(seed)
	for i := 0; i < n; i++ {
		// Zipf-ish first column: heavy keys stress per-destination batches.
		v := rng.Intn(1 + rng.Intn(1+n/8))
		r.Add(relation.Value(v), relation.Value(i))
	}
	return FromRelation(c, r)
}

// hashPosFor is the key projection the "hash" shape uses for width-w
// tuples: the first column, or the empty projection for width-0 scalars —
// non-nil, so router.hashPos still engages the flat fast path and hashes
// the empty key.
func hashPosFor(w int) []int {
	if w == 0 {
		return []int{}
	}
	return []int{0}
}

// tupleAt reads t[i], treating missing columns as 0: the routing shapes
// must stay total over every tuple arity the fuzzer generates.
func tupleAt(t relation.Tuple, i int) int {
	if i < len(t) {
		return int(t[i])
	}
	return 0
}

// destFns enumerates every routing shape the algorithms use: single-target
// hashing, bounded replication, variable fan-out (including zero), full
// broadcast, and a gather.
func destFns(p int) map[string]func(s int, it Item) []int {
	all := make([]int, p)
	for i := range all {
		all[i] = i
	}
	return map[string]func(s int, it Item) []int{
		"hash": func(_ int, it Item) []int {
			return []int{int(Hash64(relation.KeyAt(it.T, hashPosFor(len(it.T))), 7) % uint64(p))}
		},
		"replicate2": func(_ int, it Item) []int {
			v := tupleAt(it.T, 1)
			return []int{v % p, (v*7 + 1) % p}
		},
		"fanout0to2": func(s int, it Item) []int {
			v := tupleAt(it.T, 1)
			switch v % 3 {
			case 0:
				return nil
			case 1:
				return []int{(s + v) % p}
			default:
				return []int{v % p, (s + 1) % p}
			}
		},
		"broadcast": func(_ int, _ Item) []int { return all },
		"gather":    func(_ int, _ Item) []int { return []int{3 % p} },
	}
}

// roundTable folds the cluster's counters and copies the per-round,
// per-server receive table.
func roundTable(c *Cluster) [][]int {
	c.barrier()
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([][]int, len(c.rounds))
	for r, row := range c.rounds {
		out[r] = append([]int(nil), row...)
	}
	return out
}

// TestExchangeParityWithSerialRoute is the tentpole's core guarantee: for
// every routing shape, the batched exchange produces exactly the parts and
// exactly the per-round, per-server charges of the old tuple-at-a-time
// loop — at serial width and at parallel widths.
func TestExchangeParityWithSerialRoute(t *testing.T) {
	const p, n = 16, 20000
	for name, dest := range destFns(p) {
		t.Run(name, func(t *testing.T) {
			ref := NewCluster(p)
			refOut := serialRouteRef(exchangeTestDist(ref, n, 11), relation.NewSchema(1, 2), dest)
			refTable := roundTable(ref)

			for _, width := range []int{1, 2, 3, 8} {
				prev := runtime.SetParallelism(width)
				c := NewCluster(p)
				got := exchangeTestDist(c, n, 11).route(relation.NewSchema(1, 2), router{many: dest})
				gotTable := roundTable(c)
				runtime.SetParallelism(prev)

				if !partsEqual(refOut, got) {
					t.Fatalf("width %d: parts differ from the serial reference", width)
				}
				if !reflect.DeepEqual(refTable, gotTable) {
					t.Fatalf("width %d: charge tables differ:\nref %v\ngot %v", width, refTable, gotTable)
				}
			}
		})
	}
}

// TestExchangePlanBatchCounts is the property test for the counting pass:
// every task's per-destination batch count must equal the count computed
// directly from the destination function over the task's span, the totals
// must match the materialized parts, and the fan-out records must account
// for every delivery.
func TestExchangePlanBatchCounts(t *testing.T) {
	const p, n = 16, 20000
	c := NewCluster(p)
	d := exchangeTestDist(c, n, 23)
	// Shapes whose fan-out is uniformly 1 must elide the fan column.
	uniform := map[string]bool{"hash": true, "gather": true}
	for name, dest := range destFns(p) {
		t.Run(name, func(t *testing.T) {
			for _, tasks := range []int{1, 3, p, 2 * p} {
				plan := newExchangePlan(d, router{many: dest}, tasks)
				if len(plan.spans) > tasks {
					t.Fatalf("tasks=%d: got %d spans", tasks, len(plan.spans))
				}
				// Spans must partition the items in global (source, item)
				// order — item-granular cuts, so a span may end mid-part.
				var walked []Item
				for _, sp := range plan.spans {
					sp.each(d.Parts, func(_ int, cols *Columns, lo, hi int) {
						for i := lo; i < hi; i++ {
							walked = append(walked, cols.Item(i))
						}
					})
				}
				all := d.All()
				if !reflect.DeepEqual(walked, all) {
					t.Fatalf("tasks=%d: spans do not partition the items in order", tasks)
				}
				for w, sp := range plan.spans {
					want := make([]int32, p)
					deliveries, items := 0, 0
					sp.each(d.Parts, func(s int, cols *Columns, lo, hi int) {
						for i := lo; i < hi; i++ {
							items++
							for _, dst := range dest(s, cols.Item(i)) {
								want[dst]++
								deliveries++
							}
						}
					})
					if !reflect.DeepEqual(plan.counts[w], want) {
						t.Fatalf("tasks=%d task %d: batch counts %v, want %v", tasks, w, plan.counts[w], want)
					}
					if len(plan.dests[w]) != deliveries {
						t.Fatalf("tasks=%d task %d: %d recorded dests, want %d", tasks, w, len(plan.dests[w]), deliveries)
					}
					if plan.fans[w] == nil {
						if deliveries != items {
							t.Fatalf("tasks=%d task %d: fan column elided but %d deliveries for %d items",
								tasks, w, deliveries, items)
						}
					} else {
						var fanSum int32
						for _, f := range plan.fans[w] {
							fanSum += f
						}
						if int(fanSum) != deliveries {
							t.Fatalf("tasks=%d task %d: fan-out sum %d, want %d", tasks, w, fanSum, deliveries)
						}
					}
					if uniform[name] && plan.fans[w] != nil {
						t.Fatalf("tasks=%d task %d: %s should elide the fan column", tasks, w, name)
					}
				}
			}
		})
	}
}

// TestExchangeSkewedSourceStillFansOut pins the skew behaviour: when every
// item sits in ONE source part (e.g. a gathered collection routed again),
// item-granular spans must still cut the work into multiple tasks, and the
// result must stay byte-identical to the serial reference.
func TestExchangeSkewedSourceStillFansOut(t *testing.T) {
	const p, n = 16, 20000
	dest := destFns(p)["hash"]

	ref := NewCluster(p)
	refGathered := exchangeTestDist(ref, n, 31).GatherTo(5)
	refOut := serialRouteRef(refGathered, refGathered.Schema, dest)

	plan := newExchangePlan(refGathered, router{many: dest}, 4)
	if len(plan.spans) != 4 {
		t.Fatalf("skewed source planned %d spans, want 4", len(plan.spans))
	}

	for _, width := range []int{1, 4} {
		prev := runtime.SetParallelism(width)
		c := NewCluster(p)
		got := exchangeTestDist(c, n, 31).GatherTo(5).route(refGathered.Schema, router{many: dest})
		runtime.SetParallelism(prev)
		if !partsEqual(refOut, got) {
			t.Fatalf("width %d: parts differ", width)
		}
	}
}

// TestExchangeStatsDeterministic checks the exchange counters surface the
// exact per-destination totals, independent of the worker count.
func TestExchangeStatsDeterministic(t *testing.T) {
	const p, n = 8, 10000
	var ref ExchangeStats
	for i, width := range []int{1, 4} {
		prev := runtime.SetParallelism(width)
		c := NewCluster(p)
		d := exchangeTestDist(c, n, 5)
		d = d.ShuffleByKey([]int{0}, 99)
		d.Broadcast()
		runtime.SetParallelism(prev)

		st := c.Exchange()
		if i == 0 {
			ref = st
			if st.Exchanges != 2 {
				t.Fatalf("Exchanges = %d, want 2", st.Exchanges)
			}
			if st.Tuples != int64(n)+int64(n)*int64(p) {
				t.Fatalf("Tuples = %d, want %d", st.Tuples, n+n*p)
			}
		} else if st != ref {
			t.Fatalf("width %d stats %+v differ from serial %+v", width, st, ref)
		}
	}
}

// TestExchangeStatsFoldFromSubClusters: Snapshot carries a sub-cluster's
// exchange counters and every Merge* folds them into the parent, so
// recursive algorithms do not drop the routing their sub-computations did.
func TestExchangeStatsFoldFromSubClusters(t *testing.T) {
	const n = 8192
	mkChild := func() Stats {
		child := NewCluster(4)
		exchangeTestDist(child, n, 9).ShuffleByKey([]int{0}, 1)
		return child.Snapshot()
	}
	if mkChild().Exchange.Tuples != n {
		t.Fatalf("Snapshot dropped the child's exchange stats")
	}

	parent := NewCluster(8)
	parent.MergeParallel([]Stats{mkChild(), mkChild()})
	parent.MergeGrid([]Stats{mkChild()})
	parent.MergeSequential(mkChild())
	got := parent.Exchange()
	if got.Exchanges != 4 || got.Tuples != 4*n {
		t.Fatalf("folded stats %+v, want 4 exchanges / %d tuples", got, 4*n)
	}
}

// TestExchangeInvalidServerPanics: the validity check must survive the
// refactor at every width.
func TestExchangeInvalidServerPanics(t *testing.T) {
	for _, width := range []int{1, 8} {
		prev := runtime.SetParallelism(width)
		func() {
			defer runtime.SetParallelism(prev)
			defer func() {
				r := recover()
				if r == nil {
					t.Fatalf("width %d: no panic for invalid destination", width)
				}
				if !strings.Contains(fmt.Sprint(r), "invalid server") {
					t.Fatalf("width %d: panic %v does not name the invalid server", width, r)
				}
			}()
			c := NewCluster(4)
			d := exchangeTestDist(c, 8192, 3)
			d.ShuffleBy(func(it Item) int { return int(it.T[1]) })
		}()
	}
}

// TestChargeRoundRejectsOversizedLoads: silently truncating a loads slice
// longer than the cluster would under-charge the round.
func TestChargeRoundRejectsOversizedLoads(t *testing.T) {
	c := NewCluster(2)
	defer func() {
		if recover() == nil {
			t.Fatal("ChargeRound accepted 3 loads on 2 servers")
		}
	}()
	c.ChargeRound([]int{1, 2, 3})
}

// TestShardedEmitterConcurrentPartitions drives one producer per partition
// concurrently — the exchange's ownership contract — and checks the merged
// relation is the partition-major serial order. Run under -race this is
// the lock-freedom proof.
func TestShardedEmitterConcurrentPartitions(t *testing.T) {
	const parts, perPart = 8, 500
	e := NewShardedEmitter(relation.NewSchema(1, 2), parts)
	var wg sync.WaitGroup
	for s := 0; s < parts; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for i := 0; i < perPart; i++ {
				e.Emit(s, relation.Tuple{relation.Value(s), relation.Value(i)}, int64(s*perPart+i))
			}
		}(s)
	}
	wg.Wait()
	if e.N() != parts*perPart {
		t.Fatalf("N = %d, want %d", e.N(), parts*perPart)
	}
	rel := e.Rel()
	for s := 0; s < parts; s++ {
		for i := 0; i < perPart; i++ {
			k := s*perPart + i
			want := relation.Tuple{relation.Value(s), relation.Value(i)}
			if !reflect.DeepEqual(rel.Tuples[k], want) || rel.Annots[k] != int64(k) {
				t.Fatalf("row %d = %v/%d, want %v/%d", k, rel.Tuples[k], rel.Annots[k], want, k)
			}
		}
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("out-of-range partition did not panic")
			}
		}()
		e.Emit(parts, relation.Tuple{0, 0}, 1)
	}()
}
