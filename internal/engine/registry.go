package engine

import (
	"fmt"
	"sort"
	"sync"
)

// The registry maps algorithm names to implementations. Core adapters
// register at init; external packages may Register additional algorithms
// (a remote executor, an instrumented variant) under fresh names.
var (
	regMu  sync.RWMutex
	byName = map[string]Algorithm{}
)

// Register publishes a under a.Name(). Empty or duplicate names panic:
// registration is an init-time wiring error, not a runtime condition.
// Algorithms registered from outside the repository's catalog take part
// in cost-based dispatch through the load-class fallback predictor
// (stats.PredictClass); registering a per-name formula in
// internal/stats/predict.go sharpens their ranking.
func Register(a Algorithm) {
	name := a.Name()
	if name == "" {
		panic("engine: Register with empty name")
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := byName[name]; dup {
		panic(fmt.Sprintf("engine: duplicate algorithm %q", name))
	}
	byName[name] = a
}

// Lookup returns the named algorithm.
func Lookup(name string) (Algorithm, bool) {
	regMu.RLock()
	defer regMu.RUnlock()
	a, ok := byName[name]
	return a, ok
}

// All returns every registered algorithm, sorted by name.
func All() []Algorithm {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]Algorithm, 0, len(byName))
	for _, a := range byName {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name() < out[j].Name() })
	return out
}

// Names returns the registered algorithm names, sorted.
func Names() []string {
	all := All()
	out := make([]string, len(all))
	for i, a := range all {
		out[i] = a.Name()
	}
	return out
}
