package engine_test

import (
	"errors"
	"testing"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/gen"
	"repro/internal/hypergraph"
	"repro/internal/mpc"
)

// wantRoute is the class-optimal routing the Figure 1 hierarchy prescribes;
// shape-specialized entries are keyed by catalog query where they differ
// from the class default.
var classRoute = map[hypergraph.Class]string{
	hypergraph.TallFlat:      "binhc",
	hypergraph.Hierarchical:  "rhier",
	hypergraph.RHierarchical: "rhier",
	hypergraph.Acyclic:       "acyclic",
	hypergraph.Cyclic:        "triangle",
}

// TestAutoDispatchCatalog asserts that every catalog query routes to an
// algorithm whose Applies accepts it, and that the route is the
// class-optimal one (or a cheaper shape specialization of it).
func TestAutoDispatchCatalog(t *testing.T) {
	specialized := map[string]bool{"line3": true, "hypercube": true, "triangle": true}
	for _, e := range hypergraph.Catalog() {
		a, err := engine.Auto(e.Q)
		if err != nil {
			t.Errorf("%s: Auto failed: %v", e.Name, err)
			continue
		}
		if !a.Applies(e.Q) {
			t.Errorf("%s: Auto chose %s but Applies rejects the query", e.Name, a.Name())
		}
		if want := classRoute[e.Class]; a.Name() != want && !specialized[a.Name()] {
			t.Errorf("%s (class %s): routed to %s, want %s or a shape specialization",
				e.Name, e.Class, a.Name(), want)
		}
	}
}

// TestAutoShapeSpecialization pins the shape-restricted routes: chains to
// line3, products to hypercube, triangles to the §7 algorithm.
func TestAutoShapeSpecialization(t *testing.T) {
	cases := []struct {
		q    *hypergraph.Hypergraph
		want string
	}{
		{hypergraph.Line3(), "line3"},
		{hypergraph.LineK(4), "acyclic"},
		{hypergraph.CartesianK(3), "hypercube"},
		{hypergraph.Triangle(), "triangle"},
		{hypergraph.Q1TallFlat(), "binhc"},
		{hypergraph.Q2Hierarchical(), "rhier"},
		{hypergraph.Q2RHier(), "rhier"},
	}
	for _, c := range cases {
		a, err := engine.Auto(c.q)
		if err != nil {
			t.Fatalf("Auto(%v): %v", c.q, err)
		}
		if a.Name() != c.want {
			t.Errorf("Auto(%v) = %s, want %s", c.q, a.Name(), c.want)
		}
	}
}

// directRun reproduces what engine.Run does for the named algorithm with a
// bare core call: same cluster size, same seed, same emitter. The parity
// test asserts the engine adds nothing and loses nothing.
func directRun(t *testing.T, name string, in *core.Instance, p int, seed uint64) (int64, int, int) {
	t.Helper()
	c := mpc.NewCluster(p)
	em := mpc.NewCountEmitter(in.Ring)
	switch name {
	case "yannakakis":
		core.Yannakakis(c, in, nil, seed, em)
	case "acyclic":
		core.AcyclicJoin(c, in, seed, em)
	case "line3":
		core.Line3(c, in, seed, em)
	case "line3wc":
		core.Line3WorstCase(c, in, seed, em)
	case "rhier":
		core.RHier(c, in, seed, em)
	case "binhc":
		core.BinHC(c, in, seed, false, em)
	case "hypercube":
		core.HyperCubeProduct(c, in, seed, em)
	case "triangle":
		core.Triangle(c, in, seed, em)
	default:
		t.Fatalf("directRun: no core call for %q", name)
	}
	return em.N, c.MaxLoad(), c.Rounds()
}

// TestEngineParityWithCore runs every catalog query through engine.Auto and
// through the equivalent direct core call and requires identical
// (OUT, load, rounds) — the engine is measurement-transparent.
func TestEngineParityWithCore(t *testing.T) {
	const p, seed = 8, uint64(2019)
	for i, e := range hypergraph.Catalog() {
		rng := mpc.NewChildRng(seed, i)
		in := gen.ForQuery(rng, e.Q, 64, 6)
		a, err := engine.Auto(e.Q)
		if err != nil {
			t.Fatalf("%s: %v", e.Name, err)
		}
		res, err := engine.Run(a, engine.Job{In: in, P: p, Seed: seed, CheckOracle: true})
		if err != nil {
			t.Errorf("%s via %s: %v", e.Name, a.Name(), err)
			continue
		}
		if !res.Verified {
			t.Errorf("%s via %s: oracle check did not run", e.Name, a.Name())
		}
		out, load, rounds := directRun(t, a.Name(), in, p, seed)
		if res.OUT != out || res.Load != load || res.Rounds != rounds {
			t.Errorf("%s via %s: engine (OUT=%d L=%d R=%d) != core (OUT=%d L=%d R=%d)",
				e.Name, a.Name(), res.OUT, res.Load, res.Rounds, out, load, rounds)
		}
	}
}

// TestEveryRegisteredAlgorithmOnItsHome runs each registered full-join
// algorithm on an instance it applies to, oracle-verified.
func TestEveryRegisteredAlgorithmOnItsHome(t *testing.T) {
	const p, seed = 8, uint64(7)
	rng := mpc.NewRng(seed)
	homes := map[string]*core.Instance{
		"yannakakis": gen.ForQuery(rng, hypergraph.LineK(4), 64, 6),
		"acyclic":    gen.ForQuery(rng, hypergraph.Fig5Example(), 32, 4),
		"line3":      gen.Line3Random(rng, 256, 512),
		"line3wc":    gen.Line3Random(rng, 256, 512),
		"rhier":      gen.RHierSkewed(rng, 2, 8, 64),
		"binhc":      gen.TallFlatSkewed(8, 64),
		"hypercube":  gen.CartesianSizes(8, 4, 2),
		"triangle":   gen.TriangleRandom(rng, 128, 256),
		"naive":      gen.ForQuery(rng, hypergraph.Line2(), 64, 6),
	}
	for _, a := range engine.All() {
		in, ok := homes[a.Name()]
		if !ok {
			continue // scalar/aggregate algorithms are covered below
		}
		res, err := engine.Run(a, engine.Job{In: in, P: p, Seed: seed, CheckOracle: true})
		if err != nil {
			t.Errorf("%s: %v", a.Name(), err)
			continue
		}
		if !res.Verified {
			t.Errorf("%s: not verified", a.Name())
		}
	}
}

// TestScalarAlgorithms covers count and aggregate, whose emissions are not
// the full join.
func TestScalarAlgorithms(t *testing.T) {
	rng := mpc.NewRng(3)
	in := gen.Line3Random(rng, 256, 1024)
	want := core.NaiveCount(in)

	res, err := engine.RunNamed("count", engine.Job{In: in, P: 8, Seed: 3})
	if err != nil {
		t.Fatalf("count: %v", err)
	}
	if res.Annot != want {
		t.Errorf("count: Annot = %d, want %d", res.Annot, want)
	}

	y := hypergraph.NewAttrSet(2, 3)
	agg, err := engine.RunNamed("aggregate", engine.Job{In: in, P: 8, Seed: 3, GroupBy: y})
	if err != nil {
		t.Fatalf("aggregate: %v", err)
	}
	if agg.Dist == nil || agg.Dist.Size() == 0 {
		t.Fatal("aggregate: no grouped result")
	}
	var total int64
	for _, it := range agg.Dist.All() {
		total += it.A
	}
	if total != want {
		t.Errorf("aggregate: group counts sum to %d, want %d", total, want)
	}
}

// TestRunVerifyFailure asserts ErrVerify wrapping and that the measurement
// survives the failed check.
func TestRunVerifyFailure(t *testing.T) {
	rng := mpc.NewRng(5)
	in := gen.ForQuery(rng, hypergraph.Line2(), 32, 4)
	res, err := engine.RunNamed("yannakakis", engine.Job{
		In: in, P: 4, Seed: 5, Want: -1, CheckWant: true,
	})
	if !errors.Is(err, engine.ErrVerify) {
		t.Fatalf("err = %v, want ErrVerify", err)
	}
	if res.Load <= 0 {
		t.Errorf("failed verification lost the measurement: %+v", res)
	}
	if res.Verified {
		t.Error("Verified must be false on mismatch")
	}
}

// TestRunRejectsInapplicable asserts Run refuses algorithm/query pairs the
// guarantee does not cover instead of panicking deep inside core.
func TestRunRejectsInapplicable(t *testing.T) {
	rng := mpc.NewRng(9)
	in := gen.TriangleRandom(rng, 64, 128)
	if _, err := engine.RunNamed("yannakakis", engine.Job{In: in, P: 4}); err == nil {
		t.Error("yannakakis on a cyclic query must be rejected")
	}
	if _, err := engine.RunNamed("rhier", engine.Job{In: gen.Line3Random(rng, 64, 128), P: 4}); err == nil {
		t.Error("rhier on a non-r-hierarchical query must be rejected")
	}
}

// TestRegistry covers lookup misses and the sorted name list.
func TestRegistry(t *testing.T) {
	if _, ok := engine.Lookup("no-such-algorithm"); ok {
		t.Error("Lookup invented an algorithm")
	}
	names := engine.Names()
	for _, want := range []string{"acyclic", "binhc", "count", "hypercube", "line3",
		"line3wc", "naive", "rhier", "triangle", "yannakakis", "aggregate"} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
			}
		}
		if !found {
			t.Errorf("registry missing %q (have %v)", want, names)
		}
	}
	if _, err := engine.RunNamed("no-such-algorithm", engine.Job{}); err == nil {
		t.Error("RunNamed on unknown name must fail")
	}
}
