package engine

import (
	"fmt"

	"repro/internal/hypergraph"
)

// dispatch is the paper's Figure 1 hierarchy as routing logic: for each
// class, the algorithm preference order, most specialized (cheapest
// guarantee) first. Auto walks the list and picks the first registered
// algorithm whose Applies accepts the query, so shape-restricted entries
// (hypercube for products, line3 for chains, triangle) fall through to the
// class-general ones when the query does not match their shape.
//
//	tall-flat      → one-round BinHC (instance-optimal in one round, [26])
//	hierarchical   → HyperCube on products (eq. 1), else RHier (§3.2)
//	r-hierarchical → RHier (IN/p + L_instance, Thm 3)
//	acyclic        → Line3 on chains, else AcyclicJoin (§5.1, Thm 7)
//	cyclic         → HyperCube triangle (§7), else the sequential oracle
var dispatch = map[hypergraph.Class][]string{
	hypergraph.TallFlat:      {"binhc", "rhier", "acyclic", "yannakakis"},
	hypergraph.Hierarchical:  {"hypercube", "rhier", "acyclic", "yannakakis"},
	hypergraph.RHierarchical: {"rhier", "acyclic", "yannakakis"},
	hypergraph.Acyclic:       {"line3", "acyclic", "yannakakis"},
	hypergraph.Cyclic:        {"triangle", "naive"},
}

// Auto returns the algorithm the engine routes q to: the cheapest
// registered algorithm whose guarantee covers q's class in the Figure 1
// hierarchy.
func Auto(q *hypergraph.Hypergraph) (Algorithm, error) {
	cls := q.Classify()
	for _, name := range dispatch[cls] {
		if a, ok := Lookup(name); ok && a.Applies(q) {
			return a, nil
		}
	}
	return nil, fmt.Errorf("engine: no registered algorithm covers %v (class %s)", q, cls)
}

// Route names Auto's choice for q, or "" when nothing covers it. Display
// helper for the classify command and the Figure 1 table.
func Route(q *hypergraph.Hypergraph) string {
	a, err := Auto(q)
	if err != nil {
		return ""
	}
	return a.Name()
}
