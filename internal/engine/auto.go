package engine

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/hypergraph"
	"repro/internal/stats"
)

// dispatch is the paper's Figure 1 hierarchy as routing logic: for each
// class, the algorithm preference order, most specialized (cheapest
// guarantee) first. The candidate set for a query is exactly this list;
// cost-based dispatch (AutoCost) ranks the candidates by predicted
// per-server load and the list order is the deterministic tiebreak, so
// shape-restricted entries (hypercube for products, line3 for chains,
// triangle) win ties against the class-general ones when the query
// matches their shape.
//
//	tall-flat      → one-round BinHC (instance-optimal in one round, [26])
//	hierarchical   → HyperCube on products (eq. 1), else RHier (§3.2)
//	r-hierarchical → RHier (IN/p + L_instance, Thm 3)
//	acyclic        → Line3 on chains, else AcyclicJoin (§5.1, Thm 7)
//	cyclic         → HyperCube triangle (§7), else the sequential oracle
var dispatch = map[hypergraph.Class][]string{
	hypergraph.TallFlat:      {"binhc", "rhier", "acyclic", "yannakakis"},
	hypergraph.Hierarchical:  {"hypercube", "rhier", "acyclic", "yannakakis"},
	hypergraph.RHierarchical: {"rhier", "acyclic", "yannakakis"},
	hypergraph.Acyclic:       {"line3", "acyclic", "yannakakis"},
	hypergraph.Cyclic:        {"triangle", "naive"},
}

// Candidate is one dispatch candidate's scorecard: what the dispatcher
// predicted for it, or why it could not run. Result.Candidates carries the
// ranked list so mispredictions are visible next to the measured load.
type Candidate struct {
	// Name is the registry name of the candidate.
	Name string
	// Predicted is the predicted per-server load (+Inf for candidates that
	// cannot run, 0 when dispatch ran without statistics).
	Predicted float64
	// PredictedBy names the stats formula behind Predicted.
	PredictedBy string
	// Rejected is why the candidate cannot run ("" when it can): the
	// registry has no algorithm under the name, or Applies rejects the
	// query's shape.
	Rejected string
}

// candidates scores every dispatch-list entry for q: runnable candidates
// get a prediction from pred (nil means "no statistics" — every runnable
// candidate predicts 0 and the ranking degenerates to the preference
// order), rejected ones record why. The returned list is ranked: runnable
// candidates by ascending predicted load, exact load ties by declared
// round class (cost mode only — without statistics the round class must
// not override the preference order), and what remains tied falls to the
// Figure 1 preference order (the sort is stable); rejected candidates
// follow in preference order.
func candidates(q *hypergraph.Hypergraph, pred func(Algorithm) (float64, string)) []Candidate {
	cls := q.Classify()
	names := dispatch[cls]
	out := make([]Candidate, 0, len(names))
	rank := make(map[string]int, len(names)) // round-class rank per runnable candidate
	for _, name := range names {
		c := Candidate{Name: name, Predicted: math.Inf(1)}
		a, ok := Lookup(name)
		switch {
		case !ok:
			c.Rejected = "not registered"
		case !a.Applies(q):
			c.Rejected = "Applies rejects the query"
		default:
			c.Predicted = 0
			if pred != nil {
				c.Predicted, c.PredictedBy = pred(a)
				if math.IsNaN(c.Predicted) || c.Predicted < 0 {
					// The stats contract says this cannot happen; if an
					// external predictor breaks it anyway, rank last
					// deterministically instead of letting NaN poison
					// the argmin (NaN compares false against everything).
					c.Predicted = math.Inf(1)
				}
			}
			rank[name] = roundRank(RoundClassOf(a))
		}
		out = append(out, c)
	}
	sort.SliceStable(out, func(i, j int) bool {
		ri, rj := out[i].Rejected == "", out[j].Rejected == ""
		if ri != rj {
			return ri // runnable before rejected
		}
		if !ri {
			return false // rejected candidates keep preference order
		}
		if out[i].Predicted != out[j].Predicted {
			return out[i].Predicted < out[j].Predicted
		}
		return pred != nil && rank[out[i].Name] < rank[out[j].Name]
	})
	return out
}

// roundRank orders the repobound round classes for tiebreaks: at equal
// predicted load, fewer communication rounds win.
func roundRank(class string) int {
	switch class {
	case "zero":
		return 0
	case "const":
		return 1
	case "log":
		return 2
	case "loop":
		return 3
	default:
		return 4
	}
}

// noCoverError reports a dispatch failure with the full scorecard: which
// candidates were tried and why each was rejected, so a mis-registered
// adapter is visible from the message alone.
func noCoverError(q *hypergraph.Hypergraph, cands []Candidate) error {
	cls := q.Classify()
	if len(cands) == 0 {
		return fmt.Errorf("engine: no dispatch entry for class %s (query %v)", cls, q)
	}
	parts := make([]string, len(cands))
	for i, c := range cands {
		parts[i] = fmt.Sprintf("%s: %s", c.Name, c.Rejected)
	}
	return fmt.Errorf("engine: no registered algorithm covers %v (class %s); candidates tried: %s",
		q, cls, strings.Join(parts, "; "))
}

// Auto returns the algorithm the engine routes q to when no statistics
// are in hand: structural dispatch, equivalent to AutoCost with a
// predictor that abstains — every runnable candidate ties at 0 and the
// Figure 1 preference order decides. Callers holding an instance should
// dispatch through AutoCost (or AutoRun), which ranks the same candidates
// by predicted load.
func Auto(q *hypergraph.Hypergraph) (Algorithm, error) {
	cands := candidates(q, nil)
	for _, c := range cands {
		if c.Rejected == "" {
			a, _ := Lookup(c.Name)
			return a, nil
		}
	}
	return nil, noCoverError(q, cands)
}

// AutoCost is cost-based dispatch: it scores every candidate whose
// Applies accepts the query with a predicted per-server load — the
// algorithm's repoload-verified load class refined by the stats formula
// for its declared Figure 1 bound, evaluated at (IN, outEst, p) — and
// returns the argmin together with the full ranked scorecard. outEst < 0
// asks for EstimateOut's statistics-only estimate; the harness passes the
// memoized naive-count oracle instead. Dispatch is deterministic: the
// predictions are pure functions of (IN, outEst, p), ties fall to the
// declared round class and then the Figure 1 preference order, and no
// data-plane width or worker count is consulted.
func AutoCost(in *core.Instance, p int, outEst int64) (Algorithm, []Candidate, error) {
	if p <= 0 {
		p = DefaultP
	}
	if outEst < 0 {
		outEst = EstimateOut(in)
	}
	cands := candidates(in.Q, func(a Algorithm) (float64, string) {
		return PredictLoad(a, in, outEst, p)
	})
	for _, c := range cands {
		if c.Rejected == "" {
			a, _ := Lookup(c.Name)
			return a, cands, nil
		}
	}
	return nil, cands, noCoverError(in.Q, cands)
}

// PredictLoad predicts the per-server load of running a on in at cluster
// width p, assuming the run emits outEst results: the stats formula for
// the algorithm's declared bound where the catalog has one (hypercube's
// eq. 1 is evaluated over the actual relation sizes), and the
// load-class-seeded fallback for algorithms registered outside the
// catalog. The returned value is finite for every IN ≥ 0, OUT ≥ 0.
func PredictLoad(a Algorithm, in *core.Instance, outEst int64, p int) (float64, string) {
	name, inSize := a.Name(), in.IN()
	if name == "hypercube" && len(in.Rels) <= stats.MaxCartesianRelations {
		sizes := make([]int, len(in.Rels))
		for i, r := range in.Rels {
			sizes[i] = r.Size()
		}
		return stats.CartesianLower(sizes, p), "L_cartesian(p,R) (eq. 1)"
	}
	if pr, ok := stats.Predict(name, inSize, outEst, p); ok {
		return pr.Load, pr.Formula
	}
	pr := stats.PredictClass(LoadClassOf(a), inSize, outEst, p)
	return pr.Load, pr.Formula
}

// EstimateOut is the dispatcher's statistics-only estimate of |Q(R)|: the
// product of relation sizes over a greedy edge cover of the query's
// attributes (the integral relaxation of the AGM bound — an upper
// estimate, since join predicates only filter a cover's product). It
// reads relation sizes, never tuples, runs in O(edges² · attrs), and
// saturates at 2⁶² instead of overflowing. An empty relation empties the
// join exactly.
func EstimateOut(in *core.Instance) int64 {
	const sat = int64(1) << 62
	for _, r := range in.Rels {
		if r.Size() == 0 {
			return 0
		}
	}
	uncovered := in.Q.Attrs()
	est := int64(1)
	for len(uncovered) > 0 {
		best, bestGain, bestSize := -1, 0, 0
		for i, e := range in.Q.Edges {
			gain := e.IntersectSize(uncovered)
			if gain == 0 {
				continue
			}
			sz := in.Rels[i].Size()
			if best < 0 || gain > bestGain || (gain == bestGain && sz < bestSize) {
				best, bestGain, bestSize = i, gain, sz
			}
		}
		if best < 0 {
			break // unreachable on a valid instance: every attr has an edge
		}
		uncovered = uncovered.Minus(in.Q.Edges[best])
		if sz := int64(in.Rels[best].Size()); sz > 1 {
			if est > sat/sz {
				return sat
			}
			est *= sz
		}
	}
	return est
}

// Route names Auto's structural choice for q, or "" when nothing covers
// it. Display helper for the classify command and the examples.
func Route(q *hypergraph.Hypergraph) string {
	a, err := Auto(q)
	if err != nil {
		return ""
	}
	return a.Name()
}
