package engine

import (
	"strings"
	"testing"

	"repro/internal/hypergraph"
)

// withCyclicDispatch swaps the cyclic class's dispatch list for the test
// and restores it. Serial only — the dispatch table is package state.
func withCyclicDispatch(t *testing.T, names []string, body func()) {
	t.Helper()
	old := dispatch[hypergraph.Cyclic]
	dispatch[hypergraph.Cyclic] = names
	defer func() { dispatch[hypergraph.Cyclic] = old }()
	body()
}

// TestCandidatesScorecard pins the per-candidate rejection reasons: a name
// missing from the registry and a shape mismatch must both be visible in
// the scorecard, ranked after every runnable candidate.
func TestCandidatesScorecard(t *testing.T) {
	withCyclicDispatch(t, []string{"ghost", "hypercube", "triangle", "naive"}, func() {
		cands := candidates(hypergraph.Triangle(), nil)
		got := map[string]string{}
		for _, c := range cands {
			got[c.Name] = c.Rejected
		}
		if got["ghost"] != "not registered" {
			t.Errorf("ghost rejected %q, want \"not registered\"", got["ghost"])
		}
		if got["hypercube"] != "Applies rejects the query" {
			t.Errorf("hypercube rejected %q, want the Applies reason", got["hypercube"])
		}
		want := []string{"triangle", "naive", "ghost", "hypercube"}
		for i, c := range cands {
			if c.Name != want[i] {
				t.Fatalf("scorecard order %v, want runnable-first %v", cands, want)
			}
		}
	})
}

// TestAutoErrorListsCandidates: when nothing covers the query, the error
// names every candidate tried and why each was rejected.
func TestAutoErrorListsCandidates(t *testing.T) {
	withCyclicDispatch(t, []string{"ghost", "hypercube"}, func() {
		_, err := Auto(hypergraph.Triangle())
		if err == nil {
			t.Fatal("Auto with no runnable candidate must fail")
		}
		for _, want := range []string{"ghost: not registered", "hypercube: Applies rejects the query", "cyclic"} {
			if !strings.Contains(err.Error(), want) {
				t.Errorf("error %q does not mention %q", err, want)
			}
		}
	})
}

// TestTiebreakModes pins the two tiebreak regimes the dispatcher promises:
// without statistics the Figure 1 preference order decides (triangle before
// the naive oracle), and with statistics an exact load tie falls to the
// declared round class (naive's zero rounds beat triangle's constant).
func TestTiebreakModes(t *testing.T) {
	q := hypergraph.Triangle()
	structural := candidates(q, nil)
	if structural[0].Name != "triangle" {
		t.Errorf("structural tiebreak = %s, want the preference order's triangle", structural[0].Name)
	}
	flat := candidates(q, func(Algorithm) (float64, string) { return 5, "flat" })
	if flat[0].Name != "naive" {
		t.Errorf("equal-load tiebreak = %s, want naive (fewer rounds)", flat[0].Name)
	}
}

// TestRoundRankOrder pins the round-class ordering used for load ties.
func TestRoundRankOrder(t *testing.T) {
	classes := []string{"zero", "const", "log", "loop", "unknown"}
	for i := 1; i < len(classes); i++ {
		if roundRank(classes[i-1]) >= roundRank(classes[i]) {
			t.Errorf("roundRank(%s) should rank before %s", classes[i-1], classes[i])
		}
	}
}
