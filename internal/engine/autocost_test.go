package engine_test

import (
	"math"
	"reflect"
	"testing"

	"repro/internal/engine"
	"repro/internal/gen"
	"repro/internal/hypergraph"
	"repro/internal/mpc"
)

// TestAutoCostCatalog sweeps cost-based dispatch over the full catalog:
// the pick must satisfy Applies, head the scorecard, carry a finite
// prediction, and the runnable prefix must be sorted by ascending
// predicted load; a second dispatch on the same instance must reproduce
// the scorecard exactly (dispatch is a pure function of the statistics).
func TestAutoCostCatalog(t *testing.T) {
	const p, seed = 16, uint64(2019)
	for i, e := range hypergraph.Catalog() {
		in := gen.ForQuery(mpc.NewChildRng(seed, i), e.Q, 64, 6)
		a, cands, err := engine.AutoCost(in, p, -1)
		if err != nil {
			t.Errorf("%s: AutoCost failed: %v", e.Name, err)
			continue
		}
		if !a.Applies(e.Q) {
			t.Errorf("%s: cost pick %s but Applies rejects the query", e.Name, a.Name())
		}
		if len(cands) == 0 || cands[0].Name != a.Name() || cands[0].Rejected != "" {
			t.Errorf("%s: pick %s does not head the scorecard %+v", e.Name, a.Name(), cands)
		}
		prev := math.Inf(-1)
		rejectedSeen := false
		for _, c := range cands {
			if c.Rejected != "" {
				rejectedSeen = true
				continue
			}
			if rejectedSeen {
				t.Errorf("%s: runnable %s ranked after a rejected candidate", e.Name, c.Name)
			}
			if math.IsNaN(c.Predicted) || math.IsInf(c.Predicted, 0) || c.Predicted < 0 {
				t.Errorf("%s: %s predicted %v, want finite ≥ 0", e.Name, c.Name, c.Predicted)
			}
			if c.PredictedBy == "" {
				t.Errorf("%s: %s has no predictor formula", e.Name, c.Name)
			}
			if c.Predicted < prev {
				t.Errorf("%s: scorecard not sorted by predicted load: %+v", e.Name, cands)
			}
			prev = c.Predicted
		}
		a2, cands2, err := engine.AutoCost(in, p, -1)
		if err != nil || a2.Name() != a.Name() || !reflect.DeepEqual(cands, cands2) {
			t.Errorf("%s: dispatch not deterministic: %s/%+v vs %s/%+v (err %v)",
				e.Name, a.Name(), cands, a2.Name(), cands2, err)
		}
	}
}

// TestAutoRunRecordsScorecard: AutoRun must fill the predicted-vs-actual
// fields and run exactly what Run would run for the picked algorithm.
func TestAutoRunRecordsScorecard(t *testing.T) {
	in := gen.Line3Random(mpc.NewRng(11), 256, 512)
	job := engine.Job{In: in, P: 8, Seed: 11, CheckOracle: true}
	res, err := engine.AutoRun(job)
	if err != nil {
		t.Fatalf("AutoRun: %v", err)
	}
	if len(res.Candidates) == 0 || res.Candidates[0].Name != res.Algorithm {
		t.Fatalf("scorecard missing or not headed by the pick: %+v", res.Candidates)
	}
	if res.Predicted <= 0 || res.PredictedBy == "" {
		t.Errorf("predicted load not recorded: %v via %q", res.Predicted, res.PredictedBy)
	}
	direct, err := engine.RunNamed(res.Algorithm, job)
	if err != nil {
		t.Fatalf("RunNamed(%s): %v", res.Algorithm, err)
	}
	if res.OUT != direct.OUT || res.Load != direct.Load || res.Rounds != direct.Rounds {
		t.Errorf("AutoRun (OUT=%d L=%d R=%d) != RunNamed (OUT=%d L=%d R=%d)",
			res.OUT, res.Load, res.Rounds, direct.OUT, direct.Load, direct.Rounds)
	}
	if direct.Candidates != nil {
		t.Error("explicitly-named runs must not claim a dispatch scorecard")
	}
}

// TestEstimateOut pins the statistics-only OUT estimate: exact zero on an
// empty relation, the exact product on Cartesian products, and positive on
// joins.
func TestEstimateOut(t *testing.T) {
	prod := gen.CartesianSizes(8, 4, 2)
	if got := engine.EstimateOut(prod); got != 8*4*2 {
		t.Errorf("EstimateOut(product 8×4×2) = %d, want 64", got)
	}
	empty := gen.CartesianSizes(8, 0, 2)
	if got := engine.EstimateOut(empty); got != 0 {
		t.Errorf("EstimateOut with an empty relation = %d, want 0", got)
	}
	line := gen.Line3Random(mpc.NewRng(3), 128, 256)
	if got := engine.EstimateOut(line); got <= 0 {
		t.Errorf("EstimateOut(line3) = %d, want > 0", got)
	}
}
