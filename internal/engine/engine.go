// Package engine is the repository's unified execution surface: every join
// algorithm in internal/core is wrapped as an Algorithm, published in a
// registry, and selected per query by cost-based dispatch. Callers
// describe WHAT to run with a Job and read the measurement back as a
// Result; they never touch clusters, emitters or per-algorithm signatures
// directly.
//
// The paper's Figure 1 hierarchy (tall-flat ⊂ hierarchical ⊂
// r-hierarchical ⊂ acyclic) is executable here: classification names the
// candidate set, and AutoCost ranks the candidates by predicted
// per-server load — each adapter's repoload-verified load class refined
// by the stats formula for its declared bound — picking the argmin, with
// the Figure 1 preference order as the deterministic tiebreak. Auto is
// the statistics-free projection (preference order alone), and every
// Result records predicted next to measured load so mispredictions are
// visible. This is the seam the ROADMAP's cross-process sharding item
// plugs into — a serving layer only needs Job in, Result out.
package engine

import (
	"errors"
	"fmt"

	"repro/internal/core"
	"repro/internal/hypergraph"
	"repro/internal/mpc"
	"repro/internal/relation"
)

// Algorithm is one join algorithm behind the unified API. Applies reports
// whether the algorithm's guarantee covers the query (shape and class
// checks only — never data); Run executes it on the job's cluster, emitting
// every result through the job's emitter, and returns the distributed
// result (nil for algorithms that do not materialize one).
type Algorithm interface {
	Name() string
	Applies(q *hypergraph.Hypergraph) bool
	Run(job Job) (*mpc.Dist, error)
}

// Job describes one execution: the instance plus every knob an algorithm
// can take. Zero values select defaults (P=DefaultP, the instance's
// semiring, a fresh cluster, no verification).
type Job struct {
	// In is the (query, relations) pair to join. Required.
	In *core.Instance
	// P is the cluster size; 0 selects DefaultP.
	P int
	// Seed drives every pseudorandom choice an algorithm makes.
	Seed uint64
	// Ring overrides the instance's semiring without mutating it.
	Ring *relation.Semiring
	// Emitter, when non-nil, observes every emitted result alongside the
	// engine's own counter. A materializing observer shared across
	// concurrent jobs must wrap in mpc.Synchronized (one mutex): jobs
	// running on different clusters reuse server indices, so a shared
	// mpc.ShardedEmitter would break its single-producer-per-partition
	// contract. For lock-free materialization give each job its own
	// collector — Job.Materialize does exactly that.
	Emitter mpc.Emitter
	// Materialize asks Run to collect the emitted results into
	// Result.Table through a lock-free mpc.ShardedEmitter (per-server
	// buffers, deterministic server-major merge order).
	Materialize bool
	// Tau overrides the line-3 heavy/light degree threshold (≤ 0 keeps the
	// paper's balanced τ = √(OUT/IN)).
	Tau int64
	// Order is the Yannakakis join order (nil = along the join tree).
	Order []int
	// GroupBy is the output attribute set of aggregate runs.
	GroupBy hypergraph.AttrSet
	// Reduce asks one-round algorithms to run the linear-load semi-join
	// reduction first (the multi-round Table 1 variant).
	Reduce bool
	// Want is the expected output size, enforced when CheckWant is set.
	Want int64
	// CheckWant verifies the measured OUT against Want (set both when the
	// oracle count is already known — the harness computes it once per
	// instance and shares it across algorithms).
	CheckWant bool
	// CheckOracle verifies the measured OUT against core.NaiveCount,
	// computed by the engine. Expensive: materializes the sequential join.
	CheckOracle bool

	// Cluster is the cluster the job runs on. Run fills it with a fresh
	// mpc.NewCluster(P); pre-setting it is for tests that replay rounds.
	Cluster *mpc.Cluster
}

// DefaultP is the cluster size when Job.P is zero, matching the paper's
// default experiment scale.
const DefaultP = 64

// Result is one measured execution: what the bare (OUT, load, rounds)
// tuples of the old harness carried, plus provenance.
type Result struct {
	// Algorithm is the registry name of the algorithm that ran.
	Algorithm string
	// OUT is the number of results emitted.
	OUT int64
	// Annot is the semiring sum of emitted annotations (the aggregate value
	// for scalar algorithms such as "count").
	Annot int64
	// Load is the realized load L: max tuples received by any server in
	// any round, including the initial distribution.
	Load int
	// Rounds is the number of communication rounds.
	Rounds int
	// Bound names the load bound the algorithm tracks.
	Bound string
	// LoadClass is the algorithm's declared load class (perP, frac, or
	// linear), statically verified by the repoload analyzer. "" when the
	// algorithm declares none.
	LoadClass string
	// Predicted is the per-server load the dispatcher's cost model
	// predicted for this run before it executed (PredictLoad over the
	// job's OUT estimate: Want when the caller knew the oracle count, the
	// EstimateOut statistics otherwise). Compare against Load to see
	// mispredictions; the Fig1 tables and cmd/classify render the ratio.
	Predicted float64
	// PredictedBy names the stats formula behind Predicted.
	PredictedBy string
	// Candidates is the ranked scorecard cost-based dispatch considered
	// (argmin first, rejected candidates last). Nil when the algorithm
	// was chosen explicitly rather than through AutoRun.
	Candidates []Candidate
	// TotalComm is the total number of tuples communicated across all
	// rounds and servers, excluding the initial distribution. Rounds
	// merged from sub-clusters contribute their per-round maxima — the
	// only statistic the model's composition rules preserve.
	TotalComm int
	// Exchange reports the batched exchange's counters for the run —
	// routed rounds, tuples delivered, active destinations — including
	// exchanges executed on merged sub-clusters. Synthetically charged
	// communication (Charge/ChargeRound: statistics passes, packed
	// groups, directory broadcasts) is counted by TotalComm but is not an
	// exchange, so algorithms that route nothing physically report zero.
	Exchange mpc.ExchangeStats
	// Verified is true when a requested OUT check ran and passed.
	Verified bool
	// Dist is the distributed result, when the algorithm materializes one.
	Dist *mpc.Dist
	// Table is the emitted result materialized by Job.Materialize
	// (nil otherwise).
	Table *relation.Relation
}

// ErrVerify wraps every output-verification failure, so callers can report
// mismatches without losing the measurement.
var ErrVerify = errors.New("output verification failed")

// instance returns the effective instance: the job's, re-rung when Ring is
// set (shallow copy — relations are shared, never mutated).
func (job Job) instance() *core.Instance {
	if job.Ring == nil {
		return job.In
	}
	cp := *job.In
	cp.Ring = *job.Ring
	return &cp
}

// Run executes a on a fresh cluster sized per job and measures it. The
// returned Result is valid even when err wraps ErrVerify — the run
// completed, only the check failed.
func Run(a Algorithm, job Job) (Result, error) {
	if job.In == nil {
		return Result{}, fmt.Errorf("engine: job has no instance")
	}
	if !a.Applies(job.In.Q) {
		return Result{}, fmt.Errorf("engine: %s does not apply to %v (class %s)",
			a.Name(), job.In.Q, job.In.Q.Classify())
	}
	if job.P == 0 {
		job.P = DefaultP
	}
	job.In = job.instance()
	job.Ring = nil
	if job.Cluster == nil {
		job.Cluster = mpc.NewCluster(job.P)
	}
	counter := mpc.NewCountEmitter(job.In.Ring)
	sinks := mpc.MultiEmitter{counter}
	var table *mpc.ShardedEmitter
	if job.Materialize {
		// Partitioned by the actual cluster width: a pre-set Job.Cluster
		// may be wider than P, and algorithms emit with its server ids.
		table = mpc.NewShardedEmitter(emitSchema(a, job), job.Cluster.P)
		sinks = append(sinks, table)
	}
	if job.Emitter != nil {
		sinks = append(sinks, job.Emitter)
	}
	job.Emitter = sinks

	dist, err := a.Run(job)
	if err != nil {
		return Result{Algorithm: a.Name()}, fmt.Errorf("engine: %s: %w", a.Name(), err)
	}
	predicted, predictedBy := PredictLoad(a, job.In, outEstimate(job), job.P)
	res := Result{
		Algorithm:   a.Name(),
		OUT:         counter.N,
		Annot:       counter.AnnotSum,
		Load:        job.Cluster.MaxLoad(),
		Rounds:      job.Cluster.Rounds(),
		Bound:       BoundOf(a),
		LoadClass:   LoadClassOf(a),
		Predicted:   predicted,
		PredictedBy: predictedBy,
		TotalComm:   job.Cluster.TotalComm(),
		Exchange:    job.Cluster.Exchange(),
		Dist:        dist,
	}
	if table != nil {
		res.Table = table.Rel()
	}
	want, check := job.Want, job.CheckWant
	// CheckOracle stands down for non-full-join algorithms (scalar and
	// aggregate emissions are not the full join's cardinality).
	if job.CheckOracle && IsFullJoin(a) {
		if isOracle(a) {
			// The algorithm IS the oracle; re-running the sequential join
			// would verify it against itself at double the dominant cost.
			res.Verified = true
		} else {
			want, check = core.NaiveCount(job.In), true
		}
	}
	if check {
		if res.OUT != want {
			return res, fmt.Errorf("engine: %s: %w: emitted %d results, oracle says %d",
				a.Name(), ErrVerify, res.OUT, want)
		}
		res.Verified = true
	}
	return res, nil
}

// emitSchema is the schema of what a emits under job: the full join's
// canonical output schema for full-join algorithms, the group-by schema
// for aggregates, and the empty schema for scalar emissions.
func emitSchema(a Algorithm, job Job) relation.Schema {
	if IsFullJoin(a) {
		return job.In.OutputSchema()
	}
	if len(job.GroupBy) > 0 {
		return job.GroupBy.Schema()
	}
	return relation.Schema{}
}

// isOracle reports whether a declares itself the verification oracle.
func isOracle(a Algorithm) bool {
	if o, ok := a.(interface{ Oracle() bool }); ok {
		return o.Oracle()
	}
	return false
}

// RunNamed looks the algorithm up in the registry and runs it.
func RunNamed(name string, job Job) (Result, error) {
	a, ok := Lookup(name)
	if !ok {
		return Result{}, fmt.Errorf("engine: unknown algorithm %q (have %v)", name, Names())
	}
	return Run(a, job)
}

// outEstimate is the OUT the dispatcher predicts with: the caller-known
// oracle count when the job carries one (the harness computes it once per
// instance anyway), the statistics-only EstimateOut otherwise. Never the
// measured OUT — predictions are made strictly from pre-run information.
func outEstimate(job Job) int64 {
	if job.CheckWant && job.Want >= 0 {
		return job.Want
	}
	return EstimateOut(job.In)
}

// AutoRun dispatches the job's query through cost-based dispatch
// (AutoCost) and runs the argmin candidate: the whole engine API in one
// call. The Result carries the ranked candidate scorecard alongside the
// predicted and measured loads, so mispredictions are visible to every
// caller.
func AutoRun(job Job) (Result, error) {
	if job.In == nil {
		return Result{}, fmt.Errorf("engine: job has no instance")
	}
	a, cands, err := AutoCost(job.In, job.P, outEstimate(job))
	if err != nil {
		return Result{Candidates: cands}, err
	}
	res, err := Run(a, job)
	res.Candidates = cands
	return res, err
}

// BoundOf names the load bound a tracks, or "" when the algorithm does not
// declare one.
func BoundOf(a Algorithm) string {
	if b, ok := a.(interface{ Bound() string }); ok {
		return b.Bound()
	}
	return ""
}

// RoundClassOf returns a's declared round class (zero, const, log, or
// loop), or "" when the algorithm does not implement the optional
// RoundClass method. The repobound analyzer verifies the declaration
// statically; the harness checks it against observed Result.Rounds.
func RoundClassOf(a Algorithm) string {
	if r, ok := a.(interface{ RoundClass() string }); ok {
		return r.RoundClass()
	}
	return ""
}

// LoadClassOf returns a's declared load class (perP, frac, or linear), or
// "" when the algorithm does not implement the optional LoadClass method.
// The repoload analyzer verifies the declaration statically; the harness
// checks it against observed Result.Load scaling across cluster widths.
func LoadClassOf(a Algorithm) string {
	if l, ok := a.(interface{ LoadClass() string }); ok {
		return l.LoadClass()
	}
	return ""
}
