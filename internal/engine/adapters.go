package engine

import (
	"repro/internal/core"
	"repro/internal/hypergraph"
	"repro/internal/mpc"
	"repro/internal/relation"
)

// adapter wraps one core algorithm as an Algorithm. Every algorithm name in
// the repository lives here and only here: callers reach algorithms through
// Lookup/Auto/AutoCost, never through per-algorithm switch statements. The
// names double as the key into stats.Predict — the dispatcher's cost model
// maps each name's declared bound to its quantitative formula, so renaming
// an adapter without updating internal/stats/predict.go demotes it to the
// load-class fallback predictor (the catalog dispatch tests pin that every
// registered name has a per-name formula).
type adapter struct {
	name  string
	bound string
	// rounds is the machine-checkable round class (zero, const, log, or
	// loop): the repobound analyzer verifies the run body's static class
	// stays within it, and the harness checks observed Result.Rounds
	// against it across the experiment matrix.
	rounds string
	// load is the machine-checkable load class (perP, frac, or linear):
	// the repoload analyzer verifies the run body's static load class
	// stays within it and the bound prose claims nothing stronger, and
	// the harness checks observed Result.Load scaling against it.
	load string
	// fullJoin marks algorithms whose emissions are the full join result,
	// i.e. whose OUT the naive oracle can verify. Scalar algorithms (count)
	// and aggregates emit different cardinalities.
	fullJoin bool
	// oracle marks the verification oracle itself: CheckOracle against it
	// would just run the same sequential join twice.
	oracle  bool
	applies func(q *hypergraph.Hypergraph) bool
	run     func(job Job) (*mpc.Dist, error)
}

func (a *adapter) Name() string                          { return a.name }
func (a *adapter) Bound() string                         { return a.bound }
func (a *adapter) RoundClass() string                    { return a.rounds }
func (a *adapter) LoadClass() string                     { return a.load }
func (a *adapter) FullJoin() bool                        { return a.fullJoin }
func (a *adapter) Oracle() bool                          { return a.oracle }
func (a *adapter) Applies(q *hypergraph.Hypergraph) bool { return a.applies(q) }
func (a *adapter) Run(job Job) (*mpc.Dist, error)        { return a.run(job) }

// IsFullJoin reports whether a's emissions are the full join result (and
// therefore oracle-verifiable). Algorithms outside this package that do not
// implement the optional FullJoin method are assumed to be full joins.
func IsFullJoin(a Algorithm) bool {
	if f, ok := a.(interface{ FullJoin() bool }); ok {
		return f.FullJoin()
	}
	return true
}

func isRHier(q *hypergraph.Hypergraph) bool {
	return q.IsAcyclic() && q.IsRHierarchical()
}

func anyQuery(*hypergraph.Hypergraph) bool { return true }

func init() {
	Register(&adapter{
		name: "yannakakis", bound: "IN/p + OUT/p", load: "perP", rounds: "const", fullJoin: true,
		applies: (*hypergraph.Hypergraph).IsAcyclic,
		run: func(job Job) (*mpc.Dist, error) {
			return core.Yannakakis(job.Cluster, job.In, job.Order, job.Seed, job.Emitter), nil
		},
	})
	Register(&adapter{
		name: "acyclic", bound: "IN/p + √(IN·OUT/p)", load: "frac", rounds: "const", fullJoin: true,
		applies: (*hypergraph.Hypergraph).IsAcyclic,
		run: func(job Job) (*mpc.Dist, error) {
			return core.AcyclicJoin(job.Cluster, job.In, job.Seed, job.Emitter), nil
		},
	})
	Register(&adapter{
		name: "line3", bound: "IN/p + √(IN·OUT/p)", load: "frac", rounds: "const", fullJoin: true,
		applies: core.IsLine3Query,
		run: func(job Job) (*mpc.Dist, error) {
			return core.Line3WithTau(job.Cluster, job.In, job.Tau, job.Seed, job.Emitter), nil
		},
	})
	Register(&adapter{
		name: "line3wc", bound: "IN/√p (worst-case)", load: "frac", rounds: "const", fullJoin: true,
		applies: core.IsLine3Query,
		run: func(job Job) (*mpc.Dist, error) {
			return core.Line3WorstCase(job.Cluster, job.In, job.Seed, job.Emitter), nil
		},
	})
	Register(&adapter{
		name: "rhier", bound: "IN/p + L_instance(p,R)", load: "frac", rounds: "const", fullJoin: true,
		applies: isRHier,
		run: func(job Job) (*mpc.Dist, error) {
			return core.RHier(job.Cluster, job.In, job.Seed, job.Emitter), nil
		},
	})
	Register(&adapter{
		name: "binhc", bound: "IN/p + degree shares (Table 1)", load: "frac", rounds: "const", fullJoin: true,
		applies: isRHier,
		run: func(job Job) (*mpc.Dist, error) {
			return core.BinHC(job.Cluster, job.In, job.Seed, job.Reduce, job.Emitter), nil
		},
	})
	Register(&adapter{
		name: "hypercube", bound: "L_cartesian(p,R) (eq. 1)", load: "frac", rounds: "const", fullJoin: true,
		applies: core.IsProductQuery,
		run: func(job Job) (*mpc.Dist, error) {
			return core.HyperCubeProduct(job.Cluster, job.In, job.Seed, job.Emitter), nil
		},
	})
	Register(&adapter{
		name: "triangle", bound: "IN/p^(2/3)", load: "frac", rounds: "const", fullJoin: true,
		applies: core.IsTriangleQuery,
		run: func(job Job) (*mpc.Dist, error) {
			return core.Triangle(job.Cluster, job.In, job.Seed, job.Emitter), nil
		},
	})
	Register(&adapter{
		name: "naive", bound: "sequential oracle", load: "linear", rounds: "zero", fullJoin: true, oracle: true,
		applies: anyQuery,
		run: func(job Job) (*mpc.Dist, error) {
			rel := core.Naive(job.In)
			for i, t := range rel.Tuples {
				a := job.In.Ring.One
				if i < len(rel.Annots) {
					a = rel.Annots[i]
				}
				job.Emitter.Emit(0, t, a)
			}
			return nil, nil
		},
	})
	Register(&adapter{
		name: "count", bound: "IN/p (Cor. 4)", load: "perP", rounds: "const", fullJoin: false,
		applies: (*hypergraph.Hypergraph).IsAcyclic,
		run: func(job Job) (*mpc.Dist, error) {
			n := core.CountOutput(job.Cluster, job.In, job.Seed)
			// One scalar emission: Result.Annot carries |Q(R)|.
			job.Emitter.Emit(0, relation.Tuple{}, n)
			return nil, nil
		},
	})
	Register(&adapter{
		name: "aggregate", bound: "IN/p + √(IN·OUT_y/p)", load: "frac", rounds: "const", fullJoin: false,
		applies: (*hypergraph.Hypergraph).IsAcyclic,
		run: func(job Job) (*mpc.Dist, error) {
			return core.Aggregate(job.Cluster, job.In, job.GroupBy, job.Seed, job.Emitter), nil
		},
	})
}
