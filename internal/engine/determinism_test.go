package engine_test

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/engine"
	"repro/internal/gen"
	"repro/internal/hypergraph"
	"repro/internal/mpc"
	"repro/internal/primitives"
	"repro/internal/runtime"
)

// renderCatalogRuns executes every catalog query through Auto dispatch at
// the given data-plane width, materializing the emitted result through the
// engine's ShardedEmitter, and renders every observable of the Result —
// counts, load, rounds, comm and exchange statistics, and the materialized
// table itself — into one string.
func renderCatalogRuns(t *testing.T, width int) string {
	t.Helper()
	prev := runtime.SetParallelism(width)
	defer runtime.SetParallelism(prev)

	var b strings.Builder
	for i, e := range hypergraph.Catalog() {
		rng := mpc.NewChildRng(2019, i)
		in := gen.ForQuery(rng, e.Q, 256, 12)
		a, err := engine.Auto(e.Q)
		if err != nil {
			t.Fatalf("%s: %v", e.Name, err)
		}
		res, err := engine.Run(a, engine.Job{In: in, P: 16, Seed: 2019, Materialize: true})
		if err != nil {
			t.Fatalf("%s: %v", e.Name, err)
		}
		fmt.Fprintf(&b, "%s %s OUT=%d annot=%d L=%d rounds=%d comm=%d exch=%+v\n",
			e.Name, res.Algorithm, res.OUT, res.Annot, res.Load, res.Rounds,
			res.TotalComm, res.Exchange)
		fmt.Fprintf(&b, "  table(%d): %v %v\n", res.Table.Size(), res.Table.Tuples, res.Table.Annots)
	}
	return b.String()
}

// TestEngineDeterministicAcrossWidths is the data plane's end-to-end
// guarantee: every engine result — including the table materialized
// through the lock-free ShardedEmitter — is byte-identical between the
// serial reference (width 1) and parallel widths, with the columnar record
// pool in both states. Run under -race (the Makefile ci target does) this
// also proves the batched exchange, the parallel sub-clusters, the pooled
// record columns, and the sharded emitters are data-race free.
func TestEngineDeterministicAcrossWidths(t *testing.T) {
	serial := renderCatalogRuns(t, 1)
	for _, pooled := range []bool{true, false} {
		prevPool := primitives.SetRecordPooling(pooled)
		for _, w := range []int{1, 2, 8} {
			if pooled && w == 1 {
				continue // the reference render itself
			}
			if got := renderCatalogRuns(t, w); got != serial {
				primitives.SetRecordPooling(prevPool)
				t.Fatalf("pool=%v width %d differs from serial:\n--- reference ---\n%s\n--- got ---\n%s",
					pooled, w, serial, got)
			}
		}
		primitives.SetRecordPooling(prevPool)
	}
}
