package core

import (
	"math/rand"
	"testing"

	"repro/internal/hypergraph"
	"repro/internal/mpc"
	"repro/internal/relation"
)

// randInstance builds a random instance for an arbitrary hypergraph with
// per-attribute domain sizes, as sets.
func randInstance(rng *rand.Rand, q *hypergraph.Hypergraph, size int, dom int) *Instance {
	rels := make([]*relation.Relation, len(q.Edges))
	for i, e := range q.Edges {
		r := relation.New("R", e.Schema())
		for j := 0; j < size; j++ {
			t := make([]relation.Value, len(e))
			for k := range t {
				t[k] = relation.Value(rng.Intn(dom))
			}
			r.Add(t...)
		}
		rels[i] = r.Dedup()
	}
	return NewInstance(q, rels...)
}

func TestNaiveBasics(t *testing.T) {
	r1 := relation.New("R1", relation.NewSchema(1, 2))
	r2 := relation.New("R2", relation.NewSchema(2, 3))
	r1.Add(1, 10)
	r1.Add(2, 10)
	r2.Add(10, 5)
	in := NewInstance(hypergraph.Line2(), r1, r2)
	out := Naive(in)
	if out.Size() != 2 {
		t.Fatalf("naive join size = %d, want 2", out.Size())
	}
	if !out.Schema.Equal(relation.NewSchema(1, 2, 3)) {
		t.Errorf("schema = %v", out.Schema)
	}
}

func TestNaiveEmptyInstance(t *testing.T) {
	in := &Instance{Q: hypergraph.New(), Ring: relation.CountRing}
	out := Naive(in)
	if out.Size() != 1 {
		t.Errorf("empty join should have one empty tuple, got %d", out.Size())
	}
}

func TestNaiveSemiJoinReduce(t *testing.T) {
	r1 := relation.New("R1", relation.NewSchema(1, 2))
	r2 := relation.New("R2", relation.NewSchema(2, 3))
	r3 := relation.New("R3", relation.NewSchema(3, 4))
	r1.Add(1, 10)
	r1.Add(2, 11) // dangling: 11 not in R2
	r2.Add(10, 20)
	r2.Add(12, 21) // dangling: 12 not in R1
	r3.Add(20, 30)
	r3.Add(21, 31) // dangling after R2's (12,21) is removed
	in := NewInstance(hypergraph.Line3(), r1, r2, r3)
	red := NaiveSemiJoinReduce(in)
	if red.Rels[0].Size() != 1 || red.Rels[1].Size() != 1 || red.Rels[2].Size() != 1 {
		t.Errorf("reduced sizes = %d,%d,%d want 1,1,1",
			red.Rels[0].Size(), red.Rels[1].Size(), red.Rels[2].Size())
	}
	if NaiveCount(red) != NaiveCount(in) {
		t.Error("semi-join reduction changed the join result")
	}
}

func TestFullReduceMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 15; trial++ {
		in := randInstance(rng, hypergraph.Line3(), 30, 6)
		c := mpc.NewCluster(1 + rng.Intn(8))
		dists := LoadInstance(c, in)
		red := FullReduce(in, dists)
		want := NaiveSemiJoinReduce(in)
		for i := range red {
			relEqual(t, red[i].ToRelation("got"), want.Rels[i])
		}
	}
}

func TestDefaultJoinOrderConnected(t *testing.T) {
	for _, q := range []*hypergraph.Hypergraph{
		hypergraph.Line3(), hypergraph.LineK(5), hypergraph.StarK(4),
		hypergraph.Q1TallFlat(), hypergraph.Fig5Example(),
	} {
		order := DefaultJoinOrder(q)
		if len(order) != len(q.Edges) {
			t.Fatalf("order covers %d of %d", len(order), len(q.Edges))
		}
		acc := q.Edges[order[0]]
		for _, e := range order[1:] {
			if acc.Disjoint(q.Edges[e]) {
				t.Errorf("%v: order %v disconnects at edge %d", q, order, e)
			}
			acc = acc.Union(q.Edges[e])
		}
	}
}

func TestYannakakisMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	queries := []*hypergraph.Hypergraph{
		hypergraph.Line2(), hypergraph.Line3(), hypergraph.LineK(4),
		hypergraph.StarK(3), hypergraph.Q2Hierarchical(), hypergraph.Fig5Example(),
	}
	for _, q := range queries {
		for trial := 0; trial < 5; trial++ {
			in := randInstance(rng, q, 20, 4)
			c := mpc.NewCluster(1 + rng.Intn(8))
			em := mpc.NewCollectEmitter(in.OutputSchema())
			Yannakakis(c, in, nil, uint64(trial), em)
			relEqual(t, em.Rel, Naive(in))
		}
	}
}

func TestYannakakisCustomOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	in := randInstance(rng, hypergraph.Line3(), 40, 5)
	want := Naive(in)
	for _, order := range [][]int{{0, 1, 2}, {2, 1, 0}, {1, 0, 2}, {1, 2, 0}} {
		c := mpc.NewCluster(4)
		em := mpc.NewCollectEmitter(in.OutputSchema())
		Yannakakis(c, in, order, 3, em)
		relEqual(t, em.Rel, want)
	}
}

func TestYannakakisWrongOrderLengthPanics(t *testing.T) {
	in := randInstance(rand.New(rand.NewSource(1)), hypergraph.Line3(), 5, 3)
	c := mpc.NewCluster(2)
	defer func() {
		if recover() == nil {
			t.Fatal("bad order length did not panic")
		}
	}()
	Yannakakis(c, in, []int{0, 1}, 1, nil)
}
