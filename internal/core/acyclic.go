package core

import (
	"fmt"
	"math"

	"repro/internal/hypergraph"
	"repro/internal/mpc"
	"repro/internal/primitives"
	"repro/internal/relation"
)

// AcyclicJoin is the paper's Section 5.1 output-optimal algorithm for an
// arbitrary acyclic join, with load O(IN/p + √(IN·OUT/p)).
//
// After removing dangling tuples and computing OUT, it recursively picks an
// internal join-tree node e0 whose children e1…ek are all leaves, splits
// each child's tuples into heavy/light by the degree of their join
// assignment (threshold τ = √(OUT/Nβ), Nβ = IN − Σ|R(ei)|), and decomposes
// the join into the 2^k heavy/light sub-joins:
//
//   - a sub-join containing a heavy child e_h is computed as
//     R^H(e_h) ⋈ [ (R(e0) ⋉ R^H(e_h)) ⋈ rest ]   (steps 2.1–2.3):
//     the bracketed intermediate has ≤ OUT/τ tuples;
//   - the all-light sub-join further splits R(e0) by the PRODUCT of its
//     light-child degrees: heavy e0-tuples go through a keyed multiway
//     (tall-flat) join (steps 3.1.1–3.1.3), light e0-tuples produce an
//     intermediate of ≤ Nβ·τ tuples that replaces the whole subtree and
//     recurses (step 3.2).
//
// Every intermediate is therefore bounded by max(OUT/τ, Nβ·τ) = √(Nβ·OUT),
// which is the whole point: Section 4.1 shows no single join order achieves
// this, but the degree decomposition always does.
//
//lint:load frac
//lint:rounds const
func AcyclicJoin(c *mpc.Cluster, in *Instance, seed uint64, em mpc.Emitter) *mpc.Dist {
	if !in.Q.IsAcyclic() {
		panic("core: AcyclicJoin on cyclic query")
	}
	outSchema := in.OutputSchema()
	dists := LoadInstance(c, in)
	dists = FullReduce(in, dists)
	out := CountOutputDists(in.Q, dists, seed^0x2000)
	if out == 0 {
		return mpc.NewDist(c, outSchema)
	}
	res := acyclicRec(c, in.Q.Edges, dists, in.Ring, out, seed, 0)
	res = ProjectLocal(res, outSchema)
	EmitDist(res, outSchema, em)
	return res
}

// acyclicRec computes the (already fully reduced) join of edges/dists and
// returns the result over the union of their attributes. out is the output
// size of the ORIGINAL query (intermediate bounds only need an upper bound).
//
//lint:rounds const trust self-recursion bounded by the query's join-tree depth; each level charges a fixed round schedule
//lint:load frac trust Theorem 6: intermediates are bounded by sqrt(IN*OUT/p) per server at every level
func acyclicRec(c *mpc.Cluster, edges []hypergraph.AttrSet, dists []*mpc.Dist,
	ring relation.Semiring, out int64, seed uint64, depth int) *mpc.Dist {

	if len(dists) == 1 {
		return dists[0]
	}
	if len(dists) == 2 {
		return BinaryJoin(dists[0], dists[1], ring, seed^0x11, nil)
	}
	q := hypergraph.New(edges...)
	tree, ok := q.GYO()
	if !ok {
		panic("core: acyclicRec lost acyclicity")
	}
	e0, children := pickInternalNode(tree)
	if e0 < 0 {
		// Every node is a leaf: at most two nodes — handled above.
		panic("core: no internal node in tree with >2 nodes")
	}

	// Dummy attribute for children sharing nothing with e0 (the paper's
	// H' fix in Figure 5): extend both sides with a constant column.
	edges = append([]hypergraph.AttrSet(nil), edges...)
	work := append([]*mpc.Dist(nil), dists...)
	for i, ch := range children {
		if len(edges[e0].Intersect(edges[ch])) == 0 {
			dummy := relation.Attr(-200 - depth*16 - i)
			edges[e0] = edges[e0].Union(hypergraph.NewAttrSet(dummy))
			edges[ch] = edges[ch].Union(hypergraph.NewAttrSet(dummy))
			work[e0] = addConstColumn(work[e0], dummy)
			work[ch] = addConstColumn(work[ch], dummy)
		}
	}

	// Nβ = IN − Σ_children |R(ei)|; τ = ceil(√(OUT/Nβ)).
	inSize, childSize := 0, 0
	for i, d := range work {
		inSize += d.Size()
		if containsInt(children, i) {
			childSize += d.Size()
		}
	}
	nBeta := inSize - childSize
	if nBeta < 1 {
		nBeta = 1
	}
	tau := int64(math.Ceil(math.Sqrt(float64(out) / float64(nBeta))))
	if tau < 1 {
		tau = 1
	}

	// Split every child by the degree of its join assignment si = e0 ∩ ei.
	k := len(children)
	si := make([][]relation.Attr, k)
	heavyC := make([]*mpc.Dist, k)
	lightC := make([]*mpc.Dist, k)
	for i, ch := range children {
		si[i] = []relation.Attr(edges[e0].Intersect(edges[ch]).Schema())
		deg := primitives.CountByKey(work[ch], si[i], seed^uint64(0x3000+i))
		// Heavy: degree ≥ τ, i.e. > τ−1.
		heavyC[i], lightC[i] = splitByDegree(work[ch], si[i], deg, tau-1)
	}

	// eBar: every edge except e0 and its children.
	var eBar []int
	for i := range edges {
		if i != e0 && !containsInt(children, i) {
			eBar = append(eBar, i)
		}
	}

	var results []*mpc.Dist
	unionSchema := work[e0].Schema
	for _, d := range work {
		unionSchema = unionSchema.Union(d.Schema)
	}

	// Enumerate the 2^k heavy/light patterns.
	for mask := 0; mask < 1<<k; mask++ {
		pick := func(i int) *mpc.Dist {
			if mask&(1<<i) != 0 {
				return heavyC[i]
			}
			return lightC[i]
		}
		pseed := seed ^ uint64(0x5000+mask*64)
		if mask != 0 {
			// Steps (2.1)–(2.3): h = the lowest heavy child.
			h := 0
			for mask&(1<<h) == 0 {
				h++
			}
			if heavyC[h].Size() == 0 {
				continue
			}
			r0 := primitives.SemiJoin(work[e0], si[h], heavyC[h], si[h])
			// R' = R'(e0) ⋈ (other pattern children) ⋈ (⋈ eBar).
			sub := []*mpc.Dist{r0}
			subEdges := []hypergraph.AttrSet{edges[e0]}
			for i := range children {
				if i == h {
					continue
				}
				sub = append(sub, pick(i))
				subEdges = append(subEdges, edges[children[i]])
			}
			for _, e := range eBar {
				sub = append(sub, work[e])
				subEdges = append(subEdges, edges[e])
			}
			rPrime := subJoin(subEdges, sub, ring, pseed^0x2)
			results = append(results, BinaryJoin(heavyC[h], rPrime, ring, pseed^0x3, nil))
			continue
		}

		// All-light pattern: split R(e0) by Π_i |σ_{si=v} R^L(ei)|.
		r0H, r0L := splitE0ByProduct(work[e0], si, lightC, tau, pseed)

		// Step (3.1): heavy e0-tuples.
		if r0H.Size() > 0 {
			// (3.1.1) R'(e0) = R^H(e0) ⋈ (⋈ eBar).
			sub := []*mpc.Dist{r0H}
			subEdges := []hypergraph.AttrSet{edges[e0]}
			for _, e := range eBar {
				sub = append(sub, work[e])
				subEdges = append(subEdges, edges[e])
			}
			rp0 := subJoin(subEdges, sub, ring, pseed^0x10)
			// (3.1.2) R'(ei) = R^H(e0) ⋈ R^L(ei), with e0's annotations
			// neutralized so each input annotation enters exactly once.
			parts := []*mpc.Dist{rp0}
			r0One := withUnitAnnot(r0H, ring)
			ok := true
			for i := range children {
				if lightC[i].Size() == 0 {
					ok = false
					break
				}
				parts = append(parts, BinaryJoin(r0One, lightC[i], ring, pseed^uint64(0x20+i), nil))
			}
			if ok && rp0.Size() > 0 {
				// (3.1.3) keyed multiway join on e0's full tuple.
				results = append(results,
					MultiwayKeyedJoin(edges[e0].Schema(), parts, ring, pseed^0x30, nil))
			}
		}

		// Step (3.2): light e0-tuples — join the subtree, then recurse.
		if r0L.Size() > 0 {
			sub := []*mpc.Dist{r0L}
			subEdges := []hypergraph.AttrSet{edges[e0]}
			for i := range children {
				sub = append(sub, lightC[i])
				subEdges = append(subEdges, edges[children[i]])
			}
			rl := subJoin(subEdges, sub, ring, pseed^0x40)
			if rl.Size() == 0 {
				continue
			}
			if len(eBar) == 0 {
				results = append(results, rl)
				continue
			}
			// (3.2.2) contract the subtree into one node and recurse.
			recEdges := []hypergraph.AttrSet{hypergraph.NewAttrSet([]relation.Attr(rl.Schema)...)}
			recDists := []*mpc.Dist{rl}
			for _, e := range eBar {
				recEdges = append(recEdges, edges[e])
				recDists = append(recDists, work[e])
			}
			results = append(results,
				acyclicRec(c, recEdges, recDists, ring, out, pseed^0x50, depth+1))
		}
	}

	final := mpc.NewDist(c, unionSchema)
	for _, r := range results {
		if r.Size() == 0 {
			continue
		}
		final = mpc.Concat(final, ProjectLocal(r, unionSchema))
	}
	return final
}

// pickInternalNode returns a deepest node whose children are all leaves.
func pickInternalNode(tree *hypergraph.JoinTree) (int, []int) {
	best, bestDepth := -1, -1
	for u := range tree.Children {
		if len(tree.Children[u]) == 0 {
			continue
		}
		allLeaves := true
		for _, c := range tree.Children[u] {
			if len(tree.Children[c]) > 0 {
				allLeaves = false
				break
			}
		}
		if allLeaves && tree.Depth(u) > bestDepth {
			best, bestDepth = u, tree.Depth(u)
		}
	}
	if best < 0 {
		return -1, nil
	}
	return best, tree.Children[best]
}

// subJoin fully reduces the sub-instance (so every intermediate is part of
// a full sub-join result, keeping the paper's size bounds under "any
// order") and folds it with binary joins along a connected order.
func subJoin(edges []hypergraph.AttrSet, dists []*mpc.Dist, ring relation.Semiring, seed uint64) *mpc.Dist {
	if len(dists) == 1 {
		return dists[0]
	}
	q := hypergraph.New(edges...)
	inst := &Instance{Q: q, Rels: relsOf(q, dists), Ring: ring}
	red := FullReduce(inst, dists)
	order := DefaultJoinOrder(q)
	acc := red[order[0]]
	for i := 1; i < len(order); i++ {
		acc = BinaryJoin(acc, red[order[i]], ring, seed+uint64(31*i), nil)
	}
	return acc
}

// splitE0ByProduct partitions R(e0) by whether the product of its light-
// child degrees reaches τ. The degrees are attached by k lookups into a
// synthetic product column, then stripped.
func splitE0ByProduct(r0 *mpc.Dist, si [][]relation.Attr, lightC []*mpc.Dist, tau int64, seed uint64) (heavy, light *mpc.Dist) {
	const prodAttr = relation.Attr(-150)
	cur := addColumn(r0, prodAttr, 1)
	prodPos := len(cur.Schema) - 1
	for i, lc := range lightC {
		deg := primitives.CountByKey(lc, si[i], seed^uint64(0x60+i))
		cur = primitives.Lookup(cur, si[i], deg, si[i], cur.Schema,
			func(it mpc.Item, r primitives.LookupResult) (mpc.Item, bool) {
				t := it.T.Clone()
				if !r.Found {
					t[prodPos] = 0
				} else if v := t[prodPos] * relation.Value(r.DAnnot); v > tauClamp {
					t[prodPos] = tauClamp // saturate: only the ≥ τ test matters
				} else {
					t[prodPos] = v
				}
				return mpc.Item{T: t, A: it.A}, true
			})
	}
	isHeavy := func(it mpc.Item) bool { return int64(it.T[prodPos]) >= tau }
	heavy = ProjectLocal(cur.FilterLocal(isHeavy), r0.Schema)
	light = ProjectLocal(cur.FilterLocal(func(it mpc.Item) bool { return !isHeavy(it) }), r0.Schema)
	return heavy, light
}

// tauClamp saturates degree products well above any realistic τ while
// staying far from int64 overflow across repeated multiplications.
const tauClamp = relation.Value(1) << 40

// addConstColumn appends a constant-0 attribute (the paper's dummy H').
func addConstColumn(d *mpc.Dist, attr relation.Attr) *mpc.Dist {
	return addColumn(d, attr, 0)
}

// addColumn appends attr with the given constant value to every tuple.
func addColumn(d *mpc.Dist, attr relation.Attr, val relation.Value) *mpc.Dist {
	if d.Schema.Has(attr) {
		panic(fmt.Sprintf("core: duplicate column %d", attr))
	}
	schema := append(append(relation.Schema{}, d.Schema...), attr)
	return d.MapLocal(schema, func(_ int, it mpc.Item) []mpc.Item {
		t := make(relation.Tuple, len(it.T)+1)
		copy(t, it.T)
		t[len(it.T)] = val
		return []mpc.Item{{T: t, A: it.A}}
	})
}

// withUnitAnnot copies d with all annotations set to ring.One.
func withUnitAnnot(d *mpc.Dist, ring relation.Semiring) *mpc.Dist {
	return d.MapLocal(d.Schema, func(_ int, it mpc.Item) []mpc.Item {
		return []mpc.Item{{T: it.T, A: ring.One}}
	})
}

func containsInt(xs []int, x int) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}
