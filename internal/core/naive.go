package core

import (
	"repro/internal/relation"
	"repro/internal/runtime"
)

// Naive computes Q(R) by in-memory left-to-right hash joins. It is the
// correctness oracle for every MPC algorithm (and the RAM-model reference
// the paper compares against conceptually); it charges no cluster.
//
// The result's schema is the instance's canonical OutputSchema; annotations
// are ⊗-products of the participating tuples' annotations.
func Naive(in *Instance) *relation.Relation {
	if len(in.Rels) == 0 {
		out := relation.New("naive", relation.Schema{})
		out.Tuples = []relation.Tuple{{}}
		out.Annots = []int64{in.Ring.One}
		return out
	}
	acc := in.Rels[0].Clone()
	if acc.Annots == nil {
		acc.Annots = make([]int64, acc.Size())
		for i := range acc.Annots {
			acc.Annots[i] = in.Ring.One
		}
	}
	for i := 1; i < len(in.Rels); i++ {
		acc = naiveJoin(acc, in.Rels[i], in.Ring)
	}
	// Normalize column order to the canonical output schema.
	out := acc.Project([]relation.Attr(in.OutputSchema()))
	out.Name = "naive"
	return out
}

// NaiveCount returns |Q(R)| via Naive (small instances only).
func NaiveCount(in *Instance) int64 {
	return int64(Naive(in).Size())
}

// naiveJoinSerialBelow is the probe-side size under which the hash join
// stays on the calling goroutine.
const naiveJoinSerialBelow = 1 << 12

// naiveJoin hash-joins a and b on their shared attributes. The build side
// is indexed once; the probe side is cut into contiguous chunks joined in
// parallel and concatenated in chunk order, so the result is identical to
// the serial probe for every worker count.
func naiveJoin(a, b *relation.Relation, ring relation.Semiring) *relation.Relation {
	shared := a.Schema.Intersect(b.Schema)
	aPos := a.Schema.Positions(shared)
	bPos := b.Schema.Positions(shared)
	bExtra := b.Schema.Minus(a.Schema)
	bExtraPos := b.Schema.Positions(bExtra)

	out := relation.New(a.Name+"⋈"+b.Name, a.Schema.Union(b.Schema))
	out.Annots = []int64{}

	idx := make(map[string][]int, b.Size())
	for i, t := range b.Tuples {
		k := relation.KeyAt(t, bPos)
		idx[k] = append(idx[k], i)
	}

	n := len(a.Tuples)
	chunks := runtime.Parallelism()
	if n < naiveJoinSerialBelow || chunks > n {
		chunks = 1
	}
	type probeOut struct {
		tuples []relation.Tuple
		annots []int64
	}
	outs := make([]probeOut, chunks)
	per := (n + chunks - 1) / chunks
	runtime.Fork(chunks, func(w int) {
		lo, hi := w*per, (w+1)*per
		if hi > n {
			hi = n
		}
		var po probeOut
		for i := lo; i < hi; i++ {
			t := a.Tuples[i]
			k := relation.KeyAt(t, aPos)
			for _, j := range idx[k] {
				bt := b.Tuples[j]
				nt := make(relation.Tuple, 0, len(t)+len(bExtraPos))
				nt = append(nt, t...)
				for _, p := range bExtraPos {
					nt = append(nt, bt[p])
				}
				po.tuples = append(po.tuples, nt)
				po.annots = append(po.annots, ring.Mul(a.Annot(i), b.Annot(j)))
			}
		}
		outs[w] = po
	})
	for _, po := range outs {
		out.Tuples = append(out.Tuples, po.tuples...)
		out.Annots = append(out.Annots, po.annots...)
	}
	return out
}

// NaiveSemiJoinReduce removes all dangling tuples in-memory: it repeatedly
// semi-joins every relation against every other on their shared attributes
// until a fixpoint. Used by generators and tests to produce reduced
// instances; the MPC algorithms use the distributed primitives instead.
func NaiveSemiJoinReduce(in *Instance) *Instance {
	out := in.Clone()
	changed := true
	for changed {
		changed = false
		for i := range out.Rels {
			for j := range out.Rels {
				if i == j {
					continue
				}
				shared := out.Rels[i].Schema.Intersect(out.Rels[j].Schema)
				if len(shared) == 0 {
					continue
				}
				before := out.Rels[i].Size()
				out.Rels[i] = naiveSemiJoin(out.Rels[i], out.Rels[j], shared)
				if out.Rels[i].Size() != before {
					changed = true
				}
			}
		}
	}
	return out
}

func naiveSemiJoin(a, b *relation.Relation, shared relation.Schema) *relation.Relation {
	aPos := a.Schema.Positions(shared)
	bPos := b.Schema.Positions(shared)
	keys := make(map[string]bool, b.Size())
	for _, t := range b.Tuples {
		keys[relation.KeyAt(t, bPos)] = true
	}
	out := relation.New(a.Name, a.Schema)
	out.Annots = []int64{}
	for i, t := range a.Tuples {
		if keys[relation.KeyAt(t, aPos)] {
			out.Tuples = append(out.Tuples, t)
			out.Annots = append(out.Annots, a.Annot(i))
		}
	}
	return out
}
