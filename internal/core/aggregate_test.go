package core

import (
	"math/rand"
	"testing"

	"repro/internal/hypergraph"
	"repro/internal/mpc"
	"repro/internal/relation"
)

// naiveAggregate computes ⊕_ȳ Q(R) by materializing Q(R) and grouping.
func naiveAggregate(in *Instance, y hypergraph.AttrSet) map[string]int64 {
	full := Naive(in)
	var pos []int
	if len(y) > 0 {
		pos = full.Schema.Positions([]relation.Attr(y.Schema()))
	}
	out := map[string]int64{}
	for i, t := range full.Tuples {
		k := relation.KeyAt(t, pos)
		if _, ok := out[k]; !ok {
			out[k] = in.Ring.Zero
		}
		out[k] = in.Ring.Add(out[k], full.Annot(i))
	}
	return out
}

func TestCountOutputMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	queries := []*hypergraph.Hypergraph{
		hypergraph.Line2(), hypergraph.Line3(), hypergraph.LineK(4),
		hypergraph.StarK(3), hypergraph.Q2Hierarchical(), hypergraph.Q2RHier(),
		hypergraph.RHierSimple(), hypergraph.CartesianK(3), hypergraph.Fig5Example(),
	}
	for _, q := range queries {
		for trial := 0; trial < 4; trial++ {
			in := randInstance(rng, q, 15, 4)
			c := mpc.NewCluster(1 + rng.Intn(8))
			got := CountOutput(c, in, uint64(trial))
			want := NaiveCount(in)
			if got != want {
				t.Errorf("%v: CountOutput = %d, want %d", q, got, want)
			}
		}
	}
}

func TestCountOutputLinearLoad(t *testing.T) {
	// CountOutput must run at linear load even when OUT is enormous:
	// line-3 with a full bipartite middle has OUT = n²·n... large, but
	// counting is O(IN/p).
	n, p := 400, 8
	r1 := relation.New("R1", relation.NewSchema(1, 2))
	r2 := relation.New("R2", relation.NewSchema(2, 3))
	r3 := relation.New("R3", relation.NewSchema(3, 4))
	for i := 0; i < n; i++ {
		r1.Add(relation.Value(i), relation.Value(i%2))
		r2.Add(relation.Value(i%2), relation.Value(i%2))
		r3.Add(relation.Value(i%2), relation.Value(i))
	}
	in := NewInstance(hypergraph.Line3(), r1.Dedup(), r2.Dedup(), r3.Dedup())
	c := mpc.NewCluster(p)
	got := CountOutput(c, in, 1)
	if want := NaiveCount(in); got != want {
		t.Fatalf("CountOutput = %d, want %d", got, want)
	}
	inSize := in.IN()
	if c.MaxLoad() > 4*(inSize/p)+4*p {
		t.Errorf("CountOutput load %d not linear (IN/p = %d)", c.MaxLoad(), inSize/p)
	}
}

func TestCountOutputIgnoresAnnotations(t *testing.T) {
	r1 := relation.New("R1", relation.NewSchema(1, 2))
	r1.AddAnnotated(50, 1, 2)
	r2 := relation.New("R2", relation.NewSchema(2, 3))
	r2.AddAnnotated(70, 2, 3)
	in := NewInstance(hypergraph.Line2(), r1, r2)
	c := mpc.NewCluster(2)
	if got := CountOutput(c, in, 1); got != 1 {
		t.Errorf("CountOutput = %d, want 1 (annotations must be ignored)", got)
	}
}

func TestLinearAggroFrontierInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	in := randInstance(rng, hypergraph.Line3(), 25, 4)
	y := hypergraph.NewAttrSet(2, 3)
	c := mpc.NewCluster(4)
	res := LinearAggro(c, in, y, 1)
	var union hypergraph.AttrSet
	for _, f := range res.Frontiers {
		fs := hypergraph.NewAttrSet([]relation.Attr(f.Schema)...)
		if !fs.SubsetOf(y) {
			t.Errorf("frontier schema %v not ⊆ y", f.Schema)
		}
		union = union.Union(fs)
	}
	if !union.Equal(y) {
		t.Errorf("frontier union %v != y %v", union, y)
	}
}

func TestAggregateMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	cases := []struct {
		q *hypergraph.Hypergraph
		y hypergraph.AttrSet
	}{
		{hypergraph.Line3(), hypergraph.NewAttrSet(2, 3)},
		{hypergraph.Line3(), hypergraph.NewAttrSet(1, 2)},
		{hypergraph.Line3(), hypergraph.NewAttrSet(1, 2, 3, 4)},
		{hypergraph.Line2(), hypergraph.NewAttrSet(2)},
		{hypergraph.LineK(4), hypergraph.NewAttrSet(1, 2)},
		{hypergraph.StarK(3), hypergraph.NewAttrSet(0)},
		{hypergraph.Q2Hierarchical(), hypergraph.NewAttrSet(1, 3)},
		{hypergraph.Fig5Example(), hypergraph.NewAttrSet(1, 2, 4)},
	}
	for _, cse := range cases {
		for trial := 0; trial < 3; trial++ {
			in := randInstance(rng, cse.q, 20, 4)
			c := mpc.NewCluster(1 + rng.Intn(8))
			got := Aggregate(c, in, cse.y, uint64(trial), nil)
			want := naiveAggregate(in, cse.y)
			// Drop zero groups from want (they are not output).
			for k, v := range want {
				if v == in.Ring.Zero {
					delete(want, k)
				}
			}
			gotM := map[string]int64{}
			for _, it := range got.All() {
				gotM[relation.EncodeTuple(it.T)] = it.A
			}
			if len(gotM) != len(want) {
				t.Fatalf("%v y=%v: %d groups, want %d", cse.q, cse.y, len(gotM), len(want))
			}
			for k, v := range want {
				if gotM[k] != v {
					t.Errorf("%v y=%v: group mismatch: got %d want %d", cse.q, cse.y, gotM[k], v)
				}
			}
		}
	}
}

func TestAggregateWithMaxPlusRing(t *testing.T) {
	// MAX aggregation: the answer per group is the max over join results of
	// the sum of tuple scores.
	r1 := relation.New("R1", relation.NewSchema(1, 2))
	r2 := relation.New("R2", relation.NewSchema(2, 3))
	r1.AddAnnotated(5, 1, 10)
	r1.AddAnnotated(3, 2, 10)
	r2.AddAnnotated(7, 10, 1)
	r2.AddAnnotated(9, 10, 2)
	in := NewInstance(hypergraph.Line2(), r1, r2)
	in.Ring = relation.MaxPlusRing
	c := mpc.NewCluster(2)
	got := Aggregate(c, in, hypergraph.NewAttrSet(2), 1, nil)
	items := got.All()
	if len(items) != 1 {
		t.Fatalf("groups = %d, want 1", len(items))
	}
	if items[0].A != 14 { // max(5,3) + max(7,9)
		t.Errorf("max-plus aggregate = %d, want 14", items[0].A)
	}
}

func TestAggregateNonFreeConnexPanics(t *testing.T) {
	in := randInstance(rand.New(rand.NewSource(1)), hypergraph.Line3(), 5, 3)
	c := mpc.NewCluster(2)
	defer func() {
		if recover() == nil {
			t.Fatal("non-free-connex aggregate did not panic")
		}
	}()
	Aggregate(c, in, hypergraph.NewAttrSet(1, 4), 1, nil)
}

func TestAggregateEmptyResult(t *testing.T) {
	r1 := relation.New("R1", relation.NewSchema(1, 2))
	r2 := relation.New("R2", relation.NewSchema(2, 3))
	r1.Add(1, 5)
	r2.Add(6, 2)
	in := NewInstance(hypergraph.Line2(), r1, r2)
	c := mpc.NewCluster(2)
	got := Aggregate(c, in, hypergraph.NewAttrSet(2), 1, nil)
	if got.Size() != 0 {
		t.Errorf("empty join aggregated to %d groups", got.Size())
	}
	if n := CountOutput(mpc.NewCluster(2), in, 1); n != 0 {
		t.Errorf("CountOutput = %d, want 0", n)
	}
}

func TestAggregateReducedQueryWithContainedEdge(t *testing.T) {
	// R2(B) ⊆ R1(A,B): the reduce step must fold R2's annotations into R1.
	q := hypergraph.New(hypergraph.NewAttrSet(1, 2), hypergraph.NewAttrSet(2))
	r1 := relation.New("R1", relation.NewSchema(1, 2))
	r2 := relation.New("R2", relation.NewSchema(2))
	r1.AddAnnotated(2, 1, 10)
	r1.AddAnnotated(3, 2, 11)
	r2.AddAnnotated(5, 10)
	r2.AddAnnotated(7, 11)
	in := NewInstance(q, r1, r2)
	c := mpc.NewCluster(2)
	got := Aggregate(c, in, hypergraph.NewAttrSet(1), 1, nil)
	want := naiveAggregate(in, hypergraph.NewAttrSet(1))
	gotM := map[string]int64{}
	for _, it := range got.All() {
		gotM[relation.EncodeTuple(it.T)] = it.A
	}
	if len(gotM) != len(want) {
		t.Fatalf("groups = %d, want %d", len(gotM), len(want))
	}
	for k, v := range want {
		if gotM[k] != v {
			t.Errorf("group value %d, want %d", gotM[k], v)
		}
	}
}
