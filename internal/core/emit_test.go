package core

import (
	"reflect"
	"testing"

	"repro/internal/mpc"
	"repro/internal/relation"
	"repro/internal/runtime"
)

// TestEmitDistParallelMatchesSerial drives EmitDist's lock-free parallel
// path (every sink shard-safe: counter, sharded collector, per-server
// counter) at several widths and checks each emitter's state is identical
// to the serial CollectEmitter reference. Run under -race this proves the
// per-partition ownership contract holds.
func TestEmitDistParallelMatchesSerial(t *testing.T) {
	const p, n = 8, 3 * emitSerialBelow
	c := mpc.NewCluster(p)
	r := relation.New("R", relation.NewSchema(1, 2))
	rng := mpc.NewRng(7)
	for i := 0; i < n; i++ {
		r.Add(relation.Value(rng.Intn(64)), relation.Value(i))
	}
	d := mpc.FromRelation(c, r)
	schema := relation.NewSchema(2, 1) // projection with reordering

	ref := mpc.NewCollectEmitter(schema)
	EmitDist(d, schema, ref)

	for _, width := range []int{1, 3, 8} {
		prev := runtime.SetParallelism(width)
		counter := mpc.NewCountEmitter(relation.CountRing)
		sharded := mpc.NewShardedEmitter(schema, p)
		perServer := mpc.NewPerServerCounter(p)
		EmitDist(d, schema, mpc.MultiEmitter{counter, sharded, perServer})
		runtime.SetParallelism(prev)

		if counter.N != int64(n) {
			t.Fatalf("width %d: counter.N = %d, want %d", width, counter.N, n)
		}
		got := sharded.Rel()
		if !reflect.DeepEqual(got.Tuples, ref.Rel.Tuples) || !reflect.DeepEqual(got.Annots, ref.Rel.Annots) {
			t.Fatalf("width %d: sharded merge differs from serial collect", width)
		}
		var perTotal int64
		for s, cnt := range perServer.Counts {
			if int(cnt) != d.Parts[s].Len() {
				t.Fatalf("width %d: server %d count %d, want %d", width, s, cnt, d.Parts[s].Len())
			}
			perTotal += cnt
		}
		if perTotal != int64(n) {
			t.Fatalf("width %d: per-server total %d, want %d", width, perTotal, n)
		}
	}
}
