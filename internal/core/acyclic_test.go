package core

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/hypergraph"
	"repro/internal/mpc"
	"repro/internal/relation"
)

func TestMultiwayKeyedJoinMatchesNaive(t *testing.T) {
	// Star-by-key: R1(K,A), R2(K,B), R3(K,C) keyed on K.
	rng := rand.New(rand.NewSource(40))
	q := hypergraph.New(
		hypergraph.NewAttrSet(1, 2),
		hypergraph.NewAttrSet(1, 3),
		hypergraph.NewAttrSet(1, 4),
	)
	for trial := 0; trial < 10; trial++ {
		in := randInstance(rng, q, 25, 5)
		c := mpc.NewCluster(1 + rng.Intn(8))
		dists := LoadInstance(c, in)
		res := MultiwayKeyedJoin(relation.NewSchema(1), dists, in.Ring, uint64(trial), nil)
		relEqual(t, res.ToRelation("got"), Naive(in))
	}
}

func TestMultiwayKeyedJoinCartesian(t *testing.T) {
	// Empty key: plain HyperCube Cartesian product of three sets.
	q := hypergraph.CartesianK(3)
	sizes := []int{20, 12, 8}
	rels := make([]*relation.Relation, 3)
	for i, n := range sizes {
		r := relation.New("R", relation.NewSchema(relation.Attr(i+1)))
		for j := 0; j < n; j++ {
			r.Add(relation.Value(j))
		}
		rels[i] = r
	}
	in := NewInstance(q, rels...)
	p := 8
	c := mpc.NewCluster(p)
	dists := LoadInstance(c, in)
	res := MultiwayKeyedJoin(relation.Schema{}, dists, in.Ring, 3, nil)
	want := sizes[0] * sizes[1] * sizes[2]
	if res.Size() != want {
		t.Fatalf("product size = %d, want %d", res.Size(), want)
	}
	// Load should be near the Cartesian lower bound (1):
	// max over subsets S of (Π_{i∈S} N_i / p)^{1/|S|}.
	lb := 0.0
	ns := []float64{20, 12, 8}
	for mask := 1; mask < 8; mask++ {
		prod, cnt := 1.0, 0
		for i := 0; i < 3; i++ {
			if mask&(1<<i) != 0 {
				prod *= ns[i]
				cnt++
			}
		}
		if v := math.Pow(prod/float64(p), 1/float64(cnt)); v > lb {
			lb = v
		}
	}
	if float64(c.MaxLoad()) > 8*(lb+float64(in.IN())/float64(p)) {
		t.Errorf("HyperCube load %d far above L_cartesian = %.1f", c.MaxLoad(), lb)
	}
}

func TestMultiwayKeyedJoinSkewedKey(t *testing.T) {
	// One key with large degree in every relation: must be gridded.
	n, p := 40, 27
	mk := func(a relation.Attr) *relation.Relation {
		r := relation.New("R", relation.NewSchema(1, a))
		for i := 0; i < n; i++ {
			r.Add(7, relation.Value(i))
		}
		return r
	}
	q := hypergraph.New(
		hypergraph.NewAttrSet(1, 2),
		hypergraph.NewAttrSet(1, 3),
		hypergraph.NewAttrSet(1, 4),
	)
	in := NewInstance(q, mk(2), mk(3), mk(4))
	c := mpc.NewCluster(p)
	dists := LoadInstance(c, in)
	res := MultiwayKeyedJoin(relation.NewSchema(1), dists, in.Ring, 1, nil)
	if res.Size() != n*n*n {
		t.Fatalf("size = %d, want %d", res.Size(), n*n*n)
	}
	// Lower bound per instance: (OUT/p)^{1/3} = (64000/27)^{1/3} ≈ 13.3.
	if c.MaxLoad() >= n {
		t.Errorf("heavy key not spread: load %d ≥ degree %d", c.MaxLoad(), n)
	}
}

func TestMultiwayKeyedJoinAnnotations(t *testing.T) {
	q := hypergraph.New(hypergraph.NewAttrSet(1, 2), hypergraph.NewAttrSet(1, 3))
	r1 := relation.New("R1", relation.NewSchema(1, 2))
	r2 := relation.New("R2", relation.NewSchema(1, 3))
	r1.AddAnnotated(3, 1, 10)
	r2.AddAnnotated(5, 1, 20)
	in := NewInstance(q, r1, r2)
	c := mpc.NewCluster(2)
	dists := LoadInstance(c, in)
	res := MultiwayKeyedJoin(relation.NewSchema(1), dists, in.Ring, 1, nil)
	if len(res.All()) != 1 || res.All()[0].A != 15 {
		t.Errorf("annotated multiway = %v", res.All())
	}
}

func TestAcyclicJoinMatchesNaiveAcrossQueries(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	queries := []*hypergraph.Hypergraph{
		hypergraph.Line2(), hypergraph.Line3(), hypergraph.LineK(4), hypergraph.LineK(5),
		hypergraph.StarK(3), hypergraph.StarK(4),
		hypergraph.Q1TallFlat(), hypergraph.Q2Hierarchical(), hypergraph.Q2RHier(),
		hypergraph.RHierSimple(), hypergraph.Fig5Example(),
	}
	for _, q := range queries {
		for trial := 0; trial < 4; trial++ {
			in := randInstance(rng, q, 12+rng.Intn(15), 4)
			c := mpc.NewCluster(1 + rng.Intn(8))
			em := mpc.NewCollectEmitter(in.OutputSchema())
			AcyclicJoin(c, in, uint64(trial), em)
			relEqual(t, em.Rel, Naive(in))
		}
	}
}

func TestAcyclicJoinCartesianComponents(t *testing.T) {
	// Disconnected query: product of two chains — exercises the dummy
	// attribute fix.
	q := hypergraph.New(
		hypergraph.NewAttrSet(1, 2), hypergraph.NewAttrSet(2, 3),
		hypergraph.NewAttrSet(10, 11),
	)
	rng := rand.New(rand.NewSource(42))
	in := randInstance(rng, q, 10, 3)
	c := mpc.NewCluster(4)
	em := mpc.NewCollectEmitter(in.OutputSchema())
	AcyclicJoin(c, in, 1, em)
	relEqual(t, em.Rel, Naive(in))
}

func TestAcyclicJoinSkewedLine4(t *testing.T) {
	// Mixed skew along a longer chain, forcing multiple recursion levels.
	r1 := relation.New("R1", relation.NewSchema(1, 2))
	r2 := relation.New("R2", relation.NewSchema(2, 3))
	r3 := relation.New("R3", relation.NewSchema(3, 4))
	r4 := relation.New("R4", relation.NewSchema(4, 5))
	for i := 0; i < 40; i++ {
		r1.Add(relation.Value(i), 0)
		r1.Add(relation.Value(i), relation.Value(1+i%3))
		r2.Add(0, relation.Value(i%6))
		r2.Add(relation.Value(1+i%3), relation.Value(i%6))
		r3.Add(relation.Value(i%6), relation.Value(i%4))
		r4.Add(relation.Value(i%4), relation.Value(i))
	}
	in := NewInstance(hypergraph.LineK(4),
		r1.Dedup(), r2.Dedup(), r3.Dedup(), r4.Dedup())
	c := mpc.NewCluster(6)
	em := mpc.NewCollectEmitter(in.OutputSchema())
	AcyclicJoin(c, in, 9, em)
	relEqual(t, em.Rel, Naive(in))
}

func TestAcyclicJoinEmptyOutput(t *testing.T) {
	r1 := relation.New("R1", relation.NewSchema(1, 2))
	r2 := relation.New("R2", relation.NewSchema(2, 3))
	r3 := relation.New("R3", relation.NewSchema(3, 4))
	r1.Add(1, 1)
	r2.Add(2, 2)
	r3.Add(2, 3)
	in := NewInstance(hypergraph.Line3(), r1, r2, r3)
	c := mpc.NewCluster(4)
	if res := AcyclicJoin(c, in, 1, nil); res.Size() != 0 {
		t.Errorf("empty join produced %d", res.Size())
	}
}

func TestAcyclicJoinRejectsCyclic(t *testing.T) {
	in := randInstance(rand.New(rand.NewSource(1)), hypergraph.Triangle(), 5, 3)
	c := mpc.NewCluster(2)
	defer func() {
		if recover() == nil {
			t.Fatal("AcyclicJoin on triangle did not panic")
		}
	}()
	AcyclicJoin(c, in, 1, nil)
}

func TestAcyclicJoinAnnotated(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	q := hypergraph.LineK(4)
	in := randInstance(rng, q, 15, 3)
	for i, r := range in.Rels {
		r.Annots = make([]int64, r.Size())
		for j := range r.Annots {
			r.Annots[j] = int64(1 + (i+j)%5)
		}
	}
	c := mpc.NewCluster(4)
	em := mpc.NewCollectEmitter(in.OutputSchema())
	AcyclicJoin(c, in, 2, em)
	relEqual(t, em.Rel, Naive(in))
}

func TestAcyclicJoinLoadBeatsYannakakisOnHardInstance(t *testing.T) {
	// The general algorithm must reproduce the line-3 result of Section 4
	// via the Section 5 machinery.
	n, p := 512, 16
	out := n * 8
	in := yannakakisHard(n, out)
	want := NaiveCount(in)

	cA := mpc.NewCluster(p)
	emA := mpc.NewCountEmitter(in.Ring)
	AcyclicJoin(cA, in, 1, emA)
	if emA.N != want {
		t.Fatalf("AcyclicJoin count = %d, want %d", emA.N, want)
	}

	cY := mpc.NewCluster(p)
	emY := mpc.NewCountEmitter(in.Ring)
	Yannakakis(cY, in, []int{0, 1, 2}, 1, emY)

	inSize := float64(in.IN())
	bound := inSize/float64(p) + math.Sqrt(inSize*float64(want)/float64(p))
	if float64(cA.MaxLoad()) > 8*bound {
		t.Errorf("AcyclicJoin load %d exceeds 8×(IN/p+√(IN·OUT/p)) = %.0f", cA.MaxLoad(), 8*bound)
	}
	if cY.MaxLoad() <= cA.MaxLoad() {
		t.Errorf("Yannakakis (%d) should exceed AcyclicJoin (%d) here", cY.MaxLoad(), cA.MaxLoad())
	}
}
