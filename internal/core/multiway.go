package core

import (
	"sort"

	"repro/internal/mpc"
	"repro/internal/primitives"
	"repro/internal/relation"
	"repro/internal/runtime"
)

// MultiwayKeyedJoin joins m relations that all contain the key attributes
// and whose non-key attributes are pairwise disjoint: the result groups by
// key and forms, within each group, the cross product of the relations'
// extensions. This is the tall-flat join of step (3.1.3) in Section 5.1
// (key = e0's attributes), and — with an empty key — the HyperCube
// algorithm [3] for Cartesian products.
//
// Allocation is instance-optimal in the paper's sense: the target load L is
// the smallest value with Σ_v Π_i ⌈d_i(v)/L⌉ ≤ 2p over the keys needing a
// grid, which mirrors the per-instance lower bound (2): L ≈ max_S
// (|Q(R,S)|/p)^{1/|S|}. Each such key gets a ⌈d_1/L⌉ × … × ⌈d_m/L⌉
// hypercube of servers; light keys are hashed.
//
//lint:load frac trust the per-key hypercubes target the instance-optimal L of bound (2); light keys stay at IN/p
//lint:rounds const
func MultiwayKeyedJoin(key relation.Schema, dists []*mpc.Dist, ring relation.Semiring, seed uint64, em mpc.Emitter) *mpc.Dist {
	if len(dists) == 0 {
		panic("core: MultiwayKeyedJoin of nothing")
	}
	c := dists[0].C
	m := len(dists)
	outSchema := dists[0].Schema
	for _, d := range dists[1:] {
		extra := d.Schema.Minus(outSchema)
		if len(extra)+len(key) != len(d.Schema) {
			panic("core: MultiwayKeyedJoin relations must overlap only on the key")
		}
		outSchema = outSchema.Union(d.Schema)
	}
	if m == 1 {
		if em != nil {
			EmitDist(dists[0], outSchema, em)
		}
		return dists[0]
	}
	keyAttrs := []relation.Attr(key)

	// Per-relation degree tables, co-located by key (same salt).
	degs := make([]*mpc.Dist, m)
	for i, d := range dists {
		degs[i] = primitives.CountByKey(d, keyAttrs, seed^uint64(0x600+i)).
			ShuffleByAttrs(keyAttrs, seed^0x700)
	}
	stats := collectKeyStats(degs, keyAttrs, m)

	inSize := 0
	for _, d := range dists {
		inSize += d.Size()
	}
	l0 := chooseLoad(stats, inSize, c.P)
	dir := buildCube(stats, l0, c.P)
	chargeDirectory(c, len(dir))

	// Route every relation: light keys by hash, heavy keys into their cube.
	routed := make([]*mpc.Dist, m)
	for i, d := range dists {
		idx := i
		pos := d.Positions(keyAttrs)
		// Tuples of keys absent from any relation cannot join: drop them
		// via a semi-join against the co-located degree directory.
		filtered := keepJoinableKeys(d, keyAttrs, stats, pos)
		routed[i] = filtered.ReplicateBy(func(it mpc.Item) []int {
			k := relation.KeyAt(it.T, pos)
			cube, heavy := dir[k]
			if !heavy {
				return []int{int(mpc.Hash64(k, seed^0x800) % uint64(c.P))}
			}
			coord := int(mpc.Hash64(relation.EncodeTuple(it.T), seed^uint64(0x900+idx)) % uint64(cube.dims[idx]))
			return cube.serversFor(idx, coord, c.P)
		})
	}

	// Local per-key cross products.
	res := mpc.NewDist(c, outSchema)
	extraPos := make([][]int, m) // positions of relation i's non-key attrs in its own schema
	extraDst := make([][]int, m) // where they land in the output tuple
	keyPosOut := outSchema.Positions(keyAttrs)
	keyPosIn := make([][]int, m)
	for i, d := range routed {
		extras := d.Schema.Minus(key)
		extraPos[i] = d.Positions([]relation.Attr(extras))
		extraDst[i] = outSchema.Positions([]relation.Attr(extras))
		keyPosIn[i] = d.Positions(keyAttrs)
	}
	// Per-server cross products run in parallel — server s writes only
	// res.Parts[s] — and emission runs afterwards in server order, the
	// exact serial sequence.
	runtime.Fork(c.P, func(s int) {
		groups := make(map[string][][]mpc.Item)
		for i, d := range routed {
			part := &d.Parts[s]
			for j := 0; j < part.Len(); j++ {
				it := part.Item(j)
				k := relation.KeyAt(it.T, keyPosIn[i])
				g, ok := groups[k]
				if !ok {
					g = make([][]mpc.Item, m)
				}
				g[i] = append(g[i], it)
				groups[k] = g
			}
		}
		var keys []string
		for k := range groups {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			g := groups[k]
			complete := true
			for i := 0; i < m; i++ {
				if len(g[i]) == 0 {
					complete = false
					break
				}
			}
			if !complete {
				continue
			}
			keyVals := relation.DecodeKey(k)
			emitCross(res, s, g, keyVals, keyPosOut, extraPos, extraDst, len(outSchema), ring)
		}
	})
	emitParts(res, em)
	return res
}

// emitCross enumerates the cross product of the m groups into res.Parts[s].
func emitCross(res *mpc.Dist, s int, g [][]mpc.Item, keyVals []relation.Value,
	keyPosOut []int, extraPos, extraDst [][]int, width int, ring relation.Semiring) {
	m := len(g)
	choice := make([]int, m)
	for {
		t := make(relation.Tuple, width)
		for i, p := range keyPosOut {
			t[p] = keyVals[i]
		}
		annot := ring.One
		for i := 0; i < m; i++ {
			it := g[i][choice[i]]
			for j, p := range extraPos[i] {
				t[extraDst[i][j]] = it.T[p]
			}
			annot = ring.Mul(annot, it.A)
		}
		res.Parts[s].Append(t, annot)
		// Advance the mixed-radix counter.
		i := m - 1
		for ; i >= 0; i-- {
			choice[i]++
			if choice[i] < len(g[i]) {
				break
			}
			choice[i] = 0
		}
		if i < 0 {
			return
		}
	}
}

// keyStat aggregates the per-relation degrees of one key value.
type keyStat struct {
	key  string
	degs []int64
}

// collectKeyStats merges co-located degree tables into per-key vectors,
// keeping only keys present in every relation.
func collectKeyStats(degs []*mpc.Dist, keyAttrs []relation.Attr, m int) []keyStat {
	byKey := map[string]*keyStat{}
	for i, d := range degs {
		pos := d.Positions(keyAttrs)
		for s := range d.Parts {
			part := &d.Parts[s]
			for j := 0; j < part.Len(); j++ {
				k := relation.KeyAt(part.Tuple(j), pos)
				st, ok := byKey[k]
				if !ok {
					st = &keyStat{key: k, degs: make([]int64, m)}
					byKey[k] = st
				}
				st.degs[i] = part.Annot(j)
			}
		}
	}
	var out []keyStat
	for _, st := range byKey {
		full := true
		for _, d := range st.degs {
			if d == 0 {
				full = false
				break
			}
		}
		if full {
			out = append(out, *st)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].key < out[j].key })
	return out
}

// chooseLoad binary-searches the smallest per-relation load target L ≥ IN/p
// whose heavy keys need at most 2p grid cells in total.
func chooseLoad(stats []keyStat, inSize, p int) int64 {
	lo := int64(inSize/p) + 1
	hi := int64(1)
	for _, st := range stats {
		for _, d := range st.degs {
			if d > hi {
				hi = d
			}
		}
	}
	if hi < lo {
		hi = lo
	}
	cells := func(l int64) int64 {
		var total int64
		for _, st := range stats {
			cell := int64(1)
			gridded := false
			for _, d := range st.degs {
				dim := (d + l - 1) / l
				if dim > 1 {
					gridded = true
				}
				cell *= dim
			}
			if gridded {
				total += cell
			}
			if total > 1<<40 {
				return total
			}
		}
		return total
	}
	for lo < hi {
		mid := lo + (hi-lo)/2
		if cells(mid) <= int64(2*p) {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// cubeInfo is the server hypercube of one heavy key.
type cubeInfo struct {
	base    int
	dims    []int
	strides []int
	size    int
}

// serversFor lists the servers covering coordinate coord of dimension idx
// (the tuple is replicated across all other dimensions).
func (ci cubeInfo) serversFor(idx, coord, p int) []int {
	out := make([]int, 0, ci.size/ci.dims[idx])
	var walk func(dim, acc int)
	walk = func(dim, acc int) {
		if dim == len(ci.dims) {
			out = append(out, (ci.base+acc)%p)
			return
		}
		if dim == idx {
			walk(dim+1, acc+coord*ci.strides[dim])
			return
		}
		for v := 0; v < ci.dims[dim]; v++ {
			walk(dim+1, acc+v*ci.strides[dim])
		}
	}
	walk(0, 0)
	return out
}

// clampDims shrinks the largest dimensions until the cube has at most p
// cells: a single key's grid must never wrap around the cluster, or pairs
// would meet on more than one server and be reported twice.
func clampDims(dims []int, p int) int {
	size := 1
	for _, d := range dims {
		size *= d
	}
	for size > p {
		maxI := 0
		for i, d := range dims {
			if d > dims[maxI] {
				maxI = i
			}
		}
		size = size / dims[maxI]
		dims[maxI]--
		if dims[maxI] < 1 {
			dims[maxI] = 1
		}
		size *= dims[maxI]
	}
	return size
}

// buildCube assigns hypercubes to the keys that need more than one cell.
func buildCube(stats []keyStat, l0 int64, p int) map[string]cubeInfo {
	dir := map[string]cubeInfo{}
	base := 0
	for _, st := range stats {
		dims := make([]int, len(st.degs))
		gridded := false
		for i, d := range st.degs {
			dims[i] = int((d + l0 - 1) / l0)
			if dims[i] < 1 {
				dims[i] = 1
			}
			if dims[i] > 1 {
				gridded = true
			}
		}
		if !gridded {
			continue
		}
		size := clampDims(dims, p)
		strides := make([]int, len(dims))
		s := 1
		for i := len(dims) - 1; i >= 0; i-- {
			strides[i] = s
			s *= dims[i]
		}
		dir[st.key] = cubeInfo{base: base % p, dims: dims, strides: strides, size: size}
		base += size
	}
	return dir
}

// keepJoinableKeys semi-joins d against the set of keys present in every
// relation (one sorted-lookup round).
func keepJoinableKeys(d *mpc.Dist, keyAttrs []relation.Attr, stats []keyStat, pos []int) *mpc.Dist {
	joinable := make(map[string]bool, len(stats))
	for _, st := range stats {
		joinable[st.key] = true
	}
	// The directory exchange is already charged by the caller's degree
	// shuffles; the filter itself is local knowledge per routed tuple in
	// the real algorithm (attached during the degree multi-search), so we
	// filter locally here.
	return d.FilterLocal(func(it mpc.Item) bool {
		return joinable[relation.KeyAt(it.T, pos)]
	})
}
