// Package core implements the paper's join algorithms and the baselines
// they are measured against, all as communication programs on the mpc
// simulator:
//
//   - BinaryJoin: the output-optimal binary join of [8,18], load
//     O(IN/p + √(OUT/p)) — the workhorse subroutine;
//   - HyperCube: the one-round algorithm of [3] for Cartesian products;
//   - BinHC: the one-round degree-decomposed HyperCube of [8];
//   - Yannakakis: the classical algorithm [34] as an MPC program [2,25]
//     with a pluggable join order, load O(IN/p + OUT/p);
//   - RHier: the paper's Section 3.2 instance-optimal algorithm for
//     r-hierarchical joins, load O(IN/p + L_instance(p,R));
//   - Line3: the paper's Section 4.2 output-optimal line-3 join;
//   - AcyclicJoin: the paper's Section 5.1 output-optimal algorithm for
//     arbitrary acyclic joins, load O(IN/p + √(IN·OUT/p));
//   - Aggregate: Section 6's LinearAggroYannakakis for free-connex
//     join-aggregate queries (and CountOutput, the |Q(R)| primitive);
//   - Triangle: the worst-case optimal triangle join of [24], load
//     O(IN/p^{2/3}), measured against the paper's Section 7 lower bound.
package core

import (
	"fmt"

	"repro/internal/hypergraph"
	"repro/internal/relation"
)

// Instance binds a query hypergraph to concrete relations: relation i is
// the instance of hyperedge i. This is the paper's (Q, R) pair.
type Instance struct {
	Q    *hypergraph.Hypergraph
	Rels []*relation.Relation
	Ring relation.Semiring
}

// NewInstance builds an instance over the counting semiring, validating
// that each relation's schema matches its hyperedge.
func NewInstance(q *hypergraph.Hypergraph, rels ...*relation.Relation) *Instance {
	if len(q.Edges) != len(rels) {
		panic(fmt.Sprintf("core: %d edges but %d relations", len(q.Edges), len(rels)))
	}
	for i, r := range rels {
		got := hypergraph.NewAttrSet([]relation.Attr(r.Schema)...)
		if !got.Equal(q.Edges[i]) {
			panic(fmt.Sprintf("core: relation %d schema %v does not match edge %v", i, r.Schema, q.Edges[i]))
		}
	}
	return &Instance{Q: q, Rels: rels, Ring: relation.CountRing}
}

// IN returns the input size Σ|R(e)|.
func (in *Instance) IN() int {
	n := 0
	for _, r := range in.Rels {
		n += r.Size()
	}
	return n
}

// OutputSchema returns the full join's output schema: all attributes in
// increasing order (canonical, so results from different algorithms
// compare directly).
func (in *Instance) OutputSchema() relation.Schema {
	return in.Q.Attrs().Schema()
}

// Clone deep-copies the instance.
func (in *Instance) Clone() *Instance {
	rels := make([]*relation.Relation, len(in.Rels))
	for i, r := range in.Rels {
		rels[i] = r.Clone()
	}
	return &Instance{Q: hypergraph.New(in.Q.Edges...), Rels: rels, Ring: in.Ring}
}

// SubInstance restricts the instance to the given edge indices.
func (in *Instance) SubInstance(edges []int) *Instance {
	var es []hypergraph.AttrSet
	var rels []*relation.Relation
	for _, e := range edges {
		es = append(es, in.Q.Edges[e])
		rels = append(rels, in.Rels[e])
	}
	return &Instance{Q: hypergraph.New(es...), Rels: rels, Ring: in.Ring}
}
