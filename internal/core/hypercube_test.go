package core

import (
	"math"
	"testing"

	"repro/internal/hypergraph"
	"repro/internal/mpc"
	"repro/internal/relation"
)

func productInstance(sizes ...int) *Instance {
	var edges []hypergraph.AttrSet
	rels := make([]*relation.Relation, len(sizes))
	for i, n := range sizes {
		a := relation.Attr(i + 1)
		edges = append(edges, hypergraph.NewAttrSet(a))
		r := relation.New("R", relation.NewSchema(a))
		for j := 0; j < n; j++ {
			r.Add(relation.Value(j))
		}
		rels[i] = r
	}
	return NewInstance(hypergraph.New(edges...), rels...)
}

func cartesianLower(sizes []int, p int) float64 {
	best := 0.0
	n := len(sizes)
	for mask := 1; mask < 1<<n; mask++ {
		prod, cnt := 1.0, 0
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				prod *= float64(sizes[i])
				cnt++
			}
		}
		if v := math.Pow(prod/float64(p), 1/float64(cnt)); v > best {
			best = v
		}
	}
	return best
}

func TestHyperCubeProductCorrect(t *testing.T) {
	in := productInstance(7, 5, 3)
	c := mpc.NewCluster(8)
	em := mpc.NewCollectEmitter(in.OutputSchema())
	HyperCubeProduct(c, in, 1, em)
	relEqual(t, em.Rel, Naive(in))
}

// TestHyperCubeInstanceOptimalOnPaperExamples checks the Section 1.3
// discussion: the flat product (√IN, √IN, IN) and the skewed product
// (1, IN, IN) have different per-instance bounds, and HyperCube tracks each.
func TestHyperCubeInstanceOptimalOnPaperExamples(t *testing.T) {
	p := 16
	n := 1024
	s := 32 // √n
	cases := [][]int{
		{s, s, n}, // bound (OUT/p)^{1/3}-flavored
		{1, n, n}, // bound (OUT/p)^{1/2}: higher, because of skew
	}
	var loads []int
	var bounds []float64
	for _, sizes := range cases {
		in := productInstance(sizes...)
		c := mpc.NewCluster(p)
		em := mpc.NewCountEmitter(in.Ring)
		HyperCubeProduct(c, in, 1, em)
		want := int64(sizes[0]) * int64(sizes[1]) * int64(sizes[2])
		if em.N != want {
			t.Fatalf("product %v = %d, want %d", sizes, em.N, want)
		}
		lb := cartesianLower(sizes, p)
		if float64(c.MaxLoad()) > 8*(lb+float64(in.IN()/p)+float64(p)) {
			t.Errorf("sizes %v: load %d far above L_cartesian %.0f", sizes, c.MaxLoad(), lb)
		}
		loads = append(loads, c.MaxLoad())
		bounds = append(bounds, lb)
	}
	// The skewed instance's bound is strictly higher; the measured loads
	// must reflect the same ordering (the paper's instance-class point).
	if bounds[1] <= bounds[0] {
		t.Fatalf("expected skewed bound %.0f > flat bound %.0f", bounds[1], bounds[0])
	}
	if loads[1] <= loads[0] {
		t.Errorf("skewed product load %d should exceed flat product load %d", loads[1], loads[0])
	}
}

func TestHyperCubeProductRejectsSharedAttrs(t *testing.T) {
	in := NewInstance(hypergraph.Line2(),
		relation.New("R1", relation.NewSchema(1, 2)),
		relation.New("R2", relation.NewSchema(2, 3)))
	c := mpc.NewCluster(4)
	defer func() {
		if recover() == nil {
			t.Fatal("HyperCubeProduct on joined query did not panic")
		}
	}()
	HyperCubeProduct(c, in, 1, nil)
}

// TestJoinProjectViaBoolRing: join-project queries π_y Q(R) are the
// special join-aggregate under the boolean semiring (Section 6).
func TestJoinProjectViaBoolRing(t *testing.T) {
	r1 := relation.New("R1", relation.NewSchema(1, 2))
	r2 := relation.New("R2", relation.NewSchema(2, 3))
	// Two A-values share B = 1; projecting to B collapses them.
	r1.Add(10, 1)
	r1.Add(11, 1)
	r1.Add(12, 2)
	r2.Add(1, 20)
	r2.Add(2, 21)
	r2.Add(3, 22) // dangling
	in := NewInstance(hypergraph.Line2(), r1, r2)
	in.Ring = relation.BoolRing
	c := mpc.NewCluster(4)
	got := Aggregate(c, in, hypergraph.NewAttrSet(2), 1, nil)
	seen := map[relation.Value]int64{}
	for _, it := range got.All() {
		seen[it.T[0]] = it.A
	}
	if len(seen) != 2 || seen[1] != 1 || seen[2] != 1 {
		t.Errorf("π_B join-project = %v, want {1:1, 2:1}", seen)
	}
}
