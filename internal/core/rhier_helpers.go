package core

import (
	"fmt"

	"repro/internal/hypergraph"
	"repro/internal/mpc"
	"repro/internal/relation"
)

// materialize collects distributed relations back into in-memory relations
// (free: an inspection step for the simulator's in-memory recursion, whose
// communication is charged explicitly by the recursion itself).
func materialize(dists []*mpc.Dist) []*relation.Relation {
	rels := make([]*relation.Relation, len(dists))
	for i, d := range dists {
		rels[i] = d.ToRelation(fmt.Sprintf("R%d", i))
	}
	return rels
}

// chargeLinear charges one linear-load statistics round: n tuples spread
// over the cluster (degree counting, sum-by-key passes and the like).
//
//lint:load perP
func chargeLinear(c *mpc.Cluster, n int) {
	loads := make([]int, c.P)
	per := n / c.P
	rem := n % c.P
	for s := range loads {
		loads[s] = per
		if s < rem {
			loads[s]++
		}
	}
	c.ChargeRound(loads)
}

// chargeInput charges a sub-problem's arrival at a fresh sub-cluster.
func chargeInput(c *mpc.Cluster, n int) { c.ChargeInput(n) }

// totalSize sums relation sizes.
func totalSize(rels []*relation.Relation) int {
	n := 0
	for _, r := range rels {
		n += r.Size()
	}
	return n
}

// unionSchema unions the relations' schemas in order.
func unionSchema(rels []*relation.Relation) relation.Schema {
	var s relation.Schema
	for _, r := range rels {
		s = s.Union(r.Schema)
	}
	return s
}

// splitScalars separates relations whose attributes are all fixed (they
// carry at most one tuple per subproblem: a pure annotation factor).
func splitScalars(rels []*relation.Relation, fixed hypergraph.AttrSet) (active, scalar []*relation.Relation) {
	for _, r := range rels {
		rem := hypergraph.NewAttrSet([]relation.Attr(r.Schema)...).Minus(fixed)
		if len(rem) == 0 {
			scalar = append(scalar, r)
		} else {
			active = append(active, r)
		}
	}
	return active, scalar
}

// foldScalars multiplies the scalar relations' annotations; alive=false if
// any is empty (the subproblem's join is then empty).
func foldScalars(scalar []*relation.Relation, ring relation.Semiring) (int64, bool) {
	scale := ring.One
	for _, r := range scalar {
		switch r.Size() {
		case 0:
			return ring.Zero, false
		case 1:
			scale = ring.Mul(scale, r.Annot(0))
		default:
			panic("core: scalar relation with multiple tuples in one subproblem")
		}
	}
	return scale, true
}

// joinScalarTuples merges the single tuples of scalar relations into one
// tuple over their union schema.
func joinScalarTuples(scalar []*relation.Relation) relation.Tuple {
	schema := unionSchema(scalar)
	t := make(relation.Tuple, len(schema))
	for _, r := range scalar {
		if r.Size() == 0 {
			continue
		}
		for i, a := range r.Schema {
			t[schema.Pos(a)] = r.Tuples[0][i]
		}
	}
	return t
}

// scaleAnnots multiplies every annotation of r by scale.
func scaleAnnots(r *relation.Relation, scale int64, ring relation.Semiring) *relation.Relation {
	if scale == ring.One {
		return r
	}
	out := r.Clone()
	if out.Annots == nil {
		out.Annots = make([]int64, out.Size())
		for i := range out.Annots {
			out.Annots[i] = ring.One
		}
	}
	for i := range out.Annots {
		out.Annots[i] = ring.Mul(out.Annots[i], scale)
	}
	return out
}

// reduceFold applies the paper's reduce procedure on remaining attributes:
// while remaining(e) ⊆ remaining(e'), fold R(e)'s annotations into R(e')
// (R(e') ← R(e) ⋈ R(e')) and drop R(e). Tuples of R(e') without a partner
// are dropped (they are dangling for this subproblem).
func reduceFold(rels []*relation.Relation, fixed hypergraph.AttrSet, ring relation.Semiring) []*relation.Relation {
	out := append([]*relation.Relation(nil), rels...)
	rem := func(r *relation.Relation) hypergraph.AttrSet {
		return hypergraph.NewAttrSet([]relation.Attr(r.Schema)...).Minus(fixed)
	}
	for {
		folded := false
		for i := 0; i < len(out) && !folded; i++ {
			for j := 0; j < len(out); j++ {
				if i == j {
					continue
				}
				ri, rj := rem(out[i]), rem(out[j])
				if !ri.SubsetOf(rj) {
					continue
				}
				if ri.Equal(rj) && i < j {
					continue // equal sets: fold the higher index
				}
				out[j] = foldInto(out[j], out[i], []relation.Attr(ri.Schema()), ring)
				out = append(out[:i], out[i+1:]...)
				folded = true
				break
			}
		}
		if !folded {
			return out
		}
	}
}

// foldInto computes host ⋈ small where small's remaining attributes are
// keyAttrs ⊆ host's schema: host tuples keep their schema, annotations
// multiply, misses drop.
func foldInto(host, small *relation.Relation, keyAttrs []relation.Attr, ring relation.Semiring) *relation.Relation {
	sPos := small.Schema.Positions(keyAttrs)
	hPos := host.Schema.Positions(keyAttrs)
	idx := make(map[string]int64, small.Size())
	for i, t := range small.Tuples {
		k := relation.KeyAt(t, sPos)
		if _, dup := idx[k]; dup {
			panic("core: foldInto with duplicate keys in folded relation")
		}
		idx[k] = small.Annot(i)
	}
	out := relation.New(host.Name, host.Schema)
	out.Annots = []int64{}
	for i, t := range host.Tuples {
		a, ok := idx[relation.KeyAt(t, hPos)]
		if !ok {
			continue
		}
		out.Tuples = append(out.Tuples, t)
		out.Annots = append(out.Annots, ring.Mul(host.Annot(i), a))
	}
	return out
}

// toDistInPlace spreads a relation's tuples round-robin over the cluster
// without charging: they are already resident (charged by chargeInput).
func toDistInPlace(c *mpc.Cluster, r *relation.Relation, ring relation.Semiring) *mpc.Dist {
	d := mpc.NewDist(c, r.Schema)
	for i, t := range r.Tuples {
		d.Parts[i%c.P].Append(t, r.Annot(i))
	}
	return d
}

// groupByValue restricts every relation to σ_{x=v} for each value v of x
// present anywhere. Relations may come back empty for a given v.
func groupByValue(rels []*relation.Relation, x relation.Attr) map[relation.Value][]*relation.Relation {
	groups := map[relation.Value][]*relation.Relation{}
	ensure := func(v relation.Value) []*relation.Relation {
		if g, ok := groups[v]; ok {
			return g
		}
		g := make([]*relation.Relation, len(rels))
		for i, r := range rels {
			nr := relation.New(r.Name, r.Schema)
			nr.Annots = []int64{}
			g[i] = nr
		}
		groups[v] = g
		return g
	}
	for i, r := range rels {
		pos := r.Schema.Pos(x)
		for j, t := range r.Tuples {
			g := ensure(t[pos])
			g[i].Tuples = append(g[i].Tuples, t)
			g[i].Annots = append(g[i].Annots, r.Annot(j))
		}
	}
	return groups
}

// localJoin joins small in-memory relations on one server.
func localJoin(rels []*relation.Relation, ring relation.Semiring) *relation.Relation {
	if len(rels) == 0 {
		out := relation.New("empty", relation.Schema{})
		out.Tuples = []relation.Tuple{{}}
		out.Annots = []int64{ring.One}
		return out
	}
	acc := rels[0].Clone()
	if acc.Annots == nil {
		acc.Annots = make([]int64, acc.Size())
		for i := range acc.Annots {
			acc.Annots[i] = ring.One
		}
	}
	for _, r := range rels[1:] {
		acc = naiveJoin(acc, r, ring)
	}
	return acc
}

// componentsByRoot partitions the active relations by the attribute-forest
// tree containing their remaining attributes.
func componentsByRoot(active []*relation.Relation, fixed hypergraph.AttrSet, forest *hypergraph.AttrForest) [][]*relation.Relation {
	byRoot := map[relation.Attr][]*relation.Relation{}
	var order []relation.Attr
	for _, r := range active {
		rem := hypergraph.NewAttrSet([]relation.Attr(r.Schema)...).Minus(fixed)
		root := forest.RootOf(rem[0])
		if _, ok := byRoot[root]; !ok {
			order = append(order, root)
		}
		byRoot[root] = append(byRoot[root], r)
	}
	out := make([][]*relation.Relation, 0, len(order))
	for _, root := range order {
		out = append(out, byRoot[root])
	}
	return out
}

// padTo re-lays a tuple from one schema into another (target must contain
// every source attribute).
func padTo(t relation.Tuple, from, to relation.Schema) relation.Tuple {
	if from.Equal(to) {
		return t
	}
	out := make(relation.Tuple, len(to))
	for i, a := range from {
		out[to.Pos(a)] = t[i]
	}
	return out
}
