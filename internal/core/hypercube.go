package core

import (
	"repro/internal/mpc"
	"repro/internal/relation"
)

// HyperCubeProduct computes a Cartesian product query R1(x1) × … × Rm(xm)
// (pairwise disjoint schemas) with the HyperCube algorithm [3]. As the
// paper observes (Section 1.3), HyperCube is instance-optimal for Cartesian
// products: its load tracks equation (1),
//
//	L_cartesian(p, R) = max_{S} (Π_{i∈S} N_i / p)^{1/|S|},
//
// up to polylog factors, because the per-relation grid dimensions adapt to
// the relation sizes. Implemented as the keyed multiway join with an empty
// key, whose allocator chooses exactly those dimensions.
func HyperCubeProduct(c *mpc.Cluster, in *Instance, seed uint64, em mpc.Emitter) *mpc.Dist {
	for i := range in.Q.Edges {
		for j := i + 1; j < len(in.Q.Edges); j++ {
			if !in.Q.Edges[i].Disjoint(in.Q.Edges[j]) {
				panic("core: HyperCubeProduct needs pairwise disjoint relations")
			}
		}
	}
	dists := LoadInstance(c, in)
	res := MultiwayKeyedJoin(relation.Schema{}, dists, in.Ring, seed, nil)
	EmitDist(res, in.OutputSchema(), em)
	return res
}
