package core

import (
	"repro/internal/hypergraph"
	"repro/internal/mpc"
	"repro/internal/relation"
)

// HyperCubeProduct computes a Cartesian product query R1(x1) × … × Rm(xm)
// (pairwise disjoint schemas) with the HyperCube algorithm [3]. As the
// paper observes (Section 1.3), HyperCube is instance-optimal for Cartesian
// products: its load tracks equation (1),
//
//	L_cartesian(p, R) = max_{S} (Π_{i∈S} N_i / p)^{1/|S|},
//
// up to polylog factors, because the per-relation grid dimensions adapt to
// the relation sizes. Implemented as the keyed multiway join with an empty
// key, whose allocator chooses exactly those dimensions.
//
//lint:load frac trust eq. (1): per-relation grid dimensions adapt to the sizes, attaining L_cartesian up to polylog factors
//lint:rounds const
func HyperCubeProduct(c *mpc.Cluster, in *Instance, seed uint64, em mpc.Emitter) *mpc.Dist {
	if !IsProductQuery(in.Q) {
		panic("core: HyperCubeProduct needs pairwise disjoint relations")
	}
	dists := LoadInstance(c, in)
	res := MultiwayKeyedJoin(relation.Schema{}, dists, in.Ring, seed, nil)
	EmitDist(res, in.OutputSchema(), em)
	return res
}

// IsProductQuery reports whether q is a Cartesian product (pairwise
// disjoint edges), the shape HyperCube is instance-optimal for. The one
// canonical shape check, shared with the engine's dispatch.
func IsProductQuery(q *hypergraph.Hypergraph) bool {
	for i := range q.Edges {
		for j := i + 1; j < len(q.Edges); j++ {
			if !q.Edges[i].Disjoint(q.Edges[j]) {
				return false
			}
		}
	}
	return true
}
