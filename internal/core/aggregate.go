package core

import (
	"fmt"

	"repro/internal/hypergraph"
	"repro/internal/mpc"
	"repro/internal/primitives"
	"repro/internal/relation"
)

// Section 6: join-aggregate queries over annotated relations.
//
// LinearAggro is the paper's LinearAggroYannakakis (Algorithm 1 / Lemma 3):
// in O(1) rounds and linear load it eliminates all non-output attributes of
// a free-connex query, producing "frontier" relations whose schemas are
// subsets of y and whose annotated join is exactly ⊕_ȳ Q(R). Components
// without output attributes collapse to a scalar ⊗-factor.

// AggregateResult is the output of LinearAggro.
type AggregateResult struct {
	// Frontiers are the reduced relations T'(R_T'): schemas ⊆ y, and the
	// union of their schemas is exactly y. Their annotated join (⊗ inside,
	// no further ⊕ needed) is the query answer, scaled by Scalar.
	Frontiers []*mpc.Dist
	// Scalar is the ⊗-product contributed by subtrees containing no output
	// attribute (Ring.One when there are none). If it is Ring.Zero the
	// answer is empty.
	Scalar int64
}

// LinearAggro eliminates the non-output attributes of the free-connex
// query (in.Q, y). It panics if the query is not free-connex.
//
//lint:load perP
//lint:rounds const
func LinearAggro(c *mpc.Cluster, in *Instance, y hypergraph.AttrSet, seed uint64) AggregateResult {
	w := hypergraph.WithOutput{Q: in.Q, Y: y}
	if !w.IsFreeConnex() {
		panic(fmt.Sprintf("core: query %v with output %v is not free-connex", in.Q, y))
	}
	dists := LoadInstance(c, in)
	return linearAggroDists(in.Q, dists, y, in.Ring, seed)
}

// linearAggroDists is LinearAggro on already-distributed relations.
func linearAggroDists(q *hypergraph.Hypergraph, dists []*mpc.Dist, y hypergraph.AttrSet,
	ring relation.Semiring, seed uint64) AggregateResult {

	// Preprocessing: remove dangling tuples, then reduce the hypergraph;
	// an absorbed edge's annotations are ⊗-merged into its host (the
	// paper replaces R(e') with R(e) ⋈ R(e') before discarding R(e)).
	dists = FullReduce(&Instance{Q: q, Rels: relsOf(q, dists)}, dists)
	reduced, host := q.Reduce()
	rdists := make([]*mpc.Dist, len(reduced.Edges))
	for i := range q.Edges {
		if host[i] >= 0 && rdists[host[i]] == nil && reduced.Edges[host[i]].Equal(hypergraph.NewAttrSet([]relation.Attr(dists[i].Schema)...)) {
			rdists[host[i]] = dists[i]
		}
	}
	for i := range q.Edges {
		h := host[i]
		if rdists[h] == dists[i] {
			continue
		}
		key := []relation.Attr(dists[i].Schema)
		rdists[h] = primitives.AttachAnnot(rdists[h], key, dists[i], key, ring, true)
	}

	if len(y) == 0 {
		return AggregateResult{Scalar: fullAggregate(reduced, rdists, ring, seed)}
	}

	w := hypergraph.WithOutput{Q: reduced, Y: y}
	tree, virtual, ok := w.FreeConnexTree()
	if !ok {
		panic("core: reduced query lost free-connexity")
	}
	nodeSchema := func(u int) hypergraph.AttrSet {
		if u == virtual {
			return y
		}
		return reduced.Edges[u]
	}
	res := AggregateResult{Scalar: ring.One}
	for step, u := range tree.RemovalOrder {
		if u == virtual {
			continue
		}
		pu := tree.Parent[u]
		target := reduced.Edges[u].Intersect(nodeSchema(pu))
		cur := primitives.SumByKey(rdists[u], []relation.Attr(target), ring, seed^uint64(0x30+step))
		if pu != virtual {
			rdists[pu] = primitives.AttachAnnot(rdists[pu], []relation.Attr(target), cur, []relation.Attr(target), ring, true)
			continue
		}
		if len(target) == 0 {
			// A subtree with no output attributes contributes a scalar.
			res.Scalar = ring.Mul(res.Scalar, scalarOf(cur, ring))
			continue
		}
		res.Frontiers = append(res.Frontiers, cur)
	}
	return res
}

// fullAggregate handles y = ∅: everything folds into the join-tree root,
// whose annotation sum is the answer (e.g. |Q(R)| under the count ring).
func fullAggregate(q *hypergraph.Hypergraph, dists []*mpc.Dist, ring relation.Semiring, seed uint64) int64 {
	tree, ok := q.GYO()
	if !ok {
		panic("core: fullAggregate on cyclic query")
	}
	cur := make([]*mpc.Dist, len(dists))
	copy(cur, dists)
	for step, u := range tree.RemovalOrder {
		p := tree.Parent[u]
		if p < 0 {
			break
		}
		target := q.Edges[u].Intersect(q.Edges[p])
		agg := primitives.SumByKey(cur[u], []relation.Attr(target), ring, seed^uint64(0x50+step))
		cur[p] = primitives.AttachAnnot(cur[p], []relation.Attr(target), agg, []relation.Attr(target), ring, true)
	}
	root := primitives.SumByKey(cur[tree.Root], nil, ring, seed^0x77)
	return scalarOf(root, ring)
}

// scalarOf extracts the single aggregate of an empty-schema collection
// (Zero when it is empty — an empty subtree kills the whole join).
func scalarOf(d *mpc.Dist, ring relation.Semiring) int64 {
	items := d.All()
	switch len(items) {
	case 0:
		return ring.Zero
	case 1:
		return items[0].A
	}
	panic("core: scalarOf on non-scalar collection")
}

// CountOutput computes OUT = |Q(R)| for an acyclic join in O(1) rounds with
// linear load (Corollary 4): LinearAggro under the count ring with y = ∅.
// This is the MPC primitive the output-optimal algorithms start with.
//
//lint:load perP
//lint:rounds const
func CountOutput(c *mpc.Cluster, in *Instance, seed uint64) int64 {
	counted := &Instance{Q: in.Q, Rels: in.Rels, Ring: relation.CountRing}
	dists := LoadInstance(c, counted)
	return CountOutputDists(in.Q, dists, seed)
}

// CountOutputDists is CountOutput on already-distributed relations, with
// annotations forced to 1 so it counts tuples regardless of the semiring
// the caller runs under.
//
//lint:load perP
//lint:rounds const
func CountOutputDists(q *hypergraph.Hypergraph, dists []*mpc.Dist, seed uint64) int64 {
	ones := make([]*mpc.Dist, len(dists))
	for i, d := range dists {
		ones[i] = d.MapLocal(d.Schema, func(_ int, it mpc.Item) []mpc.Item {
			return []mpc.Item{{T: it.T, A: 1}}
		})
	}
	res := linearAggroDists(q, ones, nil, relation.CountRing, seed)
	return res.Scalar
}

// Aggregate computes the full free-connex join-aggregate query ⊕_ȳ Q(R):
// LinearAggro, then the output-optimal join over the frontier relations
// (Theorem 9). The result is distributed over y's schema; em, when non-nil,
// observes every output tuple with its aggregate annotation.
//
//lint:load frac trust dispatches to RHier/BinaryJoin for the join phase; the aggregation passes themselves stay at IN/p
//lint:rounds const
func Aggregate(c *mpc.Cluster, in *Instance, y hypergraph.AttrSet, seed uint64, em mpc.Emitter) *mpc.Dist {
	res := LinearAggro(c, in, y, seed)
	ySchema := y.Schema()
	if len(res.Frontiers) == 0 {
		out := mpc.NewDist(c, ySchema)
		if len(y) == 0 && res.Scalar != in.Ring.Zero {
			out.Parts[0].Append(relation.Tuple{}, res.Scalar)
			EmitDist(out, ySchema, em)
		}
		return out
	}
	// Join the frontier relations. Per Theorem 10, out-hierarchical queries
	// route through the §3.2 instance-optimal algorithm; otherwise the
	// frontier query is acyclic and binary-join folding applies. The Scalar
	// multiplies into the first frontier.
	fq := hypergraph.FromSchemas(frontierSchemas(res.Frontiers)...)
	scale := res.Scalar
	first := res.Frontiers[0].MapLocal(res.Frontiers[0].Schema, func(_ int, it mpc.Item) []mpc.Item {
		return []mpc.Item{{T: it.T, A: in.Ring.Mul(it.A, scale)}}
	})
	frontiers := append([]*mpc.Dist{first}, res.Frontiers[1:]...)

	if fq.IsRHierarchical() {
		frontInst := &Instance{Q: fq, Rels: materialize(frontiers), Ring: in.Ring}
		sub := mpc.NewCluster(c.P)
		out := RHier(sub, frontInst, seed^0x5A, nil)
		c.MergeSequential(sub.Snapshot())
		out.C = c
		EmitDist(out, ySchema, em)
		return out
	}
	order := DefaultJoinOrder(fq)
	acc := frontiers[order[0]]
	for i := 1; i < len(order); i++ {
		acc = BinaryJoin(acc, frontiers[order[i]], in.Ring, seed+uint64(13*i), nil)
	}
	EmitDist(acc, ySchema, em)
	return acc
}

func frontierSchemas(fs []*mpc.Dist) []relation.Schema {
	out := make([]relation.Schema, len(fs))
	for i, f := range fs {
		out[i] = f.Schema
	}
	return out
}

// relsOf reconstructs placeholder relations for FullReduce's tree building
// (only schemas are consulted).
func relsOf(q *hypergraph.Hypergraph, dists []*mpc.Dist) []*relation.Relation {
	rels := make([]*relation.Relation, len(dists))
	for i, d := range dists {
		rels[i] = relation.New(fmt.Sprintf("R%d", i), d.Schema)
	}
	return rels
}
