package core

import (
	"math"

	"repro/internal/mpc"
	"repro/internal/relation"
)

// Line3WorstCase is the worst-case optimal one-round algorithm for the
// line-3 join [19,24]: a √p × √p server grid with shares on the two join
// attributes B and C. R1(A,B) replicates along the C dimension, R3(C,D)
// along the B dimension, and R2(B,C) lands on exactly one server; the load
// is O(IN/√p) regardless of OUT.
//
// Section 4.3 shows this bound is output-optimal exactly when OUT ≥ p·IN,
// completing the paper's three-regime picture of the line-3 join:
// OUT ≤ IN → O(IN/p) (Yannakakis); IN < OUT ≤ p·IN → O(√(IN·OUT/p))
// (Line3); OUT > p·IN → O(IN/√p) (this algorithm).
//
// The degree-based sub-bucketing that [24] adds for heavy B/C values is
// omitted here: the harness runs this algorithm on the paper's balanced
// lower-bound instances (Figure 4), where the plain grid already attains
// the bound. Skewed workloads should use Line3/AcyclicJoin instead.
//
//lint:load frac trust Section 4.3: the sqrt(p) x sqrt(p) grid replicates each endpoint relation sqrt(p)-fold, IN/sqrt(p) per server
//lint:rounds const
func Line3WorstCase(c *mpc.Cluster, in *Instance, seed uint64, em mpc.Emitter) *mpc.Dist {
	b, cAttr := line3Attrs(in)
	dists := LoadInstance(c, in)
	r1, r2, r3 := dists[0], dists[1], dists[2]

	s := int(math.Sqrt(float64(c.P)))
	if s < 1 {
		s = 1
	}
	srv := func(ib, ic int) int { return ib*s + ic }
	hb := func(v relation.Value) int {
		return int(mpc.Hash64(relation.EncodeValues(v), seed^0x1) % uint64(s))
	}
	hc := func(v relation.Value) int {
		return int(mpc.Hash64(relation.EncodeValues(v), seed^0x2) % uint64(s))
	}

	p1b := r1.Schema.Pos(b)
	p2b, p2c := r2.Schema.Pos(b), r2.Schema.Pos(cAttr)
	p3c := r3.Schema.Pos(cAttr)

	// R1 → row h(b), all columns; R3 → column h(c), all rows; R2 → one cell.
	g1 := r1.ReplicateBy(func(it mpc.Item) []int {
		row := hb(it.T[p1b])
		out := make([]int, s)
		for j := 0; j < s; j++ {
			out[j] = srv(row, j)
		}
		return out
	})
	g2 := r2.ShuffleBy(func(it mpc.Item) int {
		return srv(hb(it.T[p2b]), hc(it.T[p2c]))
	})
	g3 := r3.ReplicateBy(func(it mpc.Item) []int {
		col := hc(it.T[p3c])
		out := make([]int, s)
		for i := 0; i < s; i++ {
			out[i] = srv(i, col)
		}
		return out
	})

	outSchema := in.OutputSchema()
	res := mpc.NewDist(c, outSchema)
	aAttrs := r1.Schema.Minus(relation.NewSchema(b))
	dAttrs := r3.Schema.Minus(relation.NewSchema(cAttr))
	aPos := g1.Positions([]relation.Attr(aAttrs))
	dPos := g3.Positions([]relation.Attr(dAttrs))
	aDst := outSchema.Positions([]relation.Attr(aAttrs))
	dDst := outSchema.Positions([]relation.Attr(dAttrs))
	bDst, cDst := outSchema.Pos(b), outSchema.Pos(cAttr)

	for sv := 0; sv < c.P; sv++ {
		byB := map[relation.Value][]mpc.Item{}
		for i, p := 0, &g1.Parts[sv]; i < p.Len(); i++ {
			it := p.Item(i)
			byB[it.T[p1b]] = append(byB[it.T[p1b]], it)
		}
		byC := map[relation.Value][]mpc.Item{}
		for i, p := 0, &g3.Parts[sv]; i < p.Len(); i++ {
			it := p.Item(i)
			byC[it.T[p3c]] = append(byC[it.T[p3c]], it)
		}
		for mi, p2 := 0, &g2.Parts[sv]; mi < p2.Len(); mi++ {
			mid := p2.Item(mi)
			bv, cv := mid.T[p2b], mid.T[p2c]
			for _, left := range byB[bv] {
				for _, right := range byC[cv] {
					t := make(relation.Tuple, len(outSchema))
					t[bDst], t[cDst] = bv, cv
					for i, p := range aPos {
						t[aDst[i]] = left.T[p]
					}
					for i, p := range dPos {
						t[dDst[i]] = right.T[p]
					}
					annot := in.Ring.Mul(left.A, in.Ring.Mul(mid.A, right.A))
					res.Parts[sv].Append(t, annot)
					if em != nil {
						em.Emit(sv, t, annot)
					}
				}
			}
		}
	}
	return res
}
