package core

import (
	"fmt"

	"repro/internal/hypergraph"
	"repro/internal/mpc"
	"repro/internal/primitives"
	"repro/internal/relation"
	"repro/internal/runtime"
)

// LoadInstance distributes every relation of the instance over the cluster
// (the model's initial state, charged as round 0).
//
//lint:load perP
func LoadInstance(c *mpc.Cluster, in *Instance) []*mpc.Dist {
	dists := make([]*mpc.Dist, len(in.Rels))
	for i, r := range in.Rels {
		dists[i] = mpc.FromRelation(c, r)
	}
	return dists
}

// FullReduce removes all dangling tuples with a full reducer over the join
// tree: one bottom-up and one top-down semi-join pass [34]. O(1) rounds,
// linear load. It panics on cyclic queries. Fully deterministic: the
// semi-joins sort, they do not hash, so no seed is taken.
//
//lint:load perP
//lint:rounds const
func FullReduce(in *Instance, dists []*mpc.Dist) []*mpc.Dist {
	tree, ok := in.Q.GYO()
	if !ok {
		panic("core: FullReduce on cyclic query")
	}
	out := make([]*mpc.Dist, len(dists))
	copy(out, dists)
	semi := func(x, d *mpc.Dist) *mpc.Dist {
		shared := x.Schema.Intersect(d.Schema)
		if len(shared) == 0 {
			return x
		}
		return primitives.SemiJoin(x, shared, d, shared)
	}
	// Bottom-up: parents shed tuples with no support below.
	for _, u := range tree.RemovalOrder {
		p := tree.Parent[u]
		if p < 0 {
			continue
		}
		out[p] = semi(out[p], out[u])
	}
	// Top-down: children shed tuples with no support above.
	for i := len(tree.RemovalOrder) - 1; i >= 0; i-- {
		u := tree.RemovalOrder[i]
		p := tree.Parent[u]
		if p < 0 {
			continue
		}
		out[u] = semi(out[u], out[p])
	}
	return out
}

// DefaultJoinOrder returns a join order along the join tree (BFS from the
// root), so every prefix of the order is connected whenever Q is.
func DefaultJoinOrder(q *hypergraph.Hypergraph) []int {
	tree, ok := q.GYO()
	if !ok {
		panic("core: DefaultJoinOrder on cyclic query")
	}
	var order []int
	queue := []int{tree.Root}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		order = append(order, u)
		queue = append(queue, tree.Children[u]...)
	}
	return order
}

// Yannakakis is the classical algorithm as an MPC program [2,25]: remove
// dangling tuples (linear load), then fold the relations pairwise with the
// output-optimal binary join, in the given order (a permutation of edge
// indices; nil means DefaultJoinOrder). Load O(IN/p + OUT/p): after
// reduction every intermediate result is part of a full join result, so
// intermediate sizes — and hence the inputs of later binary joins — can
// reach Θ(OUT). Section 4.1 shows this is inherent for fixed orders.
//
//lint:load perP trust after the full reduction every intermediate is output-bounded (Cor. 8): IN/p + OUT/p per join step
//lint:rounds const
func Yannakakis(c *mpc.Cluster, in *Instance, order []int, seed uint64, em mpc.Emitter) *mpc.Dist {
	if order == nil {
		order = DefaultJoinOrder(in.Q)
	}
	if len(order) != len(in.Rels) {
		panic(fmt.Sprintf("core: join order has %d entries for %d relations", len(order), len(in.Rels)))
	}
	dists := LoadInstance(c, in)
	dists = FullReduce(in, dists)
	acc := dists[order[0]]
	for i := 1; i < len(order); i++ {
		acc = BinaryJoin(acc, dists[order[i]], in.Ring, seed+uint64(7*i), nil)
	}
	EmitDist(acc, in.OutputSchema(), em)
	return acc
}

// emitSerialBelow is the result size under which EmitDist stays on the
// calling goroutine.
const emitSerialBelow = 1 << 12

// EmitDist projects d locally onto schema and reports every tuple to em
// (free, as emit() is in the model). em may be nil.
//
// When every sink in em is shard-safe — counting emitters, which fork
// per-server counters merged in server order, and per-partition sinks
// (ShardedEmitter, PerServerCounter), whose partition s is written only by
// the task owning server s — emission fans out across workers without any
// lock. Everything else takes the serial path. Both paths produce the same
// emitter state for every worker count.
func EmitDist(d *mpc.Dist, schema relation.Schema, em mpc.Emitter) {
	if em == nil {
		return
	}
	pos := d.Positions([]relation.Attr(schema))
	emitPart := func(s int, sink mpc.Emitter) {
		part := &d.Parts[s]
		for i := 0; i < part.Len(); i++ {
			src := part.Tuple(i)
			t := make(relation.Tuple, len(pos))
			for j, p := range pos {
				t[j] = src[p]
			}
			sink.Emit(s, t, part.Annot(i))
		}
	}
	if direct, forkers, ok := shardableSinks(em, len(d.Parts)); ok && d.Size() >= emitSerialBelow {
		locals := make([][]mpc.Emitter, len(d.Parts))
		runtime.Fork(len(d.Parts), func(s int) {
			sink := make(mpc.MultiEmitter, 0, len(direct)+len(forkers))
			sink = append(sink, direct...)
			ls := make([]mpc.Emitter, len(forkers))
			for i, f := range forkers {
				ls[i] = f.ForkWorker()
				sink = append(sink, ls[i])
			}
			emitPart(s, sink)
			locals[s] = ls
		})
		for i, f := range forkers {
			workers := make([]mpc.Emitter, len(d.Parts))
			for s := range locals {
				workers[s] = locals[s][i]
			}
			f.MergeWorkers(workers)
		}
		return
	}
	for s := range d.Parts {
		emitPart(s, em)
	}
}

// shardableSinks flattens em and reports whether every sink supports the
// parallel per-server emission, by capability: mpc.ForkingSinks are
// returned for fork-and-merge, mpc.PartitionedSinks covering all parts are
// emitted into directly (lock-free under per-partition ownership).
// Anything else forces the serial path.
func shardableSinks(em mpc.Emitter, parts int) (direct []mpc.Emitter, forkers []mpc.ForkingSink, ok bool) {
	var walk func(e mpc.Emitter) bool
	walk = func(e mpc.Emitter) bool {
		if multi, isMulti := e.(mpc.MultiEmitter); isMulti {
			for _, sub := range multi {
				if !walk(sub) {
					return false
				}
			}
			return true
		}
		if ps, isPS := e.(mpc.PartitionedSink); isPS && ps.Partitioned(parts) {
			direct = append(direct, ps)
			return true
		}
		if f, isFork := e.(mpc.ForkingSink); isFork {
			forkers = append(forkers, f)
			return true
		}
		return false
	}
	if !walk(em) {
		return nil, nil, false
	}
	return direct, forkers, true
}
