package core

import (
	"math"

	"repro/internal/hypergraph"
	"repro/internal/mpc"
	"repro/internal/primitives"
	"repro/internal/relation"
)

// Line3 is the paper's Section 4.2 output-optimal algorithm for the line-3
// join R1(A,B) ⋈ R2(B,C) ⋈ R3(C,D), with load O(IN/p + √(IN·OUT/p)).
//
// After removing dangling tuples it computes OUT (an MPC primitive), sets
// the degree threshold τ = √(OUT/IN), and splits B-values by their degree
// in R1. The join then decomposes into two parts with different orders:
//
//	Q1 = R1^H ⋈ (R2^H ⋈ R3)   — |R2^H ⋈ R3| ≤ OUT/τ,
//	Q2 = (R1^L ⋈ R2^L) ⋈ R3   — |R1^L ⋈ R2^L| ≤ IN·τ,
//
// so no intermediate result exceeds √(IN·OUT) and the binary-join
// subroutine keeps every step within the target load. This is the paper's
// key observation that join ORDER has asymptotic consequences in MPC
// (Section 4.1) and that decomposing by degree always yields a good order
// for each part.
//
//lint:load frac
//lint:rounds const
func Line3(c *mpc.Cluster, in *Instance, seed uint64, em mpc.Emitter) *mpc.Dist {
	return Line3WithTau(c, in, 0, seed, em)
}

// Line3WithTau runs the Section 4.2 algorithm with an explicit degree
// threshold τ (tau ≤ 0 selects the paper's balanced τ = √(OUT/IN)). The τ
// ablation sweeps this to show the balance point of equations (4) and (5).
//
//lint:load frac
//lint:rounds const
func Line3WithTau(c *mpc.Cluster, in *Instance, tauOverride int64, seed uint64, em mpc.Emitter) *mpc.Dist {
	b, _ := line3Attrs(in)

	dists := LoadInstance(c, in)
	dists = FullReduce(in, dists)
	r1, r2, r3 := dists[0], dists[1], dists[2]

	out := CountOutputDists(in.Q, dists, seed^0x200)
	outSchema := in.OutputSchema()
	if out == 0 {
		return mpc.NewDist(c, outSchema)
	}
	inSize := int64(in.IN())
	tau := tauOverride
	if tau <= 0 {
		tau = int64(math.Ceil(math.Sqrt(float64(out) / float64(inSize))))
	}
	if tau < 1 {
		tau = 1
	}

	// Step (1): degrees of B-values in R1 (sum-by-key), attached to the
	// tuples of R1 and R2 (multi-search), then heavy/light split.
	bAttr := []relation.Attr{b}
	degB := primitives.CountByKey(r1, bAttr, seed^0x300)
	r1H, r1L := splitByDegree(r1, bAttr, degB, tau)
	r2H, r2L := splitByDegree(r2, bAttr, degB, tau)

	// Step (2): two sub-joins with opposite orders.
	t23 := BinaryJoin(r2H, r3, in.Ring, seed^0x400, nil)
	q1 := BinaryJoin(r1H, t23, in.Ring, seed^0x401, nil)

	t12 := BinaryJoin(r1L, r2L, in.Ring, seed^0x402, nil)
	q2 := BinaryJoin(t12, r3, in.Ring, seed^0x403, nil)

	res := mpc.Concat(ProjectLocal(q1, outSchema), ProjectLocal(q2, outSchema))
	EmitDist(res, outSchema, em)
	return res
}

// IsLine3Query reports whether q has the line-3 chain shape
// R1(A,B) ⋈ R2(B,C) ⋈ R3(C,D) that Line3 handles: the one canonical shape
// check, shared with the engine's dispatch.
func IsLine3Query(q *hypergraph.Hypergraph) bool {
	_, _, ok := line3Shape(q)
	return ok
}

// line3Shape returns (B, C), the two join attributes of the chain, and
// whether q has the line-3 shape at all.
func line3Shape(q *hypergraph.Hypergraph) (b, c relation.Attr, ok bool) {
	if len(q.Edges) != 3 {
		return 0, 0, false
	}
	bs := q.Edges[0].Intersect(q.Edges[1])
	cs := q.Edges[1].Intersect(q.Edges[2])
	if len(bs) != 1 || len(cs) != 1 || bs[0] == cs[0] ||
		!q.Edges[0].Intersect(q.Edges[2]).Equal(nil) {
		return 0, 0, false
	}
	return bs[0], cs[0], true
}

// line3Attrs is line3Shape with the panic the algorithms rely on.
func line3Attrs(in *Instance) (relation.Attr, relation.Attr) {
	b, c, ok := line3Shape(in.Q)
	if !ok {
		panic("core: Line3 query is not a line-3 chain")
	}
	return b, c
}

// splitByDegree attaches deg's annotation (0 when missing) per key and
// partitions d into (heavy, light) by threshold tau. One lookup round; the
// split itself is local.
func splitByDegree(d *mpc.Dist, keyAttrs []relation.Attr, deg *mpc.Dist, tau int64) (heavy, light *mpc.Dist) {
	heavy = primitives.Lookup(d, keyAttrs, deg, keyAttrs, d.Schema,
		func(it mpc.Item, r primitives.LookupResult) (mpc.Item, bool) {
			return it, r.Found && r.DAnnot > tau
		})
	light = primitives.Lookup(d, keyAttrs, deg, keyAttrs, d.Schema,
		func(it mpc.Item, r primitives.LookupResult) (mpc.Item, bool) {
			return it, !r.Found || r.DAnnot <= tau
		})
	return heavy, light
}

// ProjectLocal projects d onto schema without communication.
func ProjectLocal(d *mpc.Dist, schema relation.Schema) *mpc.Dist {
	if d.Schema.Equal(schema) {
		return d
	}
	pos := d.Positions([]relation.Attr(schema))
	return d.MapLocal(schema, func(_ int, it mpc.Item) []mpc.Item {
		t := make(relation.Tuple, len(pos))
		for i, p := range pos {
			t[i] = it.T[p]
		}
		return []mpc.Item{{T: t, A: it.A}}
	})
}
