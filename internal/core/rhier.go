package core

import (
	"sort"

	"repro/internal/hypergraph"
	"repro/internal/mpc"
	"repro/internal/primitives"
	"repro/internal/relation"
	"repro/internal/runtime"
)

// Section 3: r-hierarchical joins.
//
// RHier is the paper's Section 3.2 deterministic, instance-optimal
// algorithm: load O(IN/p + L_instance(p,R)) in O(1) rounds. BinHC is the
// one-round algorithm of [8] (Section 3.1): same recursive decomposition of
// the attribute forest, but server shares come from degree statistics alone
// (the quantities in Theorems 1–2) rather than exact sub-join sizes — which
// is optimal up to polylog factors on tall-flat joins, and on r-hierarchical
// joins only when the instance has no dangling tuples.
//
// Both share one recursion (Cases 1 and 2 of Section 3.2):
//
//   - single attribute-forest tree rooted at x: group the instance by the
//     value a of x; light groups (IN_a ≤ L) are parallel-packed onto single
//     servers and solved locally; each heavy group gets
//     p_a = max_S |Q_x(R_a, S)|/L^{|S|} servers and recurses;
//   - a forest with k > 1 trees is a Cartesian product: each component is
//     computed by groups of servers arranged in a p_1 × … × p_k grid, and
//     every grid server emits the cross product of its k slices — the
//     interleaving that avoids materializing intermediate products.

// sizer estimates |⋈ S| for a subset of (already value-restricted)
// relations. RHier uses the exact DP count; BinHC uses the degree product
// Π_e |R(e)|, the quantity its analysis is built on.
type sizer func(rels []*relation.Relation) int64

func exactSizer(rels []*relation.Relation) int64 { return InMemoryJoinCount(rels) }

func degreeSizer(rels []*relation.Relation) int64 {
	out := int64(1)
	for _, r := range rels {
		out *= int64(r.Size())
		if out > 1<<40 {
			return 1 << 40
		}
	}
	return out
}

// RHier computes an r-hierarchical join with load O(IN/p + L_instance).
//
//lint:load frac trust Theorem 9: the residue-class grid and recursion keep every server at IN/p + L_instance(p,R)
//lint:rounds const
func RHier(c *mpc.Cluster, in *Instance, seed uint64, em mpc.Emitter) *mpc.Dist {
	if !in.Q.IsRHierarchical() {
		panic("core: RHier on non-r-hierarchical query")
	}
	outSchema := in.OutputSchema()
	dists := LoadInstance(c, in)
	dists = FullReduce(in, dists)
	rels := materialize(dists)

	// L = IN/p + L_instance(p, R), computed from the reduced instance
	// (2^m linear-load counting passes, charged below).
	red := &Instance{Q: in.Q, Rels: rels, Ring: in.Ring}
	chargeLinear(c, in.IN())
	l := int64(in.IN()/c.P) + LInstance(red, c.P)
	if l < 1 {
		l = 1
	}
	res := hierRec(c, rels, nil, l, in.Ring, exactSizer)
	res = ProjectLocal(res, outSchema)
	EmitDist(res, outSchema, em)
	return res
}

// BinHC runs the one-round degree-based algorithm. With removeDangling it
// first runs the linear-load semi-join reduction (turning it into the
// multi-round variant of Table 1 that is instance-optimal for all
// r-hierarchical joins); without it, dangling tuples can inflate the
// degree-based shares, which is exactly the one-round barrier the paper
// describes.
//
//lint:load frac trust Section 5.1: degree-based sharing caps each server at the Table 1 instance bound
//lint:rounds const
func BinHC(c *mpc.Cluster, in *Instance, seed uint64, removeDangling bool, em mpc.Emitter) *mpc.Dist {
	if !in.Q.IsRHierarchical() {
		panic("core: BinHC on non-r-hierarchical query")
	}
	outSchema := in.OutputSchema()
	dists := LoadInstance(c, in)
	if removeDangling {
		dists = FullReduce(in, dists)
	}
	rels := materialize(dists)
	chargeLinear(c, in.IN())
	// BinHC picks the smallest load target whose share allocation fits in
	// O(p) servers — computable from the degree statistics alone.
	lo, hi := int64(in.IN()/c.P)+1, int64(in.IN())+1
	for lo < hi {
		mid := lo + (hi-lo)/2
		if planServers(rels, nil, mid, degreeSizer) <= 2*c.P {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	res := hierRec(c, rels, nil, lo, in.Ring, degreeSizer)
	res = ProjectLocal(res, outSchema)
	EmitDist(res, outSchema, em)
	return res
}

// hierState is one recursion node: relations plus the attributes already
// fixed by enclosing value groups (their columns are constant here).
//
// hierRec returns the join result distributed over sub's servers; loads are
// recorded on sub and composed by the caller.
func hierRec(sub *mpc.Cluster, rels []*relation.Relation, fixed hypergraph.AttrSet,
	l int64, ring relation.Semiring, size sizer) *mpc.Dist {

	active, scalar := splitScalars(rels, fixed)
	scale, alive := foldScalars(scalar, ring)
	if !alive {
		return mpc.NewDist(sub, unionSchema(rels))
	}
	if len(active) == 0 {
		out := mpc.NewDist(sub, unionSchema(rels))
		t := joinScalarTuples(scalar)
		out.Parts[0].Append(t, scale)
		return out
	}
	active = reduceFold(active, fixed, ring)
	active[0] = scaleAnnots(active[0], scale, ring)

	remaining := make([]hypergraph.AttrSet, len(active))
	for i, r := range active {
		remaining[i] = hypergraph.NewAttrSet([]relation.Attr(r.Schema)...).Minus(fixed)
	}
	forest := hypergraph.New(remaining...).AttributeForest()

	if len(active) == 1 {
		return toDistInPlace(sub, active[0], ring)
	}
	if len(forest.Roots) == 1 {
		return hierCase1(sub, active, fixed, forest, l, ring, size)
	}
	return hierCase2(sub, active, fixed, forest, l, ring, size)
}

// hierCase1 handles a single tree rooted at attribute x: group by x-value.
func hierCase1(sub *mpc.Cluster, active []*relation.Relation, fixed hypergraph.AttrSet,
	forest *hypergraph.AttrForest, l int64, ring relation.Semiring, size sizer) *mpc.Dist {

	x := forest.Attrs[forest.Roots[0]]
	groups := groupByValue(active, x)
	chargeLinear(sub, totalSize(active))

	out := mpc.NewDist(sub, unionSchema(active))

	var heavies [][]*relation.Relation
	var lightLoads []int
	lightServer := func(i int) int { return i % sub.P }
	curLight := 0
	var curLightSize int64

	// Deterministic value order.
	var vals []relation.Value
	for v := range groups {
		vals = append(vals, v)
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })

	newFixed := fixed.Union(hypergraph.NewAttrSet(x))
	for _, v := range vals {
		g := groups[v]
		ina := int64(totalSize(g))
		if ina == 0 {
			continue
		}
		if ina <= l {
			// Pack light groups greedily to capacity l (parallel-packing).
			if curLightSize+ina > l {
				lightLoads = append(lightLoads, int(curLightSize))
				curLight++
				curLightSize = 0
			}
			curLightSize += ina
			srv := lightServer(curLight)
			res := localJoin(g, ring)
			for i, t := range res.Tuples {
				out.Parts[srv].Append(t, res.Annot(i))
			}
			continue
		}
		heavies = append(heavies, g)
	}
	if curLightSize > 0 {
		lightLoads = append(lightLoads, int(curLightSize))
	}
	if len(lightLoads) > 0 {
		perServer := make([]int, sub.P)
		for i, ld := range lightLoads {
			perServer[lightServer(i)] += ld
		}
		sub.ChargeRound(perServer)
	}

	// Heavy groups recurse in parallel on disjoint server ranges — in the
	// model AND in wall-clock: each group gets its own sub-cluster, so the
	// recursions share no mutable state and run as forked tasks. Results
	// and statistics are merged in group order afterwards, which keeps the
	// output byte-identical to the serial loop for every worker count.
	type heavyOut struct {
		pa    int
		stats mpc.Stats
		res   *mpc.Dist
	}
	outs := make([]heavyOut, len(heavies))
	runtime.Fork(len(heavies), func(i int) {
		g := heavies[i]
		pa := serversFor(g, newFixed, l, size)
		child := mpc.NewCluster(pa)
		chargeInput(child, totalSize(g))
		res := hierRec(child, g, newFixed, l, ring, size)
		outs[i] = heavyOut{pa: pa, stats: child.Snapshot(), res: res}
	})
	stats := make([]mpc.Stats, 0, len(outs))
	offset := 0
	for _, h := range outs {
		stats = append(stats, h.stats)
		for s := 0; s < h.res.C.P; s++ {
			dst := (offset + s) % sub.P
			part := &h.res.Parts[s]
			for i := 0; i < part.Len(); i++ {
				out.Parts[dst].Append(padTo(part.Tuple(i), h.res.Schema, out.Schema), part.Annot(i))
			}
		}
		offset += h.pa
	}
	sub.MergeParallel(stats)
	return out
}

// hierCase2 handles k > 1 trees: a Cartesian product of components,
// computed on a p1 × … × pk grid with per-server cross products.
func hierCase2(sub *mpc.Cluster, active []*relation.Relation, fixed hypergraph.AttrSet,
	forest *hypergraph.AttrForest, l int64, ring relation.Semiring, size sizer) *mpc.Dist {

	comps := componentsByRoot(active, fixed, forest)
	k := len(comps)
	chargeLinear(sub, totalSize(active))

	// The grid's dimensions compute independently per component (each on
	// its own sub-cluster), so they run as parallel tasks, merged in
	// component order.
	dims := make([]int, k)
	slices := make([]*mpc.Dist, k)
	stats := make([]mpc.Stats, k)
	runtime.Fork(k, func(i int) {
		comp := comps[i]
		ini := int64(totalSize(comp))
		if ini <= l {
			dims[i] = 1
		} else {
			dims[i] = serversFor(comp, fixed, l, size)
		}
		child := mpc.NewCluster(dims[i])
		chargeInput(child, totalSize(comp))
		slices[i] = hierRec(child, comp, fixed, l, ring, size)
		stats[i] = child.Snapshot()
	})
	sub.MergeGrid(stats)

	// Every grid cell (c1,…,ck) emits slice_1(c1) × … × slice_k(ck);
	// distinct cells cover disjoint result combinations, so mapping cells
	// onto sub's servers mod P never duplicates.
	out := mpc.NewDist(sub, unionSchema(active))
	total := 1
	for _, d := range dims {
		total *= d
	}
	if total > 1<<22 {
		panic("core: hierCase2 grid exploded — allocation bug")
	}
	// Residue-class grid parallelism: cell → server is cell mod P, so the
	// cells of one residue class all write the same output part. Forking
	// one task per class keeps the writes disjoint without breaking the
	// cells→servers mapping, and each class walks its cells in increasing
	// cell order — exactly the serial emission order within every part, so
	// the output is byte-identical for every data-plane width.
	classes := sub.P
	if total < classes {
		classes = total
	}
	pos := make([][]int, k) // destination positions per slice column, cell-invariant
	for i, sl := range slices {
		pos[i] = out.Schema.Positions([]relation.Attr(sl.Schema))
	}
	runtime.Fork(classes, func(r int) {
		coord := make([]int, k)
		for cell := r; cell < total; cell += sub.P {
			c := cell
			for i := k - 1; i >= 0; i-- {
				coord[i] = c % dims[i]
				c /= dims[i]
			}
			crossEmit(out, r, slices, pos, coord, ring)
		}
	})
	return out
}

// crossEmit appends the cross product of slices[i].Parts[coord[i]] to
// out.Parts[srv], merging columns by attribute; pos[i] maps slice i's
// columns to out.Schema positions (hoisted — it does not depend on coord).
func crossEmit(out *mpc.Dist, srv int, slices []*mpc.Dist, pos [][]int, coord []int, ring relation.Semiring) {
	k := len(slices)
	choice := make([]int, k)
	parts := make([]*mpc.Columns, k)
	for i := range slices {
		parts[i] = &slices[i].Parts[coord[i]]
		if parts[i].Len() == 0 {
			return
		}
	}
	for {
		t := make(relation.Tuple, len(out.Schema))
		annot := ring.One
		for i := range slices {
			tup := parts[i].Tuple(choice[i])
			for j, p := range pos[i] {
				t[p] = tup[j]
			}
			annot = ring.Mul(annot, parts[i].Annot(choice[i]))
		}
		out.Parts[srv].Append(t, annot)
		i := k - 1
		for ; i >= 0; i-- {
			choice[i]++
			if choice[i] < parts[i].Len() {
				break
			}
			choice[i] = 0
		}
		if i < 0 {
			return
		}
	}
}

// serversFor is p_a = max_S ⌈size(S)/L^{|S|}⌉ over non-empty subsets of the
// REDUCED subproblem (equation 2 is defined on reduced instances).
func serversFor(rels []*relation.Relation, fixed hypergraph.AttrSet, l int64, size sizer) int {
	rels = reduceFold(rels, fixed, relation.CountRing)
	m := len(rels)
	best := int64(1)
	for mask := 1; mask < 1<<m; mask++ {
		var sub []*relation.Relation
		for i := 0; i < m; i++ {
			if mask&(1<<i) != 0 {
				sub = append(sub, rels[i])
			}
		}
		den := primitives.Ipow(l, len(sub))
		need := (size(sub) + den - 1) / den
		if need > best {
			best = need
		}
	}
	if best > 1<<20 {
		best = 1 << 20
	}
	return int(best)
}

// planServers dry-runs the recursion and returns the total number of leaf
// servers the allocation would use at load target l.
//
//lint:load zero
//lint:rounds zero
func planServers(rels []*relation.Relation, fixed hypergraph.AttrSet, l int64, size sizer) int {
	active, _ := splitScalars(rels, fixed)
	if len(active) <= 1 {
		return 1
	}
	active = reduceFold(active, fixed, relation.CountRing)
	remaining := make([]hypergraph.AttrSet, len(active))
	for i, r := range active {
		remaining[i] = hypergraph.NewAttrSet([]relation.Attr(r.Schema)...).Minus(fixed)
	}
	forest := hypergraph.New(remaining...).AttributeForest()
	if len(forest.Roots) == 1 {
		x := forest.Attrs[forest.Roots[0]]
		groups := groupByValue(active, x)
		newFixed := fixed.Union(hypergraph.NewAttrSet(x))
		var lightTotal int64
		total := 0
		for _, g := range groups {
			ina := int64(totalSize(g))
			if ina == 0 {
				continue
			}
			if ina <= l {
				lightTotal += ina
				continue
			}
			pa := serversFor(g, newFixed, l, size)
			sub := planServers(g, newFixed, l, size)
			if sub > pa {
				pa = sub
			}
			total += pa
		}
		total += int(1 + 2*lightTotal/l)
		return total
	}
	// k > 1 trees: the grid uses the PRODUCT of the per-component widths.
	total := 1
	for _, comp := range componentsByRoot(active, fixed, forest) {
		if int64(totalSize(comp)) <= l {
			continue
		}
		pa := serversFor(comp, fixed, l, size)
		if sub := planServers(comp, fixed, l, size); sub > pa {
			pa = sub
		}
		total *= pa
		if total > 1<<30 {
			return 1 << 30
		}
	}
	return total
}
