package core

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/hypergraph"
	"repro/internal/mpc"
	"repro/internal/relation"
)

func TestLine3WorstCaseMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(70))
	for trial := 0; trial < 10; trial++ {
		in := randInstance(rng, hypergraph.Line3(), 30, 6)
		c := mpc.NewCluster(1 + rng.Intn(16))
		em := mpc.NewCollectEmitter(in.OutputSchema())
		Line3WorstCase(c, in, uint64(trial), em)
		relEqual(t, em.Rel, Naive(in))
	}
}

func TestLine3WorstCaseLoad(t *testing.T) {
	// Balanced instance with OUT ≈ p·IN: the grid must stay near IN/√p.
	p := 16
	n := 512
	r1 := relation.New("R1", relation.NewSchema(1, 2))
	r2 := relation.New("R2", relation.NewSchema(2, 3))
	r3 := relation.New("R3", relation.NewSchema(3, 4))
	groups := 64
	per := n / groups
	for g := 0; g < groups; g++ {
		for i := 0; i < per; i++ {
			r1.Add(relation.Value(g*per+i), relation.Value(g))
			r3.Add(relation.Value(g), relation.Value(g*per+i))
		}
	}
	for b := 0; b < groups; b++ {
		for cv := 0; cv < groups; cv += 4 {
			r2.Add(relation.Value(b), relation.Value(cv))
		}
	}
	in := NewInstance(hypergraph.Line3(), r1, r2, r3)
	c := mpc.NewCluster(p)
	em := mpc.NewCountEmitter(in.Ring)
	Line3WorstCase(c, in, 1, em)
	if em.N != NaiveCount(in) {
		t.Fatalf("count = %d, want %d", em.N, NaiveCount(in))
	}
	bound := float64(in.IN()) / math.Sqrt(float64(p))
	if float64(c.MaxLoad()) > 4*bound {
		t.Errorf("worst-case line-3 load %d exceeds 4×IN/√p = %.0f", c.MaxLoad(), 4*bound)
	}
}

func TestLine3WorstCaseWinsWhenOutHuge(t *testing.T) {
	// Section 4.3 regime 3: OUT ≫ p·IN makes IN/√p beat √(IN·OUT/p).
	p := 16
	n := 64
	r1 := relation.New("R1", relation.NewSchema(1, 2))
	r2 := relation.New("R2", relation.NewSchema(2, 3))
	r3 := relation.New("R3", relation.NewSchema(3, 4))
	for i := 0; i < n; i++ {
		r1.Add(relation.Value(i), 0)
		r3.Add(0, relation.Value(i))
	}
	r2.Add(0, 0)
	in := NewInstance(hypergraph.Line3(), r1, r2, r3) // OUT = n² = 16·p·IN-ish
	want := NaiveCount(in)

	cWC := mpc.NewCluster(p)
	emWC := mpc.NewCountEmitter(in.Ring)
	Line3WorstCase(cWC, in, 1, emWC)
	if emWC.N != want {
		t.Fatalf("worst-case count = %d, want %d", emWC.N, want)
	}

	// The defining property of this algorithm: its load never depends on
	// OUT, staying within O(IN/√p) even at OUT = Θ(IN²).
	bound := float64(in.IN()) / math.Sqrt(float64(p))
	if float64(cWC.MaxLoad()) > 4*bound {
		t.Errorf("worst-case load %d exceeds 4×IN/√p = %.0f at OUT = IN²", cWC.MaxLoad(), 4*bound)
	}
}
