package core

import (
	"math"
	"sort"

	"repro/internal/mpc"
	"repro/internal/primitives"
	"repro/internal/relation"
	"repro/internal/runtime"
)

// Synthetic attributes used to carry per-tuple statistics through
// exchanges. Negative ids cannot collide with query attributes.
const (
	synthDA relation.Attr = -101
	synthDB relation.Attr = -102
	synthN  relation.Attr = -103
)

// BinaryJoin computes a ⋈ b with the output-optimal load O(IN/p + √(OUT/p))
// of [8,18], which the paper uses as its basic subroutine.
//
// Keys are split by degree: a key is heavy when either side's degree
// exceeds the target load L0 = IN/p + √(OUT/p) or its output da·db exceeds
// OUT/p. Each heavy key gets its own ⌈da/L0⌉ × ⌈db/L0⌉ server grid
// (fragment-replicate), which bounds its per-server input by 2·L0 and
// output by ~OUT/p; light keys are hashed. The result stays distributed on
// the servers that produced it; em (optional) observes every result tuple.
//
//lint:load frac trust Theorem 5: degree-threshold grids cap each server at IN/p + sqrt(IN*OUT/p)
//lint:rounds const
func BinaryJoin(a, b *mpc.Dist, ring relation.Semiring, seed uint64, em mpc.Emitter) *mpc.Dist {
	c := a.C
	shared := a.Schema.Intersect(b.Schema)
	outSchema := a.Schema.Union(b.Schema)

	// Per-key degrees on both sides, co-located by key.
	dA := primitives.CountByKey(a, shared, seed^0x1)
	dB := primitives.CountByKey(b, shared, seed^0x2)
	jd := joinDegrees(dA, dB, shared, seed^0x3)

	// OUT = Σ_k da·db and the heavy-key directory, known cluster-wide.
	out := int64(0)
	for s := range jd.Parts {
		part := &jd.Parts[s]
		for i := 0; i < part.Len(); i++ {
			t := part.Tuple(i)
			da, db := int64(t[len(t)-2]), int64(t[len(t)-1])
			out += da * db
		}
	}
	primitives.TotalCount(jd) // charges the coordinator aggregation

	if out == 0 {
		return mpc.NewDist(c, outSchema)
	}
	inSize := int64(a.Size() + b.Size())
	l0 := inSize/int64(c.P) + int64(math.Ceil(math.Sqrt(float64(out)/float64(c.P))))
	if l0 < 1 {
		l0 = 1
	}
	dir := buildGrid(jd, shared, l0, out, c.P)
	chargeDirectory(c, len(dir))

	// Attach (da, db) to every tuple (multi-search); tuples whose key is
	// missing from the directory side cannot join and are dropped here.
	ax := attachDegrees(a, shared, jd)
	bx := attachDegrees(b, shared, jd)

	aPosKey := ax.Positions(shared)
	bPosKey := bx.Positions(shared)
	heavy := func(da, db int64) bool {
		return da > l0 || db > l0 || da*db > (out+int64(c.P)-1)/int64(c.P)
	}

	routeSide := func(d *mpc.Dist, keyPos []int, isA bool, salt uint64) *mpc.Dist {
		return d.ReplicateBy(func(it mpc.Item) []int {
			n := len(it.T)
			da, db := int64(it.T[n-2]), int64(it.T[n-1])
			k := relation.KeyAt(it.T, keyPos)
			if !heavy(da, db) {
				return []int{int(mpc.Hash64(k, seed^0x10) % uint64(c.P))}
			}
			g := dir[k]
			if isA {
				row := int(mpc.Hash64(relation.EncodeTuple(it.T), salt) % uint64(g.rows))
				dst := make([]int, g.cols)
				for col := 0; col < g.cols; col++ {
					dst[col] = (g.base + row*g.cols + col) % c.P
				}
				return dst
			}
			col := int(mpc.Hash64(relation.EncodeTuple(it.T), salt) % uint64(g.cols))
			dst := make([]int, g.rows)
			for row := 0; row < g.rows; row++ {
				dst[row] = (g.base + row*g.cols + col) % c.P
			}
			return dst
		})
	}
	ra := routeSide(ax, aPosKey, true, seed^0x20)
	rb := routeSide(bx, bPosKey, false, seed^0x21)

	// Local hash join per server; results are born where they are
	// produced. Servers join in parallel — each writes only its own part —
	// and emission runs afterwards in server order, so the emitter sees the
	// exact serial sequence.
	res := mpc.NewDist(c, outSchema)
	bExtra := b.Schema.Minus(a.Schema)
	bExtraPosIn := rb.Positions(bExtra)
	aCore := len(a.Schema)
	runtime.Fork(len(ra.Parts), func(s int) {
		pa, pb := &ra.Parts[s], &rb.Parts[s]
		if pa.Len() == 0 || pb.Len() == 0 {
			return
		}
		idx := make(map[string][]mpc.Item)
		for i := 0; i < pb.Len(); i++ {
			it := pb.Item(i)
			k := relation.KeyAt(it.T, bPosKey)
			idx[k] = append(idx[k], it)
		}
		var part mpc.Columns
		for i := 0; i < pa.Len(); i++ {
			ai := pa.Item(i)
			k := relation.KeyAt(ai.T, aPosKey)
			for _, bi := range idx[k] {
				t := make(relation.Tuple, 0, len(outSchema))
				t = append(t, ai.T[:aCore]...)
				for _, p := range bExtraPosIn {
					t = append(t, bi.T[p])
				}
				part.Append(t, ring.Mul(ai.A, bi.A))
			}
		}
		res.Parts[s] = part
	})
	emitParts(res, em)
	return res
}

// emitParts reports every item of res to em in server order — the serial
// emission sequence — after a parallel per-server production phase.
func emitParts(res *mpc.Dist, em mpc.Emitter) {
	if em == nil {
		return
	}
	for s := range res.Parts {
		part := &res.Parts[s]
		for i := 0; i < part.Len(); i++ {
			em.Emit(s, part.Tuple(i), part.Annot(i))
		}
	}
}

// gridInfo describes the server grid of one heavy key.
type gridInfo struct {
	base, rows, cols int
}

// joinDegrees co-locates the two degree tables by key and merges them into
// one table with schema shared ++ (synthDA, synthDB); keys present on only
// one side are dropped (they cannot contribute join results).
func joinDegrees(dA, dB *mpc.Dist, shared relation.Schema, salt uint64) *mpc.Dist {
	c := dA.C
	keyAttrs := []relation.Attr(shared)
	sa := dA.ShuffleByKey(dA.Positions(keyAttrs), salt)
	sb := dB.ShuffleByKey(dB.Positions(keyAttrs), salt)
	schema := append(append(relation.Schema{}, shared...), synthDA, synthDB)
	out := mpc.NewDist(c, schema)
	posA := sa.Positions(keyAttrs)
	posB := sb.Positions(keyAttrs)
	for s := range sa.Parts {
		pa, pb := &sa.Parts[s], &sb.Parts[s]
		bdeg := make(map[string]int64)
		for i := 0; i < pb.Len(); i++ {
			bdeg[relation.KeyAt(pb.Tuple(i), posB)] = pb.Annot(i)
		}
		for i := 0; i < pa.Len(); i++ {
			tup := pa.Tuple(i)
			k := relation.KeyAt(tup, posA)
			db, ok := bdeg[k]
			if !ok {
				continue
			}
			t := make(relation.Tuple, 0, len(schema))
			for _, p := range posA {
				t = append(t, tup[p])
			}
			t = append(t, relation.Value(pa.Annot(i)), relation.Value(db))
			out.Parts[s].Append(t, 1)
		}
	}
	return out
}

// buildGrid assigns a server grid to every heavy key, deterministically by
// key order. Σ grid sizes = O(p) by the degree thresholds.
func buildGrid(jd *mpc.Dist, shared relation.Schema, l0, out int64, p int) map[string]gridInfo {
	keyPos := jd.Positions([]relation.Attr(shared))
	type entry struct {
		key    string
		da, db int64
	}
	var heavies []entry
	perServer := (out + int64(p) - 1) / int64(p)
	for s := range jd.Parts {
		part := &jd.Parts[s]
		for i := 0; i < part.Len(); i++ {
			t := part.Tuple(i)
			n := len(t)
			da, db := int64(t[n-2]), int64(t[n-1])
			if da > l0 || db > l0 || da*db > perServer {
				heavies = append(heavies, entry{relation.KeyAt(t, keyPos), da, db})
			}
		}
	}
	sort.Slice(heavies, func(i, j int) bool { return heavies[i].key < heavies[j].key })
	dir := make(map[string]gridInfo, len(heavies))
	base := 0
	for _, h := range heavies {
		rows := int((h.da + l0 - 1) / l0)
		cols := int((h.db + l0 - 1) / l0)
		if rows < 1 {
			rows = 1
		}
		if cols < 1 {
			cols = 1
		}
		// A single key's grid must not wrap around the cluster, or a pair
		// would meet on two servers and be reported twice.
		dims := []int{rows, cols}
		size := clampDims(dims, p)
		dir[h.key] = gridInfo{base: base % p, rows: dims[0], cols: dims[1]}
		base += size
	}
	return dir
}

// chargeDirectory charges gathering n directory entries to the coordinator
// and broadcasting them to every server.
//
//lint:load const trust callers pass O(p) directory entries, set by degree thresholds, not by the data
func chargeDirectory(c *mpc.Cluster, n int) {
	if n == 0 {
		return
	}
	c.Charge(0, n)
	loads := make([]int, c.P)
	for i := range loads {
		loads[i] = n
	}
	c.ChargeRound(loads)
}

// attachDegrees extends every tuple of d with the (da, db) of its key via
// the sorted lookup; tuples without a directory entry are dropped.
func attachDegrees(d *mpc.Dist, shared relation.Schema, jd *mpc.Dist) *mpc.Dist {
	keyAttrs := []relation.Attr(shared)
	outSchema := append(append(relation.Schema{}, d.Schema...), synthDA, synthDB)
	jdN := len(jd.Schema)
	return primitives.Lookup(d, keyAttrs, jd, keyAttrs, outSchema,
		func(it mpc.Item, r primitives.LookupResult) (mpc.Item, bool) {
			if !r.Found {
				return mpc.Item{}, false
			}
			t := make(relation.Tuple, 0, len(it.T)+2)
			t = append(t, it.T...)
			t = append(t, r.DTuple[jdN-2], r.DTuple[jdN-1])
			return mpc.Item{T: t, A: it.A}, true
		})
}

// StripSynthetic removes synthetic attributes from a schema/dist, keeping
// query attributes only. Used by algorithms that pass extended tuples on.
func StripSynthetic(d *mpc.Dist) *mpc.Dist {
	var keep []relation.Attr
	for _, a := range d.Schema {
		if a >= 0 {
			keep = append(keep, a)
		}
	}
	if len(keep) == len(d.Schema) {
		return d
	}
	pos := d.Positions(keep)
	schema := relation.NewSchema(keep...)
	return d.MapLocal(schema, func(_ int, it mpc.Item) []mpc.Item {
		t := make(relation.Tuple, len(pos))
		for i, p := range pos {
			t[i] = it.T[p]
		}
		return []mpc.Item{{T: t, A: it.A}}
	})
}
