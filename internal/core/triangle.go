package core

import (
	"math"

	"repro/internal/hypergraph"
	"repro/internal/mpc"
	"repro/internal/relation"
	"repro/internal/runtime"
)

// Triangle computes the triangle join R1(B,C) ⋈ R2(A,C) ⋈ R3(A,B) with the
// worst-case optimal one-round HyperCube algorithm of [24]: servers form an
// s × s × s cube (s = ⌊p^{1/3}⌋), each attribute is hashed to one of s
// buckets, and each relation is replicated along its missing attribute's
// dimension. Load O(IN/p^{2/3}) on skew-free instances, which Section 7's
// lower bound shows is also output-optimal once OUT ≳ IN·p^{1/3}.
//
// (The paper gives no matching upper bound below that range — the gap it
// leaves open; the harness plots the measured load against both branches of
// the Ω̃(min{IN/p + OUT/p, IN/p^{2/3}}) bound.)
//
//lint:load frac trust Section 7: cube replication copies each relation p^(1/3)-fold, IN/p^(2/3) per server on skew-free inputs
//lint:rounds const
func Triangle(c *mpc.Cluster, in *Instance, seed uint64, em mpc.Emitter) *mpc.Dist {
	a, b, cc := triangleAttrs(in)
	dists := LoadInstance(c, in)

	s := int(math.Cbrt(float64(c.P)))
	if s < 1 {
		s = 1
	}
	hash := func(attr relation.Attr, v relation.Value) int {
		return int(mpc.Hash64(relation.EncodeValues(v), seed^uint64(attr)) % uint64(s))
	}
	srv := func(ia, ib, ic int) int { return ia*s*s + ib*s + ic }

	route := func(d *mpc.Dist, missing relation.Attr) *mpc.Dist {
		return d.ReplicateBy(func(it mpc.Item) []int {
			var ia, ib, ic = -1, -1, -1
			for i, at := range d.Schema {
				switch at {
				case a:
					ia = hash(a, it.T[i])
				case b:
					ib = hash(b, it.T[i])
				case cc:
					ic = hash(cc, it.T[i])
				}
			}
			out := make([]int, 0, s)
			for r := 0; r < s; r++ {
				switch missing {
				case a:
					out = append(out, srv(r, ib, ic))
				case b:
					out = append(out, srv(ia, r, ic))
				default:
					out = append(out, srv(ia, ib, r))
				}
			}
			return out
		})
	}

	// Edge i misses exactly one of the three attributes.
	miss := func(i int) relation.Attr {
		for _, at := range []relation.Attr{a, b, cc} {
			if !in.Q.Edges[i].Has(at) {
				return at
			}
		}
		panic("core: triangle edge covers all attributes")
	}
	r0 := route(dists[0], miss(0))
	r1 := route(dists[1], miss(1))
	r2 := route(dists[2], miss(2))

	outSchema := in.OutputSchema()
	res := mpc.NewDist(c, outSchema)
	posOf := func(d *mpc.Dist, at relation.Attr) int { return d.Schema.Pos(at) }
	// Identify which routed dist plays which role by schema.
	var dBC, dAC, dAB *mpc.Dist
	for _, d := range []*mpc.Dist{r0, r1, r2} {
		switch {
		case d.Schema.Has(b) && d.Schema.Has(cc):
			dBC = d
		case d.Schema.Has(a) && d.Schema.Has(cc):
			dAC = d
		default:
			dAB = d
		}
	}
	outA, outB, outC := outSchema.Pos(a), outSchema.Pos(b), outSchema.Pos(cc)
	// Per-server probes run in parallel — server sv writes only
	// res.Parts[sv] — and emission runs afterwards in server order.
	runtime.Fork(c.P, func(sv int) {
		// Index R2(A,C) by C and R3(A,B) by B.
		byC := map[relation.Value][]mpc.Item{}
		for i, p := 0, &dAC.Parts[sv]; i < p.Len(); i++ {
			it := p.Item(i)
			byC[it.T[posOf(dAC, cc)]] = append(byC[it.T[posOf(dAC, cc)]], it)
		}
		byB := map[relation.Value][]mpc.Item{}
		for i, p := 0, &dAB.Parts[sv]; i < p.Len(); i++ {
			it := p.Item(i)
			byB[it.T[posOf(dAB, b)]] = append(byB[it.T[posOf(dAB, b)]], it)
		}
		pB, pC := posOf(dBC, b), posOf(dBC, cc)
		pA2 := posOf(dAC, a)
		pA3 := posOf(dAB, a)
		for bi, pbc := 0, &dBC.Parts[sv]; bi < pbc.Len(); bi++ {
			bc := pbc.Item(bi)
			bv, cv := bc.T[pB], bc.T[pC]
			acs := byC[cv]
			abs := byB[bv]
			if len(acs) == 0 || len(abs) == 0 {
				continue
			}
			// Intersect on A, smaller side indexed.
			aSet := map[relation.Value]int64{}
			for _, ac := range acs {
				aSet[ac.T[pA2]] = ac.A
			}
			for _, ab := range abs {
				av := ab.T[pA3]
				if acAnnot, ok := aSet[av]; ok {
					t := make(relation.Tuple, len(outSchema))
					t[outA], t[outB], t[outC] = av, bv, cv
					annot := in.Ring.Mul(bc.A, in.Ring.Mul(acAnnot, ab.A))
					res.Parts[sv].Append(t, annot)
				}
			}
		}
	})
	emitParts(res, em)
	return res
}

// IsTriangleQuery reports whether q is the Section 7 triangle shape: three
// binary edges over three attributes, pairwise sharing one attribute. The
// one canonical shape check, shared with the engine's dispatch.
func IsTriangleQuery(q *hypergraph.Hypergraph) bool {
	if len(q.Edges) != 3 || len(q.Attrs()) != 3 {
		return false
	}
	for i := 0; i < 3; i++ {
		if len(q.Edges[i]) != 2 {
			return false
		}
		for j := i + 1; j < 3; j++ {
			if len(q.Edges[i].Intersect(q.Edges[j])) != 1 {
				return false
			}
		}
	}
	return true
}

// triangleAttrs validates the triangle shape and returns its attributes
// (a, b, c) named so that edges are (b,c), (a,c), (a,b) in some order.
func triangleAttrs(in *Instance) (relation.Attr, relation.Attr, relation.Attr) {
	if !IsTriangleQuery(in.Q) {
		panic("core: Triangle needs 3 binary relations pairwise sharing one attribute")
	}
	attrs := in.Q.Attrs()
	return attrs[0], attrs[1], attrs[2]
}
