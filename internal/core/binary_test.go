package core

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/hypergraph"
	"repro/internal/mpc"
	"repro/internal/relation"
)

// relEqual compares two relations as multisets of (tuple, annot) pairs
// after projecting both onto the canonical sorted schema.
func relEqual(t *testing.T, got, want *relation.Relation) {
	t.Helper()
	canon := func(r *relation.Relation) []string {
		attrs := []relation.Attr(relation.Schema(r.Schema).Sorted())
		p := r.Project(attrs)
		keys := make([]string, p.Size())
		for i, tu := range p.Tuples {
			keys[i] = relation.EncodeTuple(tu) + relation.EncodeValues(relation.Value(p.Annot(i)))
		}
		sort.Strings(keys)
		return keys
	}
	g, w := canon(got), canon(want)
	if len(g) != len(w) {
		t.Fatalf("result size %d, want %d", len(g), len(w))
	}
	for i := range g {
		if g[i] != w[i] {
			t.Fatalf("result differs from oracle at rank %d", i)
		}
	}
}

// randRel builds a random binary relation with given size and domains.
func randRel(rng *rand.Rand, name string, a1, a2 relation.Attr, n, d1, d2 int) *relation.Relation {
	r := relation.New(name, relation.NewSchema(a1, a2))
	for i := 0; i < n; i++ {
		r.Add(relation.Value(rng.Intn(d1)), relation.Value(rng.Intn(d2)))
	}
	return r.Dedup()
}

func TestBinaryJoinMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 20; trial++ {
		r1 := randRel(rng, "R1", 1, 2, 30+rng.Intn(50), 10, 8)
		r2 := randRel(rng, "R2", 2, 3, 30+rng.Intn(50), 8, 10)
		in := NewInstance(hypergraph.Line2(), r1, r2)
		c := mpc.NewCluster(1 + rng.Intn(8))
		dists := LoadInstance(c, in)
		res := BinaryJoin(dists[0], dists[1], in.Ring, uint64(trial), nil)
		relEqual(t, res.ToRelation("got"), Naive(in))
	}
}

func TestBinaryJoinEmptySides(t *testing.T) {
	r1 := relation.New("R1", relation.NewSchema(1, 2))
	r2 := relation.New("R2", relation.NewSchema(2, 3))
	r1.Add(1, 1)
	in := NewInstance(hypergraph.Line2(), r1, r2)
	c := mpc.NewCluster(4)
	dists := LoadInstance(c, in)
	res := BinaryJoin(dists[0], dists[1], in.Ring, 1, nil)
	if res.Size() != 0 {
		t.Errorf("join with empty side returned %d tuples", res.Size())
	}
}

func TestBinaryJoinNoMatches(t *testing.T) {
	r1 := relation.New("R1", relation.NewSchema(1, 2))
	r2 := relation.New("R2", relation.NewSchema(2, 3))
	r1.Add(1, 10)
	r2.Add(20, 2)
	in := NewInstance(hypergraph.Line2(), r1, r2)
	c := mpc.NewCluster(4)
	dists := LoadInstance(c, in)
	res := BinaryJoin(dists[0], dists[1], in.Ring, 1, nil)
	if res.Size() != 0 {
		t.Errorf("disjoint join returned %d tuples", res.Size())
	}
}

func TestBinaryJoinCartesian(t *testing.T) {
	// Disjoint schemas: the join is a Cartesian product; the single
	// (empty) key is heavy and must be gridded, not hashed to one server.
	na, nb, p := 60, 40, 9
	r1 := relation.New("R1", relation.NewSchema(1))
	for i := 0; i < na; i++ {
		r1.Add(relation.Value(i))
	}
	r2 := relation.New("R2", relation.NewSchema(2))
	for i := 0; i < nb; i++ {
		r2.Add(relation.Value(i))
	}
	c := mpc.NewCluster(p)
	d1 := mpc.FromRelation(c, r1)
	d2 := mpc.FromRelation(c, r2)
	res := BinaryJoin(d1, d2, relation.CountRing, 3, nil)
	if res.Size() != na*nb {
		t.Fatalf("product size = %d, want %d", res.Size(), na*nb)
	}
	// No single server may hold anywhere near all of one side.
	bound := (na+nb)/p + int(math.Ceil(math.Sqrt(float64(na*nb)/float64(p))))
	if c.MaxLoad() > 6*bound {
		t.Errorf("cartesian MaxLoad = %d; target L0 = %d", c.MaxLoad(), bound)
	}
}

func TestBinaryJoinSkewedKeyLoad(t *testing.T) {
	// One B-value with high degree on both sides: OUT = 100·100; the heavy
	// grid must keep per-server load near IN/p + sqrt(OUT/p).
	n, p := 100, 16
	r1 := relation.New("R1", relation.NewSchema(1, 2))
	r2 := relation.New("R2", relation.NewSchema(2, 3))
	for i := 0; i < n; i++ {
		r1.Add(relation.Value(i), 7)
		r2.Add(7, relation.Value(i))
	}
	in := NewInstance(hypergraph.Line2(), r1, r2)
	c := mpc.NewCluster(p)
	dists := LoadInstance(c, in)
	res := BinaryJoin(dists[0], dists[1], in.Ring, 5, nil)
	if res.Size() != n*n {
		t.Fatalf("skewed join size = %d, want %d", res.Size(), n*n)
	}
	l0 := 2*n/p + int(math.Ceil(math.Sqrt(float64(n*n)/float64(p))))
	if c.MaxLoad() > 6*l0 {
		t.Errorf("skewed MaxLoad = %d, want O(L0) with L0 = %d", c.MaxLoad(), l0)
	}
	// A plain hash join would need load ≥ n on the heavy key's server;
	// ensure we are well below that.
	if c.MaxLoad() >= n {
		t.Errorf("heavy key not spread: load %d ≥ degree %d", c.MaxLoad(), n)
	}
}

func TestBinaryJoinAnnotations(t *testing.T) {
	r1 := relation.New("R1", relation.NewSchema(1, 2))
	r2 := relation.New("R2", relation.NewSchema(2, 3))
	r1.AddAnnotated(3, 1, 5)
	r2.AddAnnotated(4, 5, 2)
	in := NewInstance(hypergraph.Line2(), r1, r2)
	in.Ring = relation.CountRing
	c := mpc.NewCluster(2)
	dists := LoadInstance(c, in)
	res := BinaryJoin(dists[0], dists[1], in.Ring, 1, nil)
	items := res.All()
	if len(items) != 1 || items[0].A != 12 {
		t.Errorf("annotated join = %v, want one item with annot 12", items)
	}
}

func TestBinaryJoinEmitter(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	r1 := randRel(rng, "R1", 1, 2, 50, 6, 6)
	r2 := randRel(rng, "R2", 2, 3, 50, 6, 6)
	in := NewInstance(hypergraph.Line2(), r1, r2)
	c := mpc.NewCluster(4)
	dists := LoadInstance(c, in)
	em := mpc.NewCountEmitter(in.Ring)
	res := BinaryJoin(dists[0], dists[1], in.Ring, 1, em)
	if em.N != int64(res.Size()) {
		t.Errorf("emitter saw %d, result has %d", em.N, res.Size())
	}
}

func TestStripSynthetic(t *testing.T) {
	c := mpc.NewCluster(2)
	d := mpc.NewDist(c, relation.Schema{1, synthDA, 2})
	d.Parts[0].Append(relation.Tuple{10, 99, 20}, 1)
	s := StripSynthetic(d)
	if !s.Schema.Equal(relation.NewSchema(1, 2)) {
		t.Fatalf("schema = %v", s.Schema)
	}
	if s.All()[0].T[0] != 10 || s.All()[0].T[1] != 20 {
		t.Errorf("tuple = %v", s.All()[0].T)
	}
}
