package core

import (
	"testing"

	"repro/internal/hypergraph"
	"repro/internal/mpc"
	"repro/internal/relation"
)

// q2FakeHub mirrors gen.Q2FakeHub locally (core cannot import gen).
func q2FakeHub(real, fakeDeg int) *Instance {
	q := hypergraph.Q2Hierarchical()
	r1 := relation.New("R1", relation.NewSchema(1, 2))
	r2 := relation.New("R2", relation.NewSchema(1, 3, 4))
	r3 := relation.New("R3", relation.NewSchema(1, 3, 5))
	for a := 0; a < real; a++ {
		v := relation.Value(a)
		r1.Add(v, v)
		r2.Add(v, v, v)
		r3.Add(v, v, v)
	}
	const fakeA = relation.Value(1) << 35
	base2 := relation.Value(1) << 36
	base3 := relation.Value(1) << 37
	r1.Add(fakeA, 0)
	for i := 0; i < fakeDeg; i++ {
		r2.Add(fakeA, base2+relation.Value(i), relation.Value(i))
		r3.Add(fakeA, base3+relation.Value(i), relation.Value(i))
	}
	return NewInstance(q, r1, r2, r3)
}

// TestOneRoundDanglingBarrier is Table 1's one-round column in executable
// form: on a hierarchical instance whose dangling block has a huge degree
// product but zero output, the one-round BinHC must inflate its load target
// to fit the phantom grid in its server budget, while removing dangling
// tuples first (reduce+BinHC, or RHier) stays near IN/p + L_instance.
func TestOneRoundDanglingBarrier(t *testing.T) {
	p := 64
	in := q2FakeHub(2048, 8192)
	want := NaiveCount(in)
	if want != 2048 {
		t.Fatalf("fake hub leaked into the output: OUT = %d", want)
	}

	cOne := mpc.NewCluster(p)
	emOne := mpc.NewCountEmitter(in.Ring)
	BinHC(cOne, in, 1, false, emOne)
	if emOne.N != want {
		t.Fatalf("one-round BinHC wrong count %d", emOne.N)
	}

	cRed := mpc.NewCluster(p)
	emRed := mpc.NewCountEmitter(in.Ring)
	BinHC(cRed, in, 1, true, emRed)
	if emRed.N != want {
		t.Fatalf("reduce+BinHC wrong count %d", emRed.N)
	}

	cRH := mpc.NewCluster(p)
	emRH := mpc.NewCountEmitter(in.Ring)
	RHier(cRH, in, 1, emRH)
	if emRH.N != want {
		t.Fatalf("RHier wrong count %d", emRH.N)
	}

	// The phantom grid forces the one-round load target up to roughly
	// fakeDeg/√(2p) ≈ 724, while the input floor is only IN/p ≈ 354.
	if cOne.MaxLoad() <= 3*cRed.MaxLoad()/2 {
		t.Errorf("one-round BinHC (%d) should pay the dangling barrier vs reduce+BinHC (%d)",
			cOne.MaxLoad(), cRed.MaxLoad())
	}
	if cOne.MaxLoad() <= 3*cRH.MaxLoad()/2 {
		t.Errorf("one-round BinHC (%d) should pay the dangling barrier vs RHier (%d)",
			cOne.MaxLoad(), cRH.MaxLoad())
	}
}
