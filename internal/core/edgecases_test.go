package core

import (
	"math/rand"
	"testing"

	"repro/internal/hypergraph"
	"repro/internal/mpc"
	"repro/internal/relation"
)

// Edge-case and failure-injection suite: degenerate instances that real
// deployments hit constantly — empty relations, single tuples, all-equal
// keys, p = 1 clusters, dangling-only relations — run through every
// algorithm.

func emptyInstance(q *hypergraph.Hypergraph) *Instance {
	rels := make([]*relation.Relation, len(q.Edges))
	for i, e := range q.Edges {
		rels[i] = relation.New("R", e.Schema())
	}
	return NewInstance(q, rels...)
}

func singletonInstance(q *hypergraph.Hypergraph) *Instance {
	rels := make([]*relation.Relation, len(q.Edges))
	for i, e := range q.Edges {
		r := relation.New("R", e.Schema())
		t := make([]relation.Value, len(e))
		r.Add(t...) // all zeros: everything joins
		rels[i] = r
	}
	return NewInstance(q, rels...)
}

func TestAllAlgorithmsOnEmptyInput(t *testing.T) {
	for _, q := range []*hypergraph.Hypergraph{hypergraph.Line3(), hypergraph.RHierSimple()} {
		in := emptyInstance(q)
		c := mpc.NewCluster(4)
		if CountOutput(c, in, 1) != 0 {
			t.Error("CountOutput on empty input should be 0")
		}
		em := mpc.NewCountEmitter(in.Ring)
		Yannakakis(mpc.NewCluster(4), in, nil, 1, em)
		AcyclicJoin(mpc.NewCluster(4), in, 1, em)
		if q.IsRHierarchical() {
			RHier(mpc.NewCluster(4), in, 1, em)
			BinHC(mpc.NewCluster(4), in, 1, false, em)
		} else {
			Line3(mpc.NewCluster(4), in, 1, em)
		}
		if em.N != 0 {
			t.Errorf("%v: emitted %d results from empty input", q, em.N)
		}
	}
}

func TestAllAlgorithmsOnSingletons(t *testing.T) {
	for _, q := range []*hypergraph.Hypergraph{
		hypergraph.Line3(), hypergraph.RHierSimple(), hypergraph.Q2Hierarchical(),
		hypergraph.Fig5Example(),
	} {
		in := singletonInstance(q)
		want := NaiveCount(in)
		if want != 1 {
			t.Fatalf("%v: singleton oracle = %d", q, want)
		}
		check := func(name string, f func(c *mpc.Cluster, em mpc.Emitter)) {
			em := mpc.NewCountEmitter(in.Ring)
			f(mpc.NewCluster(3), em)
			if em.N != 1 {
				t.Errorf("%v/%s: emitted %d, want 1", q, name, em.N)
			}
		}
		check("yannakakis", func(c *mpc.Cluster, em mpc.Emitter) { Yannakakis(c, in, nil, 1, em) })
		check("acyclic", func(c *mpc.Cluster, em mpc.Emitter) { AcyclicJoin(c, in, 1, em) })
		if q.IsRHierarchical() {
			check("rhier", func(c *mpc.Cluster, em mpc.Emitter) { RHier(c, in, 1, em) })
			check("binhc", func(c *mpc.Cluster, em mpc.Emitter) { BinHC(c, in, 1, false, em) })
		}
	}
}

func TestAlgorithmsOnSingleServer(t *testing.T) {
	// p = 1: everything degenerates to a local join; results must still be
	// exact and the load equals the input size plus bounded overhead.
	rng := rand.New(rand.NewSource(80))
	in := randInstance(rng, hypergraph.Line3(), 30, 5)
	want := NaiveCount(in)
	for _, f := range []func(c *mpc.Cluster, em mpc.Emitter){
		func(c *mpc.Cluster, em mpc.Emitter) { Yannakakis(c, in, nil, 1, em) },
		func(c *mpc.Cluster, em mpc.Emitter) { Line3(c, in, 1, em) },
		func(c *mpc.Cluster, em mpc.Emitter) { AcyclicJoin(c, in, 1, em) },
		func(c *mpc.Cluster, em mpc.Emitter) { Line3WorstCase(c, in, 1, em) },
	} {
		c := mpc.NewCluster(1)
		em := mpc.NewCountEmitter(in.Ring)
		f(c, em)
		if em.N != want {
			t.Errorf("p=1 run emitted %d, want %d", em.N, want)
		}
	}
}

func TestDanglingOnlyRelation(t *testing.T) {
	// R2's tuples all dangle: every algorithm must report an empty join
	// without crashing.
	r1 := relation.New("R1", relation.NewSchema(1, 2))
	r2 := relation.New("R2", relation.NewSchema(2, 3))
	r3 := relation.New("R3", relation.NewSchema(3, 4))
	for i := 0; i < 20; i++ {
		r1.Add(relation.Value(i), relation.Value(i))
		r2.Add(relation.Value(100+i), relation.Value(200+i))
		r3.Add(relation.Value(i), relation.Value(i))
	}
	in := NewInstance(hypergraph.Line3(), r1, r2, r3)
	for _, f := range []func(c *mpc.Cluster, em mpc.Emitter){
		func(c *mpc.Cluster, em mpc.Emitter) { Yannakakis(c, in, nil, 1, em) },
		func(c *mpc.Cluster, em mpc.Emitter) { Line3(c, in, 1, em) },
		func(c *mpc.Cluster, em mpc.Emitter) { AcyclicJoin(c, in, 1, em) },
	} {
		c := mpc.NewCluster(4)
		em := mpc.NewCountEmitter(in.Ring)
		f(c, em)
		if em.N != 0 {
			t.Errorf("dangling-only join emitted %d", em.N)
		}
	}
}

func TestAllTuplesOneKey(t *testing.T) {
	// Extreme skew: a single join value everywhere. OUT = n² on line-2.
	n := 50
	r1 := relation.New("R1", relation.NewSchema(1, 2))
	r2 := relation.New("R2", relation.NewSchema(2, 3))
	for i := 0; i < n; i++ {
		r1.Add(relation.Value(i), 7)
		r2.Add(7, relation.Value(i))
	}
	in := NewInstance(hypergraph.Line2(), r1, r2)
	c := mpc.NewCluster(9)
	em := mpc.NewCountEmitter(in.Ring)
	AcyclicJoin(c, in, 1, em)
	if em.N != int64(n*n) {
		t.Fatalf("one-key join = %d, want %d", em.N, n*n)
	}
	if c.MaxLoad() >= n {
		t.Errorf("one-key skew concentrated: load %d ≥ %d", c.MaxLoad(), n)
	}
}

func TestInstanceValidation(t *testing.T) {
	q := hypergraph.Line2()
	r1 := relation.New("R1", relation.NewSchema(1, 2))
	defer func() {
		if recover() == nil {
			t.Fatal("NewInstance with wrong relation count did not panic")
		}
	}()
	NewInstance(q, r1)
}

func TestInstanceSchemaMismatchPanics(t *testing.T) {
	q := hypergraph.Line2()
	r1 := relation.New("R1", relation.NewSchema(1, 2))
	r2 := relation.New("R2", relation.NewSchema(5, 6)) // wrong attrs
	defer func() {
		if recover() == nil {
			t.Fatal("NewInstance with schema mismatch did not panic")
		}
	}()
	NewInstance(q, r1, r2)
}

func TestSubInstance(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	in := randInstance(rng, hypergraph.Line3(), 10, 3)
	sub := in.SubInstance([]int{0, 1})
	if len(sub.Rels) != 2 || len(sub.Q.Edges) != 2 {
		t.Fatalf("SubInstance shape wrong")
	}
	if sub.Rels[0] != in.Rels[0] {
		t.Error("SubInstance should share relations")
	}
}

func TestInstanceClone(t *testing.T) {
	rng := rand.New(rand.NewSource(82))
	in := randInstance(rng, hypergraph.Line2(), 10, 3)
	cl := in.Clone()
	cl.Rels[0].Tuples[0][0] = 999
	if in.Rels[0].Tuples[0][0] == 999 {
		t.Error("Clone did not deep-copy tuples")
	}
}

func TestMixedArityQuery(t *testing.T) {
	// Relations of arity 1, 2 and 3 in one acyclic query.
	q := hypergraph.New(
		hypergraph.NewAttrSet(1),
		hypergraph.NewAttrSet(1, 2),
		hypergraph.NewAttrSet(1, 2, 3),
	)
	rng := rand.New(rand.NewSource(83))
	in := randInstance(rng, q, 15, 4)
	want := Naive(in)
	c := mpc.NewCluster(4)
	em := mpc.NewCollectEmitter(in.OutputSchema())
	AcyclicJoin(c, in, 1, em)
	relEqual(t, em.Rel, want)
	c2 := mpc.NewCluster(4)
	em2 := mpc.NewCollectEmitter(in.OutputSchema())
	RHier(c2, in, 1, em2)
	relEqual(t, em2.Rel, want)
}

func TestNegativeValues(t *testing.T) {
	// Negative domain values must survive key encoding end to end.
	r1 := relation.New("R1", relation.NewSchema(1, 2))
	r2 := relation.New("R2", relation.NewSchema(2, 3))
	r1.Add(-5, -10)
	r1.Add(3, -10)
	r2.Add(-10, -20)
	in := NewInstance(hypergraph.Line2(), r1, r2)
	c := mpc.NewCluster(3)
	em := mpc.NewCollectEmitter(in.OutputSchema())
	AcyclicJoin(c, in, 1, em)
	relEqual(t, em.Rel, Naive(in))
	if em.Rel.Size() != 2 {
		t.Errorf("negative-value join size = %d, want 2", em.Rel.Size())
	}
}

func TestAggregateSingleRelation(t *testing.T) {
	q := hypergraph.New(hypergraph.NewAttrSet(1, 2))
	r := relation.New("R", relation.NewSchema(1, 2))
	r.Add(1, 10)
	r.Add(1, 11)
	r.Add(2, 12)
	in := NewInstance(q, r)
	c := mpc.NewCluster(2)
	got := Aggregate(c, in, hypergraph.NewAttrSet(1), 1, nil)
	m := map[relation.Value]int64{}
	for _, it := range got.All() {
		m[it.T[0]] = it.A
	}
	if m[1] != 2 || m[2] != 1 {
		t.Errorf("single-relation group-by = %v", m)
	}
}

func TestCountOutputCartesian(t *testing.T) {
	in := singletonInstance(hypergraph.CartesianK(4))
	c := mpc.NewCluster(4)
	if got := CountOutput(c, in, 1); got != 1 {
		t.Errorf("CountOutput = %d, want 1", got)
	}
}
