package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/hypergraph"
	"repro/internal/mpc"
	"repro/internal/relation"
)

// canonical renders a result relation as a sorted multiset fingerprint.
func canonical(r *relation.Relation) []string {
	attrs := []relation.Attr(relation.Schema(r.Schema).Sorted())
	p := r.Project(attrs)
	keys := make([]string, p.Size())
	for i, tu := range p.Tuples {
		keys[i] = relation.EncodeTuple(tu) + relation.EncodeValues(relation.Value(p.Annot(i)))
	}
	sortStrings(keys)
	return keys
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

func sameResults(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestPropertyAllAlgorithmsAgree: on random instances of each query class,
// every applicable MPC algorithm produces exactly the oracle's result
// multiset. Driven by testing/quick over (seed, p) pairs.
func TestPropertyAllAlgorithmsAgree(t *testing.T) {
	type algo struct {
		name string
		only hypergraph.Class // most general class the algorithm accepts
		run  func(c *mpc.Cluster, in *Instance, em mpc.Emitter)
	}
	algos := []algo{
		{"yannakakis", hypergraph.Acyclic, func(c *mpc.Cluster, in *Instance, em mpc.Emitter) {
			Yannakakis(c, in, nil, 1, em)
		}},
		{"acyclic", hypergraph.Acyclic, func(c *mpc.Cluster, in *Instance, em mpc.Emitter) {
			AcyclicJoin(c, in, 1, em)
		}},
		{"rhier", hypergraph.RHierarchical, func(c *mpc.Cluster, in *Instance, em mpc.Emitter) {
			RHier(c, in, 1, em)
		}},
		{"binhc", hypergraph.RHierarchical, func(c *mpc.Cluster, in *Instance, em mpc.Emitter) {
			BinHC(c, in, 1, false, em)
		}},
	}
	queries := []*hypergraph.Hypergraph{
		hypergraph.Line2(), hypergraph.Line3(), hypergraph.StarK(3),
		hypergraph.Q2Hierarchical(), hypergraph.RHierSimple(), hypergraph.Fig5Example(),
	}
	f := func(seed int64, pRaw uint8) bool {
		p := int(pRaw%8) + 1
		rng := rand.New(rand.NewSource(seed))
		q := queries[rng.Intn(len(queries))]
		in := randInstance(rng, q, 10+rng.Intn(10), 4)
		want := canonical(Naive(in))
		cls := q.Classify()
		for _, a := range algos {
			if a.only == hypergraph.RHierarchical && (cls == hypergraph.Acyclic || cls == hypergraph.Cyclic) {
				continue
			}
			c := mpc.NewCluster(p)
			em := mpc.NewCollectEmitter(in.OutputSchema())
			a.run(c, in, em)
			if !sameResults(canonical(em.Rel), want) {
				t.Logf("%s disagrees on %v (seed %d, p %d)", a.name, q, seed, p)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestPropertyAcyclicLoadBound: the §5.1 algorithm's measured load stays
// within a constant factor of IN/p + √(IN·OUT/p) across random instances.
func TestPropertyAcyclicLoadBound(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		qs := []*hypergraph.Hypergraph{hypergraph.Line3(), hypergraph.LineK(4), hypergraph.StarK(3)}
		q := qs[rng.Intn(len(qs))]
		in := randInstance(rng, q, 30+rng.Intn(40), 6)
		p := 4 + rng.Intn(12)
		c := mpc.NewCluster(p)
		em := mpc.NewCountEmitter(in.Ring)
		AcyclicJoin(c, in, uint64(seed), em)
		inSize := float64(in.IN())
		bound := inSize/float64(p) + math.Sqrt(inSize*float64(em.N)/float64(p)) + float64(4*p)
		if float64(c.MaxLoad()) > 10*bound {
			t.Logf("load %d > 10×bound %.0f on %v seed %d p %d OUT %d",
				c.MaxLoad(), bound, q, seed, p, em.N)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestPropertyFullReduceIdempotent: reducing twice equals reducing once,
// and reduction never changes the join result.
func TestPropertyFullReduceIdempotent(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		in := randInstance(rng, hypergraph.LineK(4), 25, 4)
		c := mpc.NewCluster(4)
		dists := LoadInstance(c, in)
		once := FullReduce(in, dists)
		twice := FullReduce(in, once)
		for i := range once {
			if !sameResults(canonical(once[i].ToRelation("a")), canonical(twice[i].ToRelation("b"))) {
				return false
			}
		}
		redInst := &Instance{Q: in.Q, Rels: materialize(once), Ring: in.Ring}
		return NaiveCount(redInst) == NaiveCount(in)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestPropertyCountOutputAgrees: CountOutput equals the oracle on random
// acyclic instances of varying shape.
func TestPropertyCountOutputAgrees(t *testing.T) {
	queries := []*hypergraph.Hypergraph{
		hypergraph.Line2(), hypergraph.Line3(), hypergraph.LineK(5),
		hypergraph.StarK(4), hypergraph.Q1TallFlat(), hypergraph.Fig5Example(),
	}
	f := func(seed int64, pRaw uint8) bool {
		p := int(pRaw%16) + 1
		rng := rand.New(rand.NewSource(seed))
		q := queries[rng.Intn(len(queries))]
		in := randInstance(rng, q, 10+rng.Intn(20), 5)
		c := mpc.NewCluster(p)
		return CountOutput(c, in, uint64(seed)) == NaiveCount(in)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// TestPropertyEmitterConsistency: the result Dist returned by an algorithm
// and the tuples it emits are the same multiset.
func TestPropertyEmitterConsistency(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		in := randInstance(rng, hypergraph.Line3(), 25, 5)
		c := mpc.NewCluster(5)
		em := mpc.NewCollectEmitter(in.OutputSchema())
		res := Line3(c, in, uint64(seed), em)
		return sameResults(
			canonical(ProjectLocal(res, in.OutputSchema()).ToRelation("res")),
			canonical(em.Rel))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestPropertyLInstanceMonotone: adding tuples never decreases the
// per-instance lower bound on reduced instances.
func TestPropertyLInstanceMonotone(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		small := randInstance(rng, hypergraph.RHierSimple(), 10, 4)
		big := small.Clone()
		extra := randInstance(rng, hypergraph.RHierSimple(), 10, 4)
		for i, r := range extra.Rels {
			for _, tu := range r.Tuples {
				big.Rels[i].Add(tu...)
			}
			big.Rels[i] = big.Rels[i].Dedup()
		}
		sr := NaiveSemiJoinReduce(small)
		br := NaiveSemiJoinReduce(big)
		return LInstance(br, 8) >= LInstance(sr, 8)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
