package core

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/hypergraph"
	"repro/internal/mpc"
	"repro/internal/relation"
	"repro/internal/runtime"
)

var rhierQueries = []*hypergraph.Hypergraph{
	hypergraph.Line2(),
	hypergraph.Q1TallFlat(),
	hypergraph.Q2Hierarchical(),
	hypergraph.Q2RHier(),
	hypergraph.RHierSimple(),
	hypergraph.StarK(3),
	hypergraph.CartesianK(3),
}

func TestInMemoryJoinCount(t *testing.T) {
	rng := rand.New(rand.NewSource(50))
	for _, q := range append(rhierQueries, hypergraph.Line3(), hypergraph.Fig5Example()) {
		for trial := 0; trial < 5; trial++ {
			in := randInstance(rng, q, 15, 4)
			got := InMemoryJoinCount(in.Rels)
			want := NaiveCount(in)
			if got != want {
				t.Errorf("%v: InMemoryJoinCount = %d, want %d", q, got, want)
			}
		}
	}
}

func TestLInstanceBinaryJoin(t *testing.T) {
	// For a binary join, L_instance = max(|R1|/p, |R2|/p, sqrt(OUT/p))-ish.
	r1 := relation.New("R1", relation.NewSchema(1, 2))
	r2 := relation.New("R2", relation.NewSchema(2, 3))
	for i := 0; i < 100; i++ {
		r1.Add(relation.Value(i), 0)
		r2.Add(0, relation.Value(i))
	}
	in := NewInstance(hypergraph.Line2(), r1, r2)
	got := LInstance(in, 4)
	// OUT = 10000, so sqrt(10000/4) = 50 dominates 100/4 = 25.
	if got != 50 {
		t.Errorf("LInstance = %d, want 50", got)
	}
}

func TestRHierMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	for _, q := range rhierQueries {
		for trial := 0; trial < 5; trial++ {
			in := randInstance(rng, q, 12+rng.Intn(12), 4)
			c := mpc.NewCluster(1 + rng.Intn(8))
			em := mpc.NewCollectEmitter(in.OutputSchema())
			RHier(c, in, uint64(trial), em)
			relEqual(t, em.Rel, Naive(in))
		}
	}
}

func TestRHierRejectsLine3(t *testing.T) {
	in := randInstance(rand.New(rand.NewSource(1)), hypergraph.Line3(), 5, 3)
	c := mpc.NewCluster(2)
	defer func() {
		if recover() == nil {
			t.Fatal("RHier on line-3 did not panic")
		}
	}()
	RHier(c, in, 1, nil)
}

func TestRHierAnnotated(t *testing.T) {
	rng := rand.New(rand.NewSource(52))
	in := randInstance(rng, hypergraph.Q2RHier(), 12, 3)
	for i, r := range in.Rels {
		r.Annots = make([]int64, r.Size())
		for j := range r.Annots {
			r.Annots[j] = int64(1 + (i*j)%4)
		}
	}
	c := mpc.NewCluster(4)
	em := mpc.NewCollectEmitter(in.OutputSchema())
	RHier(c, in, 1, em)
	relEqual(t, em.Rel, Naive(in))
}

func TestRHierInstanceOptimalLoad(t *testing.T) {
	// A skewed r-hierarchical instance: load must stay within a constant
	// factor of IN/p + L_instance(p, R).
	p := 16
	r1 := relation.New("R1", relation.NewSchema(1))
	r2 := relation.New("R2", relation.NewSchema(1, 2))
	r3 := relation.New("R3", relation.NewSchema(2))
	// One hub value with many partners, plus a diffuse tail.
	for i := 0; i < 200; i++ {
		r2.Add(0, relation.Value(i))
		r3.Add(relation.Value(i))
	}
	for i := 1; i <= 100; i++ {
		r2.Add(relation.Value(i), relation.Value(200+i))
		r3.Add(relation.Value(200 + i))
	}
	r1.Add(0)
	for i := 1; i <= 100; i++ {
		r1.Add(relation.Value(i))
	}
	in := NewInstance(hypergraph.RHierSimple(), r1, r2, r3.Dedup())
	c := mpc.NewCluster(p)
	em := mpc.NewCountEmitter(in.Ring)
	RHier(c, in, 1, em)
	if em.N != NaiveCount(in) {
		t.Fatalf("RHier count = %d, want %d", em.N, NaiveCount(in))
	}
	red := NaiveSemiJoinReduce(in)
	bound := int64(in.IN()/p) + LInstance(red, p)
	if int64(c.MaxLoad()) > 8*bound {
		t.Errorf("RHier load %d exceeds 8×(IN/p + L_instance) = %d", c.MaxLoad(), 8*bound)
	}
}

func TestRHierCartesianInterleaving(t *testing.T) {
	// The paper's Case-2 example: |Q1| = 1, Q2 = R1(A,B) ⋈ R2(B,C) with
	// |dom(B)| = 1 producing p·IN results. A two-step approach would incur
	// Ω(IN) load to materialize Q2; the grid must stay near L_instance.
	p := 8
	nIN := 128
	q := hypergraph.New(
		hypergraph.NewAttrSet(1),    // R0(x1): single tuple
		hypergraph.NewAttrSet(2, 3), // R1(A,B)
		hypergraph.NewAttrSet(3, 4), // R2(B,C)
	)
	r0 := relation.New("R0", relation.NewSchema(1))
	r0.Add(42)
	r1 := relation.New("R1", relation.NewSchema(2, 3))
	for i := 0; i < nIN; i++ {
		r1.Add(relation.Value(i), 0)
	}
	r2 := relation.New("R2", relation.NewSchema(3, 4))
	for i := 0; i < p; i++ {
		r2.Add(0, relation.Value(i))
	}
	in := NewInstance(q, r0, r1, r2)
	c := mpc.NewCluster(p)
	em := mpc.NewCountEmitter(in.Ring)
	RHier(c, in, 1, em)
	want := int64(nIN * p)
	if em.N != want {
		t.Fatalf("count = %d, want %d", em.N, want)
	}
	red := NaiveSemiJoinReduce(in)
	bound := int64(in.IN()/p) + LInstance(red, p)
	if int64(c.MaxLoad()) > 8*bound {
		t.Errorf("grid load %d exceeds 8×bound %d (two-step would pay ~%d)",
			c.MaxLoad(), 8*bound, nIN)
	}
}

// TestRHierGridDeterministicAcrossWidths pins the residue-class grid
// emission: hierCase2 forks one task per cell residue class, and the
// emitted parts, the collected relation, and the cluster charges must be
// byte-identical to the serial walk at every data-plane width.
func TestRHierGridDeterministicAcrossWidths(t *testing.T) {
	const p, nIN = 8, 96
	q := hypergraph.New(
		hypergraph.NewAttrSet(1),    // R0(x1): single tuple
		hypergraph.NewAttrSet(2, 3), // R1(A,B)
		hypergraph.NewAttrSet(3, 4), // R2(B,C)
	)
	build := func() *Instance {
		r0 := relation.New("R0", relation.NewSchema(1))
		r0.Add(42)
		r1 := relation.New("R1", relation.NewSchema(2, 3))
		for i := 0; i < nIN; i++ {
			r1.Add(relation.Value(i), 0)
		}
		r2 := relation.New("R2", relation.NewSchema(3, 4))
		for i := 0; i < 3*p; i++ {
			r2.Add(0, relation.Value(i))
		}
		return NewInstance(q, r0, r1, r2)
	}

	type run struct {
		parts []mpc.Item
		rel   *relation.Relation
		stats mpc.Stats
	}
	runAt := func(width int) run {
		prev := runtime.SetParallelism(width)
		defer runtime.SetParallelism(prev)
		in := build()
		c := mpc.NewCluster(p)
		em := mpc.NewCollectEmitter(in.OutputSchema())
		res := RHier(c, in, 1, em)
		return run{parts: res.All(), rel: em.Rel, stats: c.Snapshot()}
	}

	ref := runAt(1)
	if ref.rel.Size() == 0 {
		t.Fatal("grid instance produced no output")
	}
	for _, width := range []int{2, 8} {
		got := runAt(width)
		if !reflect.DeepEqual(ref.parts, got.parts) {
			t.Fatalf("width %d: result parts differ from serial", width)
		}
		if !reflect.DeepEqual(ref.rel.Tuples, got.rel.Tuples) || !reflect.DeepEqual(ref.rel.Annots, got.rel.Annots) {
			t.Fatalf("width %d: emitted relation differs from serial", width)
		}
		if !reflect.DeepEqual(ref.stats, got.stats) {
			t.Fatalf("width %d: charges differ:\nref %+v\ngot %+v", width, ref.stats, got.stats)
		}
	}
}

func TestBinHCMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	for _, q := range rhierQueries {
		for trial := 0; trial < 4; trial++ {
			in := randInstance(rng, q, 12, 4)
			for _, dangling := range []bool{false, true} {
				c := mpc.NewCluster(1 + rng.Intn(8))
				em := mpc.NewCollectEmitter(in.OutputSchema())
				BinHC(c, in, uint64(trial), dangling, em)
				relEqual(t, em.Rel, Naive(in))
			}
		}
	}
}

func TestBinHCDanglingBarrier(t *testing.T) {
	// Table 1, one-round column: with dangling tuples, the degree-based
	// one-round allocation pays more than the instance-optimal bound; the
	// semi-join preprocessing restores it.
	p := 8
	r1 := relation.New("R1", relation.NewSchema(1))
	r2 := relation.New("R2", relation.NewSchema(1, 2))
	r3 := relation.New("R3", relation.NewSchema(2))
	// R2 has a huge dangling block: B-values missing from R3.
	for i := 0; i < 400; i++ {
		r2.Add(0, relation.Value(1000+i)) // dangling partners
	}
	r2.Add(0, 1)
	r1.Add(0)
	r3.Add(1)
	in := NewInstance(hypergraph.RHierSimple(), r1, r2, r3)

	cNo := mpc.NewCluster(p)
	emNo := mpc.NewCountEmitter(in.Ring)
	BinHC(cNo, in, 1, false, emNo)

	cYes := mpc.NewCluster(p)
	emYes := mpc.NewCountEmitter(in.Ring)
	BinHC(cYes, in, 1, true, emYes)

	if emNo.N != 1 || emYes.N != 1 {
		t.Fatalf("counts = %d,%d want 1,1", emNo.N, emYes.N)
	}
	if cYes.MaxLoad() > cNo.MaxLoad() {
		t.Errorf("reduction should not hurt: with=%d without=%d", cYes.MaxLoad(), cNo.MaxLoad())
	}
}

func TestReduceFoldSemantics(t *testing.T) {
	r1 := relation.New("R1", relation.NewSchema(1, 2))
	r2 := relation.New("R2", relation.NewSchema(2))
	r1.AddAnnotated(2, 1, 10)
	r1.AddAnnotated(3, 2, 11)
	r2.AddAnnotated(5, 10)
	out := reduceFold([]*relation.Relation{r1, r2}, nil, relation.CountRing)
	if len(out) != 1 {
		t.Fatalf("reduceFold kept %d relations, want 1", len(out))
	}
	if out[0].Size() != 1 || out[0].Annot(0) != 10 {
		t.Errorf("folded relation = %v annots %v", out[0].Tuples, out[0].Annots)
	}
}

func TestGroupByValue(t *testing.T) {
	r1 := relation.New("R1", relation.NewSchema(1, 2))
	r1.Add(1, 10)
	r1.Add(1, 11)
	r1.Add(2, 12)
	r2 := relation.New("R2", relation.NewSchema(1))
	r2.Add(1)
	groups := groupByValue([]*relation.Relation{r1, r2}, 1)
	if len(groups) != 2 {
		t.Fatalf("groups = %d, want 2", len(groups))
	}
	if groups[1][0].Size() != 2 || groups[1][1].Size() != 1 {
		t.Errorf("group 1 sizes wrong")
	}
	if groups[2][0].Size() != 1 || groups[2][1].Size() != 0 {
		t.Errorf("group 2 sizes wrong")
	}
}
