package core

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/hypergraph"
	"repro/internal/mpc"
	"repro/internal/relation"
)

func TestTriangleMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(60))
	for trial := 0; trial < 10; trial++ {
		in := randInstance(rng, hypergraph.Triangle(), 30, 6)
		c := mpc.NewCluster(1 + rng.Intn(27))
		em := mpc.NewCollectEmitter(in.OutputSchema())
		Triangle(c, in, uint64(trial), em)
		relEqual(t, em.Rel, Naive(in))
	}
}

func TestTriangleAnnotated(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	in := randInstance(rng, hypergraph.Triangle(), 20, 4)
	for i, r := range in.Rels {
		r.Annots = make([]int64, r.Size())
		for j := range r.Annots {
			r.Annots[j] = int64(1 + (i+2*j)%3)
		}
	}
	c := mpc.NewCluster(8)
	em := mpc.NewCollectEmitter(in.OutputSchema())
	Triangle(c, in, 1, em)
	relEqual(t, em.Rel, Naive(in))
}

func TestTriangleWorstCaseLoad(t *testing.T) {
	// Dense random instance: load should track IN/p^{2/3}, not IN.
	n, p := 600, 27
	rng := rand.New(rand.NewSource(62))
	dom := 40
	mk := func(a1, a2 relation.Attr) *relation.Relation {
		r := relation.New("R", relation.NewSchema(a1, a2))
		for i := 0; i < n; i++ {
			r.Add(relation.Value(rng.Intn(dom)), relation.Value(rng.Intn(dom)))
		}
		return r.Dedup()
	}
	in := NewInstance(hypergraph.Triangle(), mk(2, 3), mk(1, 3), mk(1, 2))
	c := mpc.NewCluster(p)
	em := mpc.NewCountEmitter(in.Ring)
	Triangle(c, in, 1, em)
	if em.N != NaiveCount(in) {
		t.Fatalf("triangle count = %d, want %d", em.N, NaiveCount(in))
	}
	inSize := float64(in.IN())
	bound := inSize / math.Pow(float64(p), 2.0/3.0)
	if float64(c.MaxLoad()) > 6*bound {
		t.Errorf("triangle load %d exceeds 6×IN/p^(2/3) = %.0f", c.MaxLoad(), 6*bound)
	}
}

func TestTriangleRejectsNonTriangle(t *testing.T) {
	in := randInstance(rand.New(rand.NewSource(1)), hypergraph.Line3(), 5, 3)
	c := mpc.NewCluster(8)
	defer func() {
		if recover() == nil {
			t.Fatal("Triangle on line-3 did not panic")
		}
	}()
	Triangle(c, in, 1, nil)
}
