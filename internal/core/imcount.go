package core

import (
	"repro/internal/hypergraph"
	"repro/internal/primitives"
	"repro/internal/relation"
)

// InMemoryJoinCount computes |⋈ rels| for an acyclic set of relations by
// dynamic programming over a join tree (counts only — never materializes
// the join). Used by the instance-optimal allocator, which needs the exact
// subset join sizes |Q(R, S)| of equation (2), and by tests.
func InMemoryJoinCount(rels []*relation.Relation) int64 {
	if len(rels) == 0 {
		return 1
	}
	var schemas []relation.Schema
	for _, r := range rels {
		schemas = append(schemas, r.Schema)
	}
	q := hypergraph.FromSchemas(schemas...)
	tree, ok := q.GYO()
	if !ok {
		panic("core: InMemoryJoinCount on cyclic subset")
	}
	// counts[u] maps a tuple of relation u to the number of join extensions
	// in u's subtree.
	counts := make([]map[string]int64, len(rels))
	for u := range rels {
		counts[u] = make(map[string]int64, rels[u].Size())
		for _, t := range rels[u].Tuples {
			counts[u][relation.EncodeTuple(t)] = 1
		}
	}
	for _, u := range tree.RemovalOrder {
		p := tree.Parent[u]
		if p < 0 {
			break
		}
		shared := rels[u].Schema.Intersect(rels[p].Schema)
		uPos := rels[u].Schema.Positions(shared)
		pPos := rels[p].Schema.Positions(shared)
		agg := make(map[string]int64)
		for _, t := range rels[u].Tuples {
			agg[relation.KeyAt(t, uPos)] += counts[u][relation.EncodeTuple(t)]
		}
		for _, t := range rels[p].Tuples {
			k := relation.EncodeTuple(t)
			counts[p][k] *= agg[relation.KeyAt(t, pPos)]
		}
	}
	var total int64
	for _, t := range rels[tree.Root].Tuples {
		total += counts[tree.Root][relation.EncodeTuple(t)]
	}
	return total
}

// LInstance computes the paper's per-instance lower bound (equation 2),
//
//	L_instance(p, R) = max_{S ⊆ E} (|Q(R, S)| / p)^{1/|S|},
//
// on a dangling-free instance, where |Q(R, S)| = |⋈_{e∈S} R(e)|. The input
// must already be fully reduced (no dangling tuples); pass instances
// through NaiveSemiJoinReduce or FullReduce first.
func LInstance(in *Instance, p int) int64 {
	// L_instance depends only on the REDUCED instance (Section 3.2): fold
	// relations whose schema is contained in another's before enumerating
	// subsets, or disjoint contained edges would contribute spurious
	// Cartesian-product terms that are not real Q(R, S) sets.
	rels := reduceFold(in.Rels, nil, relation.CountRing)
	m := len(rels)
	best := int64(0)
	for mask := 1; mask < 1<<m; mask++ {
		var sub []*relation.Relation
		for i := 0; i < m; i++ {
			if mask&(1<<i) != 0 {
				sub = append(sub, rels[i])
			}
		}
		size := InMemoryJoinCount(sub)
		v := primitives.Iroot((size+int64(p)-1)/int64(p), len(sub))
		if v > best {
			best = v
		}
	}
	return best
}
