package core

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/hypergraph"
	"repro/internal/mpc"
	"repro/internal/relation"
)

func TestLine3MatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(30))
	for trial := 0; trial < 15; trial++ {
		in := randInstance(rng, hypergraph.Line3(), 25+rng.Intn(30), 5)
		c := mpc.NewCluster(1 + rng.Intn(8))
		em := mpc.NewCollectEmitter(in.OutputSchema())
		Line3(c, in, uint64(trial), em)
		relEqual(t, em.Rel, Naive(in))
	}
}

func TestLine3SkewedInstances(t *testing.T) {
	// Force both decomposition branches: some B-values far above τ, some
	// below.
	rng := rand.New(rand.NewSource(31))
	r1 := relation.New("R1", relation.NewSchema(1, 2))
	r2 := relation.New("R2", relation.NewSchema(2, 3))
	r3 := relation.New("R3", relation.NewSchema(3, 4))
	for i := 0; i < 60; i++ {
		r1.Add(relation.Value(i), 0) // heavy B=0
	}
	for i := 0; i < 20; i++ {
		r1.Add(relation.Value(100+i), relation.Value(1+i%5)) // light B
	}
	for b := 0; b < 6; b++ {
		for c := 0; c < 4; c++ {
			r2.Add(relation.Value(b), relation.Value(rng.Intn(8)))
		}
	}
	for i := 0; i < 30; i++ {
		r3.Add(relation.Value(i%8), relation.Value(i))
	}
	in := NewInstance(hypergraph.Line3(), r1.Dedup(), r2.Dedup(), r3.Dedup())
	c := mpc.NewCluster(5)
	em := mpc.NewCollectEmitter(in.OutputSchema())
	Line3(c, in, 7, em)
	relEqual(t, em.Rel, Naive(in))
}

func TestLine3EmptyOutput(t *testing.T) {
	r1 := relation.New("R1", relation.NewSchema(1, 2))
	r2 := relation.New("R2", relation.NewSchema(2, 3))
	r3 := relation.New("R3", relation.NewSchema(3, 4))
	r1.Add(1, 1)
	r2.Add(2, 2)
	r3.Add(3, 3)
	in := NewInstance(hypergraph.Line3(), r1, r2, r3)
	c := mpc.NewCluster(4)
	res := Line3(c, in, 1, nil)
	if res.Size() != 0 {
		t.Errorf("empty join produced %d tuples", res.Size())
	}
}

func TestLine3RejectsWrongShape(t *testing.T) {
	in := randInstance(rand.New(rand.NewSource(1)), hypergraph.StarK(3), 5, 3)
	c := mpc.NewCluster(2)
	defer func() {
		if recover() == nil {
			t.Fatal("Line3 on star query did not panic")
		}
	}()
	Line3(c, in, 1, nil)
}

// yannakakisHard builds the Figure 3 one-sided hard instance: A×B complete
// bipartite into a one-to-many B→C expansion into C×{d}: IN = Θ(n),
// OUT as requested, and |R1 ⋈ R2| = OUT while |R2 ⋈ R3| = O(n).
func yannakakisHard(n, out int) *Instance {
	domA := out / n // OUT/N values of A
	if domA < 1 {
		domA = 1
	}
	domB := n / domA // N²/OUT values of B
	if domB < 1 {
		domB = 1
	}
	r1 := relation.New("R1", relation.NewSchema(1, 2))
	for a := 0; a < domA; a++ {
		for b := 0; b < domB; b++ {
			r1.Add(relation.Value(a), relation.Value(b))
		}
	}
	r2 := relation.New("R2", relation.NewSchema(2, 3))
	for c := 0; c < n; c++ {
		r2.Add(relation.Value(c%domB), relation.Value(c))
	}
	r3 := relation.New("R3", relation.NewSchema(3, 4))
	for c := 0; c < n; c++ {
		r3.Add(relation.Value(c), 0)
	}
	return NewInstance(hypergraph.Line3(), r1, r2, r3)
}

func TestLine3BeatsYannakakisOnHardInstance(t *testing.T) {
	// Figure 3 / Section 4.1: with the bad join order Yannakakis pays
	// Θ(OUT/p); the decomposed algorithm stays near IN/p + √(IN·OUT/p).
	n, p := 512, 16
	out := n * 8 // OUT = 8·IN > IN
	in := yannakakisHard(n, out)
	want := NaiveCount(in)
	if want < int64(out)/2 {
		t.Fatalf("hard instance OUT = %d, expected ≈ %d", want, out)
	}

	cBad := mpc.NewCluster(p)
	emBad := mpc.NewCountEmitter(in.Ring)
	Yannakakis(cBad, in, []int{0, 1, 2}, 1, emBad) // (R1 ⋈ R2) ⋈ R3
	if emBad.N != want {
		t.Fatalf("Yannakakis bad order wrong count %d, want %d", emBad.N, want)
	}

	cNew := mpc.NewCluster(p)
	emNew := mpc.NewCountEmitter(in.Ring)
	Line3(cNew, in, 1, emNew)
	if emNew.N != want {
		t.Fatalf("Line3 wrong count %d, want %d", emNew.N, want)
	}

	inSize := float64(in.IN())
	bound := inSize/float64(p) + math.Sqrt(inSize*float64(want)/float64(p))
	if float64(cNew.MaxLoad()) > 8*bound {
		t.Errorf("Line3 load %d exceeds 8×(IN/p + √(IN·OUT/p)) = %.0f", cNew.MaxLoad(), 8*bound)
	}
	// The bad order must shuffle the Θ(OUT)-sized intermediate result: its
	// load is Ω(OUT/p), well above the new algorithm's.
	if cBad.MaxLoad() <= cNew.MaxLoad() {
		t.Errorf("expected bad-order Yannakakis (%d) to exceed Line3 (%d)",
			cBad.MaxLoad(), cNew.MaxLoad())
	}
}

func TestLine3DoubledHardInstanceNoGoodOrder(t *testing.T) {
	// Section 4.1's doubled instance: two copies in opposite directions.
	// EVERY join order of Yannakakis has a Θ(OUT)-sized intermediate, while
	// Line3's decomposition stays output-optimal.
	n, p := 256, 16
	out := n * 8
	a := yannakakisHard(n, out)
	b := yannakakisHard(n, out)
	// Mirror b (swap roles of R1/R3) and shift its domains to be disjoint.
	shift := relation.Value(1 << 20)
	mirror := func(r *relation.Relation, s1, s2 relation.Attr) *relation.Relation {
		nr := relation.New(r.Name, relation.NewSchema(s1, s2))
		for _, tu := range r.Tuples {
			nr.Add(tu[1]+shift, tu[0]+shift)
		}
		return nr
	}
	r1 := a.Rels[0].Clone()
	r2 := a.Rels[1].Clone()
	r3 := a.Rels[2].Clone()
	for _, tu := range mirror(b.Rels[2], 1, 2).Tuples {
		r1.Add(tu...)
	}
	for _, tu := range mirror(b.Rels[1], 2, 3).Tuples {
		r2.Add(tu...)
	}
	for _, tu := range mirror(b.Rels[0], 3, 4).Tuples {
		r3.Add(tu...)
	}
	in := NewInstance(hypergraph.Line3(), r1, r2, r3)
	want := NaiveCount(in)

	worstBest := 1 << 62
	for _, order := range [][]int{{0, 1, 2}, {2, 1, 0}} {
		c := mpc.NewCluster(p)
		em := mpc.NewCountEmitter(in.Ring)
		Yannakakis(c, in, order, 1, em)
		if em.N != want {
			t.Fatalf("order %v wrong count", order)
		}
		if c.MaxLoad() < worstBest {
			worstBest = c.MaxLoad()
		}
	}
	c := mpc.NewCluster(p)
	em := mpc.NewCountEmitter(in.Ring)
	Line3(c, in, 1, em)
	if em.N != want {
		t.Fatalf("Line3 wrong count on doubled instance")
	}
	if c.MaxLoad() >= worstBest {
		t.Errorf("Line3 load %d should beat best Yannakakis order %d", c.MaxLoad(), worstBest)
	}
}
