package harness

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/engine"
	"repro/internal/gen"
	"repro/internal/hypergraph"
	"repro/internal/mpc"
	"repro/internal/runtime"
	"repro/internal/stats"
)

// renderDispatch runs cost-based dispatch over the full catalog at the
// given data-plane width and renders every dispatch observable — the pick,
// the predicted and measured loads, and the complete ranked scorecard —
// into one string, asserting per run that the pick's Applies accepts the
// query and the predicted-vs-actual ratio stays inside the pinned band.
func renderDispatch(t *testing.T, width int) string {
	t.Helper()
	prev := runtime.SetParallelism(width)
	defer runtime.SetParallelism(prev)
	s := smallScale()
	var b strings.Builder
	for i, e := range hypergraph.Catalog() {
		in := gen.ForQuery(mpc.NewChildRng(s.Seed, i), e.Q, fig1N, fig1Dom)
		res, err := engine.AutoRun(s.job(in, oracleCount(in)))
		if err != nil {
			t.Fatalf("%s: %v", e.Name, err)
		}
		a, ok := engine.Lookup(res.Algorithm)
		if !ok || !a.Applies(e.Q) {
			t.Errorf("%s: cost pick %q does not apply to the query", e.Name, res.Algorithm)
		}
		// The prediction band: cost models may overpredict by the slack the
		// bound formulas build in, but a load more than mispredSlack above
		// the prediction (or a prediction 64× above the load) means the
		// formula and the implementation have drifted apart.
		if r := stats.Ratio(res.Load, res.Predicted); r > mispredSlack || r < 1.0/64 {
			t.Errorf("%s: L=%d vs predicted %.1f (ratio %.3f) outside [1/64, %v]",
				e.Name, res.Load, res.Predicted, r, mispredSlack)
		}
		// Where cost dispatch agrees with the structural route, the run must
		// be byte-identical to classification-order dispatch: the scorecard
		// is bookkeeping, never a behavioural input.
		if res.Algorithm == engine.Route(e.Q) {
			direct, err := engine.RunNamed(res.Algorithm, s.job(in, oracleCount(in)))
			if err != nil {
				t.Fatalf("%s: direct %s: %v", e.Name, res.Algorithm, err)
			}
			if res.OUT != direct.OUT || res.Load != direct.Load || res.Rounds != direct.Rounds {
				t.Errorf("%s: AutoRun (OUT=%d L=%d R=%d) != structural run (OUT=%d L=%d R=%d)",
					e.Name, res.OUT, res.Load, res.Rounds, direct.OUT, direct.Load, direct.Rounds)
			}
		}
		fmt.Fprintf(&b, "%s pick=%s pred=%.4f by=%q L=%d rounds=%d flag=%s\n",
			e.Name, res.Algorithm, res.Predicted, res.PredictedBy, res.Load, res.Rounds,
			dispatchFlag(res.Load, res.Predicted))
		for _, c := range res.Candidates {
			fmt.Fprintf(&b, "  %s pred=%.4f by=%q rejected=%q\n", c.Name, c.Predicted, c.PredictedBy, c.Rejected)
		}
	}
	return b.String()
}

// TestDispatchAccuracySweep is cost-based dispatch's end-to-end contract
// over the catalog: every pick applies, every prediction lands inside the
// slack band, AutoRun matches classification-order dispatch wherever the
// two agree — and the full dispatch rendering is byte-identical at
// data-plane widths 1, 2 and 8 (predictions read statistics, never the
// parallel execution).
func TestDispatchAccuracySweep(t *testing.T) {
	serial := renderDispatch(t, 1)
	for _, w := range []int{2, 8} {
		if got := renderDispatch(t, w); got != serial {
			t.Fatalf("width %d dispatch differs from serial:\n--- width=1 ---\n%s\n--- width=%d ---\n%s",
				w, serial, w, got)
		}
	}
}
