package harness

import (
	"testing"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/gen"
	"repro/internal/hypergraph"
	"repro/internal/mpc"
)

// roundsHomes builds, per registered algorithm, an instance it applies to
// at base input size n (mirroring engine_test's home instances, but
// scalable so the IN-independence of round counts can be observed).
func roundsHomes(n int) map[string]*core.Instance {
	rng := mpc.NewRng(2019)
	return map[string]*core.Instance{
		"yannakakis": gen.ForQuery(rng, hypergraph.LineK(4), n, 6),
		"acyclic":    gen.ForQuery(rng, hypergraph.Fig5Example(), n, 4),
		"line3":      gen.Line3Random(rng, n, 2*n),
		"line3wc":    gen.Line3Random(rng, n, 2*n),
		"rhier":      gen.RHierSkewed(rng, 2, 8, n),
		"binhc":      gen.TallFlatSkewed(8, n),
		"hypercube":  gen.CartesianSizes(n/32, 8, 4),
		"triangle":   gen.TriangleRandom(rng, n, 2*n),
		"naive":      gen.ForQuery(rng, hypergraph.Line2(), n, 6),
		"count":      gen.Line3Random(rng, n, 2*n),
		"aggregate":  gen.Line3Random(rng, n, 2*n),
	}
}

// observedRounds runs every registered algorithm on its home at input
// size n and returns name → Result.Rounds.
func observedRounds(t *testing.T, n int) map[string]int {
	t.Helper()
	homes := roundsHomes(n)
	out := map[string]int{}
	for _, a := range engine.All() {
		in := homes[a.Name()]
		if in == nil {
			t.Errorf("%s: no home instance; extend roundsHomes", a.Name())
			continue
		}
		job := engine.Job{In: in, P: 16, Seed: 2019}
		if a.Name() == "aggregate" {
			job.GroupBy = hypergraph.NewAttrSet(2, 3)
		}
		res, err := engine.Run(a, job)
		if err != nil {
			t.Errorf("%s: %v", a.Name(), err)
			continue
		}
		out[a.Name()] = res.Rounds
	}
	return out
}

// TestObservedRoundsRespectDeclaredClass is the dynamic half of the round
// contract: the repobound analyzer proves each adapter's run body cannot
// reach charges beyond its declared class, and this test checks the
// declaration against what the simulator actually charged across the
// experiment matrix. zero means no rounds at all; const means a round
// count set by the query structure, not the input size — growing the
// input 16× must leave it flat (a log-class algorithm would gain a factor
// ~1.4, a loop-class one ~16×). Slack of max(4, small/8) absorbs
// data-dependent branching (heavy/light splits shift a few rounds) while
// still failing on any systematic growth.
func TestObservedRoundsRespectDeclaredClass(t *testing.T) {
	const small, large = 1 << 9, 1 << 13
	atSmall := observedRounds(t, small)
	atLarge := observedRounds(t, large)

	for _, a := range engine.All() {
		name := a.Name()
		class := engine.RoundClassOf(a)
		if class == "" {
			t.Errorf("%s: no declared round class (rounds field missing?)", name)
			continue
		}
		s, okS := atSmall[name]
		l, okL := atLarge[name]
		if !okS || !okL {
			continue // run failure already reported
		}
		switch class {
		case "zero":
			if s != 0 || l != 0 {
				t.Errorf("%s: declared zero rounds but charged %d (IN=%d) and %d (IN=%d)", name, s, small, l, large)
			}
		case "const":
			if s == 0 && l == 0 {
				t.Errorf("%s: declared const rounds but never charged; declare zero instead", name)
			}
			slack := s / 8
			if slack < 4 {
				slack = 4
			}
			if l > s+slack {
				t.Errorf("%s: declared const rounds but grew from %d (IN=%d) to %d (IN=%d); rounds must not scale with the input", name, s, small, l, large)
			}
		case "log", "loop":
			// No registered algorithm declares these today; growing past
			// const is exactly what the declaration permits, so there is
			// nothing to pin beyond the static check.
		default:
			t.Errorf("%s: declared unparseable round class %q", name, class)
		}
	}
}
