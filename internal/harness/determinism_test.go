package harness

import (
	"strings"
	"testing"

	"repro/internal/primitives"
	"repro/internal/runtime"
)

// renderAll regenerates the full experiment matrix with w scheduler
// workers AND data-plane width w (batched exchange scatter, parallel
// sub-clusters, parallel oracle), and returns the concatenated rendered
// tables.
func renderAll(w int) string {
	prev := runtime.SetParallelism(w)
	defer runtime.SetParallelism(prev)
	s := Scale{P: 16, IN: 1 << 9, Seed: 2019, Workers: w}
	var b strings.Builder
	b.WriteString(Fig1Classification(s).Render())
	b.WriteString(Fig3JoinOrder(s).Render())
	b.WriteString(Fig4Line3Sweep(s).Render())
	b.WriteString(Fig6TriangleSweep(s).Render())
	b.WriteString(Table1Loads(s).Render())
	b.WriteString(E2RHierClosedForm(s).Render())
	b.WriteString(E3AcyclicVsYannakakis(s).Render())
	b.WriteString(E4Aggregate(s).Render())
	b.WriteString(E5InstanceGap(Scale{P: 16, IN: 1 << 9, Seed: 2019, Workers: w}).Render())
	b.WriteString(AblationTau(s).Render())
	b.WriteString(AblationGrid(s).Render())
	return b.String()
}

// TestDeterminismAcrossWorkers is the parallel runtime's core guarantee:
// the full experiment matrix rendered with a serial scheduler AND a serial
// data plane must be byte-identical to an 8-worker run with an 8-wide data
// plane — same instances (child seeds depend only on task indices), same
// loads, same rounds, same result counts, same row order. Run under -race
// (the Makefile ci target does) this also proves the sharded simulator
// state, the batched exchange, and the parallel inner loops are data-race
// free. The memoized oracle is exercised hard here: the three renders
// rebuild the same instances, so renders two and three hit the cache.
func TestDeterminismAcrossWorkers(t *testing.T) {
	serial := renderAll(1)
	parallel := renderAll(8)
	if serial != parallel {
		t.Fatalf("workers=8 output differs from workers=1:\n--- workers=1 ---\n%s\n--- workers=8 ---\n%s",
			serial, parallel)
	}
	// And an odd width that cannot tile any experiment's task count evenly.
	if odd := renderAll(3); odd != serial {
		t.Fatalf("workers=3 output differs from workers=1")
	}
	// The columnar record pool is memory reuse only: with pooling disabled
	// the full matrix — tables, loads, rounds, every Cluster charge — must
	// stay byte-identical, serial and parallel.
	prevPool := primitives.SetRecordPooling(false)
	defer primitives.SetRecordPooling(prevPool)
	if unpooled := renderAll(8); unpooled != serial {
		t.Fatalf("pool=off output differs from pooled serial render")
	}
}
