package harness

import (
	"flag"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/runtime"
)

// -update regenerates the golden table bytes from the current code:
//
//	go test ./internal/harness -run TestGoldenTables -update
var updateGolden = flag.Bool("update", false, "rewrite the golden table files")

// goldenTables renders the pinned experiment subset at a small fixed,
// seeded matrix: the Figure 1 classification/dispatch table and the
// Figure 3 join-order experiment (seeded instances through yannakakis,
// line3 and acyclic — every layer from gen through engine to the table
// renderer contributes bytes).
func goldenTables(width int) string {
	prev := runtime.SetParallelism(width)
	defer runtime.SetParallelism(prev)
	s := Scale{P: 16, IN: 1 << 9, Seed: 2019, Workers: width}
	return Fig1Classification(s).Render() + Fig3JoinOrder(s).Render()
}

// TestGoldenTables pins the experiment tables byte-for-byte across
// commits, swept over data-plane widths 1/2/8: the tables must be
// byte-identical to the checked-in golden file at EVERY width. The
// cross-width sweep proves determinism; the golden file proves the bytes
// did not drift since the plan was pinned (an intentional change
// regenerates it with -update).
func TestGoldenTables(t *testing.T) {
	path := filepath.Join("testdata", "tables.golden")
	got := goldenTables(1)
	for _, width := range []int{2, 8} {
		if sw := goldenTables(width); sw != got {
			t.Fatalf("width %d tables differ from width 1 — fix determinism before pinning bytes", width)
		}
	}
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d bytes)", path, len(got))
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file %s (regenerate with -update): %v", path, err)
	}
	if string(want) != got {
		t.Fatalf("tables differ from %s (intentional change? regenerate with -update):\n--- want ---\n%s\n--- got ---\n%s",
			path, want, got)
	}
}
