// Package harness runs the paper's experiments on the MPC simulator and
// renders aligned text tables: one experiment per table/figure of the
// paper, as indexed in DESIGN.md. Every experiment is deterministic given
// its seed.
package harness

import (
	"fmt"
	"strings"
)

// Table is a titled grid of cells rendered with aligned columns.
type Table struct {
	Title  string
	Note   string
	Header []string
	Rows   [][]string
}

// Add appends a row; values are formatted with %v.
func (t *Table) Add(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = formatFloat(v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

func formatFloat(v float64) string {
	switch {
	case v == 0:
		return "0"
	case v >= 100:
		return fmt.Sprintf("%.0f", v)
	case v >= 1:
		return fmt.Sprintf("%.1f", v)
	default:
		return fmt.Sprintf("%.3f", v)
	}
}

// Render returns the aligned text form.
func (t *Table) Render() string {
	var b strings.Builder
	b.WriteString("== " + t.Title + " ==\n")
	if t.Note != "" {
		b.WriteString(t.Note + "\n")
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			if i < len(cells)-1 {
				b.WriteString(strings.Repeat(" ", widths[i]-len(c)))
			}
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	b.WriteString(strings.Repeat("-", total) + "\n")
	for _, r := range t.Rows {
		line(r)
	}
	return b.String()
}
