package harness

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/gen"
	"repro/internal/hypergraph"
	"repro/internal/mpc"
	"repro/internal/primitives"
	"repro/internal/relation"
	"repro/internal/stats"
)

// E2RHierClosedForm sweeps OUT on r-hierarchical instances and compares the
// measured RHier load to Theorem 4's closed form
// IN/p^{1/max(1,k*−1)} + (OUT/p)^{1/k*}. One task per hub degree.
func E2RHierClosedForm(s Scale) *Table {
	t := &Table{
		Title: "Theorem 4 — r-hierarchical output-optimal closed form",
		Note: fmt.Sprintf("p=%d; keyed-product instance with growing hub degree: OUT ≈ hub², so k* crosses from 1 to 2",
			s.P),
		Header: []string{"hubDeg", "IN", "OUT", "k*", "L(RHier)", "Thm4 bound", "L/bound"},
	}
	hubs := []int{16, 64, 256, 1024}
	s.addRows(t, len(hubs), func(task int) [][]any {
		hub := hubs[task]
		in := gen.TallFlatSkewed(hub, s.IN/4)
		out := oracleCount(in)
		l := run("rhier", s.job(in, out)).Load
		b := stats.RHierOutput(in.IN(), out, s.P)
		return [][]any{{hub, in.IN(), out, stats.KStar(in.IN(), out), l, b, stats.Ratio(l, b)}}
	})
	return t
}

// E3AcyclicVsYannakakis compares the Section 5.1 algorithm with Yannakakis
// on longer chains, where the paper's √(OUT/IN)-factor gap should persist
// beyond line-3. One task per query family.
func E3AcyclicVsYannakakis(s Scale) *Table {
	t := &Table{
		Title:  "Section 5 — acyclic joins beyond line-3 (chain of 4, glued hard instances)",
		Header: []string{"query", "IN", "OUT", "L(Yann)", "L(Acyclic §5.1)", "Yann/Acyclic"},
	}
	s.addRows(t, 2, func(task int) [][]any {
		var name string
		var in *core.Instance
		var order []int
		if task == 0 {
			// A line-4 instance built by extending the Figure 3 hard
			// instance with a fourth relation fanning out of D.
			name = "line-4 hard"
			base := gen.YannakakisHard(s.IN/2, 4*s.IN)
			r4 := baseFanOut(base, 4)
			q := hypergraph.LineK(4)
			in = core.NewInstance(q, base.Rels[0], base.Rels[1], base.Rels[2], r4)
			order = []int{0, 1, 2, 3}
		} else {
			// Domain size ≈ size/4 keeps the expected per-value fanout at
			// 4, so OUT ≈ 64·size stays materializable by the oracle.
			name = "line-4 uniform"
			rng := mpc.NewChildRng(s.Seed, task)
			in = gen.LineKUniform(rng, 4, s.IN/4, maxInt(s.IN/16, 2))
		}
		want := oracleCount(in)
		yjob := s.job(in, want)
		yjob.Order = order
		ly := run("yannakakis", yjob).Load
		la := run("acyclic", s.job(in, want)).Load
		return [][]any{{name, in.IN(), want, ly, la,
			fmt.Sprintf("%.1fx", float64(ly)/float64(maxInt(la, 1)))}}
	})
	return t
}

// baseFanOut builds R4(D, E) fanning every D value of the hard instance
// out to `fan` E values — keeping OUT large while the intermediate
// structure stays adversarial.
func baseFanOut(base *core.Instance, fan int) *relation.Relation {
	r := relation.New("R4", relation.NewSchema(4, 5))
	seen := map[relation.Value]bool{}
	pos := base.Rels[2].Schema.Pos(4)
	for _, tu := range base.Rels[2].Tuples {
		d := tu[pos]
		if seen[d] {
			continue
		}
		seen[d] = true
		for e := 0; e < fan; e++ {
			r.Add(d, relation.Value(e))
		}
	}
	return r
}

// E4Aggregate measures the Section 6 pipeline: COUNT(*) GROUP BY on a
// line-3 whose full join is enormous but whose aggregate output is tiny —
// LinearAggroYannakakis keeps the load linear. The aggregate and the
// full-join baseline run as two parallel tasks over the shared (read-only)
// instance.
func E4Aggregate(s Scale) *Table {
	t := &Table{
		Title: "Section 6 — free-connex join-aggregate (COUNT(*) GROUP BY B,C on line-3)",
		Note:  "|Q(R)| is huge; OUT = |Q_y(R)| is small; load must track IN/p + √(IN·OUT_y/p)",
		Header: []string{"IN", "|Q(R)|", "OUT_y", "L(aggregate)", "L(full join §5.1)",
			"linear IN/p", "L/linear"},
	}
	rng := mpc.NewChildRng(s.Seed, 0)
	in := gen.Line3Random(rng, s.IN, 32*s.IN)
	y := hypergraph.NewAttrSet(2, 3)

	// res[0] = {OUT_y, L(aggregate)}, res[1] = {|Q(R)|, L(full join)}.
	// Only the full-join task needs the naive oracle, so it runs there,
	// overlapped with the aggregate run.
	res := s.rows(2, func(task int) [][]any {
		if task == 0 {
			agg := run("aggregate", engine.Job{In: in, P: s.P, Seed: s.Seed, GroupBy: y})
			return [][]any{{int64(agg.Dist.Size()), agg.Load}}
		}
		fullOut := oracleCount(in)
		lFull := run("acyclic", s.job(in, fullOut)).Load
		return [][]any{{fullOut, lFull}}
	})
	outY, lAgg := res[0][0].(int64), res[0][1].(int)
	fullOut, lFull := res[1][0].(int64), res[1][1].(int)
	lin := stats.Linear(in.IN(), s.P)
	t.Add(in.IN(), fullOut, outY, lAgg, lFull, lin, stats.Ratio(lAgg, lin))
	return t
}

// AblationTau sweeps the heavy/light threshold of the line-3 algorithm
// around the paper's balance point τ* = √(OUT/IN) (equations 4 and 5).
// The instance is built once; the sweep points run as parallel tasks over
// the shared (read-only) instance.
func AblationTau(s Scale) *Table {
	rng := mpc.NewChildRng(s.Seed, 0)
	in := gen.Line3Random(rng, s.IN, 16*s.IN)
	want := oracleCount(in)
	tauStar := maxInt(1, primitives.IsqrtInt(int(want)/maxInt(in.IN(), 1)))
	t := &Table{
		Title: "Ablation — line-3 heavy/light threshold τ (eqs. 4–5 balance)",
		Note: fmt.Sprintf("p=%d IN=%d OUT=%d; paper's τ* = √(OUT/IN) = %d",
			s.P, in.IN(), want, tauStar),
		Header: []string{"τ", "L(Line3)", "vs τ*"},
	}
	var taus []int
	seen := map[int]bool{}
	for _, tau := range []int{1, tauStar / 4, tauStar, tauStar * 4, tauStar * 16} {
		if tau < 1 || seen[tau] {
			continue
		}
		seen[tau] = true
		taus = append(taus, tau)
	}
	s.addRows(t, len(taus), func(task int) [][]any {
		tau := taus[task]
		job := s.job(in, want)
		job.Tau = int64(tau)
		l := run("line3", job).Load
		mark := ""
		if tau == tauStar {
			mark = "← τ*"
		}
		return [][]any{{tau, l, mark}}
	})
	return t
}

// AblationGrid reruns the paper's Section 3.2 Case-2 example: the
// interleaved Cartesian grid versus a two-step approach that materializes
// the sub-join (represented by Yannakakis, which must shuffle the
// intermediate result). The two plans run as parallel tasks.
func AblationGrid(s Scale) *Table {
	p := s.P
	n := s.IN
	q := hypergraph.New(
		hypergraph.NewAttrSet(1),
		hypergraph.NewAttrSet(2, 3),
		hypergraph.NewAttrSet(3, 4),
	)
	r0 := relation.New("R0", relation.NewSchema(1))
	r0.Add(42)
	r1 := relation.New("R1", relation.NewSchema(2, 3))
	for i := 0; i < n; i++ {
		r1.Add(relation.Value(i), 0)
	}
	r2 := relation.New("R2", relation.NewSchema(3, 4))
	for i := 0; i < p; i++ {
		r2.Add(0, relation.Value(i))
	}
	in := core.NewInstance(q, r0, r1, r2)
	want := oracleCount(in)
	red := core.NaiveSemiJoinReduce(in)
	li := core.LInstance(red, p)
	t := &Table{
		Title: "Ablation — §3.2 Case 2 grid vs two-step (|Q1|=1, |Q2|=p·IN)",
		Note: fmt.Sprintf("p=%d; L_instance=%d; a two-step plan must materialize Q2 (≈%d load)",
			p, li, n/p*p/p+primitives.IsqrtInt(n*p/p)),
		Header: []string{"algorithm", "IN", "OUT", "L", "L/L_inst"},
	}
	s.addRows(t, 2, func(task int) [][]any {
		if task == 0 {
			lg := run("rhier", s.job(in, want)).Load
			return [][]any{{"RHier grid (§3.2)", in.IN(), want, lg, stats.Ratio(lg, float64(li))}}
		}
		job := s.job(in, want)
		job.Order = []int{1, 2, 0}
		ly := run("yannakakis", job).Load
		return [][]any{{"two-step (materialize Q2)", in.IN(), want, ly, stats.Ratio(ly, float64(li))}}
	})
	return t
}
