package harness

import (
	"strings"
	"testing"
)

// smallScale keeps harness tests fast while exercising every experiment.
func smallScale() Scale { return Scale{P: 16, IN: 1 << 10, Seed: 7} }

func TestTableRender(t *testing.T) {
	tab := &Table{Title: "T", Header: []string{"a", "bb"}, Rows: nil}
	tab.Add(1, 2.5)
	tab.Add("xyz", 0.001)
	out := tab.Render()
	if !strings.Contains(out, "== T ==") || !strings.Contains(out, "xyz") {
		t.Errorf("render missing content:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title + header + separator + 2 rows
		t.Errorf("render lines = %d, want 5", len(lines))
	}
}

func TestFig1Classification(t *testing.T) {
	tab := Fig1Classification(smallScale())
	if len(tab.Rows) < 10 {
		t.Fatalf("catalog rows = %d", len(tab.Rows))
	}
	for _, r := range tab.Rows {
		if r[len(r)-1] == "unknown" {
			t.Errorf("unclassified query %v", r[0])
		}
	}
}

func TestFig2Forests(t *testing.T) {
	out := Fig2Forests()
	if !strings.Contains(out, "x1") || !strings.Contains(out, "Q2") {
		t.Errorf("forest output incomplete:\n%s", out)
	}
}

func TestFig3JoinOrder(t *testing.T) {
	tab := Fig3JoinOrder(smallScale())
	if len(tab.Rows) != 8 {
		t.Fatalf("rows = %d, want 8", len(tab.Rows))
	}
}

func TestFig4Line3Sweep(t *testing.T) {
	tab := Fig4Line3Sweep(smallScale())
	if len(tab.Rows) != 6 {
		t.Fatalf("rows = %d, want 6", len(tab.Rows))
	}
}

func TestFig5JoinTree(t *testing.T) {
	out := Fig5JoinTree()
	if !strings.Contains(out, "e0=ABDGH'") {
		t.Errorf("join tree missing e0:\n%s", out)
	}
}

func TestFig6TriangleSweep(t *testing.T) {
	tab := Fig6TriangleSweep(smallScale())
	if len(tab.Rows) != 5 {
		t.Fatalf("rows = %d, want 5", len(tab.Rows))
	}
}

func TestTable1Loads(t *testing.T) {
	tab := Table1Loads(smallScale())
	if len(tab.Rows) < 9 {
		t.Fatalf("rows = %d, want ≥ 9", len(tab.Rows))
	}
}

func TestE2E3E4E5(t *testing.T) {
	s := smallScale()
	if tab := E2RHierClosedForm(s); len(tab.Rows) != 4 {
		t.Errorf("E2 rows = %d", len(tab.Rows))
	}
	if tab := E3AcyclicVsYannakakis(s); len(tab.Rows) != 2 {
		t.Errorf("E3 rows = %d", len(tab.Rows))
	}
	if tab := E4Aggregate(s); len(tab.Rows) != 1 {
		t.Errorf("E4 rows = %d", len(tab.Rows))
	}
	if tab := E5InstanceGap(Scale{P: 16, IN: 512, Seed: 7}); len(tab.Rows) != 3 {
		t.Errorf("E5 rows = %d", len(tab.Rows))
	}
}

func TestAblations(t *testing.T) {
	s := smallScale()
	if tab := AblationTau(s); len(tab.Rows) < 3 {
		t.Errorf("tau ablation rows = %d", len(tab.Rows))
	}
	if tab := AblationGrid(s); len(tab.Rows) != 2 {
		t.Errorf("grid ablation rows = %d", len(tab.Rows))
	}
}
