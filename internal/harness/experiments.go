package harness

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/gen"
	"repro/internal/hypergraph"
	"repro/internal/mpc"
	"repro/internal/runtime"
	"repro/internal/stats"
)

// Scale controls experiment sizes; DefaultScale matches the recorded
// tables (see DESIGN.md's per-experiment index).
type Scale struct {
	P    int // servers
	IN   int // base input size
	Seed uint64
	// Workers caps the experiment scheduler's parallelism: 0 means one
	// worker per CPU, 1 reproduces the serial harness. Tables are
	// byte-identical for every value — tasks derive their RNG streams
	// from (Seed, task index), never from shared state.
	Workers int
}

// DefaultScale is used by the experiments command and benchmarks.
func DefaultScale() Scale { return Scale{P: 64, IN: 1 << 14, Seed: 2019} }

// pool returns the scheduler for this scale.
func (s Scale) pool() *runtime.Pool { return runtime.NewPool(s.Workers) }

// rows runs n independent tasks on s's scheduler and returns every task's
// rows flattened in task order, so the assembled table does not depend on
// the worker count. Tasks must not share mutable state; each builds its
// instances from mpc.ChildSeed(s.Seed, task) when randomness is needed.
func (s Scale) rows(n int, fn func(task int) [][]any) [][]any {
	chunks := runtime.Map(s.pool(), n, fn)
	var out [][]any
	for _, ch := range chunks {
		out = append(out, ch...)
	}
	return out
}

// addRows runs n tasks on s's scheduler and appends their rows to t in
// task order.
func (s Scale) addRows(t *Table, n int, fn func(task int) [][]any) {
	for _, r := range s.rows(n, fn) {
		t.Add(r...)
	}
}

// run executes the named engine algorithm and returns the measured Result;
// every engine failure — including an output count disagreeing with the
// oracle — is a harness bug and panics.
func run(algo string, job engine.Job) engine.Result {
	res, err := engine.RunNamed(algo, job)
	if err != nil {
		panic(fmt.Sprintf("harness: %v", err))
	}
	return res
}

// job returns the scale's base job for one instance: the experiments all
// run on s.P servers with s.Seed, verifying against the shared oracle
// count (want < 0 skips verification, as for algorithms whose emitted
// cardinality is not the full join).
func (s Scale) job(in *core.Instance, want int64) engine.Job {
	return engine.Job{In: in, P: s.P, Seed: s.Seed, Want: want, CheckWant: want >= 0}
}

// Fig1 cost-dispatch cell: every catalog query gets a small uniform
// instance (fig1N tuples per relation over a fig1Dom-value domain — small
// enough that the naive oracle on the 3-way Cartesian product stays
// cheap), the engine dispatches on predicted load with the oracle count as
// the OUT estimate, and a run whose measured load exceeds mispredSlack ×
// prediction is flagged MISPRED in the table.
const (
	fig1N        = 64
	fig1Dom      = 6
	mispredSlack = 8.0
)

// dispatchFlag renders the predicted-vs-actual verdict for one run.
func dispatchFlag(load int, predicted float64) string {
	if stats.Ratio(load, predicted) > mispredSlack {
		return "MISPRED"
	}
	return "ok"
}

// Fig1Classification regenerates Figure 1: the classification of the query
// catalog with witnesses for each strict inclusion, the algorithm the
// engine routes each class to structurally, and — on a uniform instance
// per query — the cost-based pick with its predicted vs measured load.
func Fig1Classification(s Scale) *Table {
	t := &Table{
		Title: "Figure 1 — classification of joins (tall-flat ⊂ hierarchical ⊂ r-hierarchical ⊂ acyclic)",
		Note: fmt.Sprintf("p=%d; cost pick = argmin predicted load on a uniform instance (n=%d, dom=%d), OUT from the naive oracle; MISPRED = L > %.0f·pred",
			s.P, fig1N, fig1Dom, mispredSlack),
		Header: []string{"query", "acyclic", "r-hier", "hier", "tall-flat", "class", "engine",
			"cost pick", "pred L", "L", "L/pred", "dispatch"},
	}
	cat := hypergraph.Catalog()
	s.addRows(t, len(cat), func(task int) [][]any {
		e := cat[task]
		in := gen.ForQuery(mpc.NewChildRng(s.Seed, task), e.Q, fig1N, fig1Dom)
		res, err := engine.AutoRun(s.job(in, oracleCount(in)))
		if err != nil {
			panic(fmt.Sprintf("harness: fig1 %s: %v", e.Name, err))
		}
		return [][]any{{e.Name,
			e.Q.IsAcyclic(),
			e.Q.IsAcyclic() && e.Q.IsRHierarchical(),
			e.Q.IsHierarchical(),
			e.Q.IsTallFlat(),
			e.Q.Classify().String(),
			engine.Route(e.Q),
			res.Algorithm,
			res.Predicted,
			res.Load,
			stats.Ratio(res.Load, res.Predicted),
			dispatchFlag(res.Load, res.Predicted)}}
	})
	return t
}

// Fig2Forests renders the attribute forests of the paper's Q1 and Q2.
func Fig2Forests() string {
	out := "== Figure 2 — attribute forests ==\n"
	out += "Q1 (tall-flat):\n" + hypergraph.Q1TallFlat().AttributeForest().String()
	out += "Q2 (hierarchical):\n" + hypergraph.Q2Hierarchical().AttributeForest().String()
	return out
}

// Fig3JoinOrder regenerates the Figure 3 / Section 4.1 experiment: join
// order has asymptotic consequences in MPC, and on the doubled instance no
// order is good while the Section 4.2 decomposition is. One task per
// instance: the naive oracle dominates the cost, so each instance is
// generated and counted once and its four algorithms run inside the task.
func Fig3JoinOrder(s Scale) *Table {
	t := &Table{
		Title: "Figure 3 — join order in the MPC Yannakakis algorithm (line-3)",
		Note: fmt.Sprintf("p=%d; hard instance with OUT=8·IN; load = max tuples received by a server in a round",
			s.P),
		Header: []string{"instance", "algorithm", "IN", "OUT", "pred L", "load L", "L/pred", "L/(IN/p)", "bound tracked"},
	}
	algos := []struct {
		algo  string
		label string
		bound string
		order []int
	}{
		{"yannakakis", "Yannakakis (R1⋈R2)⋈R3", "OUT/p", []int{0, 1, 2}},
		{"yannakakis", "Yannakakis R1⋈(R2⋈R3)", "IN/p+√(OUT/p) or OUT/p", []int{2, 1, 0}},
		{"line3", "Line3 (§4.2)", "IN/p+√(IN·OUT/p)", nil},
		{"acyclic", "AcyclicJoin (§5.1)", "IN/p+√(IN·OUT/p)", nil},
	}
	families := []struct{ family, label string }{
		{"hard", "one-sided"},
		{"doubled", "doubled"},
	}
	s.addRows(t, len(families), func(task int) [][]any {
		f := families[task]
		in, err := gen.Build(f.family, nil, s.IN, 8*s.IN)
		if err != nil {
			panic(err)
		}
		want := oracleCount(in)
		inSize := in.IN()
		rows := make([][]any, 0, len(algos))
		for _, a := range algos {
			job := s.job(in, want)
			job.Order = a.order
			res := run(a.algo, job)
			rows = append(rows, []any{f.label, a.label, inSize, want, res.Predicted, res.Load,
				stats.Ratio(res.Load, res.Predicted),
				stats.Ratio(res.Load, stats.Linear(inSize, s.P)), a.bound})
		}
		return rows
	})
	return t
}

// Fig4Line3Sweep regenerates the Figure 4 experiment: the line-3 load as a
// function of OUT on the random lower-bound instance, against the paper's
// lower bound and the Yannakakis baseline. The three regimes of Section 4.3
// (OUT ≤ IN, IN < OUT ≤ p·IN, OUT > p·IN) are visible as the points where
// the winner changes. One task per sweep point, each on its own RNG stream.
func Fig4Line3Sweep(s Scale) *Table {
	t := &Table{
		Title: "Figure 4 — line-3 join on the random hard instance, OUT sweep",
		Note: fmt.Sprintf("p=%d, IN≈%d; LB = Ω(min{√(IN·OUT/(p·log IN)), IN/√p}) (Thm 6)",
			s.P, s.IN),
		Header: []string{"OUT/IN", "IN", "OUT", "L(Yann)", "L(Line3)", "L(Acyc §5)", "L(WC IN/√p)", "LB", "Line3/LB", "regime"},
	}
	factors := []int{0, 1, 4, 16, 64, 256}
	s.addRows(t, len(factors), func(task int) [][]any {
		f := factors[task]
		rng := mpc.NewChildRng(s.Seed, task)
		out := s.IN * f
		if f == 0 {
			out = s.IN / 4
		}
		in, err := gen.Build("random", rng, s.IN, out)
		if err != nil {
			panic(err)
		}
		want := oracleCount(in)
		inSize := in.IN()
		ly := run("yannakakis", s.job(in, want)).Load
		l3 := run("line3", s.job(in, want)).Load
		la := run("acyclic", s.job(in, want)).Load
		lw := run("line3wc", s.job(in, want)).Load
		lb := stats.Line3Lower(inSize, want, s.P)
		regime := "OUT≤IN: linear"
		switch {
		case want > int64(s.P)*int64(inSize):
			regime = "OUT>p·IN: IN/√p"
		case want > int64(inSize):
			regime = "IN<OUT≤p·IN: √(IN·OUT/p)"
		}
		return [][]any{{fmt.Sprintf("%d", f), inSize, want, ly, l3, la, lw, lb,
			stats.Ratio(l3, lb), regime}}
	})
	return t
}

// Fig5JoinTree prints the join tree and the e0 selection for the Figure 5
// example query.
func Fig5JoinTree() string {
	q := hypergraph.Fig5Example()
	tree, _ := q.GYO()
	out := "== Figure 5 — join tree of the example acyclic query ==\n"
	var walk func(u, d int)
	names := []string{"e0=ABDGH'", "e1=ABC", "e2=BD", "e3=B", "e4=ADE", "e5=DF", "e6=HH'"}
	walk = func(u, d int) {
		for i := 0; i < d; i++ {
			out += "  "
		}
		out += names[u] + "\n"
		for _, c := range tree.Children[u] {
			walk(c, d+1)
		}
	}
	walk(tree.Root, 0)
	return out
}

// Fig6TriangleSweep regenerates the Section 7 experiment: the triangle
// join's measured load against the output-sensitive lower bound
// Ω̃(min{IN/p + OUT/p, IN/p^{2/3}}), plus the acyclic line-3 load at the
// same IN and OUT to exhibit the ≥ √(OUT/IN) separation.
func Fig6TriangleSweep(s Scale) *Table {
	t := &Table{
		Title: "Figure 6 / Theorem 11 — triangle join, OUT sweep",
		Note: fmt.Sprintf("p=%d, IN≈%d; triangle LB = Ω̃(min{IN/p+OUT/p, IN/p^(2/3)})",
			s.P, s.IN),
		Header: []string{"OUT/IN", "IN", "OUT", "L(HyperCube△)", "LB(△)", "L/LB", "L(Line3 same IN,OUT)", "separation"},
	}
	factors := []int{1, 2, 4, 8, 16}
	s.addRows(t, len(factors), func(task int) [][]any {
		f := factors[task]
		rng := mpc.NewChildRng(s.Seed, task)
		in, err := gen.Build("triangle", rng, s.IN, s.IN*f)
		if err != nil {
			panic(err)
		}
		want := oracleCount(in)
		inSize := in.IN()
		lt := run("triangle", s.job(in, want)).Load
		lb := stats.TriangleLower(inSize, want, s.P)
		// An acyclic join with the same IN/OUT for the separation column.
		l3in, err := gen.Build("random", rng, inSize, int(want))
		if err != nil {
			panic(err)
		}
		l3want := oracleCount(l3in)
		l3 := run("line3", s.job(l3in, l3want)).Load
		return [][]any{{fmt.Sprintf("%d", f), inSize, want, lt, lb, stats.Ratio(lt, lb), l3,
			fmt.Sprintf("%.1fx", float64(lt)/float64(maxInt(l3, 1)))}}
	})
	return t
}

// Table1Loads regenerates Table 1 as measurements: each join class's
// algorithms on a representative skewed instance, with the bound each is
// supposed to track. One task per join class.
func Table1Loads(s Scale) *Table {
	t := &Table{
		Title: "Table 1 — measured load per join class (skewed representative instances)",
		Note: fmt.Sprintf("p=%d; L_inst = instance lower bound (eq. 2); bounds per paper",
			s.P),
		Header: []string{"class", "instance", "algorithm", "IN", "OUT", "L", "bound", "L/bound"},
	}
	p := s.P
	instBound := func(in *core.Instance) float64 {
		red := core.NaiveSemiJoinReduce(in)
		return float64(in.IN())/float64(p) + float64(core.LInstance(red, p))
	}
	sections := []func(task int) [][]any{
		// Tall-flat: keyed product with one hub.
		func(task int) [][]any {
			tf, err := gen.Build("tallflat", nil, s.IN, 0)
			if err != nil {
				panic(err)
			}
			tfOut := oracleCount(tf)
			tfB := instBound(tf)
			l1 := run("binhc", s.job(tf, tfOut)).Load
			l2 := run("rhier", s.job(tf, tfOut)).Load
			return [][]any{
				{"tall-flat", "hub keyed product", "BinHC (1 round)", tf.IN(), tfOut, l1, tfB, stats.Ratio(l1, tfB)},
				{"tall-flat", "hub keyed product", "RHier (§3.2)", tf.IN(), tfOut, l2, tfB, stats.Ratio(l2, tfB)},
			}
		},
		// r-hierarchical without dangling tuples.
		func(task int) [][]any {
			rng := mpc.NewChildRng(s.Seed, task)
			rh, err := gen.Build("rhier", rng, s.IN, 0)
			if err != nil {
				panic(err)
			}
			rhOut := oracleCount(rh)
			rhB := instBound(rh)
			l1 := run("binhc", s.job(rh, rhOut)).Load
			l2 := run("rhier", s.job(rh, rhOut)).Load
			return [][]any{
				{"r-hier (no dangling)", "hub star", "BinHC (1 round)", rh.IN(), rhOut, l1, rhB, stats.Ratio(l1, rhB)},
				{"r-hier (no dangling)", "hub star", "RHier (§3.2)", rh.IN(), rhOut, l2, rhB, stats.Ratio(l2, rhB)},
			}
		},
		// Hierarchical with dangling tuples (the one-round barrier, [26]):
		// a fake hub whose degree product looks like fakeDeg² but whose true
		// output is zero — degree statistics cannot see it, a semi-join can.
		func(task int) [][]any {
			rhd := gen.Q2FakeHub(s.IN/8, s.IN/2)
			rhdOut := oracleCount(rhd)
			rhdB := instBound(rhd)
			l1 := run("binhc", s.job(rhd, rhdOut)).Load
			reduced := s.job(rhd, rhdOut)
			reduced.Reduce = true
			l2 := run("binhc", reduced).Load
			l3 := run("rhier", s.job(rhd, rhdOut)).Load
			return [][]any{
				{"hier (dangling)", "Q2 + fake hub", "BinHC (1 round)", rhd.IN(), rhdOut, l1, rhdB, stats.Ratio(l1, rhdB)},
				{"hier (dangling)", "Q2 + fake hub", "reduce+BinHC", rhd.IN(), rhdOut, l2, rhdB, stats.Ratio(l2, rhdB)},
				{"hier (dangling)", "Q2 + fake hub", "RHier (§3.2)", rhd.IN(), rhdOut, l3, rhdB, stats.Ratio(l3, rhdB)},
			}
		},
		// Acyclic non-r-hierarchical: line-3 at OUT = 8·IN.
		func(task int) [][]any {
			rng := mpc.NewChildRng(s.Seed, task)
			l3in, err := gen.Build("random", rng, s.IN, 8*s.IN)
			if err != nil {
				panic(err)
			}
			l3Out := oracleCount(l3in)
			l3B := stats.Acyclic(l3in.IN(), l3Out, p)
			yB := stats.Yannakakis(l3in.IN(), l3Out, p)
			l1 := run("yannakakis", s.job(l3in, l3Out)).Load
			l2 := run("line3", s.job(l3in, l3Out)).Load
			l3l := run("acyclic", s.job(l3in, l3Out)).Load
			return [][]any{
				{"acyclic", "random line-3", "Yannakakis", l3in.IN(), l3Out, l1, yB, stats.Ratio(l1, yB)},
				{"acyclic", "random line-3", "Line3 (§4.2)", l3in.IN(), l3Out, l2, l3B, stats.Ratio(l2, l3B)},
				{"acyclic", "random line-3", "AcyclicJoin (§5.1)", l3in.IN(), l3Out, l3l, l3B, stats.Ratio(l3l, l3B)},
			}
		},
		// Triangle.
		func(task int) [][]any {
			rng := mpc.NewChildRng(s.Seed, task)
			tr, err := gen.Build("triangle", rng, s.IN, 4*s.IN)
			if err != nil {
				panic(err)
			}
			trOut := oracleCount(tr)
			trB := stats.TriangleWorstCase(tr.IN(), p)
			l := run("triangle", s.job(tr, trOut)).Load
			return [][]any{
				{"triangle (cyclic)", "random triangle", "HyperCube△ [24]", tr.IN(), trOut, l, trB, stats.Ratio(l, trB)},
			}
		},
	}
	s.addRows(t, len(sections), func(task int) [][]any {
		return sections[task](task)
	})
	return t
}

// E5InstanceGap demonstrates Corollaries 2/3: an instance with
// L_instance = O(IN/p) on which every algorithm must pay Ω̃(IN/√p) — the
// impossibility of instance optimality beyond r-hierarchical joins.
// One task per server count.
func E5InstanceGap(s Scale) *Table {
	t := &Table{
		Title: "Corollary 2/3 — instance-optimality gap on line-3 (OUT = p·IN)",
		Note:  "L_instance = O(IN/p) yet every algorithm pays Ω̃(IN/√p)",
		Header: []string{"p", "IN", "OUT", "L_inst(eq.2)", "IN/√p", "L(Line3)", "L(Yann)",
			"L(Line3)/L_inst"},
	}
	ps := []int{16, 64, 256}
	s.addRows(t, len(ps), func(task int) [][]any {
		p := ps[task]
		rng := mpc.NewChildRng(s.Seed, task)
		// OUT = p·IN grows with p; scale IN down so the oracle's full
		// materialization stays bounded.
		inSize := s.IN * 16 / p
		in, err := gen.Build("random", rng, inSize, p*inSize)
		if err != nil {
			panic(err)
		}
		want := oracleCount(in)
		red := core.NaiveSemiJoinReduce(in)
		li := core.LInstance(red, p)
		job := engine.Job{In: in, P: p, Seed: s.Seed, Want: want, CheckWant: true}
		l3 := run("line3", job).Load
		ly := run("yannakakis", job).Load
		return [][]any{{p, in.IN(), want, li, stats.WorstCaseLine(in.IN(), p), l3, ly,
			stats.Ratio(l3, float64(li))}}
	})
	return t
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
