package harness

import (
	"testing"

	"repro/internal/engine"
	"repro/internal/hypergraph"
)

// observedLoads runs every registered algorithm on its home instance at
// input size n and cluster width p, returning name → Result.Load.
func observedLoads(t *testing.T, n, p int) map[string]int {
	t.Helper()
	homes := roundsHomes(n)
	out := map[string]int{}
	for _, a := range engine.All() {
		in := homes[a.Name()]
		if in == nil {
			t.Errorf("%s: no home instance; extend roundsHomes", a.Name())
			continue
		}
		job := engine.Job{In: in, P: p, Seed: 2019}
		if a.Name() == "aggregate" {
			job.GroupBy = hypergraph.NewAttrSet(2, 3)
		}
		res, err := engine.Run(a, job)
		if err != nil {
			t.Errorf("%s: %v", a.Name(), err)
			continue
		}
		out[a.Name()] = res.Load
	}
	return out
}

// TestObservedLoadRespectsDeclaredClass is the dynamic half of the load
// contract: the repoload analyzer proves each adapter's run body cannot
// reach charges beyond its declared load class, and this test checks the
// declaration against what the simulator actually charged. Widening the
// cluster 8× at fixed IN must shed per-server load consistent with the
// class: a perP algorithm (load ~ IN/p + OUT/p) sheds close to the full
// factor (≥ 3× guards against the O(p) coordinator/directory terms that
// ride along), a frac algorithm (IN/√p, IN/p^(2/3), L_instance) sheds a
// smaller but still real factor, and a linear algorithm — one that gathers
// or broadcasts the whole input by design — promises nothing, so there is
// nothing to pin beyond the static check. The test also closes the tag
// loop at runtime: every registered adapter must declare one of the three
// classes the repoload analyzer accepts, carried into Result.LoadClass.
func TestObservedLoadRespectsDeclaredClass(t *testing.T) {
	const in = 1 << 12
	const pSmall, pLarge = 4, 32
	atSmall := observedLoads(t, in, pSmall)
	atLarge := observedLoads(t, in, pLarge)

	for _, a := range engine.All() {
		name := a.Name()
		class := engine.LoadClassOf(a)
		if class == "" {
			t.Errorf("%s: no declared load class (load field missing?)", name)
			continue
		}
		s, okS := atSmall[name]
		l, okL := atLarge[name]
		if !okS || !okL {
			continue // run failure already reported
		}
		switch class {
		case "perP":
			if l*3 > s {
				t.Errorf("%s: declared perP load but widening p %d→%d only shrank load %d→%d (want ≥ 3×)",
					name, pSmall, pLarge, s, l)
			}
		case "frac":
			if l >= s {
				t.Errorf("%s: declared frac load but widening p %d→%d did not shrink load %d→%d",
					name, pSmall, pLarge, s, l)
			}
		case "linear":
			// A gather or broadcast keeps the whole input on one server at
			// any width; flat load is exactly what the declaration admits.
		default:
			t.Errorf("%s: declared load class %q is not perP, frac, or linear", name, class)
		}
	}
}
