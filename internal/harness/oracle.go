package harness

import (
	"sync"

	"repro/internal/core"
)

// The naive oracle is the dominant cost of most experiment cells at large
// IN, and the harness runs many cells over the SAME instance: every
// (family, size, seed) cell is rebuilt deterministically from its child
// seed, and the full matrix is rendered repeatedly (tests render it at
// several worker counts back to back). oracleCount memoizes
// core.NaiveCount behind a content fingerprint so each distinct instance
// pays for the sequential join exactly once per process.
//
// The cache key is a 128-bit fingerprint of the instance's query shape and
// relation contents rather than the (family, size, seed) triple that built
// it: generators share RNG streams across builds (one stream can produce
// several instances in sequence), so identical triples do not imply
// identical instances — but identical contents do, and the fingerprint is
// O(IN) to compute against the oracle's super-linear join.
var oracleCache sync.Map // [2]uint64 → int64

// oracleCount returns |Q(R)| via the memoized naive oracle.
func oracleCount(in *core.Instance) int64 {
	k := fingerprint(in)
	if v, ok := oracleCache.Load(k); ok {
		return v.(int64)
	}
	n := core.NaiveCount(in)
	oracleCache.Store(k, n)
	return n
}

// fingerprint hashes the query hypergraph and every relation's schema and
// tuples into two independent 64-bit streams (FNV-1a and a splitmix
// accumulator), read in deterministic order. Annotations are excluded:
// they cannot change the join's cardinality.
func fingerprint(in *core.Instance) [2]uint64 {
	var f fp
	f.word(uint64(len(in.Q.Edges)))
	for _, e := range in.Q.Edges {
		f.word(uint64(len(e)))
		for _, a := range e {
			f.word(uint64(int64(a)))
		}
	}
	for _, r := range in.Rels {
		f.word(uint64(len(r.Schema)))
		for _, a := range r.Schema {
			f.word(uint64(int64(a)))
		}
		f.word(uint64(r.Size()))
		for _, t := range r.Tuples {
			for _, v := range t {
				f.word(uint64(int64(v)))
			}
		}
	}
	return [2]uint64{f.a, f.b}
}

// fp is a pair of independent streaming 64-bit hashes.
type fp struct{ a, b uint64 }

func (f *fp) word(x uint64) {
	f.a = (f.a ^ x) * 0x100000001b3
	f.a ^= f.a >> 29
	f.b += x*0x9e3779b97f4a7c15 + 0x632be59bd9b4e019
	f.b ^= f.b >> 31
	f.b *= 0x94d049bb133111eb
}
