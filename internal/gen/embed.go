package gen

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/hypergraph"
	"repro/internal/relation"
)

// EmbedLine3Hard implements the Theorem 8 construction: given any acyclic
// but non-r-hierarchical query Q, it finds a minimal path of length 3
// (x1, x2, x3, x4) (Lemma 2) and builds an instance R' of Q whose join
// results are exactly those of the line-3 hard instance on the path's
// attributes — every other attribute has a singleton domain. Consequently
// the line-3 lower bound Ω̃(min{√(IN·OUT/p), IN/√p}) transfers to Q.
//
// The line-3 instance embedded is YannakakisHard(n, out); swap in
// Line3Random for the randomized construction.
func EmbedLine3Hard(q *hypergraph.Hypergraph, n, out int) *core.Instance {
	path, ok := q.MinimalPath3()
	if !ok {
		panic(fmt.Sprintf("gen: query %v has no minimal path of length 3 (it is r-hierarchical)", q))
	}
	base := YannakakisHard(n, out)
	return embedOnPath(q, path, base)
}

// embedOnPath builds R' per the three cases of Section 5.2:
//  1. edges disjoint from the path hold one all-zero tuple;
//  2. edges meeting the path in one attribute x_i enumerate dom(x_i);
//  3. edges meeting it in {x_i, x_{i+1}} replicate R_i's tuple pairs.
//
// Minimality of the path guarantees no edge meets it in a non-consecutive
// pair, so the case analysis is exhaustive.
func embedOnPath(q *hypergraph.Hypergraph, path [4]relation.Attr, base *core.Instance) *core.Instance {
	pathSet := hypergraph.NewAttrSet(path[:]...)
	idx := func(a relation.Attr) int {
		for i, x := range path {
			if x == a {
				return i
			}
		}
		return -1
	}
	// Domains of the path attributes, read off the base instance.
	doms := make([]map[relation.Value]bool, 4)
	for i := range doms {
		doms[i] = map[relation.Value]bool{}
	}
	collect := func(r *relation.Relation, pa, pb int, basePosA, basePosB int) {
		for _, t := range r.Tuples {
			doms[pa][t[basePosA]] = true
			doms[pb][t[basePosB]] = true
		}
	}
	collect(base.Rels[0], 0, 1, 0, 1)
	collect(base.Rels[1], 1, 2, 0, 1)
	collect(base.Rels[2], 2, 3, 0, 1)

	rels := make([]*relation.Relation, len(q.Edges))
	for ei, e := range q.Edges {
		schema := e.Schema()
		r := relation.New(fmt.Sprintf("R%d", ei), schema)
		inter := e.Intersect(pathSet)
		switch len(inter) {
		case 0:
			// Case 1: one tuple over singleton domains.
			r.Add(make([]relation.Value, len(schema))...)
		case 1:
			// Case 2: one tuple per domain value of the path attribute.
			pi := idx(inter[0])
			pos := schema.Pos(inter[0])
			for v := range doms[pi] {
				t := make([]relation.Value, len(schema))
				t[pos] = v
				r.Add(t...)
			}
		case 2:
			// Case 3: consecutive pair {x_i, x_{i+1}} — copy R_i's pairs.
			i, j := idx(inter[0]), idx(inter[1])
			if j < i {
				i, j = j, i
			}
			if j != i+1 {
				panic("gen: minimal path violated — non-consecutive pair in one edge")
			}
			src := base.Rels[i]
			posA := schema.Pos(path[i])
			posB := schema.Pos(path[i+1])
			for _, st := range src.Tuples {
				t := make([]relation.Value, len(schema))
				t[posA] = st[0]
				t[posB] = st[1]
				r.Add(t...)
			}
		default:
			panic("gen: edge contains ≥3 path attributes — path not minimal")
		}
		rels[ei] = r.Dedup()
	}
	return core.NewInstance(q, rels...)
}
