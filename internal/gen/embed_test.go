package gen

import (
	"testing"

	"repro/internal/core"
	"repro/internal/hypergraph"
	"repro/internal/mpc"
)

func TestEmbedLine3HardPreservesOutput(t *testing.T) {
	// Theorem 8: the embedded instance's join size equals the line-3 hard
	// instance's, on any acyclic non-r-hierarchical query.
	n, out := 128, 1024
	base := YannakakisHard(n, out)
	baseOut := core.NaiveCount(base)
	for _, q := range []*hypergraph.Hypergraph{
		hypergraph.Line3(),
		hypergraph.LineK(4),
		hypergraph.Fig5Example(),
	} {
		emb := EmbedLine3Hard(q, n, out)
		if got := core.NaiveCount(emb); got != baseOut {
			t.Errorf("%v: embedded OUT = %d, want %d", q, got, baseOut)
		}
	}
}

func TestEmbedLine3HardPanicsOnRHierarchical(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("EmbedLine3Hard on r-hierarchical query did not panic")
		}
	}()
	EmbedLine3Hard(hypergraph.Q2Hierarchical(), 64, 256)
}

func TestEmbedLine3HardRunsThroughAcyclicJoin(t *testing.T) {
	// The embedded instance is a legal instance of its query: the §5.1
	// algorithm must compute it exactly, and its load must reflect the
	// embedded line-3 hardness (well above linear).
	n, out := 256, 4096
	q := hypergraph.Fig5Example()
	in := EmbedLine3Hard(q, n, out)
	want := core.NaiveCount(in)
	c := mpc.NewCluster(16)
	em := mpc.NewCountEmitter(in.Ring)
	core.AcyclicJoin(c, in, 1, em)
	if em.N != want {
		t.Fatalf("AcyclicJoin on embedded instance = %d, want %d", em.N, want)
	}
}
