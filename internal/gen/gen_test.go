package gen

import (
	"testing"

	"repro/internal/core"
	"repro/internal/mpc"
	"repro/internal/relation"
)

func TestUniformDistinct(t *testing.T) {
	rng := mpc.NewRng(1)
	r := Uniform(rng, "R", relation.NewSchema(1, 2), 100, 50)
	if r.Size() != 100 {
		t.Fatalf("size = %d", r.Size())
	}
	if r.Dedup().Size() != 100 {
		t.Error("Uniform produced duplicates")
	}
}

func TestUniformSmallDomainTerminates(t *testing.T) {
	rng := mpc.NewRng(2)
	r := Uniform(rng, "R", relation.NewSchema(1), 100, 3)
	if r.Size() > 3 {
		t.Errorf("more distinct tuples (%d) than the domain allows", r.Size())
	}
}

func TestZipfSkewShape(t *testing.T) {
	rng := mpc.NewRng(3)
	draw := Zipf(rng, 100)
	counts := map[relation.Value]int{}
	for i := 0; i < 10000; i++ {
		counts[draw()]++
	}
	if counts[0] <= counts[50] {
		t.Errorf("zipf not skewed: c0=%d c50=%d", counts[0], counts[50])
	}
}

func TestYannakakisHardShape(t *testing.T) {
	n, out := 256, 2048
	in := YannakakisHard(n, out)
	if got := core.NaiveCount(in); got != int64(out) {
		t.Errorf("OUT = %d, want %d", got, out)
	}
	if in.IN() < 2*n || in.IN() > 4*n {
		t.Errorf("IN = %d, want Θ(%d)", in.IN(), 3*n)
	}
	// The asymmetry that makes order matter: |R1 ⋈ R2| = OUT, |R2 ⋈ R3| = N.
	r12 := core.InMemoryJoinCount(in.Rels[:2])
	r23 := core.InMemoryJoinCount(in.Rels[1:])
	if r12 != int64(out) {
		t.Errorf("|R1⋈R2| = %d, want %d", r12, out)
	}
	if r23 != int64(n) {
		t.Errorf("|R2⋈R3| = %d, want %d", r23, n)
	}
}

func TestYannakakisHardDoubledNoGoodOrder(t *testing.T) {
	n, out := 128, 1024
	in := YannakakisHardDoubled(n, out)
	want := 2 * int64(out)
	if got := core.NaiveCount(in); got != want {
		t.Fatalf("OUT = %d, want %d", got, want)
	}
	// Both prefix intermediates are now Θ(OUT).
	r12 := core.InMemoryJoinCount(in.Rels[:2])
	r23 := core.InMemoryJoinCount(in.Rels[1:])
	if r12 < int64(out) || r23 < int64(out) {
		t.Errorf("doubled instance intermediates %d,%d should both be ≥ %d", r12, r23, out)
	}
}

func TestLine3RandomSizes(t *testing.T) {
	rng := mpc.NewRng(4)
	inSize, out := 3000, 30000
	in := Line3Random(rng, inSize, out)
	if in.IN() < inSize/2 || in.IN() > 2*inSize {
		t.Errorf("IN = %d, want ≈ %d", in.IN(), inSize)
	}
	got := core.NaiveCount(in)
	if got < int64(out)/3 || got > 3*int64(out) {
		t.Errorf("OUT = %d, want ≈ %d", got, out)
	}
}

func TestTriangleRandomSizes(t *testing.T) {
	rng := mpc.NewRng(5)
	inSize, out := 3000, 12000
	in := TriangleRandom(rng, inSize, out)
	if in.IN() < inSize/2 || in.IN() > 2*inSize {
		t.Errorf("IN = %d, want ≈ %d", in.IN(), inSize)
	}
	got := core.NaiveCount(in)
	if got < int64(out)/3 || got > 3*int64(out) {
		t.Errorf("OUT = %d, want ≈ %d", got, out)
	}
}

func TestRHierSkewed(t *testing.T) {
	rng := mpc.NewRng(6)
	in := RHierSkewed(rng, 2, 50, 100)
	want := int64(2*50 + 100)
	if got := core.NaiveCount(in); got != want {
		t.Errorf("OUT = %d, want %d", got, want)
	}
}

func TestCartesianSizes(t *testing.T) {
	in := CartesianSizes(3, 4, 5)
	if got := core.NaiveCount(in); got != 60 {
		t.Errorf("OUT = %d, want 60", got)
	}
}

func TestTallFlatSkewed(t *testing.T) {
	in := TallFlatSkewed(10, 5)
	if got := core.NaiveCount(in); got != 105 {
		t.Errorf("OUT = %d, want 105", got)
	}
	if in.Q.Classify().String() != "tall-flat" {
		t.Errorf("query should be tall-flat, got %v", in.Q.Classify())
	}
}

func TestWithDangling(t *testing.T) {
	in := CartesianSizes(2, 2)
	before := core.NaiveCount(in)
	aug := WithDangling(in, 0, 10)
	if aug.Rels[0].Size() != in.Rels[0].Size()+10 {
		t.Error("dangling tuples not added")
	}
	// Cartesian product: every tuple joins, so the count grows — use a
	// joined query instead to check join-invariance.
	_ = before
	rng := mpc.NewRng(7)
	l3 := LineKUniform(rng, 3, 30, 5)
	b := core.NaiveCount(l3)
	aug2 := WithDangling(l3, 1, 20)
	if core.NaiveCount(aug2) != b {
		t.Error("dangling injection changed the join result")
	}
}

func TestLineKUniform(t *testing.T) {
	rng := mpc.NewRng(8)
	in := LineKUniform(rng, 4, 25, 5)
	if len(in.Rels) != 4 {
		t.Fatalf("relations = %d", len(in.Rels))
	}
	if in.IN() != 100 {
		t.Errorf("IN = %d, want 100", in.IN())
	}
}
