// Package gen builds the instance families used throughout the paper:
// the hard instance for the Yannakakis algorithm (Figure 3) and its doubled
// variant, the random line-3 lower-bound instance (Figure 4), the random
// triangle instance (Figure 6), skewed r-hierarchical families, Cartesian
// products, and generic uniform/zipf workloads. All generators are
// deterministic given their seed.
package gen

import (
	"repro/internal/core"
	"repro/internal/hypergraph"
	"repro/internal/mpc"
	"repro/internal/primitives"
	"repro/internal/relation"
)

// Uniform returns a relation over the given schema with n distinct tuples,
// each attribute drawn uniformly from [0, dom).
func Uniform(rng *mpc.Rng, name string, schema relation.Schema, n, dom int) *relation.Relation {
	r := relation.New(name, schema)
	// capacity = dom^arity, saturating: the most distinct tuples possible.
	capacity := 1
	for range schema {
		if capacity > n {
			break
		}
		capacity *= dom
	}
	if n > capacity {
		n = capacity
	}
	seen := map[string]bool{}
	for len(r.Tuples) < n {
		t := make([]relation.Value, len(schema))
		for i := range t {
			t[i] = relation.Value(rng.Intn(dom))
		}
		k := relation.EncodeValues(t...)
		if seen[k] {
			continue
		}
		seen[k] = true
		r.Add(t...)
	}
	return r
}

// Zipf draws values from [0, dom) with a zipf-like distribution of exponent
// ~1 (value v with weight 1/(v+1)), producing natural skew.
func Zipf(rng *mpc.Rng, dom int) func() relation.Value {
	// Precompute cumulative weights.
	cum := make([]float64, dom)
	total := 0.0
	for v := 0; v < dom; v++ {
		total += 1.0 / float64(v+1)
		cum[v] = total
	}
	return func() relation.Value {
		x := rng.Float64() * total
		lo, hi := 0, dom-1
		for lo < hi {
			mid := (lo + hi) / 2
			if cum[mid] >= x {
				hi = mid
			} else {
				lo = mid + 1
			}
		}
		return relation.Value(lo)
	}
}

// YannakakisHard is the Figure 3 (top) instance for the line-3 join
// R1(A,B) ⋈ R2(B,C) ⋈ R3(C,D): |dom(A)| = OUT/N, |dom(B)| = N²/OUT,
// |dom(C)| = N, |dom(D)| = 1; R1 = dom(A)×dom(B), R2 a one-to-many mapping
// B→C, R3 = dom(C)×dom(D). IN = Θ(N) and |R1 ⋈ R2| = OUT while
// |R2 ⋈ R3| = O(N): the join order decides between Θ(OUT/p) and the
// optimal load.
func YannakakisHard(n, out int) *core.Instance {
	domA := out / n
	if domA < 1 {
		domA = 1
	}
	domB := n / domA
	if domB < 1 {
		domB = 1
	}
	r1 := relation.New("R1", relation.NewSchema(1, 2))
	for a := 0; a < domA; a++ {
		for b := 0; b < domB; b++ {
			r1.Add(relation.Value(a), relation.Value(b))
		}
	}
	r2 := relation.New("R2", relation.NewSchema(2, 3))
	for c := 0; c < n; c++ {
		r2.Add(relation.Value(c%domB), relation.Value(c))
	}
	r3 := relation.New("R3", relation.NewSchema(3, 4))
	for c := 0; c < n; c++ {
		r3.Add(relation.Value(c), 0)
	}
	return core.NewInstance(hypergraph.Line3(), r1, r2, r3)
}

// YannakakisHardDoubled is Figure 3 in full: two copies of the hard
// instance glued in opposite directions, so that NO single join order has a
// small intermediate result (Section 4.1).
func YannakakisHardDoubled(n, out int) *core.Instance {
	fwd := YannakakisHard(n, out)
	bwd := YannakakisHard(n, out)
	const shift = relation.Value(1) << 30
	r1 := fwd.Rels[0].Clone()
	r2 := fwd.Rels[1].Clone()
	r3 := fwd.Rels[2].Clone()
	// Mirror: R3 of the copy becomes new R1 tuples (reversed), etc.
	for _, t := range bwd.Rels[2].Tuples {
		r1.Add(t[1]+shift, t[0]+shift)
	}
	for _, t := range bwd.Rels[1].Tuples {
		r2.Add(t[1]+shift, t[0]+shift)
	}
	for _, t := range bwd.Rels[0].Tuples {
		r3.Add(t[1]+shift, t[0]+shift)
	}
	return core.NewInstance(hypergraph.Line3(), r1, r2, r3)
}

// Line3Random is the Figure 4 lower-bound construction: N = IN/3,
// τ = √(OUT/N), |dom(B)| = |dom(C)| = N/τ. R1 has τ tuples per B-value, R3
// has τ per C-value, and each (b, c) pair joins in R2 independently with
// probability τ²/N. E[IN] = Θ(IN), E[OUT] = Θ(OUT).
func Line3Random(rng *mpc.Rng, inSize, out int) *core.Instance {
	n := inSize / 3
	if n < 1 {
		n = 1
	}
	tau := primitives.Isqrt(int64(out) / int64(n))
	if tau < 1 {
		tau = 1
	}
	groups := n / int(tau)
	if groups < 1 {
		groups = 1
	}
	r1 := relation.New("R1", relation.NewSchema(1, 2))
	r3 := relation.New("R3", relation.NewSchema(3, 4))
	id := 0
	for b := 0; b < groups; b++ {
		for t := 0; t < int(tau); t++ {
			r1.Add(relation.Value(id), relation.Value(b))
			id++
		}
	}
	id = 0
	for c := 0; c < groups; c++ {
		for t := 0; t < int(tau); t++ {
			r3.Add(relation.Value(c), relation.Value(id))
			id++
		}
	}
	r2 := relation.New("R2", relation.NewSchema(2, 3))
	prob := float64(tau) * float64(tau) / float64(n)
	if prob > 1 {
		prob = 1
	}
	for b := 0; b < groups; b++ {
		for c := 0; c < groups; c++ {
			if rng.Float64() < prob {
				r2.Add(relation.Value(b), relation.Value(c))
			}
		}
	}
	return core.NewInstance(hypergraph.Line3(), r1, r2, r3)
}

// TriangleRandom is the Figure 6 construction: |dom(A)| = τ with
// τ = OUT/N, |dom(B)| = |dom(C)| = N/τ; R2 = dom(A)×dom(C) and
// R3 = dom(A)×dom(B) complete, R1(B,C) random with edge probability τ²/N.
func TriangleRandom(rng *mpc.Rng, inSize, out int) *core.Instance {
	n := inSize / 3
	if n < 1 {
		n = 1
	}
	tau := out / n
	if tau < 1 {
		tau = 1
	}
	side := n / tau
	if side < 1 {
		side = 1
	}
	r1 := relation.New("R1", relation.NewSchema(2, 3)) // (B,C)
	prob := float64(tau) * float64(tau) / float64(n)
	if prob > 1 {
		prob = 1
	}
	for b := 0; b < side; b++ {
		for c := 0; c < side; c++ {
			if rng.Float64() < prob {
				r1.Add(relation.Value(b), relation.Value(c))
			}
		}
	}
	r2 := relation.New("R2", relation.NewSchema(1, 3)) // (A,C)
	r3 := relation.New("R3", relation.NewSchema(1, 2)) // (A,B)
	for a := 0; a < tau; a++ {
		for v := 0; v < side; v++ {
			r2.Add(relation.Value(a), relation.Value(v))
			r3.Add(relation.Value(a), relation.Value(v))
		}
	}
	return core.NewInstance(hypergraph.Triangle(), r1, r2, r3)
}

// RHierSkewed builds an instance of R1(A) ⋈ R2(A,B) ⋈ R3(B) with hubCount
// hub A-values of degree hubDeg each plus a uniform tail, a natural skewed
// r-hierarchical workload.
func RHierSkewed(rng *mpc.Rng, hubCount, hubDeg, tail int) *core.Instance {
	r1 := relation.New("R1", relation.NewSchema(1))
	r2 := relation.New("R2", relation.NewSchema(1, 2))
	r3 := relation.New("R3", relation.NewSchema(2))
	next := 0
	for h := 0; h < hubCount; h++ {
		r1.Add(relation.Value(h))
		for d := 0; d < hubDeg; d++ {
			r2.Add(relation.Value(h), relation.Value(next))
			r3.Add(relation.Value(next))
			next++
		}
	}
	for i := 0; i < tail; i++ {
		a := relation.Value(hubCount + i)
		r1.Add(a)
		r2.Add(a, relation.Value(next))
		r3.Add(relation.Value(next))
		next++
	}
	return core.NewInstance(hypergraph.RHierSimple(), r1, r2, r3)
}

// Q2FakeHub builds the paper's hierarchical query Q2 = R1(x1,x2) ⋈
// R2(x1,x3,x4) ⋈ R3(x1,x3,x5) with `real` straightforward join values plus
// a "fake hub": one x1-value a* whose R2 and R3 blocks each have fakeDeg
// tuples — on DISJOINT x3 values, so the block's true output is zero while
// its degree product looks like fakeDeg². Degree statistics alone cannot
// tell: a one-round algorithm must budget ~fakeDeg²/L² servers for a*,
// forcing its load target up to ≈ fakeDeg/√(2p). This is the dangling-tuple
// barrier behind Table 1's one-round column ([26]); a semi-join
// preprocessing pass deletes the block and restores instance optimality.
func Q2FakeHub(real, fakeDeg int) *core.Instance {
	q := hypergraph.Q2Hierarchical()
	r1 := relation.New("R1", relation.NewSchema(1, 2))
	r2 := relation.New("R2", relation.NewSchema(1, 3, 4))
	r3 := relation.New("R3", relation.NewSchema(1, 3, 5))
	for a := 0; a < real; a++ {
		v := relation.Value(a)
		r1.Add(v, v)
		r2.Add(v, v, v)
		r3.Add(v, v, v)
	}
	const fakeA = relation.Value(1) << 35
	base2 := relation.Value(1) << 36
	base3 := relation.Value(1) << 37
	r1.Add(fakeA, 0)
	for i := 0; i < fakeDeg; i++ {
		r2.Add(fakeA, base2+relation.Value(i), relation.Value(i))
		r3.Add(fakeA, base3+relation.Value(i), relation.Value(i))
	}
	return core.NewInstance(q, r1, r2, r3)
}

// CartesianSizes builds a k-way Cartesian product instance with the given
// component sizes (the instance family of the paper's Section 1.3
// discussion: skew across components separates instance classes).
func CartesianSizes(sizes ...int) *core.Instance {
	rels := make([]*relation.Relation, len(sizes))
	var edges []hypergraph.AttrSet
	for i, n := range sizes {
		a := relation.Attr(i + 1)
		edges = append(edges, hypergraph.NewAttrSet(a))
		r := relation.New("R", relation.NewSchema(a))
		for j := 0; j < n; j++ {
			r.Add(relation.Value(j))
		}
		rels[i] = r
	}
	return core.NewInstance(hypergraph.New(edges...), rels...)
}

// TallFlatSkewed builds the tall-flat query R1(K) ⋈ R2(K,X) ⋈ R3(K,Y) with
// one hub key of degree hubDeg in both R2 and R3, plus a tail: the keyed
// product makes OUT ≈ hubDeg² + tail.
func TallFlatSkewed(hubDeg, tail int) *core.Instance {
	q := hypergraph.New(
		hypergraph.NewAttrSet(1),
		hypergraph.NewAttrSet(1, 2),
		hypergraph.NewAttrSet(1, 3),
	)
	r1 := relation.New("R1", relation.NewSchema(1))
	r2 := relation.New("R2", relation.NewSchema(1, 2))
	r3 := relation.New("R3", relation.NewSchema(1, 3))
	r1.Add(0)
	for d := 0; d < hubDeg; d++ {
		r2.Add(0, relation.Value(d))
		r3.Add(0, relation.Value(d))
	}
	for i := 1; i <= tail; i++ {
		r1.Add(relation.Value(i))
		r2.Add(relation.Value(i), relation.Value(hubDeg+i))
		r3.Add(relation.Value(i), relation.Value(hubDeg+i))
	}
	return core.NewInstance(q, r1, r2, r3)
}

// WithDangling injects danglers: extra tuples in relation idx whose join
// attributes use fresh values that match nothing else.
func WithDangling(in *core.Instance, idx, count int) *core.Instance {
	out := in.Clone()
	r := out.Rels[idx]
	const fresh = relation.Value(1) << 40
	for i := 0; i < count; i++ {
		t := make([]relation.Value, len(r.Schema))
		for j := range t {
			t[j] = fresh + relation.Value(i*len(t)+j)
		}
		r.Add(t...)
	}
	return out
}

// LineKUniform builds a uniform chain join instance of k relations.
func LineKUniform(rng *mpc.Rng, k, size, dom int) *core.Instance {
	q := hypergraph.LineK(k)
	rels := make([]*relation.Relation, k)
	for i := 0; i < k; i++ {
		rels[i] = Uniform(rng, "R", q.Edges[i].Schema(), size, dom)
	}
	return core.NewInstance(q, rels...)
}
