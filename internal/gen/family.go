package gen

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/hypergraph"
	"repro/internal/mpc"
	"repro/internal/primitives"
	"repro/internal/relation"
)

// Family is a named instance family: one entry per workload shape used by
// the paper's experiments. The engine, cmd/joinrun and the harness all
// resolve families through this registry, so a family name means the same
// instance everywhere.
//
// Build receives the target input size `in` and (where the family is
// output-controlled) the target output size `out`; families that derive
// their parameters from `in` alone ignore `out`, and deterministic families
// ignore `rng`.
type Family struct {
	Name  string
	Note  string
	Build func(rng *mpc.Rng, in, out int) *core.Instance
}

var families = map[string]Family{}

// RegisterFamily adds f to the registry; duplicate names panic at init.
func RegisterFamily(f Family) {
	if f.Name == "" || f.Build == nil {
		panic("gen: RegisterFamily needs a name and a builder")
	}
	if _, dup := families[f.Name]; dup {
		panic(fmt.Sprintf("gen: duplicate family %q", f.Name))
	}
	families[f.Name] = f
}

// Families returns every registered family, sorted by name.
func Families() []Family {
	out := make([]Family, 0, len(families))
	for _, f := range families {
		out = append(out, f)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// FamilyNames returns the registered family names, sorted.
func FamilyNames() []string {
	out := make([]string, 0, len(families))
	for _, f := range Families() {
		out = append(out, f.Name)
	}
	return out
}

// Build constructs an instance of the named family.
func Build(name string, rng *mpc.Rng, in, out int) (*core.Instance, error) {
	f, ok := families[name]
	if !ok {
		return nil, fmt.Errorf("gen: unknown instance family %q (have %v)", name, FamilyNames())
	}
	return f.Build(rng, in, out), nil
}

func init() {
	RegisterFamily(Family{
		Name: "random",
		Note: "Figure 4 random line-3 lower-bound instance",
		Build: func(rng *mpc.Rng, in, out int) *core.Instance {
			return Line3Random(rng, in, out)
		},
	})
	RegisterFamily(Family{
		Name: "hard",
		Note: "Figure 3 hard instance for the Yannakakis algorithm",
		Build: func(_ *mpc.Rng, in, out int) *core.Instance {
			return YannakakisHard(in, out)
		},
	})
	RegisterFamily(Family{
		Name: "doubled",
		Note: "Figure 3 doubled hard instance (no good join order)",
		Build: func(_ *mpc.Rng, in, out int) *core.Instance {
			return YannakakisHardDoubled(in, out)
		},
	})
	RegisterFamily(Family{
		Name: "rhier",
		Note: "skewed r-hierarchical hub star R1(A)⋈R2(A,B)⋈R3(B)",
		Build: func(rng *mpc.Rng, in, _ int) *core.Instance {
			return RHierSkewed(rng, 4, primitives.IsqrtInt(in), in/2)
		},
	})
	RegisterFamily(Family{
		Name: "tallflat",
		Note: "tall-flat keyed product with one hub key",
		Build: func(_ *mpc.Rng, in, _ int) *core.Instance {
			return TallFlatSkewed(primitives.IsqrtInt(4*in), in/2)
		},
	})
	RegisterFamily(Family{
		Name: "triangle",
		Note: "Figure 6 random triangle instance",
		Build: func(rng *mpc.Rng, in, out int) *core.Instance {
			return TriangleRandom(rng, in, out)
		},
	})
}

// ForQuery builds a uniform instance for an arbitrary query: n tuples per
// relation, every attribute drawn from [0, dom). Used by the engine's
// dispatch tests and benchmarks, which need data for every catalog query.
func ForQuery(rng *mpc.Rng, q *hypergraph.Hypergraph, n, dom int) *core.Instance {
	rels := make([]*relation.Relation, len(q.Edges))
	for i, e := range q.Edges {
		rels[i] = Uniform(rng, fmt.Sprintf("R%d", i+1), e.Schema(), n, dom)
	}
	return core.NewInstance(q, rels...)
}
