package primitives

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/mpc"
)

// FuzzSampleSortParity fuzzes the columnar rank-vector sample sort against
// the retained serialSortAndChopRef: random sizes, key ranges, key widths
// (including the degenerate width 0), mixed tuple arities, tag mixes,
// partition widths, cluster sizes, and the record pool in both states must
// produce value-identical chunks and identical cluster charges. Sizes reach
// past sampleSortSerialBelow, so both the serial rank sort and the
// splitter/partition path are exercised. Run continuously by
// `make fuzz-smoke` (part of ci).
func FuzzSampleSortParity(f *testing.F) {
	// Seed corpus from the adversarial-skew shapes of the parity tests:
	// one heavy key, zipf-ish skew, few distinct keys across many chunks,
	// degenerate sizes, pool on and off — plus key widths 0, 2 and 3 and a
	// size past the serial cutoff so the splitter path runs on multi-value
	// flat keys.
	f.Add(int64(1), uint16(2000), uint16(1), uint8(2), uint8(16), uint8(1), true)     // one heavy key
	f.Add(int64(2), uint16(2000), uint16(250), uint8(8), uint8(16), uint8(1), true)   // zipf-ish
	f.Add(int64(3), uint16(1000), uint16(3), uint8(3), uint8(7), uint8(1), false)     // 3 keys, odd p
	f.Add(int64(4), uint16(3), uint16(2), uint8(2), uint8(2), uint8(1), true)         // tiny
	f.Add(int64(5), uint16(0), uint16(1), uint8(1), uint8(4), uint8(1), false)        // empty
	f.Add(int64(6), uint16(4000), uint16(4000), uint8(33), uint8(16), uint8(1), true) // oversized width
	f.Add(int64(7), uint16(900), uint16(40), uint8(4), uint8(8), uint8(0), true)      // width-0 keys: tag-only order
	f.Add(int64(8), uint16(1200), uint16(80), uint8(5), uint8(9), uint8(3), false)    // width-3 keys
	f.Add(int64(9), uint16(5000), uint16(200), uint8(8), uint8(16), uint8(2), true)   // past serial cutoff

	f.Fuzz(func(t *testing.T, seed int64, n uint16, keys uint16, width, p, kw uint8, pooled bool) {
		nn := int(n) % 8192
		kk := int(keys)%(nn+1) + 1
		b := int(width)%16 + 1
		pp := int(p)%16 + 1
		kwidth := int(kw) % 4

		rng := rand.New(rand.NewSource(seed))
		recs := make([]rec, nn)
		for i := range recs {
			recs[i] = mkRecKW(kwidth, rng.Intn(kk), uint8(rng.Intn(3)), i)
		}

		ref := mpc.NewCluster(pp)
		refChunks := serialSortAndChopRef(ref, append([]rec(nil), recs...))
		refStats := ref.Snapshot()

		prevPool := SetRecordPooling(pooled)
		defer SetRecordPooling(prevPool)
		c := mpc.NewCluster(pp)
		rc := getRecCols(len(recs))
		fillRecCols(rc, recs)
		sampleSortCols(rc, b)
		bounds := chopBounds(c, rc.len())
		gotStats := c.Snapshot()

		for s := 0; s < pp; s++ {
			if !reflect.DeepEqual(refChunks[s], colsChunk(rc, bounds, s)) {
				t.Fatalf("chunk %d differs (n=%d keys=%d kw=%d b=%d p=%d pool=%v)",
					s, nn, kk, kwidth, b, pp, pooled)
			}
		}
		if !reflect.DeepEqual(refStats, gotStats) {
			t.Fatalf("charges differ:\nref %+v\ngot %+v", refStats, gotStats)
		}
		putRecCols(rc)
	})
}
