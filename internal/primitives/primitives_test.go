package primitives

import (
	"math/rand"
	"testing"

	"repro/internal/mpc"
	"repro/internal/relation"
)

// buildDist returns a distributed relation over schema (1,2) with n tuples
// whose key attribute 1 is drawn from [0, keys) by gen.
func buildDist(p, n, keys int, seed int64) (*mpc.Cluster, *mpc.Dist) {
	rng := rand.New(rand.NewSource(seed))
	r := relation.New("R", relation.NewSchema(1, 2))
	for i := 0; i < n; i++ {
		r.Add(relation.Value(rng.Intn(keys)), relation.Value(i))
	}
	c := mpc.NewCluster(p)
	return c, mpc.FromRelation(c, r)
}

func TestSumByKeyMatchesNaive(t *testing.T) {
	c, d := buildDist(8, 500, 37, 1)
	got := SumByKey(d, []relation.Attr{1}, relation.CountRing, 7)
	want := map[relation.Value]int64{}
	for _, it := range d.All() {
		want[it.T[0]] += it.A
	}
	check := map[relation.Value]int64{}
	for _, it := range got.All() {
		if _, dup := check[it.T[0]]; dup {
			t.Fatalf("duplicate key %v in SumByKey output", it.T[0])
		}
		check[it.T[0]] = it.A
	}
	if len(check) != len(want) {
		t.Fatalf("key count %d != %d", len(check), len(want))
	}
	for k, v := range want {
		if check[k] != v {
			t.Errorf("key %v: got %d want %d", k, check[k], v)
		}
	}
	if c.MaxLoad() > 500 {
		t.Errorf("absurd load %d", c.MaxLoad())
	}
}

func TestSumByKeySkewStaysLinear(t *testing.T) {
	// One key holds all n tuples; the combiner must keep the load ~n/p,
	// not n.
	p, n := 8, 800
	r := relation.New("R", relation.NewSchema(1, 2))
	for i := 0; i < n; i++ {
		r.Add(5, relation.Value(i))
	}
	c := mpc.NewCluster(p)
	d := mpc.FromRelation(c, r)
	base := c.MaxLoad() // n/p from input
	got := SumByKey(d, []relation.Attr{1}, relation.CountRing, 3)
	if got.Size() != 1 || got.All()[0].A != int64(n) {
		t.Fatalf("SumByKey wrong on skew: %v", got.All())
	}
	if c.MaxLoad() > 2*base+2*p {
		t.Errorf("skewed SumByKey load %d exceeds linear bound (base %d)", c.MaxLoad(), base)
	}
}

func TestCountByKeyIgnoresAnnotations(t *testing.T) {
	c := mpc.NewCluster(4)
	r := relation.New("R", relation.NewSchema(1))
	r.AddAnnotated(100, 1)
	r.AddAnnotated(200, 1)
	d := mpc.FromRelation(c, r)
	got := CountByKey(d, []relation.Attr{1}, 1)
	if got.Size() != 1 || got.All()[0].A != 2 {
		t.Errorf("CountByKey = %v", got.All())
	}
}

func TestTotalSum(t *testing.T) {
	c, d := buildDist(4, 100, 10, 2)
	if got := TotalSum(d, relation.CountRing); got != 100 {
		t.Errorf("TotalSum = %d, want 100", got)
	}
	if TotalCount(d) != 100 {
		t.Error("TotalCount wrong")
	}
	_ = c
}

func TestLookupExactMatch(t *testing.T) {
	c, x := buildDist(8, 300, 20, 3)
	deg := CountByKey(x, []relation.Attr{1}, 11)
	got := AttachAnnot(x, []relation.Attr{1}, deg, []relation.Attr{1}, relation.CountRing, false)
	if got.Size() != 300 {
		t.Fatalf("AttachAnnot size = %d", got.Size())
	}
	want := map[relation.Value]int64{}
	for _, it := range x.All() {
		want[it.T[0]]++
	}
	for _, it := range got.All() {
		if it.A != want[it.T[0]] {
			t.Errorf("tuple %v annot %d, want %d", it.T, it.A, want[it.T[0]])
		}
	}
	_ = c
}

func TestLookupMissingKeys(t *testing.T) {
	c := mpc.NewCluster(4)
	x := relation.New("X", relation.NewSchema(1))
	for i := 0; i < 10; i++ {
		x.Add(relation.Value(i))
	}
	dRel := relation.New("D", relation.NewSchema(1))
	dRel.AddAnnotated(7, 3) // only key 3 present
	dx := mpc.FromRelation(c, x)
	dd := mpc.FromRelation(c, dRel)
	kept := Lookup(dx, []relation.Attr{1}, dd, []relation.Attr{1}, dx.Schema,
		func(it mpc.Item, r LookupResult) (mpc.Item, bool) {
			return it, r.Found
		})
	if kept.Size() != 1 || kept.All()[0].T[0] != 3 {
		t.Errorf("Lookup keep-found = %v", kept.All())
	}
}

func TestLookupDuplicateDirectoryPanics(t *testing.T) {
	c := mpc.NewCluster(2)
	d := relation.New("D", relation.NewSchema(1))
	d.Add(1)
	d.Add(1)
	dd := mpc.FromRelation(c, d)
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate directory key did not panic")
		}
	}()
	Lookup(dd, []relation.Attr{1}, dd, []relation.Attr{1}, dd.Schema,
		func(it mpc.Item, r LookupResult) (mpc.Item, bool) { return it, true })
}

func TestLookupDuplicateDirectoryPanicsOnEmptyProbe(t *testing.T) {
	// The empty-probe short-circuit must not skip the directory contract:
	// a malformed directory panics even when there is nothing to look up.
	c := mpc.NewCluster(2)
	d := relation.New("D", relation.NewSchema(1))
	d.Add(1)
	d.Add(1)
	dd := mpc.FromRelation(c, d)
	empty := mpc.NewDist(c, relation.NewSchema(1))
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate directory key with empty probe did not panic")
		}
	}()
	Lookup(empty, []relation.Attr{1}, dd, []relation.Attr{1}, empty.Schema,
		func(it mpc.Item, r LookupResult) (mpc.Item, bool) { return it, true })
}

func TestSemiJoinAndAntiJoin(t *testing.T) {
	c := mpc.NewCluster(4)
	x := relation.New("X", relation.NewSchema(1, 2))
	for i := 0; i < 20; i++ {
		x.Add(relation.Value(i%5), relation.Value(i))
	}
	f := relation.New("F", relation.NewSchema(3))
	f.Add(1)
	f.Add(3)
	f.Add(3) // duplicate: SemiJoin must dedup the filter side
	dx := mpc.FromRelation(c, x)
	df := mpc.FromRelation(c, f)
	semi := SemiJoin(dx, []relation.Attr{1}, df, []relation.Attr{3})
	anti := AntiJoin(dx, []relation.Attr{1}, df, []relation.Attr{3})
	if semi.Size() != 8 {
		t.Errorf("SemiJoin size = %d, want 8", semi.Size())
	}
	for _, it := range semi.All() {
		if it.T[0] != 1 && it.T[0] != 3 {
			t.Errorf("SemiJoin kept %v", it.T)
		}
	}
	if anti.Size() != 12 {
		t.Errorf("AntiJoin size = %d, want 12", anti.Size())
	}
	if semi.Size()+anti.Size() != dx.Size() {
		t.Error("semi + anti must partition x")
	}
}

func TestLookupSkewProof(t *testing.T) {
	// All x items share one key; a hash-based lookup would put the whole
	// relation on one server, the sort-based one must stay ~n/p.
	p, n := 8, 800
	c := mpc.NewCluster(p)
	x := relation.New("X", relation.NewSchema(1, 2))
	for i := 0; i < n; i++ {
		x.Add(9, relation.Value(i))
	}
	d := relation.New("D", relation.NewSchema(1))
	d.AddAnnotated(1, 9)
	dx := mpc.FromRelation(c, x)
	dd := mpc.FromRelation(c, d)
	base := c.MaxLoad()
	got := AttachAnnot(dx, []relation.Attr{1}, dd, []relation.Attr{1}, relation.CountRing, true)
	if got.Size() != n {
		t.Fatalf("lost tuples: %d", got.Size())
	}
	if c.MaxLoad() > 2*base+2*p {
		t.Errorf("skewed Lookup load %d exceeds linear bound (base %d)", c.MaxLoad(), base)
	}
}

func TestDistinctByKey(t *testing.T) {
	c, d := buildDist(8, 400, 13, 4)
	got := DistinctByKey(d, []relation.Attr{1})
	seen := map[relation.Value]bool{}
	for _, it := range got.All() {
		if seen[it.T[0]] {
			t.Fatalf("duplicate key %v after DistinctByKey", it.T[0])
		}
		seen[it.T[0]] = true
	}
	want := map[relation.Value]bool{}
	for _, it := range d.All() {
		want[it.T[0]] = true
	}
	if len(seen) != len(want) {
		t.Errorf("distinct keys %d, want %d", len(seen), len(want))
	}
	_ = c
}

func TestMultiNumbering(t *testing.T) {
	c, d := buildDist(8, 300, 7, 5)
	got := MultiNumbering(d, []relation.Attr{1}, 99)
	if got.Size() != 300 {
		t.Fatalf("size = %d", got.Size())
	}
	if !got.Schema.Equal(relation.NewSchema(1, 2, 99)) {
		t.Fatalf("schema = %v", got.Schema)
	}
	// Numbers within each key must be exactly 1..count.
	nums := map[relation.Value][]bool{}
	counts := map[relation.Value]int{}
	for _, it := range d.All() {
		counts[it.T[0]]++
	}
	for k, n := range counts {
		nums[k] = make([]bool, n+1)
	}
	for _, it := range got.All() {
		k, n := it.T[0], int(it.T[2])
		if n < 1 || n > counts[k] {
			t.Fatalf("key %v number %d out of range 1..%d", k, n, counts[k])
		}
		if nums[k][n] {
			t.Fatalf("key %v number %d assigned twice", k, n)
		}
		nums[k][n] = true
	}
	_ = c
}

func TestMultiNumberingSingleHeavyKey(t *testing.T) {
	// One key spanning every chunk exercises the boundary-offset logic.
	p, n := 8, 100
	c := mpc.NewCluster(p)
	r := relation.New("R", relation.NewSchema(1, 2))
	for i := 0; i < n; i++ {
		r.Add(4, relation.Value(i))
	}
	d := mpc.FromRelation(c, r)
	got := MultiNumbering(d, []relation.Attr{1}, 99)
	seen := make([]bool, n+1)
	for _, it := range got.All() {
		v := int(it.T[2])
		if v < 1 || v > n || seen[v] {
			t.Fatalf("bad numbering %d", v)
		}
		seen[v] = true
	}
}

func TestParallelPackingInvariants(t *testing.T) {
	const capacity = 100
	rng := rand.New(rand.NewSource(6))
	r := relation.New("U", relation.NewSchema(1))
	var total int64
	for i := 0; i < 200; i++ {
		size := int64(1 + rng.Intn(capacity))
		r.AddAnnotated(size, relation.Value(i))
		total += size
	}
	c := mpc.NewCluster(8)
	d := mpc.FromRelation(c, r)
	packed, m := ParallelPacking(d, capacity)
	if packed.Size() != 200 {
		t.Fatalf("packing lost items")
	}
	sums := map[int64]int64{}
	orig := map[relation.Value]int64{}
	for i, tu := range r.Tuples {
		orig[tu[0]] = r.Annots[i]
	}
	for _, it := range packed.All() {
		g := it.A
		if g < 0 || g >= int64(m) {
			t.Fatalf("group id %d out of range [0,%d)", g, m)
		}
		sums[g] += orig[it.T[0]]
	}
	below := 0
	for g, s := range sums {
		if s > capacity {
			t.Errorf("group %d sum %d > capacity", g, s)
		}
		if 2*s < capacity {
			below++
		}
	}
	if below > 1 {
		t.Errorf("%d groups below capacity/2, want ≤ 1", below)
	}
	if int64(m) > 1+2*total/capacity {
		t.Errorf("m = %d exceeds 1 + 2Σ/cap = %d", m, 1+2*total/capacity)
	}
}

func TestParallelPackingRejectsBadSizes(t *testing.T) {
	c := mpc.NewCluster(2)
	r := relation.New("U", relation.NewSchema(1))
	r.AddAnnotated(500, 1)
	d := mpc.FromRelation(c, r)
	defer func() {
		if recover() == nil {
			t.Fatal("oversize item did not panic")
		}
	}()
	ParallelPacking(d, 100)
}

func TestAllocateServers(t *testing.T) {
	c := mpc.NewCluster(4)
	dir := relation.New("dir", relation.NewSchema(1))
	dir.AddAnnotated(3, 10)
	dir.AddAnnotated(2, 20)
	dir.AddAnnotated(5, 30)
	d := mpc.FromRelation(c, dir)
	ranges := AllocateServers(d)
	if len(ranges) != 3 {
		t.Fatalf("ranges = %v", ranges)
	}
	total := 0
	used := map[int]bool{}
	for _, r := range ranges {
		if r.Width() < 1 {
			t.Errorf("empty range %v", r)
		}
		total += r.Width()
		for s := r.Lo; s < r.Hi; s++ {
			if used[s] {
				t.Errorf("server %d allocated twice", s)
			}
			used[s] = true
		}
	}
	if total != 10 {
		t.Errorf("total width = %d, want 10", total)
	}
}

func TestAllocateServersDuplicatePanics(t *testing.T) {
	c := mpc.NewCluster(2)
	dir := relation.New("dir", relation.NewSchema(1))
	dir.AddAnnotated(1, 7)
	dir.AddAnnotated(1, 7)
	d := mpc.FromRelation(c, dir)
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate subproblem did not panic")
		}
	}()
	AllocateServers(d)
}

func TestSortAndChopBalance(t *testing.T) {
	c := mpc.NewCluster(8)
	rc := getRecCols(1000)
	for i := 0; i < 1000; i++ {
		rc.append(relation.EncodeValues(relation.Value(i%3)), 0, nil, 1)
	}
	bounds := sortAndChop(c, rc)
	for s := 0; s < c.P; s++ {
		if bounds[s+1]-bounds[s] > 125+1 {
			t.Errorf("chunk %d has %d records", s, bounds[s+1]-bounds[s])
		}
	}
	// Sortedness across chunk boundaries.
	for i := 1; i < rc.len(); i++ {
		if rc.keyLess(i, i-1) {
			t.Fatal("records not globally sorted")
		}
	}
	putRecCols(rc)
}
