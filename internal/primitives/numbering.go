package primitives

import (
	"repro/internal/mpc"
	"repro/internal/relation"
)

// MultiNumbering assigns, within every key group, consecutive numbers
// 1, 2, 3, … to the items sharing that key (the paper's multi-numbering
// primitive [18]). The result has the input schema plus numberAttr appended.
//
// Sort-based: items are sorted by key and chopped into p chunks, each chunk
// numbers locally, and the offset of a key that spans a chunk boundary is
// resolved through one coordinator exchange (a key spans only consecutive
// chunks, so per-server boundary state is O(1)). Records go through the
// pooled columnar set — no per-call []rec rebuild.
//
//lint:rounds const
func MultiNumbering(d *mpc.Dist, keyAttrs []relation.Attr, numberAttr relation.Attr) *mpc.Dist {
	pos := d.Positions(keyAttrs)
	outSchema := append(append(relation.Schema{}, d.Schema...), numberAttr)
	if d.Size() == 0 {
		return mpc.NewDist(d.C, outSchema)
	}

	rc := getRecCols(d.Size())
	in := getInterner()
	for s := range d.Parts {
		part := &d.Parts[s]
		for i := 0; i < part.Len(); i++ {
			t := part.Tuple(i)
			k, _ := in.intern(t, pos)
			rc.append(k, 0, t, part.Annot(i))
		}
	}
	bounds := sortAndChop(d.C, rc)

	// offsets[s] = number of items with the same key as chunk s's first
	// record that appear in earlier chunks. Computed by the coordinator from
	// per-chunk (firstKey, lastKey, suffixCount) summaries: O(1) per server.
	offsets := make([]int64, d.C.P)
	runKey, runCount := "", int64(0)
	haveRun := false
	for s := 0; s < d.C.P; s++ {
		lo, hi := bounds[s], bounds[s+1]
		if lo == hi {
			continue
		}
		if haveRun && rc.keys[lo] == runKey {
			offsets[s] = runCount
		}
		// Update the running suffix count for the chunk's last key.
		lastKey := rc.keys[hi-1]
		var suffix int64
		for i := hi - 1; i >= lo && rc.keys[i] == lastKey; i-- {
			suffix++
		}
		allSame := rc.keys[lo] == lastKey && int(suffix) == hi-lo
		if haveRun && lastKey == runKey && rc.keys[lo] == runKey && allSame {
			runCount += suffix
		} else {
			runKey, runCount = lastKey, suffix
		}
		haveRun = true
	}
	chargeCoordinatorExchange(d.C)

	out := mpc.NewDist(d.C, outSchema)
	for s := 0; s < d.C.P; s++ {
		var curKey string
		var n int64
		for i := bounds[s]; i < bounds[s+1]; i++ {
			if i == bounds[s] {
				curKey, n = rc.keys[i], offsets[s]
			} else if rc.keys[i] != curKey {
				curKey, n = rc.keys[i], 0
			}
			n++
			src := rc.tuples[i]
			t := make(relation.Tuple, len(src)+1)
			copy(t, src)
			t[len(src)] = relation.Value(n)
			out.Parts[s].Append(t, rc.annots[i])
		}
	}
	putRecCols(rc)
	putInterner(in)
	return out
}
