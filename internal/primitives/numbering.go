package primitives

import (
	"repro/internal/mpc"
	"repro/internal/relation"
)

// MultiNumbering assigns, within every key group, consecutive numbers
// 1, 2, 3, … to the items sharing that key (the paper's multi-numbering
// primitive [18]). The result has the input schema plus numberAttr appended.
//
// Sort-based: items are sorted by key and chopped into p chunks, each chunk
// numbers locally, and the offset of a key that spans a chunk boundary is
// resolved through one coordinator exchange (a key spans only consecutive
// chunks, so per-server boundary state is O(1)).
func MultiNumbering(d *mpc.Dist, keyAttrs []relation.Attr, numberAttr relation.Attr) *mpc.Dist {
	pos := d.Positions(keyAttrs)
	outSchema := append(append(relation.Schema{}, d.Schema...), numberAttr)
	if d.Size() == 0 {
		return mpc.NewDist(d.C, outSchema)
	}

	recs := make([]rec, 0, d.Size())
	for _, part := range d.Parts {
		for _, it := range part {
			recs = append(recs, rec{key: relation.KeyAt(it.T, pos), it: it})
		}
	}
	chunks := sortAndChop(d.C, recs)

	// offsets[s] = number of items with the same key as chunk s's first
	// record that appear in earlier chunks. Computed by the coordinator from
	// per-chunk (firstKey, lastKey, suffixCount) summaries: O(1) per server.
	offsets := make([]int64, d.C.P)
	runKey, runCount := "", int64(0)
	haveRun := false
	for s, chunk := range chunks {
		if len(chunk) == 0 {
			continue
		}
		if haveRun && chunk[0].key == runKey {
			offsets[s] = runCount
		}
		// Update the running suffix count for the chunk's last key.
		lastKey := chunk[len(chunk)-1].key
		var suffix int64
		for i := len(chunk) - 1; i >= 0 && chunk[i].key == lastKey; i-- {
			suffix++
		}
		if haveRun && lastKey == runKey && chunk[0].key == runKey && allSameKey(chunk) {
			runCount += suffix
		} else {
			runKey, runCount = lastKey, suffix
		}
		haveRun = true
	}
	chargeCoordinatorExchange(d.C)

	out := mpc.NewDist(d.C, outSchema)
	for s, chunk := range chunks {
		var curKey string
		var n int64
		for i, r := range chunk {
			if i == 0 {
				curKey, n = r.key, offsets[s]
			} else if r.key != curKey {
				curKey, n = r.key, 0
			}
			n++
			t := make(relation.Tuple, len(r.it.T)+1)
			copy(t, r.it.T)
			t[len(r.it.T)] = relation.Value(n)
			out.Parts[s] = append(out.Parts[s], mpc.Item{T: t, A: r.it.A})
		}
	}
	return out
}

func allSameKey(chunk []rec) bool {
	for i := 1; i < len(chunk); i++ {
		if chunk[i].key != chunk[0].key {
			return false
		}
	}
	return true
}
