package primitives

import (
	"repro/internal/mpc"
	"repro/internal/relation"
)

// MultiNumbering assigns, within every key group, consecutive numbers
// 1, 2, 3, … to the items sharing that key (the paper's multi-numbering
// primitive [18]). The result has the input schema plus numberAttr appended.
//
// Sort-based: items are sorted by key and chopped into p chunks, each chunk
// numbers locally, and the offset of a key that spans a chunk boundary is
// resolved through one coordinator exchange (a key spans only consecutive
// chunks, so per-server boundary state is O(1)). Records go through the
// pooled columnar set — no per-call []rec rebuild.
//
//lint:load perP
//lint:rounds const
func MultiNumbering(d *mpc.Dist, keyAttrs []relation.Attr, numberAttr relation.Attr) *mpc.Dist {
	pos := d.Positions(keyAttrs)
	outSchema := append(append(relation.Schema{}, d.Schema...), numberAttr)
	if d.Size() == 0 {
		return mpc.NewDist(d.C, outSchema)
	}

	rc := getRecCols(d.Size())
	for s := range d.Parts {
		part := &d.Parts[s]
		for i := 0; i < part.Len(); i++ {
			rc.appendKeyed(part.Tuple(i), pos, 0, part.Annot(i))
		}
	}
	bounds := sortAndChop(d.C, rc)

	// offsets[s] = number of items with the same key as chunk s's first
	// record that appear in earlier chunks. Computed by the coordinator from
	// per-chunk (firstKey, lastKey, suffixCount) summaries: O(1) per server.
	// Keys live in the sorted flat buffer, so the running key is tracked as
	// a row index, compared word-wise.
	offsets := make([]int64, d.C.P)
	runRow, runCount := -1, int64(0)
	for s := 0; s < d.C.P; s++ {
		lo, hi := bounds[s], bounds[s+1]
		if lo == hi {
			continue
		}
		if runRow >= 0 && rc.keyEq(lo, runRow) {
			offsets[s] = runCount
		}
		// Update the running suffix count for the chunk's last key.
		last := hi - 1
		var suffix int64
		for i := hi - 1; i >= lo && rc.keyEq(i, last); i-- {
			suffix++
		}
		allSame := rc.keyEq(lo, last) && int(suffix) == hi-lo
		if runRow >= 0 && rc.keyEq(last, runRow) && rc.keyEq(lo, runRow) && allSame {
			runCount += suffix
		} else {
			runCount = suffix
		}
		runRow = last
	}
	chargeCoordinatorExchange(d.C)

	out := mpc.NewDist(d.C, outSchema)
	for s := 0; s < d.C.P; s++ {
		curRow := -1
		var n int64
		for i := bounds[s]; i < bounds[s+1]; i++ {
			if i == bounds[s] {
				curRow, n = i, offsets[s]
			} else if !rc.keyEq(i, curRow) {
				curRow, n = i, 0
			}
			n++
			src := rc.tuples[i]
			t := make(relation.Tuple, len(src)+1)
			copy(t, src)
			t[len(src)] = relation.Value(n)
			out.Parts[s].Append(t, rc.annots[i])
		}
	}
	putRecCols(rc)
	return out
}
