package primitives

import "testing"

func TestIRootAndIPow(t *testing.T) {
	cases := []struct {
		x    int64
		k    int
		want int64
	}{
		{0, 2, 0}, {1, 2, 1}, {8, 3, 2}, {9, 2, 3}, {10, 2, 4}, {100, 1, 100},
		{26, 3, 3}, {27, 3, 3}, {28, 3, 4},
	}
	for _, c := range cases {
		if got := Iroot(c.x, c.k); got != c.want {
			t.Errorf("Iroot(%d,%d) = %d, want %d", c.x, c.k, got, c.want)
		}
	}
	if Ipow(10, 3) != 1000 {
		t.Error("ipow wrong")
	}
	if Ipow(1<<40, 3) != 1<<62 {
		t.Error("ipow must saturate")
	}
}

func TestIsqrt(t *testing.T) {
	for _, c := range []struct{ x, want int64 }{{0, 0}, {1, 1}, {4, 2}, {5, 3}, {9, 3}, {10, 4}} {
		if got := Isqrt(c.x); got != c.want {
			t.Errorf("Isqrt(%d) = %d, want %d", c.x, got, c.want)
		}
	}
	if IsqrtInt(4096) != 64 {
		t.Error("IsqrtInt(4096) != 64")
	}
}
