package primitives

import (
	"repro/internal/mpc"
	"repro/internal/relation"
)

// Range is a half-open server interval [Lo, Hi) allocated to a subproblem.
type Range struct{ Lo, Hi int }

// Width returns the number of servers in the range.
func (r Range) Width() int { return r.Hi - r.Lo }

// AllocateServers implements the server-allocation primitive [18]: given a
// directory with one item per subproblem, annotated with the number of
// servers p(j) it needs, it assigns disjoint ranges [p1(j), p2(j)) with
// max_j p2(j) ≤ Σ_j p(j). Every server learns the full directory, which has
// O(#subproblems) entries — the callers guarantee #subproblems = O(p).
//
// The returned map is keyed by the subproblem tuple's encoding.
//
//lint:load const trust callers guarantee O(p) subproblems, so the broadcast directory has O(p) entries
//lint:rounds const
func AllocateServers(dir *mpc.Dist) map[string]Range {
	out := make(map[string]Range, dir.Size())
	offset := 0
	for s := range dir.Parts {
		part := &dir.Parts[s]
		for i := 0; i < part.Len(); i++ {
			k := relation.EncodeTuple(part.Tuple(i))
			if _, dup := out[k]; dup {
				panic("primitives: AllocateServers duplicate subproblem key")
			}
			w := int(part.Annot(i))
			if w < 1 {
				panic("primitives: AllocateServers non-positive width")
			}
			out[k] = Range{Lo: offset, Hi: offset + w}
			offset += w
		}
	}
	// Gather directory to the coordinator, then broadcast: every server
	// receives the whole directory.
	n := dir.Size()
	dir.C.Charge(0, n)
	loads := make([]int, dir.C.P)
	for i := range loads {
		loads[i] = n
	}
	dir.C.ChargeRound(loads)
	return out
}
