package primitives

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"repro/internal/mpc"
	"repro/internal/relation"
	"repro/internal/runtime"
)

// sortInput is one adversarial record-set shape. Payloads (it.T[1]) are the
// input index, so chunk equality also proves the sort is stable: equal
// (key, tag) records must keep input order.
type sortInput struct {
	name string
	recs func() []rec
}

func mkRec(key int, tag uint8, i int) rec {
	return rec{
		key: relation.EncodeValues(relation.Value(key)),
		tag: tag,
		it:  mpc.Item{T: relation.Tuple{relation.Value(key), relation.Value(i)}, A: int64(i)},
	}
}

// mkRecKW builds a record with a kw-value key derived from key and a tuple
// whose arity varies with i: the primitives mix directory and probe tuples
// of different arities in one record set, with only the key width fixed.
// kw=0 makes every key the empty window (the degenerate width where flat
// key indexing breaks first); the payload still carries i so chunk equality
// proves stability.
func mkRecKW(kw, key int, tag uint8, i int) rec {
	kv := make([]relation.Value, kw)
	for j := range kv {
		kv[j] = relation.Value(key >> uint(2*j))
	}
	t := make(relation.Tuple, 1+i%3)
	for j := range t {
		t[j] = relation.Value(i + j)
	}
	return rec{key: relation.EncodeValues(kv...), tag: tag, it: mpc.Item{T: t, A: int64(i)}}
}

// sortInputs covers the skew shapes the primitives meet: uniform keys,
// one heavy key spanning every chunk, zipf-ish skew with a directory-side
// tag mix, pre-sorted and reverse-sorted runs, and degenerate sizes.
func sortInputs(n int) []sortInput {
	return []sortInput{
		{"uniform", func() []rec {
			rng := rand.New(rand.NewSource(1))
			recs := make([]rec, n)
			for i := range recs {
				recs[i] = mkRec(rng.Intn(n), uint8(i%2), i)
			}
			return recs
		}},
		{"one_heavy_key", func() []rec {
			recs := make([]rec, n)
			for i := range recs {
				recs[i] = mkRec(7, uint8(i%2), i)
			}
			return recs
		}},
		{"zipfish", func() []rec {
			rng := rand.New(rand.NewSource(2))
			recs := make([]rec, n)
			for i := range recs {
				recs[i] = mkRec(rng.Intn(1+rng.Intn(1+n/8)), uint8(rng.Intn(2)), i)
			}
			return recs
		}},
		{"sorted", func() []rec {
			recs := make([]rec, n)
			for i := range recs {
				recs[i] = mkRec(i, 0, i)
			}
			return recs
		}},
		{"reversed", func() []rec {
			recs := make([]rec, n)
			for i := range recs {
				recs[i] = mkRec(n-i, 1, i)
			}
			return recs
		}},
		{"tiny", func() []rec {
			return []rec{mkRec(3, 1, 0), mkRec(1, 0, 1), mkRec(3, 0, 2)}
		}},
		{"empty", func() []rec { return nil }},
	}
}

// fillRecCols loads an array-of-structs record set into a caller-acquired
// columnar set — the bridge between the retained []rec references and the
// columnar sort under test. The caller owns rc (acquires it and puts it
// back); a helper that returned a pooled buffer would leak it past its
// owner, which is exactly what repolint's poollifecycle analyzer flags.
func fillRecCols(rc *recCols, recs []rec) {
	for _, r := range recs {
		rc.append(r.key, r.tag, r.it.T, r.it.A)
	}
}

// colsChunk extracts chunk s of a sorted columnar set as []rec for
// comparison against the serial reference's chunks, re-encoding the flat
// key windows into the reference's key strings.
func colsChunk(rc *recCols, bounds []int, s int) []rec {
	if bounds[s] == bounds[s+1] {
		return nil
	}
	out := make([]rec, 0, bounds[s+1]-bounds[s])
	for i := bounds[s]; i < bounds[s+1]; i++ {
		out = append(out, rec{key: relation.EncodeValues(rc.key(i)...), tag: rc.tags[i], it: rc.item(i)})
	}
	return out
}

// TestSampleSortParityWithSerialRef is the tentpole guarantee: for every
// input shape, every data-plane width, and the record pool on or off,
// sortAndChop produces value-identical chunks and identical per-round
// cluster charges to the retained serial reference. Run under -race
// (make ci) this is also the lock-freedom proof for the partition/
// scatter/sort passes.
func TestSampleSortParityWithSerialRef(t *testing.T) {
	const p, n = 16, 20000
	for _, in := range sortInputs(n) {
		t.Run(in.name, func(t *testing.T) {
			ref := mpc.NewCluster(p)
			refChunks := serialSortAndChopRef(ref, in.recs())
			refStats := ref.Snapshot()

			for _, pooled := range []bool{true, false} {
				prevPool := SetRecordPooling(pooled)
				for _, width := range []int{1, 2, 8} {
					prev := runtime.SetParallelism(width)
					c := mpc.NewCluster(p)
					recs := in.recs()
					rc := getRecCols(len(recs))
					fillRecCols(rc, recs)
					bounds := sortAndChop(c, rc)
					gotStats := c.Snapshot()

					for s := 0; s < p; s++ {
						if !reflect.DeepEqual(refChunks[s], colsChunk(rc, bounds, s)) {
							t.Fatalf("pool=%v width %d: chunk %d differs: ref %d recs, got %d recs",
								pooled, width, s, len(refChunks[s]), bounds[s+1]-bounds[s])
						}
					}
					if !reflect.DeepEqual(refStats, gotStats) {
						t.Fatalf("pool=%v width %d: charges differ:\nref %+v\ngot %+v",
							pooled, width, refStats, gotStats)
					}
					putRecCols(rc)
					runtime.SetParallelism(prev)
				}
				SetRecordPooling(prevPool)
			}
		})
	}
}

// TestSampleSortPropertyRandomShapes is the property test: on random sizes,
// key ranges and tag mixes, the parallel rank sort must equal the unique
// stable (key, tag) sort of the input.
func TestSampleSortPropertyRandomShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 30; trial++ {
		n := rng.Intn(3 * sampleSortSerialBelow)
		keys := 1 + rng.Intn(1+n/(1+rng.Intn(64)))
		recs := make([]rec, n)
		for i := range recs {
			recs[i] = mkRec(rng.Intn(keys), uint8(rng.Intn(3)), i)
		}
		want := append([]rec(nil), recs...)
		sort.SliceStable(want, func(i, j int) bool { return recLess(want[i], want[j]) })

		width := 1 + rng.Intn(8)
		prev := runtime.SetParallelism(width)
		rc := getRecCols(len(recs))
		fillRecCols(rc, recs)
		sampleSortCols(rc, width)
		runtime.SetParallelism(prev)

		got := make([]rec, rc.len())
		for i := range got {
			got[i] = rec{key: relation.EncodeValues(rc.key(i)...), tag: rc.tags[i], it: rc.item(i)}
		}
		putRecCols(rc)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d (n=%d keys=%d width=%d): parallel sort is not the stable sort",
				trial, n, keys, width)
		}
	}
}

// TestSampleSplittersAreSortedAndDistinct pins the splitter contract the
// range partition depends on: sorted, distinct, and fewer than b.
func TestSampleSplittersAreSortedAndDistinct(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for _, keys := range []int{1, 2, 100, 1 << 14} {
		rc := getRecCols(1 << 14)
		for i := 0; i < 1<<14; i++ {
			r := mkRec(rng.Intn(keys), 0, i)
			rc.append(r.key, r.tag, r.it.T, r.it.A)
		}
		for _, b := range []int{2, 3, 8, 32} {
			sp, nsp := sampleSplitters(rc, b)
			if nsp >= b {
				t.Fatalf("keys=%d b=%d: %d splitters", keys, b, nsp)
			}
			if len(sp) != nsp*rc.kw {
				t.Fatalf("keys=%d b=%d: flat buffer holds %d values for %d splitters of width %d",
					keys, b, len(sp), nsp, rc.kw)
			}
			for i := 1; i < nsp; i++ {
				prev, cur := sp[(i-1)*rc.kw:i*rc.kw], sp[i*rc.kw:(i+1)*rc.kw]
				if !keyWindowLess(prev, cur) {
					t.Fatalf("keys=%d b=%d: splitters not sorted-distinct: %v", keys, b, sp)
				}
			}
		}
		putRecCols(rc)
	}
}

// TestChopCeilDivisionInvariant: the old code silently clamped a record
// past the last server; that clamp is now a panic, and this test proves the
// panic is unreachable from ceil division — the invariant a future chunking
// change would have to re-establish.
func TestChopCeilDivisionInvariant(t *testing.T) {
	c := mpc.NewCluster(2)
	recs := []rec{mkRec(1, 0, 0), mkRec(2, 0, 1), mkRec(3, 0, 2)}
	for n := 0; n <= 64; n++ {
		for p := 1; p <= 8; p++ {
			chunk := (n + p - 1) / p
			if chunk == 0 {
				chunk = 1
			}
			if n > 0 && (n-1)/chunk >= p {
				t.Fatalf("ceil division violated: n=%d p=%d", n, p)
			}
		}
	}
	_ = chop(c, recs)
	if c.RoundMax(1) != 2 {
		t.Fatalf("chop charged %d, want 2", c.RoundMax(1))
	}
}

// TestEmptyInputsChargeNoRounds is the round-inflation regression test:
// Lookup, DistinctByKey, MultiNumbering and SemiJoin on empty inputs must
// short-circuit — no sort round, no coordinator exchange — while the
// non-empty paths keep their documented round counts.
func TestEmptyInputsChargeNoRounds(t *testing.T) {
	c := mpc.NewCluster(4)
	empty := mpc.NewDist(c, relation.NewSchema(1))
	full := mpc.FromRelation(c, func() *relation.Relation {
		r := relation.New("D", relation.NewSchema(1))
		for i := 0; i < 8; i++ {
			r.Add(relation.Value(i))
		}
		return r
	}())

	keep := func(it mpc.Item, r LookupResult) (mpc.Item, bool) { return it, r.Found }
	key := []relation.Attr{1}

	if got := Lookup(empty, key, full, key, empty.Schema, keep); got.Size() != 0 {
		t.Fatalf("Lookup(empty) size = %d", got.Size())
	}
	if got := DistinctByKey(empty, key); got.Size() != 0 {
		t.Fatalf("DistinctByKey(empty) size = %d", got.Size())
	}
	if got := MultiNumbering(empty, key, 99); got.Size() != 0 {
		t.Fatalf("MultiNumbering(empty) size = %d", got.Size())
	}
	if got := SemiJoin(empty, key, empty, key); got.Size() != 0 {
		t.Fatalf("SemiJoin(empty, empty) size = %d", got.Size())
	}
	// An empty probe with a NON-empty directory must not pay for sorting
	// the directory either.
	if got := SemiJoin(empty, key, full, key); got.Size() != 0 {
		t.Fatalf("SemiJoin(empty, full) size = %d", got.Size())
	}
	if got := AntiJoin(empty, key, full, key); got.Size() != 0 {
		t.Fatalf("AntiJoin(empty, full) size = %d", got.Size())
	}
	if c.Rounds() != 0 {
		t.Fatalf("empty-input primitives charged %d rounds, want 0", c.Rounds())
	}

	// Non-empty reference counts: sortAndChop is 1 round, the boundary
	// exchange 2 (gather to the coordinator + reply).
	DistinctByKey(full, key)
	if c.Rounds() != 3 {
		t.Fatalf("DistinctByKey rounds = %d, want 3", c.Rounds())
	}
	Lookup(full, key, full.FilterLocal(func(mpc.Item) bool { return false }), key, full.Schema, keep)
	if c.Rounds() != 6 {
		t.Fatalf("Lookup rounds = %d, want 3+3", c.Rounds())
	}
}

// TestSampleSortWidthSweepDeterminism re-sorts the same zipf input at every
// width (and the pool in both states) and demands byte-identical chunk
// tables — the cheap standing sweep the engine catalog test mirrors at
// full scale.
func TestSampleSortWidthSweepDeterminism(t *testing.T) {
	const p, n = 8, 1 << 14
	mk := sortInputs(n)[2] // zipfish
	var ref [][]rec
	for _, pooled := range []bool{true, false} {
		prevPool := SetRecordPooling(pooled)
		for _, width := range []int{1, 2, 4, 8} {
			prev := runtime.SetParallelism(width)
			c := mpc.NewCluster(p)
			recs := mk.recs()
			rc := getRecCols(len(recs))
			fillRecCols(rc, recs)
			bounds := sortAndChop(c, rc)
			got := make([][]rec, p)
			for s := 0; s < p; s++ {
				got[s] = colsChunk(rc, bounds, s)
			}
			putRecCols(rc)
			runtime.SetParallelism(prev)
			if ref == nil {
				ref = got
				continue
			}
			if !reflect.DeepEqual(ref, got) {
				t.Fatal(fmt.Sprintf("pool=%v width %d chunks differ from reference", pooled, width))
			}
		}
		SetRecordPooling(prevPool)
	}
}
