package primitives

import (
	"repro/internal/mpc"
	"repro/internal/relation"
)

// SumByKey aggregates annotations by key: it returns one item per distinct
// projection of d onto keyAttrs, annotated with the ring.Add-combination of
// all matching items' annotations.
//
// Local pre-aggregation (a combiner) runs before the shuffle, so each server
// sends at most one partial per local key and each receiver gets at most p
// partials per assigned key: load O(IN/p + p · keys/p) = O(IN/p) — the skew
// of the raw data never concentrates.
//
//lint:load perP trust the local combiner caps the shuffle at one partial per (server, key): O(IN/p + p) per receiver
//lint:rounds const
func SumByKey(d *mpc.Dist, keyAttrs []relation.Attr, ring relation.Semiring, salt uint64) *mpc.Dist {
	pos := d.Positions(keyAttrs)
	schema := relation.NewSchema(keyAttrs...)
	partials := localCombine(d, pos, schema, ring)
	shuffled := partials.ShuffleByKey(partials.Positions(keyAttrs), salt)
	return localCombine(shuffled, shuffled.Positions(keyAttrs), schema, ring)
}

// CountByKey returns the degree of every key: one item per distinct key,
// annotated with the number of matching items (annotations ignored).
//
//lint:load perP
//lint:rounds const
func CountByKey(d *mpc.Dist, keyAttrs []relation.Attr, salt uint64) *mpc.Dist {
	ones := d.MapLocal(d.Schema, func(_ int, it mpc.Item) []mpc.Item {
		return []mpc.Item{{T: it.T, A: 1}}
	})
	return SumByKey(ones, keyAttrs, relation.CountRing, salt)
}

// localCombine aggregates per server: one output item per (server, key).
func localCombine(d *mpc.Dist, pos []int, schema relation.Schema, ring relation.Semiring) *mpc.Dist {
	out := mpc.NewDist(d.C, schema)
	for s := range d.Parts {
		part := &d.Parts[s]
		agg := make(map[string]int64, part.Len())
		repr := make(map[string]relation.Tuple, part.Len())
		var order []string
		for i := 0; i < part.Len(); i++ {
			t := part.Tuple(i)
			k := relation.KeyAt(t, pos)
			if _, ok := agg[k]; !ok {
				agg[k] = ring.Zero
				proj := make(relation.Tuple, len(pos))
				for j, p := range pos {
					proj[j] = t[p]
				}
				repr[k] = proj
				order = append(order, k)
			}
			agg[k] = ring.Add(agg[k], part.Annot(i))
		}
		for _, k := range order {
			out.Parts[s].Append(repr[k], agg[k])
		}
	}
	return out
}

// TotalSum combines all annotations into a single value via ring.Add,
// charging the coordinator tree: each server one partial (load p at the
// coordinator), then a broadcast of the single total (load 1 per server).
// Every server then "knows" the value; the caller gets it directly.
//
//lint:load const
//lint:rounds const
func TotalSum(d *mpc.Dist, ring relation.Semiring) int64 {
	total := ring.Zero
	for s := range d.Parts {
		part := &d.Parts[s]
		for i := 0; i < part.Len(); i++ {
			total = ring.Add(total, part.Annot(i))
		}
	}
	chargeCoordinatorExchange(d.C)
	return total
}

// TotalCount returns the number of items, charged like TotalSum.
//
//lint:load const
//lint:rounds const
func TotalCount(d *mpc.Dist) int64 {
	n := int64(d.Size())
	chargeCoordinatorExchange(d.C)
	return n
}
