package primitives

import "repro/internal/mpc"

// ParallelPacking groups items with sizes 0 < size_i ≤ capacity into groups
// Y_1 … Y_m such that Σ_{i∈Y_j} size_i ≤ capacity for all j and ≥ capacity/2
// for all but one j, hence m ≤ 1 + 2·(Σ size_i)/capacity (Section 2).
//
// The input is a directory: one item per packable unit, annotated with its
// size. The output carries the same tuples, re-annotated with their group id
// (0-based). Following the paper: each server packs locally; full groups get
// global ids by a prefix sum over per-server counts; the ≤ p leftover
// partial groups are packed by the coordinator in one more step.
//
//lint:load const
//lint:rounds const
func ParallelPacking(d *mpc.Dist, capacity int64) (*mpc.Dist, int) {
	if capacity <= 0 {
		panic("primitives: ParallelPacking with non-positive capacity")
	}
	type group struct {
		items []mpc.Item
		sum   int64
	}
	fullPerServer := make([][]group, d.C.P)
	partialPerServer := make([]*group, d.C.P)
	for s := range d.Parts {
		part := &d.Parts[s]
		cur := &group{}
		for i := 0; i < part.Len(); i++ {
			it := part.Item(i)
			if it.A <= 0 || it.A > capacity {
				panic("primitives: ParallelPacking size out of (0, capacity]")
			}
			if 2*it.A >= capacity {
				// Large items form their own (already ≥ capacity/2) group,
				// so closing an accumulator early can never strand a small
				// group below capacity/2.
				fullPerServer[s] = append(fullPerServer[s], group{items: []mpc.Item{it}, sum: it.A})
				continue
			}
			if cur.sum+it.A > capacity {
				fullPerServer[s] = append(fullPerServer[s], *cur)
				cur = &group{}
			}
			cur.items = append(cur.items, it)
			cur.sum += it.A
		}
		if cur.sum > 0 {
			if cur.sum*2 >= capacity {
				fullPerServer[s] = append(fullPerServer[s], *cur)
			} else {
				partialPerServer[s] = cur
			}
		}
	}

	// Prefix sums over g_i (full group counts) via the coordinator.
	chargeCoordinatorExchange(d.C)
	next := 0
	out := mpc.NewDist(d.C, d.Schema)
	assign := func(s int, g group, id int) {
		for _, it := range g.items {
			out.Parts[s].Append(it.T, int64(id))
		}
	}
	for s, groups := range fullPerServer {
		for _, g := range groups {
			assign(s, g, next)
			next++
		}
	}

	// Coordinator packs the ≤ p partial groups (each < capacity/2) greedily;
	// closing only when the next unit would overflow keeps every closed
	// group ≥ capacity/2.
	chargeCoordinatorExchange(d.C)
	var curSum int64
	curID := -1
	for s, g := range partialPerServer {
		if g == nil {
			continue
		}
		if curID < 0 || curSum+g.sum > capacity {
			curID = next
			next++
			curSum = 0
		}
		assign(s, *g, curID)
		curSum += g.sum
	}
	return out, next
}
