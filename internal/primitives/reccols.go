package primitives

import (
	"sync"
	"sync/atomic"

	"repro/internal/mpc"
	"repro/internal/relation"
)

// The columnar record pool, flat-key edition. Every skew-sensitive
// primitive (Lookup, DistinctByKey, MultiNumbering) collects its records
// into a pooled struct-of-arrays set (parallel key/tag/tuple/annot
// columns). Keys are fixed width per call — a projection onto a fixed
// position list — so the key column is one flat []relation.Value buffer:
// row i's key is keys[i*kw : (i+1)*kw], compared with a word-wise value
// loop. This drops the byte-string interning layer entirely: building a
// key is copying kw values, comparing two keys is at most kw integer
// compares, and the order is identical to the old encoded-string order
// because the encoding (8 big-endian bytes of uint64(v)^(1<<63) per
// value) was order-preserving by construction.
//
// Pooling is strictly a memory-reuse layer: every buffer is fully
// initialized before it is read, so results, cluster charges and table
// bytes are identical with the pool on or off. SetRecordPooling(false)
// forces fresh allocations — the determinism sweeps prove the equivalence
// under -race.

// recordPooling gates every primitives-layer pool (record columns, index
// scratch). On by default.
var recordPooling atomic.Bool

func init() { recordPooling.Store(true) }

// SetRecordPooling enables or disables the columnar record pool and
// returns the previous setting. Used by the determinism sweeps; safe for
// concurrent use (in-flight calls keep the buffers they already hold).
func SetRecordPooling(on bool) bool { return recordPooling.Swap(on) }

// RecordPooling reports whether the record pool is active.
func RecordPooling() bool { return recordPooling.Load() }

// recCols is the columnar record set: a flat fixed-width key buffer plus
// parallel tag/tuple/annot columns, sorted together by (key, tag) via an
// index permutation. kw is the key width in values; it is adopted from the
// first appended record and every later record must match.
type recCols struct {
	kw     int
	keys   []relation.Value
	tags   []uint8
	tuples []relation.Tuple
	annots []int64
}

func (rc *recCols) len() int { return len(rc.tags) }

// adoptKeyWidth fixes the key width from the first record.
func (rc *recCols) adoptKeyWidth(kw int) {
	if len(rc.tags) == 0 {
		rc.kw = kw
		rc.keys = rc.keys[:0]
		return
	}
	if kw != rc.kw {
		panic("primitives: mixed key widths in one record set")
	}
}

// appendKeyed adds one record whose key is t's projection onto pos.
func (rc *recCols) appendKeyed(t relation.Tuple, pos []int, tag uint8, a int64) {
	rc.adoptKeyWidth(len(pos))
	for _, p := range pos {
		rc.keys = append(rc.keys, t[p])
	}
	rc.tags = append(rc.tags, tag)
	rc.tuples = append(rc.tuples, t)
	rc.annots = append(rc.annots, a)
}

// appendSelfKeyed adds one record whose key is the whole tuple (the
// DistinctByKey projection case: the kept tuple IS the key).
func (rc *recCols) appendSelfKeyed(t relation.Tuple, tag uint8, a int64) {
	rc.adoptKeyWidth(len(t))
	rc.keys = append(rc.keys, t...)
	rc.tags = append(rc.tags, tag)
	rc.tuples = append(rc.tuples, t)
	rc.annots = append(rc.annots, a)
}

// append adds one record from an encoded key string — the bridge the
// serial reference path and the tests use to stage records from the
// array-of-structs rec view. The key decodes to exactly the value window
// appendKeyed would have written (the encoding is order- and
// value-preserving).
func (rc *recCols) append(key string, tag uint8, t relation.Tuple, a int64) {
	if len(key)%8 != 0 {
		panic("primitives: malformed record key")
	}
	rc.adoptKeyWidth(len(key) / 8)
	rc.keys = relation.AppendDecodedKey(rc.keys, key)
	rc.tags = append(rc.tags, tag)
	rc.tuples = append(rc.tuples, t)
	rc.annots = append(rc.annots, a)
}

// item assembles row i for callbacks that take items.
func (rc *recCols) item(i int) mpc.Item { return mpc.Item{T: rc.tuples[i], A: rc.annots[i]} }

// key returns row i's key window in the flat buffer.
func (rc *recCols) key(i int) []relation.Value {
	kw := rc.kw
	return rc.keys[i*kw : i*kw+kw]
}

// keyLess compares the keys of rows i and j word-wise — identical order to
// the old encoded-string comparison.
func (rc *recCols) keyLess(i, j int) bool {
	kw := rc.kw
	a, b := i*kw, j*kw
	for k := 0; k < kw; k++ {
		if rc.keys[a+k] != rc.keys[b+k] {
			return rc.keys[a+k] < rc.keys[b+k]
		}
	}
	return false
}

// keyEq reports whether rows i and j share a key.
func (rc *recCols) keyEq(i, j int) bool {
	kw := rc.kw
	a, b := i*kw, j*kw
	for k := 0; k < kw; k++ {
		if rc.keys[a+k] != rc.keys[b+k] {
			return false
		}
	}
	return true
}

// less is THE record order of every skew-sensitive primitive — by key,
// ties broken by tag (recLess on columns). The serial reference and the
// parallel sample sort must agree on it exactly.
func (rc *recCols) less(i, j int32) bool {
	kw := rc.kw
	a, b := int(i)*kw, int(j)*kw
	for k := 0; k < kw; k++ {
		if rc.keys[a+k] != rc.keys[b+k] {
			return rc.keys[a+k] < rc.keys[b+k]
		}
	}
	return rc.tags[i] < rc.tags[j]
}

// reset truncates the columns, clearing the pointer-bearing tuple column
// so pooled capacity does not retain tuples (the key column carries plain
// values — stale contents are unreachable and pointer-free).
func (rc *recCols) reset() {
	clear(rc.tuples[:cap(rc.tuples)])
	rc.keys = rc.keys[:0]
	rc.tags = rc.tags[:0]
	rc.tuples = rc.tuples[:0]
	rc.annots = rc.annots[:0]
}

var recColsPool sync.Pool

// getRecCols returns an empty record set with room for capacity rows.
func getRecCols(capacity int) *recCols {
	if RecordPooling() {
		if v := recColsPool.Get(); v != nil {
			rc := v.(*recCols)
			if cap(rc.tags) >= capacity {
				return rc
			}
			// Too small for this call site: grow once, keep the grown set.
		}
	}
	return &recCols{
		keys:   make([]relation.Value, 0, capacity),
		tags:   make([]uint8, 0, capacity),
		tuples: make([]relation.Tuple, 0, capacity),
		annots: make([]int64, 0, capacity),
	}
}

// putRecCols recycles rc. Callers must have copied out every tuple header
// and annotation they keep (the output Dist does).
func putRecCols(rc *recCols) {
	if !RecordPooling() {
		return
	}
	rc.reset()
	recColsPool.Put(rc)
}

// sortScratch is the sample sort's whole working set — rank vectors, merge
// buffer, per-task counters, and one permute target per record column —
// pooled as a single pointer so a steady-state sort performs one pool
// round-trip and zero boxing allocations. ensure* grow the vectors in
// place; contents are UNSPECIFIED until written (consumers initialize
// before reading). Pointer-bearing columns are cleared on put, like the
// record sets, so the pool never retains a past dataset.
type sortScratch struct {
	order   []int32
	ranges  []int32
	perTask [][]int32 // per task: range counters, then reused as write cursors
	bases   [][]int32 // per task: first write offset per range
	keys    []relation.Value
	tags    []uint8
	tuples  []relation.Tuple
	annots  []int64
}

// ensureSlice grows s to length n, reusing its capacity when possible.
func ensureSlice[T any](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	return s[:n]
}

// taskVecs sizes a per-task [][]int32 table to tasks rows of width n each.
func taskVecs(vs [][]int32, tasks, n int) [][]int32 {
	if cap(vs) < tasks {
		vs = make([][]int32, tasks)
	}
	vs = vs[:tasks]
	for t := range vs {
		vs[t] = ensureSlice(vs[t], n)
	}
	return vs
}

var sortScratchPool sync.Pool

func getSortScratch() *sortScratch {
	if RecordPooling() {
		if v := sortScratchPool.Get(); v != nil {
			return v.(*sortScratch)
		}
	}
	return &sortScratch{}
}

func putSortScratch(sc *sortScratch) {
	if !RecordPooling() {
		return
	}
	// The permute swap leaves the pre-sort tuple column here; clear it so
	// the pool never retains a past dataset's tuples (the key column is
	// pointer-free and needs no clearing).
	clear(sc.tuples[:cap(sc.tuples)])
	sortScratchPool.Put(sc)
}
