package primitives

import (
	"sync"
	"sync/atomic"

	"repro/internal/mpc"
	"repro/internal/relation"
)

// The columnar record pool. Every skew-sensitive primitive (Lookup,
// DistinctByKey, MultiNumbering) used to rebuild a fresh []rec slice from
// its Dist on every call — the dominant allocations BenchmarkSampleSort
// and BenchmarkLookup reported. The record set is now struct-of-arrays
// (parallel key/tag/tuple/annot columns) and recycled through a sync.Pool,
// and the key column is interned per Dist generation: one call-site builds
// each distinct key string once, repeated keys share the allocation, and
// repeated calls reuse the column capacity.
//
// Pooling is strictly a memory-reuse layer: every buffer is fully
// initialized before it is read, so results, cluster charges and table
// bytes are identical with the pool on or off. SetRecordPooling(false)
// forces fresh allocations — the determinism sweeps prove the equivalence
// under -race.

// recordPooling gates every primitives-layer pool (record columns, index
// scratch, interners). On by default.
var recordPooling atomic.Bool

func init() { recordPooling.Store(true) }

// SetRecordPooling enables or disables the columnar record pool and
// returns the previous setting. Used by the determinism sweeps; safe for
// concurrent use (in-flight calls keep the buffers they already hold).
func SetRecordPooling(on bool) bool { return recordPooling.Swap(on) }

// RecordPooling reports whether the record pool is active.
func RecordPooling() bool { return recordPooling.Load() }

// recCols is the columnar record set: parallel key/tag/tuple/annot
// columns, sorted together by (key, tag) via an index permutation.
type recCols struct {
	keys   []string
	tags   []uint8
	tuples []relation.Tuple
	annots []int64
}

func (rc *recCols) len() int { return len(rc.keys) }

func (rc *recCols) append(key string, tag uint8, t relation.Tuple, a int64) {
	rc.keys = append(rc.keys, key)
	rc.tags = append(rc.tags, tag)
	rc.tuples = append(rc.tuples, t)
	rc.annots = append(rc.annots, a)
}

// item assembles row i for callbacks that take items.
func (rc *recCols) item(i int) mpc.Item { return mpc.Item{T: rc.tuples[i], A: rc.annots[i]} }

// less is THE record order of every skew-sensitive primitive — by key,
// ties broken by tag (recLess on columns). The serial reference and the
// parallel sample sort must agree on it exactly.
func (rc *recCols) less(i, j int32) bool {
	if rc.keys[i] != rc.keys[j] {
		return rc.keys[i] < rc.keys[j]
	}
	return rc.tags[i] < rc.tags[j]
}

// reset truncates the columns, clearing the pointer-bearing ones so pooled
// capacity does not retain tuples or key strings.
func (rc *recCols) reset() {
	clear(rc.keys[:cap(rc.keys)])
	clear(rc.tuples[:cap(rc.tuples)])
	rc.keys = rc.keys[:0]
	rc.tags = rc.tags[:0]
	rc.tuples = rc.tuples[:0]
	rc.annots = rc.annots[:0]
}

var recColsPool sync.Pool

// getRecCols returns an empty record set with room for capacity rows.
func getRecCols(capacity int) *recCols {
	if RecordPooling() {
		if v := recColsPool.Get(); v != nil {
			rc := v.(*recCols)
			if cap(rc.keys) >= capacity {
				return rc
			}
			// Too small for this call site: grow once, keep the grown set.
		}
	}
	return &recCols{
		keys:   make([]string, 0, capacity),
		tags:   make([]uint8, 0, capacity),
		tuples: make([]relation.Tuple, 0, capacity),
		annots: make([]int64, 0, capacity),
	}
}

// putRecCols recycles rc. Callers must have copied out every tuple header
// and annotation they keep (the output Dist does).
func putRecCols(rc *recCols) {
	if !RecordPooling() {
		return
	}
	rc.reset()
	recColsPool.Put(rc)
}

// sortScratch is the sample sort's whole working set — rank vectors, merge
// buffer, per-task counters, and one permute target per record column —
// pooled as a single pointer so a steady-state sort performs one pool
// round-trip and zero boxing allocations. ensure* grow the vectors in
// place; contents are UNSPECIFIED until written (consumers initialize
// before reading). Pointer-bearing columns are cleared on put, like the
// record sets, so the pool never retains a past dataset.
type sortScratch struct {
	order   []int32
	ranges  []int32
	perTask [][]int32 // per task: range counters, then reused as write cursors
	bases   [][]int32 // per task: first write offset per range
	keys    []string
	tags    []uint8
	tuples  []relation.Tuple
	annots  []int64
}

// ensureSlice grows s to length n, reusing its capacity when possible.
func ensureSlice[T any](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	return s[:n]
}

// taskVecs sizes a per-task [][]int32 table to tasks rows of width n each.
func taskVecs(vs [][]int32, tasks, n int) [][]int32 {
	if cap(vs) < tasks {
		vs = make([][]int32, tasks)
	}
	vs = vs[:tasks]
	for t := range vs {
		vs[t] = ensureSlice(vs[t], n)
	}
	return vs
}

var sortScratchPool sync.Pool

func getSortScratch() *sortScratch {
	if RecordPooling() {
		if v := sortScratchPool.Get(); v != nil {
			return v.(*sortScratch)
		}
	}
	return &sortScratch{}
}

func putSortScratch(sc *sortScratch) {
	if !RecordPooling() {
		return
	}
	// The permute swap leaves the pre-sort key/tuple columns here; clear
	// them so the pool never retains a past dataset's strings or tuples.
	clear(sc.keys[:cap(sc.keys)])
	clear(sc.tuples[:cap(sc.tuples)])
	sortScratchPool.Put(sc)
}

// interner builds key strings in a reusable buffer and deduplicates them
// per Dist generation: one allocation per distinct key per primitive call,
// and the resulting shared pointers make equal-key comparisons in the sort
// short-circuit.
type interner struct {
	buf []byte
	m   map[string]string
}

// intern returns the canonical string for t's projection onto pos and
// whether the key was already present (Lookup uses this to detect
// duplicate directory keys without a second map).
func (in *interner) intern(t relation.Tuple, pos []int) (string, bool) {
	in.buf = relation.AppendKeyAt(in.buf[:0], t, pos)
	if s, ok := in.m[string(in.buf)]; ok {
		return s, true
	}
	s := string(in.buf)
	in.m[s] = s
	return s, false
}

var internerPool sync.Pool

func getInterner() *interner {
	if RecordPooling() {
		if v := internerPool.Get(); v != nil {
			return v.(*interner)
		}
	}
	return &interner{m: make(map[string]string)}
}

func putInterner(in *interner) {
	if !RecordPooling() {
		return
	}
	clear(in.m)
	internerPool.Put(in)
}
