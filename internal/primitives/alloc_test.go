package primitives

import (
	"math/rand"
	"testing"

	"repro/internal/mpc"
	"repro/internal/relation"
	"repro/internal/runtime"
)

// TestLookupAllocCeiling is the allocation-regression guard for the
// columnar record pool: a steady-state Lookup allocates roughly one key
// string per distinct key (the per-generation interning) plus the output
// parts — never a fresh record slice, sort scratch, or per-item keys.
// Before the pool a call at this size cost ~3 allocations per record; the
// pooled path sits around 2.4k for 2048 distinct keys. The ceiling
// (2·distinct + 1k) leaves room for pool misses after a GC while any
// per-item regression overshoots it several-fold.
func TestLookupAllocCeiling(t *testing.T) {
	const n, distinct = 8192, 2048
	const ceiling = 2*distinct + 1024
	prev := runtime.SetParallelism(1)
	defer runtime.SetParallelism(prev)

	c := mpc.NewCluster(16)
	rng := rand.New(rand.NewSource(3))
	x := relation.New("X", relation.NewSchema(1, 2))
	for i := 0; i < n; i++ {
		x.Add(relation.Value(rng.Intn(distinct)), relation.Value(i))
	}
	d := relation.New("D", relation.NewSchema(1))
	for k := 0; k < distinct; k++ {
		d.AddAnnotated(int64(k), relation.Value(k))
	}
	dx, dd := mpc.FromRelation(c, x), mpc.FromRelation(c, d)
	attach := func() {
		AttachAnnot(dx, []relation.Attr{1}, dd, []relation.Attr{1}, relation.CountRing, true)
	}
	attach() // warm the record pool
	got := testing.AllocsPerRun(10, attach)
	if got > ceiling {
		t.Fatalf("Lookup allocates %.0f per run (n=%d, distinct=%d), ceiling %d — the record pool has regressed",
			got, n, distinct, ceiling)
	}
}

// TestSampleSortAllocCeiling pins the rank-vector sort: sorting a pooled
// record set in steady state must not allocate per record (the old []rec
// path allocated a full record scratch buffer every call).
func TestSampleSortAllocCeiling(t *testing.T) {
	const n, ceiling = 8192, 64
	prev := runtime.SetParallelism(2)
	defer runtime.SetParallelism(prev)

	base := benchRecs(n, true, 7)
	sortOnce := func() {
		rc := getRecCols(n)
		for _, r := range base {
			rc.append(r.key, r.tag, r.it.T, r.it.A)
		}
		sampleSortCols(rc, 2)
		putRecCols(rc)
	}
	sortOnce() // warm the scratch pool
	got := testing.AllocsPerRun(10, sortOnce)
	if got > ceiling {
		t.Fatalf("sample sort allocates %.0f per run (n=%d), ceiling %d — the sort scratch pool has regressed",
			got, n, ceiling)
	}
}
