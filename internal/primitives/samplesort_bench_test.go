package primitives

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/mpc"
	"repro/internal/relation"
)

// BenchmarkSampleSort vs BenchmarkSerialSortRef: the parallel sample sort
// against the retained coordinator sort, on the same record sets. Both are
// in the counted `make bench` family; the parallel path must win ns/op at
// IN = 2^17. BenchmarkLookup covers the primitive end-to-end (record
// collection, sort, boundary propagation, combine).

const benchSortP = 64

func benchRecs(n int, skewed bool, seed int64) []rec {
	rng := rand.New(rand.NewSource(seed))
	recs := make([]rec, n)
	for i := range recs {
		k := rng.Intn(n)
		if skewed {
			k = rng.Intn(1 + rng.Intn(1+n/8))
		}
		recs[i] = mkRec(k, uint8(i%2), i)
	}
	return recs
}

func benchSortShapes() []struct {
	name   string
	skewed bool
} {
	return []struct {
		name   string
		skewed bool
	}{{"uniform", false}, {"skewed", true}}
}

// The cluster is a shared fixture (created outside the measured loop):
// both benchmarks measure the sort-and-chop path itself — record staging,
// sorting, chunking, charging — not cluster construction.

func BenchmarkSampleSort(b *testing.B) {
	for _, n := range []int{1 << 14, 1 << 17} {
		for _, shape := range benchSortShapes() {
			base := benchRecs(n, shape.skewed, 7)
			c := mpc.NewCluster(benchSortP)
			b.Run(fmt.Sprintf("%s/n=%d", shape.name, n), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					rc := getRecCols(n)
					for _, r := range base {
						rc.append(r.key, r.tag, r.it.T, r.it.A)
					}
					sortAndChop(c, rc)
					putRecCols(rc)
				}
			})
		}
	}
}

func BenchmarkSerialSortRef(b *testing.B) {
	for _, n := range []int{1 << 14, 1 << 17} {
		for _, shape := range benchSortShapes() {
			base := benchRecs(n, shape.skewed, 7)
			c := mpc.NewCluster(benchSortP)
			b.Run(fmt.Sprintf("%s/n=%d", shape.name, n), func(b *testing.B) {
				b.ReportAllocs()
				recs := make([]rec, n)
				for i := 0; i < b.N; i++ {
					copy(recs, base)
					serialSortAndChopRef(c, recs)
				}
			})
		}
	}
}

func BenchmarkLookup(b *testing.B) {
	for _, n := range []int{1 << 14, 1 << 17} {
		c := mpc.NewCluster(benchSortP)
		rng := rand.New(rand.NewSource(3))
		x := relation.New("X", relation.NewSchema(1, 2))
		for i := 0; i < n; i++ {
			x.Add(relation.Value(rng.Intn(n/4)), relation.Value(i))
		}
		d := relation.New("D", relation.NewSchema(1))
		for k := 0; k < n/4; k++ {
			d.AddAnnotated(int64(k), relation.Value(k))
		}
		dx, dd := mpc.FromRelation(c, x), mpc.FromRelation(c, d)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				AttachAnnot(dx, []relation.Attr{1}, dd, []relation.Attr{1}, relation.CountRing, true)
			}
		})
	}
}
