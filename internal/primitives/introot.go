package primitives

// Integer roots used across the repository: the generators size domains by
// √IN, the instance-optimal allocator evaluates the equation-(2) bound
// (|Q(R,S)|/p)^{1/|S|}, and the CLIs derive family parameters. One canonical
// implementation lives here so every layer rounds the same way (ceiling).

// Iroot returns ⌈x^(1/k)⌉ for x ≥ 0, k ≥ 1, and 0 for x ≤ 0.
func Iroot(x int64, k int) int64 {
	if x <= 0 {
		return 0
	}
	if k == 1 {
		return x
	}
	lo, hi := int64(1), x
	for lo < hi {
		mid := lo + (hi-lo)/2
		if Ipow(mid, k) >= x {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// Isqrt returns ⌈√x⌉ for x ≥ 0.
func Isqrt(x int64) int64 { return Iroot(x, 2) }

// IsqrtInt is Isqrt on machine ints, for call sites sizing instances.
func IsqrtInt(x int) int { return int(Isqrt(int64(x))) }

// Ipow returns min(b^k, 2^62) without overflow.
func Ipow(b int64, k int) int64 {
	const cap62 = int64(1) << 62
	out := int64(1)
	for i := 0; i < k; i++ {
		if b != 0 && out > cap62/b {
			return cap62
		}
		out *= b
	}
	return out
}
