package primitives

import (
	"fmt"

	"repro/internal/mpc"
	"repro/internal/relation"
)

// LookupResult is handed to the combine callback of Lookup for every x item.
type LookupResult struct {
	Found  bool
	DTuple relation.Tuple
	DAnnot int64
}

// Lookup is the paper's multi-search primitive specialized to the uses in
// the paper's algorithms: for every item of x, find the unique d item with
// an equal key (exact match; d must have at most one item per key, as
// produced by SumByKey/DistinctByKey) and rewrite the x item via combine.
// combine returns the replacement item and whether to keep it.
//
// The implementation is sort-based and therefore skew-proof: x and d are
// sorted together by key (d entries first), cut into p equal chunks, and
// the "last seen d entry" flows across chunk boundaries through the
// coordinator. Load: O((|x|+|d|)/p + p) in O(1) rounds.
//
// Records are collected into a pooled columnar set with flat fixed-width
// keys: building a key copies its values into the key buffer, comparing
// keys is a word-wise value loop, and the columns are recycled on return —
// no per-call []rec rebuild and no byte-string interning. Duplicate
// directory keys surface as adjacent d records in the sorted order (d
// records sort before x records of the same key), so the boundary scan
// doubles as the duplicate check.
//
//lint:load perP
//lint:rounds const
func Lookup(x *mpc.Dist, xKey []relation.Attr, d *mpc.Dist, dKey []relation.Attr,
	outSchema relation.Schema,
	combine func(it mpc.Item, r LookupResult) (mpc.Item, bool)) *mpc.Dist {

	xPos := x.Positions(xKey)
	dPos := d.Positions(dKey)

	rc := getRecCols(x.Size() + d.Size())
	for s := range d.Parts {
		part := &d.Parts[s]
		for i := 0; i < part.Len(); i++ {
			rc.appendKeyed(part.Tuple(i), dPos, 0, part.Annot(i))
		}
	}
	// An empty probe side has an empty result; a trivially-empty sub-query
	// must not pay the sort and coordinator rounds. The duplicate-key check
	// runs before the early-out, so a malformed directory still panics.
	if x.Size() == 0 {
		verifyDistinctDirectory(rc)
		putRecCols(rc)
		return mpc.NewDist(x.C, outSchema)
	}
	for s := range x.Parts {
		part := &x.Parts[s]
		for i := 0; i < part.Len(); i++ {
			rc.appendKeyed(part.Tuple(i), xPos, 1, part.Annot(i))
		}
	}

	bounds := sortAndChop(x.C, rc)

	// Boundary propagation: carry[s] = the row of the latest d record at or
	// before the start of chunk s (−1: none). One coordinator exchange.
	// Equal-key d records are adjacent here — the duplicate-directory check.
	carry := make([]int, x.C.P)
	last := -1
	for s := 0; s < x.C.P; s++ {
		carry[s] = last
		for i := bounds[s]; i < bounds[s+1]; i++ {
			if rc.tags[i] == 0 {
				if last >= 0 && rc.keyEq(last, i) {
					panic(fmt.Sprintf("primitives: Lookup directory has duplicate key %v", rc.key(i)))
				}
				last = i
			}
		}
	}
	chargeCoordinatorExchange(x.C)

	out := mpc.NewDist(x.C, outSchema)
	for s := 0; s < x.C.P; s++ {
		cur := carry[s]
		for i := bounds[s]; i < bounds[s+1]; i++ {
			if rc.tags[i] == 0 {
				cur = i
				continue
			}
			res := LookupResult{}
			if cur >= 0 && rc.keyEq(cur, i) {
				res = LookupResult{Found: true, DTuple: rc.tuples[cur], DAnnot: rc.annots[cur]}
			}
			if it, keep := combine(rc.item(i), res); keep {
				out.Parts[s].AppendItem(it)
			}
		}
	}
	putRecCols(rc)
	return out
}

// verifyDistinctDirectory panics when the staged directory records carry a
// duplicate key. Only the empty-probe early-out needs it — the sorted path
// detects duplicates as adjacent d records for free — so a small map over
// encoded keys is fine here: the path charges no rounds and is off every
// hot loop.
func verifyDistinctDirectory(rc *recCols) {
	seen := make(map[string]bool, rc.len())
	for i := 0; i < rc.len(); i++ {
		k := relation.EncodeValues(rc.key(i)...)
		if seen[k] {
			panic(fmt.Sprintf("primitives: Lookup directory has duplicate key %v", rc.key(i)))
		}
		seen[k] = true
	}
}

// SemiJoin returns the items of x whose key projection matches at least one
// item of d (R1 ⋉ R2 in the paper's Section 2). d may contain duplicates;
// it is first reduced to one entry per key. The sort underneath is
// splitter-based but deterministic (stride sampling, no RNG), so no salt
// is needed — the parameter the old hash-based sketches reserved is gone.
//
//lint:load perP
//lint:rounds const
func SemiJoin(x *mpc.Dist, xKey []relation.Attr, d *mpc.Dist, dKey []relation.Attr) *mpc.Dist {
	// An empty probe side is empty output; don't pay for sorting the
	// directory either.
	if x.Size() == 0 {
		return mpc.NewDist(x.C, x.Schema)
	}
	dir := DistinctByKey(d, dKey)
	return Lookup(x, xKey, dir, dKey, x.Schema,
		func(it mpc.Item, r LookupResult) (mpc.Item, bool) {
			return it, r.Found
		})
}

// AntiJoin returns the items of x with no matching key in d.
//
//lint:load perP
//lint:rounds const
func AntiJoin(x *mpc.Dist, xKey []relation.Attr, d *mpc.Dist, dKey []relation.Attr) *mpc.Dist {
	if x.Size() == 0 {
		return mpc.NewDist(x.C, x.Schema)
	}
	dir := DistinctByKey(d, dKey)
	return Lookup(x, xKey, dir, dKey, x.Schema,
		func(it mpc.Item, r LookupResult) (mpc.Item, bool) {
			return it, !r.Found
		})
}

// AttachAnnot rewrites each x item's annotation by combining it with the
// annotation of the matching d entry via ring.Mul; items without a match
// are dropped when dropMissing, kept unchanged otherwise. This is the
// annotation-merge step (line 9) of LinearAggroYannakakis.
//
//lint:load perP
//lint:rounds const
func AttachAnnot(x *mpc.Dist, xKey []relation.Attr, d *mpc.Dist, dKey []relation.Attr,
	ring relation.Semiring, dropMissing bool) *mpc.Dist {
	return Lookup(x, xKey, d, dKey, x.Schema,
		func(it mpc.Item, r LookupResult) (mpc.Item, bool) {
			if !r.Found {
				return it, !dropMissing
			}
			return mpc.Item{T: it.T, A: ring.Mul(it.A, r.DAnnot)}, true
		})
}

// DistinctByKey reduces d to one item per distinct key projection,
// sort-based and skew-proof. The kept item is the first in sort order; its
// annotation is NOT combined (use SumByKey for that).
//
//lint:load perP
//lint:rounds const
func DistinctByKey(d *mpc.Dist, keyAttrs []relation.Attr) *mpc.Dist {
	pos := d.Positions(keyAttrs)
	schema := relation.NewSchema(keyAttrs...)
	if d.Size() == 0 {
		return mpc.NewDist(d.C, schema)
	}
	// Local dedup first (combiner): at most one record per (server, key),
	// tracked with a per-part map over the encoded key built in one shared
	// scratch buffer (a string is allocated only per locally-distinct key).
	rc := getRecCols(d.Size())
	var buf []byte
	for s := range d.Parts {
		part := &d.Parts[s]
		seen := make(map[string]bool)
		for i := 0; i < part.Len(); i++ {
			t := part.Tuple(i)
			buf = relation.AppendKeyAt(buf[:0], t, pos)
			if seen[string(buf)] {
				continue
			}
			seen[string(buf)] = true
			proj := make(relation.Tuple, len(pos))
			for j, p := range pos {
				proj[j] = t[p]
			}
			rc.appendSelfKeyed(proj, 0, part.Annot(i))
		}
	}
	bounds := sortAndChop(d.C, rc)
	// Cross-chunk dedup: each server drops its first run if the previous
	// chunk ends with the same key (boundary info via coordinator). Equal
	// keys are adjacent after the sort, so the previously kept row index is
	// all the boundary state needed.
	chargeCoordinatorExchange(d.C)
	out := mpc.NewDist(d.C, schema)
	prev := -1
	for s := 0; s < d.C.P; s++ {
		for i := bounds[s]; i < bounds[s+1]; i++ {
			if prev >= 0 && rc.keyEq(prev, i) {
				continue
			}
			out.Parts[s].Append(rc.tuples[i], rc.annots[i])
			prev = i
		}
	}
	putRecCols(rc)
	return out
}
