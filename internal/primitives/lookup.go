package primitives

import (
	"fmt"

	"repro/internal/mpc"
	"repro/internal/relation"
)

// LookupResult is handed to the combine callback of Lookup for every x item.
type LookupResult struct {
	Found  bool
	DTuple relation.Tuple
	DAnnot int64
}

// Lookup is the paper's multi-search primitive specialized to the uses in
// the paper's algorithms: for every item of x, find the unique d item with
// an equal key (exact match; d must have at most one item per key, as
// produced by SumByKey/DistinctByKey) and rewrite the x item via combine.
// combine returns the replacement item and whether to keep it.
//
// The implementation is sort-based and therefore skew-proof: x and d are
// sorted together by key (d entries first), cut into p equal chunks, and
// the "last seen d entry" flows across chunk boundaries through the
// coordinator. Load: O((|x|+|d|)/p + p) in O(1) rounds.
func Lookup(x *mpc.Dist, xKey []relation.Attr, d *mpc.Dist, dKey []relation.Attr,
	outSchema relation.Schema,
	combine func(it mpc.Item, r LookupResult) (mpc.Item, bool)) *mpc.Dist {

	xPos := x.Positions(xKey)
	dPos := d.Positions(dKey)

	recs := make([]rec, 0, x.Size()+d.Size())
	dupCheck := make(map[string]bool, d.Size())
	for _, part := range d.Parts {
		for _, it := range part {
			k := relation.KeyAt(it.T, dPos)
			if dupCheck[k] {
				panic(fmt.Sprintf("primitives: Lookup directory has duplicate key %v", relation.DecodeKey(k)))
			}
			dupCheck[k] = true
			recs = append(recs, rec{key: k, tag: 0, it: it})
		}
	}
	// An empty probe side has an empty result; a trivially-empty sub-query
	// must not pay the sort and coordinator rounds. Checked only after the
	// directory scan above, so a malformed directory still panics.
	if x.Size() == 0 {
		return mpc.NewDist(x.C, outSchema)
	}
	for _, part := range x.Parts {
		for _, it := range part {
			recs = append(recs, rec{key: relation.KeyAt(it.T, xPos), tag: 1, it: it})
		}
	}

	chunks := sortAndChop(x.C, recs)

	// Boundary propagation: carry[s] = the latest d record at or before the
	// start of chunk s. One coordinator exchange.
	carry := make([]*rec, x.C.P)
	var last *rec
	for s := range chunks {
		carry[s] = last
		for i := range chunks[s] {
			if chunks[s][i].tag == 0 {
				r := chunks[s][i]
				last = &r
			}
		}
	}
	chargeCoordinatorExchange(x.C)

	out := mpc.NewDist(x.C, outSchema)
	for s, chunk := range chunks {
		cur := carry[s]
		for _, r := range chunk {
			if r.tag == 0 {
				rr := r
				cur = &rr
				continue
			}
			res := LookupResult{}
			if cur != nil && cur.key == r.key {
				res = LookupResult{Found: true, DTuple: cur.it.T, DAnnot: cur.it.A}
			}
			if it, keep := combine(r.it, res); keep {
				out.Parts[s] = append(out.Parts[s], it)
			}
		}
	}
	return out
}

// SemiJoin returns the items of x whose key projection matches at least one
// item of d (R1 ⋉ R2 in the paper's Section 2). d may contain duplicates;
// it is first reduced to one entry per key. The sort underneath is
// splitter-based but deterministic (stride sampling, no RNG), so no salt
// is needed — the parameter the old hash-based sketches reserved is gone.
func SemiJoin(x *mpc.Dist, xKey []relation.Attr, d *mpc.Dist, dKey []relation.Attr) *mpc.Dist {
	// An empty probe side is empty output; don't pay for sorting the
	// directory either.
	if x.Size() == 0 {
		return mpc.NewDist(x.C, x.Schema)
	}
	dir := DistinctByKey(d, dKey)
	return Lookup(x, xKey, dir, dKey, x.Schema,
		func(it mpc.Item, r LookupResult) (mpc.Item, bool) {
			return it, r.Found
		})
}

// AntiJoin returns the items of x with no matching key in d.
func AntiJoin(x *mpc.Dist, xKey []relation.Attr, d *mpc.Dist, dKey []relation.Attr) *mpc.Dist {
	if x.Size() == 0 {
		return mpc.NewDist(x.C, x.Schema)
	}
	dir := DistinctByKey(d, dKey)
	return Lookup(x, xKey, dir, dKey, x.Schema,
		func(it mpc.Item, r LookupResult) (mpc.Item, bool) {
			return it, !r.Found
		})
}

// AttachAnnot rewrites each x item's annotation by combining it with the
// annotation of the matching d entry via ring.Mul; items without a match
// are dropped when dropMissing, kept unchanged otherwise. This is the
// annotation-merge step (line 9) of LinearAggroYannakakis.
func AttachAnnot(x *mpc.Dist, xKey []relation.Attr, d *mpc.Dist, dKey []relation.Attr,
	ring relation.Semiring, dropMissing bool) *mpc.Dist {
	return Lookup(x, xKey, d, dKey, x.Schema,
		func(it mpc.Item, r LookupResult) (mpc.Item, bool) {
			if !r.Found {
				return it, !dropMissing
			}
			return mpc.Item{T: it.T, A: ring.Mul(it.A, r.DAnnot)}, true
		})
}

// DistinctByKey reduces d to one item per distinct key projection,
// sort-based and skew-proof. The kept item is the first in sort order; its
// annotation is NOT combined (use SumByKey for that).
func DistinctByKey(d *mpc.Dist, keyAttrs []relation.Attr) *mpc.Dist {
	pos := d.Positions(keyAttrs)
	schema := relation.NewSchema(keyAttrs...)
	if d.Size() == 0 {
		return mpc.NewDist(d.C, schema)
	}
	// Local dedup first (combiner): at most one record per (server, key).
	recs := make([]rec, 0, d.Size())
	for _, part := range d.Parts {
		seen := make(map[string]bool)
		for _, it := range part {
			k := relation.KeyAt(it.T, pos)
			if seen[k] {
				continue
			}
			seen[k] = true
			proj := make(relation.Tuple, len(pos))
			for i, p := range pos {
				proj[i] = it.T[p]
			}
			recs = append(recs, rec{key: k, it: mpc.Item{T: proj, A: it.A}})
		}
	}
	chunks := sortAndChop(d.C, recs)
	// Cross-chunk dedup: each server drops its first run if the previous
	// chunk ends with the same key (boundary info via coordinator).
	chargeCoordinatorExchange(d.C)
	out := mpc.NewDist(d.C, schema)
	prevLast := ""
	havePrev := false
	for s, chunk := range chunks {
		for _, r := range chunk {
			if havePrev && r.key == prevLast {
				continue
			}
			out.Parts[s] = append(out.Parts[s], r.it)
			prevLast, havePrev = r.key, true
		}
	}
	return out
}
