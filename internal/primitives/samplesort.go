package primitives

import (
	"sort"

	"repro/internal/mpc"
	"repro/internal/relation"
	"repro/internal/runtime"
)

// The parallel sample sort, columnar edition.
//
// sortAndChop runs the paper's one-round sample sort for real on
// runtime.Fork — splitter sampling, parallel range partition, concurrent
// per-range sorts — but the sort itself never moves a record: it sorts an
// int32 rank vector (indices into the record columns) and permutes the
// key/tag/tuple/annot columns exactly once at the end. The per-range merge
// passes therefore move 4-byte indices instead of ~56-byte records, which
// closes the ROADMAP note on the merge-copy traffic of the old []rec sort,
// and every scratch vector comes from the record pool.
//
//  1. Splitters. A deterministic stride sample of the keys is sorted and
//     cut at regular positions into b−1 splitters (b = data-plane width),
//     oversampled so skewed key distributions still yield balanced ranges.
//     Splitters live in one flat fixed-width value buffer, like the keys.
//  2. Partition. The rank vector is cut into b contiguous segments; each
//     forked task classifies its segment's rows into key ranges (a binary
//     search over the flat splitter buffer with word-wise key compares —
//     a pure function of the key, so every occurrence of a key lands in
//     the same range) and counts per (segment, range). Prefix sums in
//     (range, segment) order then give every task a disjoint write window
//     per range, and a second forked pass scatters the indices —
//     lock-free, one pooled buffer.
//  3. Sort. Each range's index window is stable-sorted concurrently;
//     ranges are contiguous and ordered, so the concatenated rank vector
//     is the globally sorted permutation, applied once per column.
//
// Determinism is structural, not incidental: within a range the scatter
// preserves global input order (segments are contiguous in input order and
// the write windows are prefix sums in segment order), so stable-sorting
// each range and concatenating yields exactly the unique stable sort by
// (key, tag) — the same permutation serialSortAndChopRef produces — for
// every width and every splitter choice. runtime.SetParallelism(1) and
// small inputs take the serial rank sort, which is byte-identical anyway.

// sampleSortSerialBelow is the record count under which the sort runs as a
// single sequential rank sort: splitter sampling and two extra passes cost
// more than they save, and the output is byte-identical either way.
const sampleSortSerialBelow = 1 << 12

// splitterOversample is the number of sampled keys per range; regular
// sampling at this rate keeps expected range sizes within a constant
// factor of n/b even on adversarial key distributions.
const splitterOversample = 8

// sortAndChop globally sorts the record columns by (key, tag) with the
// parallel sample sort and distributes them into p equal chunks, charging
// each server its chunk size in one round (the paper's one-round sample
// sort with linear load). Chunk s is rows [bounds[s], bounds[s+1]) of rc.
//
//lint:load perP
//lint:rounds const
func sortAndChop(c *mpc.Cluster, rc *recCols) []int {
	sampleSortCols(rc, runtime.Parallelism())
	return chopBounds(c, rc.len())
}

// sampleSortCols stable-sorts the record columns by (key, tag) with b
// partition tasks. All scratch comes from one pooled sortScratch: a
// steady-state sort allocates nothing but the splitter sample.
//
//lint:alloc-ceiling
func sampleSortCols(rc *recCols, b int) {
	n := rc.len()
	if n < 2 {
		return
	}
	if b > n {
		b = n
	}
	sc := getSortScratch()
	defer putSortScratch(sc)
	sc.order = ensureSlice(sc.order, n)
	sc.ranges = ensureSlice(sc.ranges, n)
	order := sc.order

	if n < sampleSortSerialBelow || b <= 1 {
		for i := range order {
			order[i] = int32(i)
		}
		permuteCols(rc, sc, stableSortIdx(rc, order, sc.ranges))
		return
	}

	splitters, nsp := sampleSplitters(rc, b)
	nr := nsp + 1

	// Segment bounds: b contiguous segments in input order.
	segLo := func(t int) int { return t * n / b }

	// Counting pass: each task classifies its segment into ranges.
	ranges := sc.ranges
	sc.perTask = taskVecs(sc.perTask, b, nr)
	counts := sc.perTask
	runtime.Fork(b, func(t int) {
		cnt := counts[t]
		for i := range cnt {
			cnt[i] = 0
		}
		for i := segLo(t); i < segLo(t+1); i++ {
			r := searchSplitters(splitters, nsp, rc, i)
			ranges[i] = r
			cnt[r]++
		}
	})

	// Prefix sums in (range, segment) order: rangeStart bounds each range
	// in the rank vector; bases give each task its disjoint write window
	// per range, in segment order — global input order per range.
	rangeStart := make([]int, nr+1)
	sc.bases = taskVecs(sc.bases, b, nr)
	bases := sc.bases
	off := 0
	for r := 0; r < nr; r++ {
		rangeStart[r] = off
		for t := 0; t < b; t++ {
			bases[t][r] = int32(off)
			off += int(counts[t][r])
		}
	}
	rangeStart[nr] = off

	// Scatter pass: indices into disjoint pre-computed windows, no locks.
	// The per-task counters are dead after the prefix sums, so they double
	// as the write cursors.
	runtime.Fork(b, func(t int) {
		cur := counts[t]
		copy(cur, bases[t])
		for i := segLo(t); i < segLo(t+1); i++ {
			r := ranges[i]
			order[cur[r]] = int32(i)
			cur[r]++
		}
	})

	// Sort each range's index window concurrently. The ranges vector is
	// dead after the scatter, so its windows double as the merge buffers —
	// disjoint, no extra allocation, no locks.
	runtime.Fork(nr, func(r int) {
		lo, hi := rangeStart[r], rangeStart[r+1]
		if lo == hi {
			return
		}
		if sorted := stableSortIdx(rc, order[lo:hi], ranges[lo:hi]); &sorted[0] != &order[lo] {
			copy(order[lo:hi], sorted)
		}
	})

	permuteCols(rc, sc, order)
}

// permuteCols applies the sorted rank vector to every column in one pass
// per column, through the scratch's permute columns, which are swapped in
// (the record set's old columns become the next sort's scratch).
//
//lint:alloc-ceiling
func permuteCols(rc *recCols, sc *sortScratch, order []int32) {
	n := len(order)
	kw := rc.kw
	ks := ensureSlice(sc.keys, n*kw)
	ts := ensureSlice(sc.tags, n)
	tp := ensureSlice(sc.tuples, n)
	as := ensureSlice(sc.annots, n)
	for j, i := range order {
		ts[j] = rc.tags[i]
		tp[j] = rc.tuples[i]
		as[j] = rc.annots[i]
	}
	switch kw {
	case 0:
	case 1:
		for j, i := range order {
			ks[j] = rc.keys[i]
		}
	default:
		for j, i := range order {
			copy(ks[j*kw:j*kw+kw], rc.keys[int(i)*kw:int(i)*kw+kw])
		}
	}
	sc.keys, rc.keys = rc.keys[:0], ks
	sc.tags, rc.tags = rc.tags[:0], ts
	sc.tuples, rc.tuples = rc.tuples[:0], tp
	sc.annots, rc.annots = rc.annots[:0], as
}

// insertionRun is the block size seeded by insertion sort before the merge
// passes take over.
const insertionRun = 24

// stableSortIdx sorts the index vector a by the records it points at —
// rc.less, ties keeping input order — with a bottom-up stable merge sort
// through the caller-provided buffer (len(buf) ≥ len(a)): insertion-sorted
// runs, then buffered merges of 4-byte indices. The sorted vector ends in
// a or in buf depending on the pass count; the returned slice is whichever
// holds it, so the caller copies only when it actually needs the other one.
//
//lint:alloc-ceiling
func stableSortIdx(rc *recCols, a, buf []int32) []int32 {
	n := len(a)
	if n < 2 {
		return a
	}
	for lo := 0; lo < n; lo += insertionRun {
		hi := lo + insertionRun
		if hi > n {
			hi = n
		}
		insertionSortIdx(rc, a[lo:hi])
	}
	src, dst := a, buf[:n]
	for width := insertionRun; width < n; width *= 2 {
		for lo := 0; lo < n; lo += 2 * width {
			mid, hi := lo+width, lo+2*width
			if mid > n {
				mid = n
			}
			if hi > n {
				hi = n
			}
			mergeIdx(rc, dst[lo:hi], src[lo:mid], src[mid:hi])
		}
		src, dst = dst, src
	}
	return src
}

// insertionSortIdx is a stable insertion sort: an index moves left only
// past strictly greater records.
//
//lint:alloc-ceiling
func insertionSortIdx(rc *recCols, a []int32) {
	for i := 1; i < len(a); i++ {
		x := a[i]
		j := i - 1
		for j >= 0 && rc.less(x, a[j]) {
			a[j+1] = a[j]
			j--
		}
		a[j+1] = x
	}
}

// mergeIdx merges sorted index runs a and b into dst (len(dst) =
// len(a)+len(b)), taking from a on ties — the stability rule.
//
//lint:alloc-ceiling
func mergeIdx(rc *recCols, dst, a, b []int32) {
	i, j, k := 0, 0, 0
	for i < len(a) && j < len(b) {
		if rc.less(b[j], a[i]) {
			dst[k] = b[j]
			j++
		} else {
			dst[k] = a[i]
			i++
		}
		k++
	}
	k += copy(dst[k:], a[i:])
	copy(dst[k:], b[j:])
}

// sampleSplitters returns at most b−1 sorted splitter keys cutting the key
// space into b near-equal ranges: a deterministic stride sample (no RNG,
// no seed — the same keys always yield the same splitters), sorted and
// cut at regular positions. The splitters come back as one flat
// fixed-width value buffer (rc.kw values per splitter) plus the splitter
// count. Duplicate splitters are collapsed; the ranges they would bound
// are empty anyway.
func sampleSplitters(rc *recCols, b int) ([]relation.Value, int) {
	n := rc.len()
	kw := rc.kw
	want := b * splitterOversample
	stride := n / want
	if stride < 1 {
		stride = 1
	}
	sample := make([]int32, 0, want+1)
	for i := 0; i < n; i += stride {
		sample = append(sample, int32(i))
	}
	// Rows with equal keys are interchangeable under this order, so the
	// unstable sort still cuts deterministic splitter values.
	sort.Slice(sample, func(x, y int) bool {
		return rc.keyLess(int(sample[x]), int(sample[y]))
	})
	flat := make([]relation.Value, 0, (b-1)*kw)
	nsp := 0
	for i := 1; i < b; i++ {
		row := int(sample[i*len(sample)/b])
		key := rc.key(row)
		if nsp > 0 && keyWindowEqual(flat[(nsp-1)*kw:nsp*kw], key) {
			continue
		}
		flat = append(flat, key...)
		nsp++
	}
	return flat, nsp
}

// searchSplitters returns the range index of row i: the number of
// splitters strictly less than the row's key — the flat-buffer equivalent
// of sort.SearchStrings over encoded keys (identical order, word-wise
// compares).
func searchSplitters(spl []relation.Value, nsp int, rc *recCols, i int) int32 {
	kw := rc.kw
	key := rc.keys[i*kw : i*kw+kw]
	lo, hi := 0, nsp
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if keyWindowLess(spl[mid*kw:mid*kw+kw], key) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return int32(lo)
}

// keyWindowLess is the strict lexicographic order on equal-width key
// windows — the same order the byte-string encoding produced.
func keyWindowLess(a, b []relation.Value) bool {
	for k := range a {
		if a[k] != b[k] {
			return a[k] < b[k]
		}
	}
	return false
}

// keyWindowEqual reports whether two equal-width key windows hold the same
// values.
func keyWindowEqual(a, b []relation.Value) bool {
	for k := range a {
		if a[k] != b[k] {
			return false
		}
	}
	return true
}
