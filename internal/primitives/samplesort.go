package primitives

import (
	"sort"

	"repro/internal/mpc"
	"repro/internal/runtime"
)

// The parallel sample sort: the last serial O(IN log IN) inside a cell.
//
// sortAndChop used to stand the paper's one-round sample sort in with a
// single sort.SliceStable on the coordinator. This file runs the charged
// topology for real, on runtime.Fork:
//
//  1. Splitters. A deterministic stride sample of the keys is sorted and
//     cut at regular positions into b−1 splitters (b = data-plane width),
//     oversampled so skewed key distributions still yield balanced ranges.
//  2. Partition. The records are cut into b contiguous segments; each
//     forked task classifies its segment's records into key ranges
//     (sort.SearchStrings over the splitters — a pure function of the key,
//     so every occurrence of a key lands in the same range) and counts per
//     (segment, range). Prefix sums in (range, segment) order then give
//     every task a disjoint write window per range, and a second forked
//     pass scatters the records — lock-free, one exact-capacity buffer.
//  3. Sort. Each range is stable-sorted concurrently and copied back into
//     place; ranges are contiguous and ordered, so the concatenation is
//     globally sorted.
//
// Determinism is structural, not incidental: within a range the scatter
// preserves global input order (segments are contiguous in input order and
// the write windows are prefix sums in segment order), so stable-sorting
// each range and concatenating yields exactly the unique stable sort by
// (key, tag) — the same permutation serialSortAndChopRef produces — for
// every width and every splitter choice. runtime.SetParallelism(1) and
// small inputs take the serial path, which is byte-identical anyway.

// sampleSortSerialBelow is the record count under which the sort runs
// serially: splitter sampling and two extra passes cost more than they
// save, and the output is byte-identical either way.
const sampleSortSerialBelow = 1 << 12

// splitterOversample is the number of sampled keys per range; regular
// sampling at this rate keeps expected range sizes within a constant
// factor of n/b even on adversarial key distributions.
const splitterOversample = 8

// sortAndChop globally sorts records by (key, tag) with the parallel
// sample sort and distributes them into p equal chunks, charging each
// server its chunk size in one round (the paper's one-round sample sort
// with linear load).
func sortAndChop(c *mpc.Cluster, recs []rec) [][]rec {
	sampleSortRecs(recs)
	return chop(c, recs)
}

// sampleSortRecs stable-sorts recs by (key, tag) in place, in parallel.
func sampleSortRecs(recs []rec) {
	n := len(recs)
	b := runtime.Parallelism()
	if b > n {
		b = n
	}
	if n < sampleSortSerialBelow {
		// Small inputs — the common case for sub-queries and reduced
		// instances — keep the allocation-free in-place sort.
		sort.SliceStable(recs, func(i, j int) bool { return recLess(recs[i], recs[j]) })
		return
	}
	if b <= 1 {
		// Large input, one worker: the buffered merge sort still beats
		// SliceStable's in-place block rotations, scratch and all.
		if sorted := stableSortRecs(recs, make([]rec, n)); &sorted[0] != &recs[0] {
			copy(recs, sorted)
		}
		return
	}

	splitters := sampleSplitters(recs, b)

	// Segment bounds: b contiguous segments in input order.
	segLo := func(t int) int { return t * n / b }

	// Counting pass: each task classifies its segment into ranges.
	ranges := make([]int32, n)
	counts := make([][]int32, b)
	runtime.Fork(b, func(t int) {
		cnt := make([]int32, len(splitters)+1)
		for i := segLo(t); i < segLo(t+1); i++ {
			r := int32(sort.SearchStrings(splitters, recs[i].key))
			ranges[i] = r
			cnt[r]++
		}
		counts[t] = cnt
	})

	// Prefix sums in (range, segment) order: rangeStart bounds each range
	// in the scratch buffer; bases give each task its disjoint write
	// window per range, in segment order — global input order per range.
	nr := len(splitters) + 1
	rangeStart := make([]int, nr+1)
	bases := make([][]int32, b)
	for t := range bases {
		bases[t] = make([]int32, nr)
	}
	off := 0
	for r := 0; r < nr; r++ {
		rangeStart[r] = off
		for t := 0; t < b; t++ {
			bases[t][r] = int32(off)
			off += int(counts[t][r])
		}
	}
	rangeStart[nr] = off

	// Scatter pass: disjoint pre-computed windows, no locks.
	scratch := make([]rec, n)
	runtime.Fork(b, func(t int) {
		cur := make([]int32, nr)
		copy(cur, bases[t])
		for i := segLo(t); i < segLo(t+1); i++ {
			r := ranges[i]
			scratch[cur[r]] = recs[i]
			cur[r]++
		}
	})

	// Sort each range concurrently back into place. The range's window of
	// recs is dead after the scatter, so it doubles as the merge buffer —
	// disjoint windows, no extra allocation, no locks — and a range whose
	// merge passes end in the recs window needs no copy at all.
	runtime.Fork(nr, func(r int) {
		lo, hi := rangeStart[r], rangeStart[r+1]
		if lo == hi {
			return
		}
		if sorted := stableSortRecs(scratch[lo:hi], recs[lo:hi]); &sorted[0] != &recs[lo] {
			copy(recs[lo:hi], sorted)
		}
	})
}

// insertionRun is the block size seeded by insertion sort before the merge
// passes take over.
const insertionRun = 24

// stableSortRecs sorts a by (key, tag) with a bottom-up stable merge sort
// through the caller-provided buffer (len(buf) ≥ len(a)): insertion-sorted
// runs, then buffered merges. Buffered merges copy instead of rotating
// blocks in place, which is what makes this measurably faster than
// sort.SliceStable — the win BenchmarkSampleSort vs BenchmarkSerialSortRef
// tracks even at data-plane width 1. The sorted data ends in a or in buf
// depending on the pass count; the returned slice is whichever holds it,
// so the caller copies only when it actually needs the other one.
func stableSortRecs(a, buf []rec) []rec {
	n := len(a)
	if n < 2 {
		return a
	}
	for lo := 0; lo < n; lo += insertionRun {
		hi := lo + insertionRun
		if hi > n {
			hi = n
		}
		insertionSortRecs(a[lo:hi])
	}
	src, dst := a, buf[:n]
	for width := insertionRun; width < n; width *= 2 {
		for lo := 0; lo < n; lo += 2 * width {
			mid, hi := lo+width, lo+2*width
			if mid > n {
				mid = n
			}
			if hi > n {
				hi = n
			}
			mergeRecs(dst[lo:hi], src[lo:mid], src[mid:hi])
		}
		src, dst = dst, src
	}
	return src
}

// insertionSortRecs is a stable insertion sort: an element moves left only
// past strictly greater predecessors.
func insertionSortRecs(a []rec) {
	for i := 1; i < len(a); i++ {
		x := a[i]
		j := i - 1
		for j >= 0 && recLess(x, a[j]) {
			a[j+1] = a[j]
			j--
		}
		a[j+1] = x
	}
}

// mergeRecs merges sorted runs a and b into dst (len(dst) = len(a)+len(b)),
// taking from a on ties — the stability rule.
func mergeRecs(dst, a, b []rec) {
	i, j, k := 0, 0, 0
	for i < len(a) && j < len(b) {
		if recLess(b[j], a[i]) {
			dst[k] = b[j]
			j++
		} else {
			dst[k] = a[i]
			i++
		}
		k++
	}
	k += copy(dst[k:], a[i:])
	copy(dst[k:], b[j:])
}

// sampleSplitters returns at most b−1 sorted splitter keys cutting the key
// space into b near-equal ranges: a deterministic stride sample (no RNG,
// no seed — the same records always yield the same splitters), sorted and
// cut at regular positions. Duplicate splitters are collapsed; the ranges
// they would bound are empty anyway.
func sampleSplitters(recs []rec, b int) []string {
	n := len(recs)
	want := b * splitterOversample
	stride := n / want
	if stride < 1 {
		stride = 1
	}
	sample := make([]string, 0, want+1)
	for i := 0; i < n; i += stride {
		sample = append(sample, recs[i].key)
	}
	sort.Strings(sample)
	splitters := make([]string, 0, b-1)
	for i := 1; i < b; i++ {
		s := sample[i*len(sample)/b]
		if len(splitters) == 0 || s != splitters[len(splitters)-1] {
			splitters = append(splitters, s)
		}
	}
	return splitters
}
