// Package primitives implements the MPC building blocks of Section 2 of the
// paper: sum-by-key, multi-numbering, multi-search (as sorted lookup),
// semi-join, parallel-packing and server allocation. All run in O(1) rounds
// with load O(IN/p + p), which is O(IN/p) under the model's standing
// assumption IN ≥ p^{1+ε}.
//
// Skew-sensitive primitives (lookup, numbering, distinct) are built on a
// simulated sample sort (Goodrich et al. [14]): records are globally sorted
// by key and cut into p equal chunks, so a heavy key spreads over
// consecutive servers instead of hashing onto one; per-chunk boundary
// information then flows through a coordinator at O(p) load.
package primitives

import (
	"sort"

	"repro/internal/mpc"
)

// rec is a sortable record: a key, a tie-break tag (d-side records sort
// before x-side records of the same key), and the carried item.
type rec struct {
	key string
	tag uint8
	it  mpc.Item
}

// sortAndChop globally sorts records by (key, tag) and distributes them into
// p equal chunks, charging each server its chunk size in one round. This is
// the simulator's stand-in for a one-round sample sort with linear load.
func sortAndChop(c *mpc.Cluster, recs []rec) [][]rec {
	sort.SliceStable(recs, func(i, j int) bool {
		if recs[i].key != recs[j].key {
			return recs[i].key < recs[j].key
		}
		return recs[i].tag < recs[j].tag
	})
	p := c.P
	n := len(recs)
	chunk := (n + p - 1) / p
	if chunk == 0 {
		chunk = 1
	}
	chunks := make([][]rec, p)
	loads := make([]int, p)
	for i := 0; i < n; i++ {
		s := i / chunk
		if s >= p {
			s = p - 1
		}
		chunks[s] = append(chunks[s], recs[i])
		loads[s]++
	}
	c.ChargeRound(loads)
	return chunks
}

// chargeCoordinatorExchange charges the standard boundary-information
// exchange: every server sends O(1) values to the coordinator (load p at
// server 0), which replies with O(1) values to each server (load 1 each).
func chargeCoordinatorExchange(c *mpc.Cluster) {
	c.Charge(0, c.P)
	ones := make([]int, c.P)
	for i := range ones {
		ones[i] = 1
	}
	c.ChargeRound(ones)
}
