// Package primitives implements the MPC building blocks of Section 2 of the
// paper: sum-by-key, multi-numbering, multi-search (as sorted lookup),
// semi-join, parallel-packing and server allocation. All run in O(1) rounds
// with load O(IN/p + p), which is O(IN/p) under the model's standing
// assumption IN ≥ p^{1+ε}.
//
// Skew-sensitive primitives (lookup, numbering, distinct) are built on a
// one-round sample sort (Goodrich et al. [14]): records are globally sorted
// by key and cut into p equal chunks, so a heavy key spreads over
// consecutive servers instead of hashing onto one; per-chunk boundary
// information then flows through a coordinator at O(p) load. The simulator
// runs the sort as a real parallel sample sort over runtime.Fork — splitter
// sampling, parallel range partition, concurrent per-range sorts — matching
// the topology the cost model charges (see samplesort.go).
package primitives

import (
	"fmt"
	"sort"

	"repro/internal/mpc"
)

// rec is a sortable record: a key, a tie-break tag (d-side records sort
// before x-side records of the same key), and the carried item.
type rec struct {
	key string
	tag uint8
	it  mpc.Item
}

// recLess is THE record order of every skew-sensitive primitive: by key,
// ties broken by tag. The serial reference and the parallel sample sort
// must agree on it exactly.
func recLess(a, b rec) bool {
	if a.key != b.key {
		return a.key < b.key
	}
	return a.tag < b.tag
}

// chop distributes globally sorted records into p equal chunks — windows
// of the sorted slice, no copying — charging each server its chunk size in
// one round. Shared by the parallel sample sort and the serial reference,
// so both paths charge identically. Callers treat chunks as read-only.
func chop(c *mpc.Cluster, recs []rec) [][]rec {
	p := c.P
	n := len(recs)
	chunk := (n + p - 1) / p
	if chunk == 0 {
		chunk = 1
	}
	if n > 0 && (n-1)/chunk >= p {
		// Ceil division guarantees the last record lands before server p;
		// a future chunking change that breaks this must not silently
		// overload the last server.
		panic(fmt.Sprintf("primitives: chop record %d past server %d (n=%d, chunk=%d)", n-1, p-1, n, chunk))
	}
	chunks := make([][]rec, p)
	loads := make([]int, p)
	for s := 0; s < p; s++ {
		lo := s * chunk
		if lo >= n {
			break
		}
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		chunks[s] = recs[lo:hi]
		loads[s] = hi - lo
	}
	c.ChargeRound(loads)
	return chunks
}

// serialSortAndChopRef is the pre-parallel coordinator sort, kept verbatim
// as the parity and benchmark reference: sortAndChop must produce
// byte-identical chunks and identical charges at every data-plane width.
func serialSortAndChopRef(c *mpc.Cluster, recs []rec) [][]rec {
	sort.SliceStable(recs, func(i, j int) bool { return recLess(recs[i], recs[j]) })
	return chop(c, recs)
}

// chargeCoordinatorExchange charges the standard boundary-information
// exchange: every server sends O(1) values to the coordinator (load p at
// server 0), which replies with O(1) values to each server (load 1 each).
func chargeCoordinatorExchange(c *mpc.Cluster) {
	c.Charge(0, c.P)
	ones := make([]int, c.P)
	for i := range ones {
		ones[i] = 1
	}
	c.ChargeRound(ones)
}
