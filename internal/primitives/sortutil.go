// Package primitives implements the MPC building blocks of Section 2 of the
// paper: sum-by-key, multi-numbering, multi-search (as sorted lookup),
// semi-join, parallel-packing and server allocation. All run in O(1) rounds
// with load O(IN/p + p), which is O(IN/p) under the model's standing
// assumption IN ≥ p^{1+ε}.
//
// Skew-sensitive primitives (lookup, numbering, distinct) are built on a
// one-round sample sort (Goodrich et al. [14]): records are globally sorted
// by key and cut into p equal chunks, so a heavy key spreads over
// consecutive servers instead of hashing onto one; per-chunk boundary
// information then flows through a coordinator at O(p) load. The simulator
// runs the sort as a real parallel sample sort over runtime.Fork — splitter
// sampling, parallel range partition, concurrent per-range sorts — matching
// the topology the cost model charges. Records live in pooled columnar sets
// (see reccols.go) and the sort permutes an int32 rank vector, never whole
// records (see samplesort.go).
package primitives

import (
	"fmt"
	"sort"

	"repro/internal/mpc"
)

// rec is the array-of-structs record view, retained for the serial
// reference path and the tests: a key, a tie-break tag (d-side records
// sort before x-side records of the same key), and the carried item.
type rec struct {
	key string
	tag uint8
	it  mpc.Item
}

// recLess is the record order of every skew-sensitive primitive: by key,
// ties broken by tag. recCols.less is the columnar form; the serial
// reference and the parallel sample sort must agree on it exactly.
func recLess(a, b rec) bool {
	if a.key != b.key {
		return a.key < b.key
	}
	return a.tag < b.tag
}

// chopBounds distributes n globally sorted records into p equal chunks —
// index windows, no copying — charging each server its chunk size in one
// round. Chunk s is rows [bounds[s], bounds[s+1]). Shared by the parallel
// sample sort and the serial reference, so both paths charge identically.
//
//lint:load perP trust ceil-division chunking puts at most ceil(n/p) records on each server
//lint:rounds const
func chopBounds(c *mpc.Cluster, n int) []int {
	p := c.P
	chunk := (n + p - 1) / p
	if chunk == 0 {
		chunk = 1
	}
	if n > 0 && (n-1)/chunk >= p {
		// Ceil division guarantees the last record lands before server p;
		// a future chunking change that breaks this must not silently
		// overload the last server.
		panic(fmt.Sprintf("primitives: chop record %d past server %d (n=%d, chunk=%d)", n-1, p-1, n, chunk))
	}
	bounds := make([]int, p+1)
	loads := make([]int, p)
	for s := 0; s < p; s++ {
		lo := s * chunk
		if lo > n {
			lo = n
		}
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		bounds[s] = lo
		loads[s] = hi - lo
	}
	bounds[p] = n
	c.ChargeRound(loads)
	return bounds
}

// chop is chopBounds over a []rec slice, returning chunk windows. Used by
// the serial reference and the tests.
func chop(c *mpc.Cluster, recs []rec) [][]rec {
	bounds := chopBounds(c, len(recs))
	chunks := make([][]rec, c.P)
	for s := 0; s < c.P; s++ {
		if bounds[s] < bounds[s+1] {
			chunks[s] = recs[bounds[s]:bounds[s+1]]
		}
	}
	return chunks
}

// serialSortAndChopRef is the pre-parallel coordinator sort, kept verbatim
// as the parity, fuzz and benchmark reference: sortAndChop must produce
// value-identical chunks and identical charges at every data-plane width
// and with the record pool on or off.
func serialSortAndChopRef(c *mpc.Cluster, recs []rec) [][]rec {
	sort.SliceStable(recs, func(i, j int) bool { return recLess(recs[i], recs[j]) })
	return chop(c, recs)
}

// chargeCoordinatorExchange charges the standard boundary-information
// exchange: every server sends O(1) values to the coordinator (load p at
// server 0), which replies with O(1) values to each server (load 1 each).
//
//lint:load const
//lint:rounds const
func chargeCoordinatorExchange(c *mpc.Cluster) {
	c.Charge(0, c.P)
	ones := make([]int, c.P)
	for i := range ones {
		ones[i] = 1
	}
	c.ChargeRound(ones)
}
