package stats

import (
	"math"
	"testing"
)

// TestPredictKnownAlgorithms pins the per-name predictors to the bound
// functions they claim to evaluate.
func TestPredictKnownAlgorithms(t *testing.T) {
	in, out, p := 1<<12, int64(1<<15), 64
	cases := []struct {
		algo string
		want float64
	}{
		{"yannakakis", Yannakakis(in, out, p)},
		{"acyclic", Acyclic(in, out, p)},
		{"line3", Acyclic(in, out, p)},
		{"line3wc", WorstCaseLine(in, p)},
		{"rhier", RHierOutput(in, out, p)},
		{"binhc", RHierOutput(in, out, p)},
		{"hypercube", max2(Linear(in, p), PerServerOutputLower(out, p, 2))},
		{"triangle", TriangleWorstCase(in, p)},
		{"naive", float64(in)},
		{"count", Linear(in, p)},
		{"aggregate", Acyclic(in, out, p)},
	}
	for _, c := range cases {
		pr, ok := Predict(c.algo, in, out, p)
		if !ok {
			t.Errorf("Predict(%q) has no formula", c.algo)
			continue
		}
		if pr.Load != c.want {
			t.Errorf("Predict(%q) = %v, want %v", c.algo, pr.Load, c.want)
		}
		if pr.Formula == "" {
			t.Errorf("Predict(%q) has an empty formula name", c.algo)
		}
		if f, ok := PredictorFormula(c.algo); !ok || f != pr.Formula {
			t.Errorf("PredictorFormula(%q) = %q, want %q", c.algo, f, pr.Formula)
		}
	}
}

// TestPredictUnknownAlgorithm: names outside the catalog report false so
// the engine falls back to the load-class predictor.
func TestPredictUnknownAlgorithm(t *testing.T) {
	if _, ok := Predict("no-such-algorithm", 10, 10, 4); ok {
		t.Error("Predict of an unknown name should report false")
	}
	if _, ok := PredictorFormula("no-such-algorithm"); ok {
		t.Error("PredictorFormula of an unknown name should report false")
	}
}

// TestPredictFiniteOnDegenerateInputs extends the NaN-safety contract to
// every per-name predictor and every load-class fallback.
func TestPredictFiniteOnDegenerateInputs(t *testing.T) {
	algos := []string{"yannakakis", "acyclic", "line3", "line3wc", "rhier", "binhc",
		"hypercube", "triangle", "naive", "count", "aggregate"}
	classes := []string{"perP", "frac", "linear", ""}
	for _, in := range []int{0, 1, 2, 100} {
		for _, out := range []int64{0, 1, 1 << 40} {
			for _, p := range []int{1, 16} {
				for _, a := range algos {
					pr, ok := Predict(a, in, out, p)
					if !ok {
						t.Fatalf("Predict(%q) missing", a)
					}
					if math.IsNaN(pr.Load) || math.IsInf(pr.Load, 0) || pr.Load < 0 {
						t.Errorf("Predict(%q, IN=%d, OUT=%d, p=%d) = %v, want finite ≥ 0",
							a, in, out, p, pr.Load)
					}
				}
				for _, c := range classes {
					pr := PredictClass(c, in, out, p)
					if math.IsNaN(pr.Load) || math.IsInf(pr.Load, 0) || pr.Load < 0 {
						t.Errorf("PredictClass(%q, IN=%d, OUT=%d, p=%d) = %v, want finite ≥ 0",
							c, in, out, p, pr.Load)
					}
				}
			}
		}
	}
}

// TestPredictClassOrdering: at a representative scale the class fallbacks
// order the way the hierarchy promises — perP (output-linear) below frac
// (√p fractional) below linear (one server holds everything) once OUT is
// small enough for the output terms not to dominate.
func TestPredictClassOrdering(t *testing.T) {
	in, out, p := 1<<16, int64(1<<16), 64
	perP := PredictClass("perP", in, out, p).Load
	frac := PredictClass("frac", in, out, p).Load
	linear := PredictClass("linear", in, out, p).Load
	if !(perP < frac && frac < linear) {
		t.Errorf("class predictions out of order: perP=%v frac=%v linear=%v", perP, frac, linear)
	}
	if got := PredictClass("", in, out, p); got.Load != linear {
		t.Errorf("unknown class should predict like linear: %v vs %v", got.Load, linear)
	}
}
