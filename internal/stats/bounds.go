// Package stats evaluates the paper's load formulas — upper bounds, lower
// bounds and per-instance quantities — so experiments can print measured
// load next to the bound it is supposed to track.
package stats

import (
	"fmt"
	"math"
)

// Linear is the trivial floor IN/p (every algorithm starts at this load).
func Linear(in, p int) float64 { return float64(in) / float64(p) }

// Yannakakis is the MPC Yannakakis bound O(IN/p + OUT/p) [2,25].
func Yannakakis(in int, out int64, p int) float64 {
	return Linear(in, p) + float64(out)/float64(p)
}

// BinaryJoinBound is O(IN/p + √(OUT/p)) for a single binary join [8,18].
func BinaryJoinBound(in int, out int64, p int) float64 {
	return Linear(in, p) + math.Sqrt(float64(out)/float64(p))
}

// Acyclic is the paper's Theorem 7 bound O(IN/p + √(IN·OUT/p)).
func Acyclic(in int, out int64, p int) float64 {
	return Linear(in, p) + math.Sqrt(float64(in)*float64(out)/float64(p))
}

// RHierOutput is the paper's Theorem 4 output-optimal bound for
// r-hierarchical joins: IN/p^{1/max(1,k*−1)} + (OUT/p)^{1/k*} with
// k* = ⌈log_IN OUT⌉.
func RHierOutput(in int, out int64, p int) float64 {
	k := KStar(in, out)
	d := k - 1
	if d < 1 {
		d = 1
	}
	return float64(in)/math.Pow(float64(p), 1/float64(d)) +
		math.Pow(float64(out)/float64(p), 1/float64(k))
}

// KStar is ⌈log_IN OUT⌉, clamped to ≥ 1.
func KStar(in int, out int64) int {
	if in <= 1 || out <= 1 {
		return 1
	}
	k := int(math.Ceil(math.Log(float64(out)) / math.Log(float64(in))))
	if k < 1 {
		k = 1
	}
	return k
}

// RHierOutputSimple is Corollary 1's looser bound O(IN/p + √(OUT/p)).
func RHierOutputSimple(in int, out int64, p int) float64 {
	return Linear(in, p) + math.Sqrt(float64(out)/float64(p))
}

// logClamped is the table-safe log term of the lower-bound denominators:
// ln IN clamped to ≥ 1. Raw math.Log is 0 at IN=1 (dividing by it turns
// the formula into ±Inf, or NaN once an OUT=0 numerator makes it 0/0, and
// NaN propagates through math.Min into every report table) and -Inf at
// IN=0; clamping keeps every bound finite on all IN ≥ 0.
func logClamped(in int) float64 {
	if in <= 2 {
		return 1 // ln 2 ≈ 0.69 rounds up: log factors are ≥ 1 in the tables
	}
	return math.Log(float64(in))
}

// Line3Lower is the paper's Theorem 6 lower bound for the line-3 join:
// Ω(min{√(IN·OUT/(p·log IN)), IN/√p}), stated for OUT ≥ IN.
func Line3Lower(in int, out int64, p int) float64 {
	a := math.Sqrt(float64(in) * float64(out) / (float64(p) * logClamped(in)))
	b := float64(in) / math.Sqrt(float64(p))
	return math.Min(a, b)
}

// WorstCaseLine is the worst-case optimal bound O(IN/√p) for the line-3
// join [19,24], which takes over when OUT ≥ p·IN.
func WorstCaseLine(in, p int) float64 {
	return float64(in) / math.Sqrt(float64(p))
}

// TriangleLower is the paper's Theorem 11 output-sensitive lower bound
// Ω̃(min{IN/p + OUT/p, IN/p^{2/3}}).
func TriangleLower(in int, out int64, p int) float64 {
	a := Linear(in, p) + float64(out)/(float64(p)*logClamped(in))
	b := float64(in) / math.Pow(float64(p), 2.0/3.0)
	return math.Min(a, b)
}

// TriangleWorstCase is the O(IN/p^{2/3}) bound of [24].
func TriangleWorstCase(in, p int) float64 {
	return float64(in) / math.Pow(float64(p), 2.0/3.0)
}

// MaxCartesianRelations caps CartesianLower's subset enumeration. The
// maximization ranges over all 2ⁿ−1 nonempty subsets, so past the cap the
// loop is intractable long before n ≥ 63 silently wraps the `1 << n`
// mask to zero iterations (returning 0 for a bound that is never 0 on
// nonempty inputs). Callers with wider products must decompose first.
const MaxCartesianRelations = 24

// CartesianLower is equation (1): max_S (Π_{i∈S} N_i / p)^{1/|S|}.
// It panics past MaxCartesianRelations relations rather than silently
// wrapping the subset mask.
func CartesianLower(sizes []int, p int) float64 {
	best := 0.0
	n := len(sizes)
	if n > MaxCartesianRelations {
		panic(fmt.Sprintf("stats: CartesianLower over %d relations (cap %d: the subset maximization is O(2^n) and its mask wraps at n=63)",
			n, MaxCartesianRelations))
	}
	for mask := 1; mask < 1<<n; mask++ {
		prod, cnt := 1.0, 0
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				prod *= float64(sizes[i])
				cnt++
			}
		}
		v := math.Pow(prod/float64(p), 1/float64(cnt))
		if v > best {
			best = v
		}
	}
	return best
}

// PerServerOutputLower is the generic counting bound: p servers emitting
// results assembled from m-tuple joins can produce at most p·L^m results,
// so L ≥ (OUT/p)^{1/m}.
func PerServerOutputLower(out int64, p, m int) float64 {
	return math.Pow(float64(out)/float64(p), 1/float64(m))
}

// Ratio guards against division blowups in report tables. A NaN bound —
// impossible from this package's own formulas, but reachable through
// caller arithmetic — is treated like a zero bound rather than letting
// NaN propagate into the rendered cell.
func Ratio(measured int, bound float64) float64 {
	if bound <= 0 || math.IsNaN(bound) {
		return math.Inf(1)
	}
	return float64(measured) / bound
}
