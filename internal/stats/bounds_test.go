package stats

import (
	"math"
	"testing"
)

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol*math.Max(1, math.Abs(b)) }

func TestLinear(t *testing.T) {
	if Linear(1000, 10) != 100 {
		t.Error("Linear wrong")
	}
}

func TestYannakakisBound(t *testing.T) {
	if got := Yannakakis(1000, 5000, 10); got != 600 {
		t.Errorf("Yannakakis = %v", got)
	}
}

func TestAcyclicBoundImprovesOnYannakakis(t *testing.T) {
	// For OUT > p·IN the dominant terms give a ratio of
	// (OUT/p) / √(IN·OUT/p) = √(OUT/(IN·p)).
	in, p := 10000, 100
	out := int64(40000000) // OUT = 4000·IN = 40·p·IN
	y := Yannakakis(in, out, p)
	a := Acyclic(in, out, p)
	if a >= y {
		t.Errorf("Acyclic %v should beat Yannakakis %v", a, y)
	}
	wantRatio := math.Sqrt(float64(out) / (float64(in) * float64(p)))
	if !approx(y/a, wantRatio, 0.2) {
		t.Errorf("improvement ratio %v, want ≈ %v", y/a, wantRatio)
	}
}

func TestKStar(t *testing.T) {
	cases := []struct {
		in   int
		out  int64
		want int
	}{
		{100, 99, 1}, {100, 100, 1}, {100, 101, 2}, {100, 10000, 2}, {100, 10001, 3},
		{1, 5, 1}, {100, 0, 1},
	}
	for _, c := range cases {
		if got := KStar(c.in, c.out); got != c.want {
			t.Errorf("KStar(%d,%d) = %d, want %d", c.in, c.out, got, c.want)
		}
	}
}

func TestRHierOutputMatchesCorollary1Regime(t *testing.T) {
	// For IN < OUT ≤ IN², k* = 2 and the bound is IN/p + √(OUT/p).
	in, p := 10000, 16
	out := int64(1000000)
	got := RHierOutput(in, out, p)
	want := float64(in)/float64(p) + math.Sqrt(float64(out)/float64(p))
	if !approx(got, want, 0.01) {
		t.Errorf("RHierOutput = %v, want %v", got, want)
	}
}

func TestLine3LowerCrossover(t *testing.T) {
	// The √(IN·OUT/(p log IN)) branch holds until OUT ≈ p·IN·(log IN),
	// after which IN/√p takes over.
	in, p := 1<<16, 64
	small := Line3Lower(in, int64(in), p)
	big := Line3Lower(in, int64(in)*int64(p)*100, p)
	if small >= big {
		t.Errorf("lower bound should grow with OUT below the cap")
	}
	if big != WorstCaseLine(in, p) {
		t.Errorf("large OUT should hit the IN/√p cap: %v vs %v", big, WorstCaseLine(in, p))
	}
}

func TestTriangleLowerBranches(t *testing.T) {
	in, p := 1<<16, 64
	// Small OUT: the linear branch is active.
	lo := TriangleLower(in, int64(in), p)
	if lo >= TriangleWorstCase(in, p) {
		t.Errorf("small-OUT triangle bound should be below worst case")
	}
	// Huge OUT: capped by IN/p^{2/3}.
	hi := TriangleLower(in, int64(in)*1000, p)
	if hi != TriangleWorstCase(in, p) {
		t.Errorf("large-OUT triangle bound should equal worst case")
	}
}

func TestCartesianLowerPaperExamples(t *testing.T) {
	// Section 1.3: N1=N2=√IN, N3=IN with OUT = IN²: bound (OUT/p)^{1/3};
	// N1=1, N2=N3=IN: bound (OUT/p)^{1/2} — the second is higher.
	p := 64
	in := 1 << 12
	s := int(math.Sqrt(float64(in)))
	flat := CartesianLower([]int{s, s, in}, p)
	skew := CartesianLower([]int{1, in, in}, p)
	if skew <= flat {
		t.Errorf("skewed product (%v) must have a higher bound than flat (%v)", skew, flat)
	}
	wantSkew := math.Sqrt(float64(in) * float64(in) / float64(p))
	if !approx(skew, wantSkew, 0.01) {
		t.Errorf("skew bound %v, want %v", skew, wantSkew)
	}
}

func TestPerServerOutputLower(t *testing.T) {
	if got := PerServerOutputLower(1000000, 100, 2); !approx(got, 100, 0.01) {
		t.Errorf("PerServerOutputLower = %v, want 100", got)
	}
}

func TestRatio(t *testing.T) {
	if Ratio(100, 50) != 2 {
		t.Error("Ratio wrong")
	}
	if !math.IsInf(Ratio(5, 0), 1) {
		t.Error("Ratio by zero should be +Inf")
	}
	if !math.IsInf(Ratio(5, math.NaN()), 1) {
		t.Error("Ratio against a NaN bound should be +Inf, not NaN")
	}
}

// TestBoundsFiniteOnDegenerateInputs is the dispatcher's NaN-safety
// contract: every bound formula returns a finite non-negative value on
// every IN ≥ 0, OUT ≥ 0, so a degenerate instance (empty relations,
// single tuples) can never poison an argmin with NaN or ±Inf. IN=1 is the
// historical trap: log IN = 0 turned the lower-bound denominators into
// divisions by zero (±Inf, and NaN at OUT=0 via 0/0).
func TestBoundsFiniteOnDegenerateInputs(t *testing.T) {
	bounds := []struct {
		name string
		eval func(in int, out int64, p int) float64
	}{
		{"Linear", func(in int, _ int64, p int) float64 { return Linear(in, p) }},
		{"Yannakakis", Yannakakis},
		{"BinaryJoinBound", BinaryJoinBound},
		{"Acyclic", Acyclic},
		{"RHierOutput", RHierOutput},
		{"RHierOutputSimple", RHierOutputSimple},
		{"Line3Lower", Line3Lower},
		{"WorstCaseLine", func(in int, _ int64, p int) float64 { return WorstCaseLine(in, p) }},
		{"TriangleLower", TriangleLower},
		{"TriangleWorstCase", func(in int, _ int64, p int) float64 { return TriangleWorstCase(in, p) }},
		{"CartesianLower", func(in int, _ int64, p int) float64 { return CartesianLower([]int{in, in}, p) }},
		{"PerServerOutputLower", func(_ int, out int64, p int) float64 { return PerServerOutputLower(out, p, 2) }},
	}
	for _, b := range bounds {
		for _, in := range []int{0, 1, 2, 3, 1000} {
			for _, out := range []int64{0, 1, 2, 1000000} {
				for _, p := range []int{1, 2, 64} {
					got := b.eval(in, out, p)
					if math.IsNaN(got) || math.IsInf(got, 0) || got < 0 {
						t.Errorf("%s(IN=%d, OUT=%d, p=%d) = %v, want finite ≥ 0", b.name, in, out, p, got)
					}
				}
			}
		}
	}
}

// TestLowerBoundsAtINOne pins the clamped edge cases: at IN ∈ {0,1} the
// log factor is 1, so the formulas evaluate without the ±Inf/NaN of a raw
// log IN denominator, and OUT=0 gives 0 exactly.
func TestLowerBoundsAtINOne(t *testing.T) {
	if got := Line3Lower(1, 0, 64); got != 0 {
		t.Errorf("Line3Lower(1, 0, 64) = %v, want 0", got)
	}
	if got := Line3Lower(0, 0, 64); got != 0 {
		t.Errorf("Line3Lower(0, 0, 64) = %v, want 0", got)
	}
	// IN=1, OUT=64: min{√(1·64/(64·1)), 1/8} = 1/8.
	if got := Line3Lower(1, 64, 64); got != 0.125 {
		t.Errorf("Line3Lower(1, 64, 64) = %v, want 0.125", got)
	}
	// TriangleLower at IN=1: min{1/p + OUT/p, 1/p^{2/3}} with log factor 1.
	if got, want := TriangleLower(1, 0, 64), 1.0/64; got != want {
		t.Errorf("TriangleLower(1, 0, 64) = %v, want %v", got, want)
	}
	if got, want := TriangleLower(0, 0, 64), 0.0; got != want {
		t.Errorf("TriangleLower(0, 0, 64) = %v, want %v", got, want)
	}
}

// TestCartesianLowerCap is the mask-overflow regression: past the cap the
// old `1 << n` subset mask would wrap (zero iterations at n=64 on 64-bit
// ints — a silent 0 for a bound that is never 0 on nonempty inputs) after
// an intractable 2ⁿ scan. The guard panics instead.
func TestCartesianLowerCap(t *testing.T) {
	at := make([]int, MaxCartesianRelations)
	for i := range at {
		at[i] = 2
	}
	if got := CartesianLower(at, 1); got <= 0 {
		t.Errorf("CartesianLower at the cap = %v, want > 0", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatalf("CartesianLower over %d relations should panic, not wrap the subset mask",
				MaxCartesianRelations+1)
		}
	}()
	CartesianLower(make([]int, MaxCartesianRelations+1), 64)
}
