package stats

// Dispatch-time load prediction: the quantitative half of the engine's
// cost-based dispatcher. Every registered algorithm carries a
// repoload-verified load class (perP, frac, linear) and a Figure 1 bound;
// this file maps each algorithm's declared bound to its formula so the
// dispatcher can rank candidates by a predicted per-server load instead
// of by the static preference order alone. Predictions are evaluated at
// (IN, OUT estimate, p) and are finite for all IN ≥ 0, OUT ≥ 0, p ≥ 1 —
// the bound functions in bounds.go clamp their log/overflow edge cases,
// so a degenerate instance can never poison the ranking with NaN (which
// compares false against everything and would otherwise win or lose
// argmin ties nondeterministically).

// Prediction is one dispatch-time load prediction: the predicted
// per-server load and the formula that produced it.
type Prediction struct {
	// Load is the predicted per-server load, always finite and ≥ 0.
	Load float64
	// Formula names the bound formula evaluated, for report tables.
	Formula string
}

// predictors maps registry algorithm names to the formula behind each
// adapter's declared Figure 1 bound. A slice, not a map: lookups scan in
// declaration order, so there is no map-iteration order anywhere near
// dispatch. Names must match internal/engine/adapters.go; the engine's
// catalog tests close the loop.
var predictors = []struct {
	algo    string
	formula string
	eval    func(in int, out int64, p int) float64
}{
	{"yannakakis", "IN/p + OUT/p", Yannakakis},
	{"acyclic", "IN/p + √(IN·OUT/p)", Acyclic},
	{"line3", "IN/p + √(IN·OUT/p)", Acyclic},
	{"line3wc", "IN/√p", func(in int, _ int64, p int) float64 { return WorstCaseLine(in, p) }},
	{"rhier", "IN/p^{1/(k*−1)} + (OUT/p)^{1/k*}", RHierOutput},
	{"binhc", "IN/p^{1/(k*−1)} + (OUT/p)^{1/k*}", RHierOutput},
	// The scalar proxy for eq. 1: per-server output counting at m=2 plus
	// the linear floor. The engine refines this with CartesianLower over
	// the actual relation sizes when the instance is in hand.
	{"hypercube", "L_cartesian(p,R) (eq. 1)", func(in int, out int64, p int) float64 {
		return max2(Linear(in, p), PerServerOutputLower(out, p, 2))
	}},
	{"triangle", "IN/p^(2/3)", func(in int, _ int64, p int) float64 { return TriangleWorstCase(in, p) }},
	{"naive", "IN (sequential gather)", func(in int, _ int64, _ int) float64 { return float64(in) }},
	{"count", "IN/p", func(in int, _ int64, p int) float64 { return Linear(in, p) }},
	{"aggregate", "IN/p + √(IN·OUT_y/p)", Acyclic},
}

// Predict evaluates the named algorithm's declared-bound formula at
// (IN, OUT estimate, p) and reports false for algorithms this package
// has no formula for (callers fall back to PredictClass with the
// algorithm's repoload class).
func Predict(algo string, in int, out int64, p int) (Prediction, bool) {
	for _, pr := range predictors {
		if pr.algo == algo {
			return Prediction{Load: pr.eval(in, out, p), Formula: pr.formula}, true
		}
	}
	return Prediction{}, false
}

// PredictorFormula returns the formula Predict would evaluate for the
// named algorithm, without evaluating it. CONTRACTS.md renders it next to
// the declared/static load classes.
func PredictorFormula(algo string) (string, bool) {
	for _, pr := range predictors {
		if pr.algo == algo {
			return pr.formula, true
		}
	}
	return "", false
}

// PredictClass is the predictor seeded by the repoload-verified load
// class alone, for algorithms registered outside the repository's catalog
// (no per-name formula): the weakest bound the class admits. perP
// algorithms promise IN/p + OUT/p, frac algorithms IN/p^c with the √p
// worst case as the conservative exponent plus the output floor, and
// linear algorithms promise nothing below the whole input on one server.
// Unknown classes predict like linear: rank last, never NaN.
func PredictClass(loadClass string, in int, out int64, p int) Prediction {
	switch loadClass {
	case "perP":
		return Prediction{Load: Yannakakis(in, out, p), Formula: "IN/p + OUT/p (perP class)"}
	case "frac":
		return Prediction{
			Load:    max2(WorstCaseLine(in, p), PerServerOutputLower(out, p, 2)),
			Formula: "max(IN/√p, √(OUT/p)) (frac class)",
		}
	default: // linear, or no verified class at all
		return Prediction{Load: float64(in), Formula: "IN (linear class)"}
	}
}

func max2(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
