package relation

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSchemaBasics(t *testing.T) {
	s := NewSchema(1, 3, 5)
	if got := s.Pos(3); got != 1 {
		t.Errorf("Pos(3) = %d, want 1", got)
	}
	if got := s.Pos(4); got != -1 {
		t.Errorf("Pos(4) = %d, want -1", got)
	}
	if !s.Has(5) || s.Has(2) {
		t.Errorf("Has wrong: Has(5)=%v Has(2)=%v", s.Has(5), s.Has(2))
	}
	u := s.Union(NewSchema(5, 2))
	if !u.Equal(NewSchema(1, 3, 5, 2)) {
		t.Errorf("Union = %v", u)
	}
	i := s.Intersect(NewSchema(5, 1, 9))
	if !i.Equal(NewSchema(1, 5)) {
		t.Errorf("Intersect = %v", i)
	}
	m := s.Minus(NewSchema(3))
	if !m.Equal(NewSchema(1, 5)) {
		t.Errorf("Minus = %v", m)
	}
	if !NewSchema(3, 1, 5).Sorted().Equal(NewSchema(1, 3, 5)) {
		t.Errorf("Sorted failed")
	}
}

func TestSchemaDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewSchema with duplicate attr did not panic")
		}
	}()
	NewSchema(1, 2, 1)
}

func TestSchemaPositionsMissingPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Positions with missing attr did not panic")
		}
	}()
	NewSchema(1, 2).Positions([]Attr{3})
}

func TestRelationAddArityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Add with wrong arity did not panic")
		}
	}()
	New("r", NewSchema(1, 2)).Add(1)
}

func TestRelationAddAndProject(t *testing.T) {
	r := New("R", NewSchema(10, 20, 30))
	r.Add(1, 2, 3)
	r.Add(4, 5, 6)
	if r.Size() != 2 {
		t.Fatalf("Size = %d, want 2", r.Size())
	}
	p := r.Project([]Attr{30, 10})
	if !p.Schema.Equal(NewSchema(30, 10)) {
		t.Fatalf("projected schema = %v", p.Schema)
	}
	if p.Tuples[0][0] != 3 || p.Tuples[0][1] != 1 {
		t.Errorf("projected tuple = %v", p.Tuples[0])
	}
	if p.Tuples[1][0] != 6 || p.Tuples[1][1] != 4 {
		t.Errorf("projected tuple = %v", p.Tuples[1])
	}
}

func TestRelationDedup(t *testing.T) {
	r := New("R", NewSchema(1))
	r.Add(7)
	r.Add(7)
	r.Add(8)
	d := r.Dedup()
	if d.Size() != 2 {
		t.Fatalf("Dedup size = %d, want 2", d.Size())
	}
}

func TestRelationAnnotations(t *testing.T) {
	r := New("R", NewSchema(1))
	r.Add(5)
	if r.Annot(0) != 1 {
		t.Errorf("default annot = %d, want 1", r.Annot(0))
	}
	r.AddAnnotated(42, 6)
	if r.Annot(0) != 1 || r.Annot(1) != 42 {
		t.Errorf("annots = %d,%d want 1,42", r.Annot(0), r.Annot(1))
	}
	c := r.Clone()
	c.Annots[1] = 0
	if r.Annot(1) != 42 {
		t.Errorf("Clone did not deep-copy annotations")
	}
}

func TestKeyRoundTrip(t *testing.T) {
	f := func(vals []int64) bool {
		vs := make([]Value, len(vals))
		for i, v := range vals {
			vs[i] = Value(v)
		}
		got := DecodeKey(EncodeValues(vs...))
		if len(got) != len(vs) {
			return false
		}
		for i := range vs {
			if got[i] != vs[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestKeyOrderMatchesValueOrder(t *testing.T) {
	// Byte-wise key order must match numeric order, including negatives:
	// the sort-based MPC primitives depend on it.
	f := func(a, b int64) bool {
		ka, kb := EncodeValues(Value(a)), EncodeValues(Value(b))
		switch {
		case a < b:
			return ka < kb
		case a > b:
			return ka > kb
		default:
			return ka == kb
		}
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestKeyAtMatchesEncodeValues(t *testing.T) {
	tu := Tuple{10, -20, 30}
	if KeyAt(tu, []int{2, 0}) != EncodeValues(30, 10) {
		t.Error("KeyAt disagrees with EncodeValues")
	}
}

func TestDecodeMalformedKeyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("DecodeKey on malformed input did not panic")
		}
	}()
	DecodeKey("abc")
}

func semiringLaws(t *testing.T, s Semiring) {
	t.Helper()
	rng := rand.New(rand.NewSource(1))
	sample := func() int64 {
		// Small values avoid int64 overflow in the count ring; semiring laws
		// are about structure, not range.
		return rng.Int63n(1000) - 500
	}
	for i := 0; i < 500; i++ {
		a, b, c := sample(), sample(), sample()
		if s.Add(a, b) != s.Add(b, a) {
			t.Fatalf("%s: Add not commutative", s.Name)
		}
		if s.Mul(a, b) != s.Mul(b, a) {
			t.Fatalf("%s: Mul not commutative", s.Name)
		}
		if s.Add(s.Add(a, b), c) != s.Add(a, s.Add(b, c)) {
			t.Fatalf("%s: Add not associative", s.Name)
		}
		if s.Mul(s.Mul(a, b), c) != s.Mul(a, s.Mul(b, c)) {
			t.Fatalf("%s: Mul not associative", s.Name)
		}
		if s.Add(a, s.Zero) != a {
			t.Fatalf("%s: Zero not additive identity", s.Name)
		}
		if s.Mul(a, s.One) != a && s.Name != "bool" {
			t.Fatalf("%s: One not multiplicative identity", s.Name)
		}
		if s.Mul(a, s.Add(b, c)) != s.Add(s.Mul(a, b), s.Mul(a, c)) {
			t.Fatalf("%s: Mul does not distribute over Add", s.Name)
		}
		if s.Mul(a, s.Zero) != s.Zero && s.Name != "bool" {
			t.Fatalf("%s: Zero not annihilating", s.Name)
		}
	}
}

func TestSemiringLaws(t *testing.T) {
	semiringLaws(t, CountRing)
	semiringLaws(t, MaxPlusRing)
}

func TestBoolRingLaws(t *testing.T) {
	// BoolRing operates on {0,1} only.
	vals := []int64{0, 1}
	s := BoolRing
	for _, a := range vals {
		for _, b := range vals {
			for _, c := range vals {
				if s.Add(a, b) != s.Add(b, a) || s.Mul(a, b) != s.Mul(b, a) {
					t.Fatal("bool ring not commutative")
				}
				if s.Add(s.Add(a, b), c) != s.Add(a, s.Add(b, c)) {
					t.Fatal("bool ring Add not associative")
				}
				if s.Mul(a, s.Add(b, c)) != s.Add(s.Mul(a, b), s.Mul(a, c)) {
					t.Fatal("bool ring not distributive")
				}
			}
		}
		if s.Add(a, s.Zero) != a || s.Mul(a, s.One) != a || s.Mul(a, s.Zero) != s.Zero {
			t.Fatal("bool ring identities wrong")
		}
	}
}
