// Package relation provides the data model shared by all join algorithms:
// attributes, tuples, schemas and (optionally annotated) relations.
//
// The model follows the paper's tuple-based setting: a tuple is an atomic
// unit that assigns a Value to every attribute of its relation's schema.
// Annotations (for join-aggregate queries, Section 6 of the paper) are
// carried alongside tuples and combined through a commutative Semiring.
package relation

import (
	"fmt"
	"sort"
	"strings"
)

// Attr identifies an attribute (a vertex of the query hypergraph).
// Attributes are small integers; cmd tools map them to names for display.
type Attr int

// Value is a single attribute value. Domains are integral, which loses no
// generality for join processing (dictionary-encode anything else).
type Value int64

// Tuple is an assignment of values to the attributes of a schema, aligned
// positionally with the schema.
type Tuple []Value

// Clone returns a deep copy of t.
func (t Tuple) Clone() Tuple {
	c := make(Tuple, len(t))
	copy(c, t)
	return c
}

// Schema is an ordered list of distinct attributes.
type Schema []Attr

// NewSchema returns a schema over the given attributes, which must be
// distinct.
func NewSchema(attrs ...Attr) Schema {
	s := make(Schema, len(attrs))
	copy(s, attrs)
	seen := make(map[Attr]bool, len(attrs))
	for _, a := range attrs {
		if seen[a] {
			panic(fmt.Sprintf("relation: duplicate attribute %d in schema", a))
		}
		seen[a] = true
	}
	return s
}

// Pos returns the position of attribute a in s, or -1 if absent.
func (s Schema) Pos(a Attr) int {
	for i, x := range s {
		if x == a {
			return i
		}
	}
	return -1
}

// Has reports whether a is part of the schema.
func (s Schema) Has(a Attr) bool { return s.Pos(a) >= 0 }

// Positions resolves each attribute to its position in s. It panics if any
// attribute is absent: callers resolve projections at plan time, where a
// missing attribute is a programming error, not a data error.
func (s Schema) Positions(attrs []Attr) []int {
	ps := make([]int, len(attrs))
	for i, a := range attrs {
		p := s.Pos(a)
		if p < 0 {
			panic(fmt.Sprintf("relation: attribute %d not in schema %v", a, s))
		}
		ps[i] = p
	}
	return ps
}

// Union returns the attributes of s followed by those of t not already in s.
func (s Schema) Union(t Schema) Schema {
	out := make(Schema, len(s), len(s)+len(t))
	copy(out, s)
	for _, a := range t {
		if !out.Has(a) {
			out = append(out, a)
		}
	}
	return out
}

// Intersect returns the attributes present in both schemas, in s's order.
func (s Schema) Intersect(t Schema) Schema {
	var out Schema
	for _, a := range s {
		if t.Has(a) {
			out = append(out, a)
		}
	}
	return out
}

// Minus returns the attributes of s not present in t, in s's order.
func (s Schema) Minus(t Schema) Schema {
	var out Schema
	for _, a := range s {
		if !t.Has(a) {
			out = append(out, a)
		}
	}
	return out
}

// Equal reports whether the schemas list the same attributes in the same
// order.
func (s Schema) Equal(t Schema) bool {
	if len(s) != len(t) {
		return false
	}
	for i := range s {
		if s[i] != t[i] {
			return false
		}
	}
	return true
}

// Sorted returns a copy of s with attributes in increasing order. Canonical
// ordering makes schema-keyed maps and result comparison deterministic.
func (s Schema) Sorted() Schema {
	c := make(Schema, len(s))
	copy(c, s)
	sort.Slice(c, func(i, j int) bool { return c[i] < c[j] })
	return c
}

// String renders the schema as "(x1,x2,...)" using attribute ids.
func (s Schema) String() string {
	var b strings.Builder
	b.WriteByte('(')
	for i, a := range s {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "x%d", int(a))
	}
	b.WriteByte(')')
	return b.String()
}

// Relation is a named set of tuples over a schema. Annots, when non-nil,
// holds one semiring annotation per tuple (Section 6); len(Annots) must then
// equal len(Tuples).
type Relation struct {
	Name   string
	Schema Schema
	Tuples []Tuple
	Annots []int64
}

// New returns an empty relation with the given name and schema.
func New(name string, schema Schema) *Relation {
	return &Relation{Name: name, Schema: schema}
}

// Add appends a tuple built from vals, aligned with the schema.
func (r *Relation) Add(vals ...Value) {
	if len(vals) != len(r.Schema) {
		panic(fmt.Sprintf("relation %s: tuple arity %d != schema arity %d", r.Name, len(vals), len(r.Schema)))
	}
	t := make(Tuple, len(vals))
	copy(t, vals)
	r.Tuples = append(r.Tuples, t)
	if r.Annots != nil {
		r.Annots = append(r.Annots, 1)
	}
}

// AddAnnotated appends a tuple with an explicit annotation, materializing
// the annotation column (with 1s for earlier tuples) if needed.
func (r *Relation) AddAnnotated(annot int64, vals ...Value) {
	r.Add(vals...)
	if r.Annots == nil {
		r.Annots = make([]int64, len(r.Tuples))
		for i := range r.Annots {
			r.Annots[i] = 1
		}
	}
	r.Annots[len(r.Tuples)-1] = annot
}

// Size returns the number of tuples.
func (r *Relation) Size() int { return len(r.Tuples) }

// Annot returns the annotation of tuple i, defaulting to the multiplicative
// identity 1 when the relation is unannotated.
func (r *Relation) Annot(i int) int64 {
	if r.Annots == nil {
		return 1
	}
	return r.Annots[i]
}

// Clone returns a deep copy of r.
func (r *Relation) Clone() *Relation {
	c := &Relation{Name: r.Name, Schema: append(Schema(nil), r.Schema...)}
	c.Tuples = make([]Tuple, len(r.Tuples))
	for i, t := range r.Tuples {
		c.Tuples[i] = t.Clone()
	}
	if r.Annots != nil {
		c.Annots = append([]int64(nil), r.Annots...)
	}
	return c
}

// Project returns a new relation over attrs, preserving tuple order and
// multiplicity (it does not deduplicate; use Dedup for set semantics).
func (r *Relation) Project(attrs []Attr) *Relation {
	pos := r.Schema.Positions(attrs)
	out := New(r.Name+"_proj", NewSchema(attrs...))
	out.Tuples = make([]Tuple, len(r.Tuples))
	for i, t := range r.Tuples {
		pt := make(Tuple, len(pos))
		for j, p := range pos {
			pt[j] = t[p]
		}
		out.Tuples[i] = pt
	}
	if r.Annots != nil {
		out.Annots = append([]int64(nil), r.Annots...)
	}
	return out
}

// Dedup returns a copy of r with duplicate tuples removed (first occurrence
// kept). Annotations are not combined; use semiring aggregation for that.
func (r *Relation) Dedup() *Relation {
	out := New(r.Name, r.Schema)
	seen := make(map[string]bool, len(r.Tuples))
	for i, t := range r.Tuples {
		k := EncodeTuple(t)
		if seen[k] {
			continue
		}
		seen[k] = true
		out.Tuples = append(out.Tuples, t.Clone())
		if r.Annots != nil {
			if out.Annots == nil {
				out.Annots = []int64{}
			}
			out.Annots = append(out.Annots, r.Annots[i])
		}
	}
	return out
}

// String renders a compact description, not the tuples.
func (r *Relation) String() string {
	return fmt.Sprintf("%s%v[%d tuples]", r.Name, r.Schema, len(r.Tuples))
}
