package relation

// Semiring is a commutative semiring (R, Add, Mul, Zero, One) over int64
// annotations, as used by join-aggregate queries (Section 6 of the paper).
// Implementations must satisfy the semiring laws; see TestSemiringLaws.
type Semiring struct {
	Name string
	Zero int64
	One  int64
	Add  func(a, b int64) int64
	Mul  func(a, b int64) int64
}

// CountRing is (Z, +, ×, 0, 1): with all annotations 1 it computes
// COUNT(*) group-bys, and with y = ∅ the output size |Q(R)|.
var CountRing = Semiring{
	Name: "count",
	Zero: 0,
	One:  1,
	Add:  func(a, b int64) int64 { return a + b },
	Mul:  func(a, b int64) int64 { return a * b },
}

// MaxPlusRing is the tropical (max, +) semiring: MAX aggregations over
// additive scores.
var MaxPlusRing = Semiring{
	Name: "maxplus",
	Zero: -1 << 62,
	One:  0,
	Add: func(a, b int64) int64 {
		if a > b {
			return a
		}
		return b
	},
	Mul: func(a, b int64) int64 {
		// Saturate at Zero (-inf) so Zero annihilates despite finite int64.
		if a == -1<<62 || b == -1<<62 {
			return -1 << 62
		}
		return a + b
	},
}

// BoolRing is ({0,1}, OR, AND, 0, 1): set-semantics existence, i.e.
// join-project queries.
var BoolRing = Semiring{
	Name: "bool",
	Zero: 0,
	One:  1,
	Add: func(a, b int64) int64 {
		if a != 0 || b != 0 {
			return 1
		}
		return 0
	},
	Mul: func(a, b int64) int64 {
		if a != 0 && b != 0 {
			return 1
		}
		return 0
	},
}
