package relation

import "encoding/binary"

// Key encoding: joins and shuffles need a comparable, hashable key derived
// from a tuple's projection onto a set of attributes. We encode each value
// as 8 big-endian bytes packed into a string. Big-endian keeps byte-wise
// ordering consistent with numeric ordering for non-negative values, which
// the sort-based primitives rely on.

// EncodeValues encodes the given values into a key string.
func EncodeValues(vals ...Value) string {
	buf := make([]byte, 8*len(vals))
	for i, v := range vals {
		binary.BigEndian.PutUint64(buf[8*i:], uint64(v)^(1<<63))
	}
	return string(buf)
}

// EncodeTuple encodes the whole tuple as a key.
func EncodeTuple(t Tuple) string { return EncodeValues(t...) }

// KeyAt encodes the projection of t onto the given positions.
func KeyAt(t Tuple, pos []int) string {
	buf := make([]byte, 8*len(pos))
	for i, p := range pos {
		binary.BigEndian.PutUint64(buf[8*i:], uint64(t[p])^(1<<63))
	}
	return string(buf)
}

// AppendKeyAt appends the key encoding of t's projection onto pos to dst
// and returns the extended slice. Interning layers use it to build keys in
// a reusable buffer, allocating a string only for keys not seen before.
func AppendKeyAt(dst []byte, t Tuple, pos []int) []byte {
	var scratch [8]byte
	for _, p := range pos {
		binary.BigEndian.PutUint64(scratch[:], uint64(t[p])^(1<<63))
		dst = append(dst, scratch[:]...)
	}
	return dst
}

// AppendDecodedKey appends the values encoded in k to dst and returns the
// extended slice — the flat-buffer counterpart of DecodeKey, used to stage
// encoded keys into fixed-width value windows without a per-key slice.
// It panics on malformed input: keys only ever come from the encoders
// above.
func AppendDecodedKey(dst []Value, k string) []Value {
	if len(k)%8 != 0 {
		panic("relation: malformed key")
	}
	for i := 0; i+8 <= len(k); i += 8 {
		dst = append(dst, Value(binary.BigEndian.Uint64([]byte(k[i:i+8]))^(1<<63)))
	}
	return dst
}

// DecodeKey decodes a key back into values. It panics on malformed input:
// keys only ever come from the encoders above.
func DecodeKey(k string) []Value {
	if len(k)%8 != 0 {
		panic("relation: malformed key")
	}
	vals := make([]Value, len(k)/8)
	for i := range vals {
		vals[i] = Value(binary.BigEndian.Uint64([]byte(k[8*i:8*i+8])) ^ (1 << 63))
	}
	return vals
}
