package hypergraph

import "repro/internal/relation"

// Catalog of the queries used throughout the paper; shared by tests,
// benchmarks, examples and the classify command. Attribute numbering
// follows the paper where one is given.

// CatalogEntry names a query and the class the paper assigns to it.
type CatalogEntry struct {
	Name  string
	Q     *Hypergraph
	Class Class
}

// Line2 is the binary join R1(A,B) ⋈ R2(B,C).
func Line2() *Hypergraph {
	return New(NewAttrSet(1, 2), NewAttrSet(2, 3))
}

// Line3 is R1(A,B) ⋈ R2(B,C) ⋈ R3(C,D), the simplest acyclic but not
// r-hierarchical join (Section 4). Attributes: A=1, B=2, C=3, D=4.
func Line3() *Hypergraph {
	return New(NewAttrSet(1, 2), NewAttrSet(2, 3), NewAttrSet(3, 4))
}

// LineK is the length-k chain join R1(x1,x2) ⋈ … ⋈ Rk(xk,xk+1).
func LineK(k int) *Hypergraph {
	h := &Hypergraph{}
	for i := 1; i <= k; i++ {
		h.Edges = append(h.Edges, NewAttrSet(attr(i), attr(i+1)))
	}
	return h
}

// StarK is the star join R1(x0,x1) ⋈ R2(x0,x2) ⋈ … ⋈ Rk(x0,xk).
func StarK(k int) *Hypergraph {
	h := &Hypergraph{}
	for i := 1; i <= k; i++ {
		h.Edges = append(h.Edges, NewAttrSet(0, attr(i)))
	}
	return h
}

// Q1TallFlat is the paper's tall-flat example (Section 3, Figure 2):
// R1(x1) ⋈ R2(x1,x2) ⋈ R3(x1,x2,x3) ⋈ R4(x1,x2,x3,x4) ⋈ R5(x1,x2,x3,x5)
// ⋈ R6(x1,x2,x3,x6).
func Q1TallFlat() *Hypergraph {
	return New(
		NewAttrSet(1),
		NewAttrSet(1, 2),
		NewAttrSet(1, 2, 3),
		NewAttrSet(1, 2, 3, 4),
		NewAttrSet(1, 2, 3, 5),
		NewAttrSet(1, 2, 3, 6),
	)
}

// Q2Hierarchical is the paper's hierarchical (not tall-flat) example:
// R1(x1,x2) ⋈ R2(x1,x3,x4) ⋈ R3(x1,x3,x5).
func Q2Hierarchical() *Hypergraph {
	return New(
		NewAttrSet(1, 2),
		NewAttrSet(1, 3, 4),
		NewAttrSet(1, 3, 5),
	)
}

// Q2RHier extends Q2 with R4(x3,x5) ⋈ R5(x5), the paper's r-hierarchical
// (not hierarchical) example.
func Q2RHier() *Hypergraph {
	q := Q2Hierarchical()
	q.Edges = append(q.Edges, NewAttrSet(3, 5), NewAttrSet(5))
	return q
}

// RHierSimple is R1(A) ⋈ R2(A,B) ⋈ R3(B), r-hierarchical but not
// hierarchical (Section 1.4).
func RHierSimple() *Hypergraph {
	return New(NewAttrSet(1), NewAttrSet(1, 2), NewAttrSet(2))
}

// CartesianK is the k-way Cartesian product R1(x1) × … × Rk(xk).
func CartesianK(k int) *Hypergraph {
	h := &Hypergraph{}
	for i := 1; i <= k; i++ {
		h.Edges = append(h.Edges, NewAttrSet(attr(i)))
	}
	return h
}

// Triangle is R1(B,C) ⋈ R2(A,C) ⋈ R3(A,B), the simplest cyclic join
// (Section 7). Attributes: A=1, B=2, C=3.
func Triangle() *Hypergraph {
	return New(NewAttrSet(2, 3), NewAttrSet(1, 3), NewAttrSet(1, 2))
}

// Fig5Example is the join-tree fragment of Figure 5: e0 = ABDGH' with leaf
// children ABC, BD, B, ADE, DF, HH'. Attributes: A=1 B=2 C=3 D=4 E=5 F=6
// G=7 H=8 H'=9.
func Fig5Example() *Hypergraph {
	return New(
		NewAttrSet(1, 2, 4, 7, 9), // e0 = ABDGH'
		NewAttrSet(1, 2, 3),       // e1 = ABC
		NewAttrSet(2, 4),          // e2 = BD
		NewAttrSet(2),             // e3 = B
		NewAttrSet(1, 4, 5),       // e4 = ADE
		NewAttrSet(4, 6),          // e5 = DF
		NewAttrSet(8, 9),          // e6 = HH'
	)
}

// Catalog returns the named queries with their paper-assigned classes.
func Catalog() []CatalogEntry {
	return []CatalogEntry{
		{"binary join R1(A,B)⋈R2(B,C)", Line2(), TallFlat},
		{"tall-flat Q1 (Fig 2 left)", Q1TallFlat(), TallFlat},
		{"hierarchical Q2 (Fig 2 right)", Q2Hierarchical(), Hierarchical},
		{"r-hierarchical Q2⋈R4(x3,x5)⋈R5(x5)", Q2RHier(), RHierarchical},
		{"r-hierarchical R1(A)⋈R2(A,B)⋈R3(B)", RHierSimple(), RHierarchical},
		{"line-3 join (Section 4)", Line3(), Acyclic},
		{"line-4 join", LineK(4), Acyclic},
		{"star join k=3", StarK(3), TallFlat},
		{"Cartesian product k=3", CartesianK(3), Hierarchical},
		{"Figure 5 acyclic example", Fig5Example(), Acyclic},
		{"triangle join (Section 7)", Triangle(), Cyclic},
	}
}

func attr(i int) relation.Attr { return relation.Attr(i) }
