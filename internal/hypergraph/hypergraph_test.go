package hypergraph

import (
	"math/rand"
	"testing"

	"repro/internal/relation"
)

func TestAttrSetOps(t *testing.T) {
	s := NewAttrSet(3, 1, 2, 3, 1)
	if !s.Equal(NewAttrSet(1, 2, 3)) {
		t.Fatalf("NewAttrSet dedup/sort failed: %v", s)
	}
	a := NewAttrSet(1, 2, 3)
	b := NewAttrSet(2, 3, 4)
	if !a.Intersect(b).Equal(NewAttrSet(2, 3)) {
		t.Errorf("Intersect = %v", a.Intersect(b))
	}
	if !a.Union(b).Equal(NewAttrSet(1, 2, 3, 4)) {
		t.Errorf("Union = %v", a.Union(b))
	}
	if !a.Minus(b).Equal(NewAttrSet(1)) {
		t.Errorf("Minus = %v", a.Minus(b))
	}
	if !NewAttrSet(1, 2).SubsetOf(a) || a.SubsetOf(b) {
		t.Errorf("SubsetOf wrong")
	}
	if !NewAttrSet(1).Disjoint(NewAttrSet(2)) || a.Disjoint(b) {
		t.Errorf("Disjoint wrong")
	}
	if !a.Has(2) || a.Has(9) {
		t.Errorf("Has wrong")
	}
}

func TestAttrSetEmpty(t *testing.T) {
	e := NewAttrSet()
	if !e.SubsetOf(NewAttrSet(1)) || !e.Disjoint(e) || len(e.Union(e)) != 0 {
		t.Error("empty set ops wrong")
	}
}

func TestGYOAcyclicCatalog(t *testing.T) {
	for _, c := range Catalog() {
		tree, ok := c.Q.GYO()
		wantAcyclic := c.Class != Cyclic
		if ok != wantAcyclic {
			t.Errorf("%s: GYO acyclic=%v, want %v", c.Name, ok, wantAcyclic)
			continue
		}
		if ok {
			c.Q.validateTree(tree)
			if len(tree.RemovalOrder) != len(c.Q.Edges) {
				t.Errorf("%s: removal order covers %d of %d edges",
					c.Name, len(tree.RemovalOrder), len(c.Q.Edges))
			}
		}
	}
}

func TestClassifyCatalog(t *testing.T) {
	for _, c := range Catalog() {
		if got := c.Q.Classify(); got != c.Class {
			t.Errorf("%s: Classify = %v, want %v", c.Name, got, c.Class)
		}
	}
}

func TestClassHierarchyIsCumulative(t *testing.T) {
	// tall-flat ⇒ hierarchical ⇒ r-hierarchical ⇒ acyclic on the catalog
	// and on random acyclic graphs below.
	for _, c := range Catalog() {
		q := c.Q
		if q.IsTallFlat() && len(q.Edges) > 1 && !q.IsHierarchical() {
			t.Errorf("%s: tall-flat but not hierarchical", c.Name)
		}
		if q.IsHierarchical() && !q.IsRHierarchical() {
			t.Errorf("%s: hierarchical but not r-hierarchical", c.Name)
		}
		if q.IsRHierarchical() && !q.IsAcyclic() {
			t.Errorf("%s: r-hierarchical but not acyclic", c.Name)
		}
	}
}

func TestFigure1StrictInclusions(t *testing.T) {
	// Witnesses that each inclusion in Figure 1 is strict.
	if q := Q2Hierarchical(); q.IsTallFlat() || !q.IsHierarchical() {
		t.Error("Q2 should separate hierarchical from tall-flat")
	}
	if q := RHierSimple(); q.IsHierarchical() || !q.IsRHierarchical() {
		t.Error("R1(A)⋈R2(A,B)⋈R3(B) should separate r-hierarchical from hierarchical")
	}
	if q := Line3(); q.IsRHierarchical() || !q.IsAcyclic() {
		t.Error("line-3 should separate acyclic from r-hierarchical")
	}
	if Triangle().IsAcyclic() {
		t.Error("triangle should be cyclic")
	}
}

func TestReduce(t *testing.T) {
	q := Q2RHier() // contains R4(x3,x5) ⊆ R3(x1,x3,x5) and R5(x5) ⊆ both
	r, host := q.Reduce()
	if len(r.Edges) != 3 {
		t.Fatalf("reduced to %d edges, want 3: %v", len(r.Edges), r)
	}
	if !r.IsHierarchical() {
		t.Error("reduced Q2RHier should be hierarchical")
	}
	for i := range q.Edges {
		h := host[i]
		if h < 0 || !q.Edges[i].SubsetOf(r.Edges[h]) {
			t.Errorf("edge %d host %d does not contain it", i, h)
		}
	}
}

func TestReduceEqualEdges(t *testing.T) {
	q := New(NewAttrSet(1, 2), NewAttrSet(1, 2), NewAttrSet(2, 3))
	r, host := q.Reduce()
	if len(r.Edges) != 2 {
		t.Fatalf("reduced to %d edges, want 2", len(r.Edges))
	}
	if host[0] != host[1] {
		t.Errorf("equal edges should share a host: %v", host)
	}
}

func TestAttributeForestQ1(t *testing.T) {
	f := Q1TallFlat().AttributeForest()
	// Figure 2 left: x1 - x2 - x3 - {x4,x5,x6}.
	if len(f.Roots) != 1 || f.Attrs[f.Roots[0]] != 1 {
		t.Fatalf("roots = %v", f.Roots)
	}
	anc := f.Ancestors(4)
	if len(anc) != 4 || anc[0] != 4 || anc[1] != 3 || anc[2] != 2 || anc[3] != 1 {
		t.Errorf("Ancestors(x4) = %v, want [4 3 2 1]", anc)
	}
	if n := f.Node(3); len(f.Children[n]) != 3 {
		t.Errorf("x3 should have 3 children, got %d", len(f.Children[n]))
	}
	if got := f.RootOf(6); got != 1 {
		t.Errorf("RootOf(x6) = %v, want x1", got)
	}
}

func TestAttributeForestQ2(t *testing.T) {
	f := Q2Hierarchical().AttributeForest()
	// Figure 2 right: x1 root; children x2, x3; x3's children x4, x5.
	if len(f.Roots) != 1 || f.Attrs[f.Roots[0]] != 1 {
		t.Fatalf("roots = %v", f.Roots)
	}
	n3 := f.Node(3)
	if f.Attrs[f.Parent[n3]] != 1 {
		t.Errorf("parent of x3 = %v, want x1", f.Attrs[f.Parent[n3]])
	}
	kids := f.Children[n3]
	if len(kids) != 2 {
		t.Fatalf("x3 children = %d, want 2", len(kids))
	}
	for _, a := range []relation.Attr{4, 5} {
		if f.Attrs[f.Parent[f.Node(a)]] != 3 {
			t.Errorf("parent of x%d should be x3", a)
		}
	}
}

func TestAttributeForestCartesian(t *testing.T) {
	f := CartesianK(3).AttributeForest()
	if len(f.Roots) != 3 {
		t.Errorf("Cartesian product forest should have 3 roots, got %d", len(f.Roots))
	}
}

func TestAttributeForestPanicsOnNonHierarchical(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("AttributeForest on line-3 did not panic")
		}
	}()
	Line3().AttributeForest()
}

func TestMinimalPath3Line3(t *testing.T) {
	p, ok := Line3().MinimalPath3()
	if !ok {
		t.Fatal("line-3 should have a minimal path of length 3")
	}
	es := Line3().PathEdges(p)
	for _, e := range es {
		if e < 0 {
			t.Errorf("PathEdges returned missing edge for %v", p)
		}
	}
}

func TestLemma2OnCatalog(t *testing.T) {
	for _, c := range Catalog() {
		if c.Class == Cyclic {
			continue
		}
		_, hasPath := c.Q.MinimalPath3()
		rhier := c.Q.IsRHierarchical()
		if hasPath == rhier {
			t.Errorf("%s: Lemma 2 violated: path=%v r-hier=%v", c.Name, hasPath, rhier)
		}
	}
}

// randomAcyclic generates a random α-acyclic hypergraph by building a random
// join tree: each node copies a random subset of its parent's attributes and
// adds fresh ones, which keeps every attribute's occurrence set connected.
func randomAcyclic(rng *rand.Rand, maxEdges, maxFresh int) *Hypergraph {
	m := 1 + rng.Intn(maxEdges)
	next := 0
	fresh := func() relation.Attr {
		next++
		return relation.Attr(next)
	}
	edges := make([]AttrSet, m)
	for i := 0; i < m; i++ {
		var base AttrSet
		if i > 0 {
			parent := edges[rng.Intn(i)]
			for _, a := range parent {
				if rng.Intn(2) == 0 {
					base = append(base, a)
				}
			}
		}
		nf := 1 + rng.Intn(maxFresh)
		for j := 0; j < nf; j++ {
			base = append(base, fresh())
		}
		edges[i] = NewAttrSet(base...)
	}
	return New(edges...)
}

func TestRandomAcyclicIsAcyclic(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 300; i++ {
		q := randomAcyclic(rng, 6, 3)
		tree, ok := q.GYO()
		if !ok {
			t.Fatalf("randomAcyclic produced a cyclic graph: %v", q)
		}
		q.validateTree(tree)
	}
}

func TestLemma2Property(t *testing.T) {
	// On random acyclic hypergraphs: minimal path-3 exists ⟺ not
	// r-hierarchical (Lemma 2, both directions).
	rng := rand.New(rand.NewSource(11))
	seenRHier, seenNot := 0, 0
	for i := 0; i < 400; i++ {
		q := randomAcyclic(rng, 6, 3)
		_, hasPath := q.MinimalPath3()
		rhier := q.IsRHierarchical()
		if hasPath == rhier {
			t.Fatalf("Lemma 2 violated on %v: path=%v rhier=%v", q, hasPath, rhier)
		}
		if rhier {
			seenRHier++
		} else {
			seenNot++
		}
	}
	if seenRHier == 0 || seenNot == 0 {
		t.Errorf("generator not diverse: rhier=%d not=%d", seenRHier, seenNot)
	}
}

func TestClassHierarchyPropertyRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for i := 0; i < 300; i++ {
		q := randomAcyclic(rng, 6, 3)
		if q.IsTallFlat() && len(q.Edges) > 1 && !q.IsHierarchical() {
			t.Fatalf("tall-flat but not hierarchical: %v", q)
		}
		if q.IsHierarchical() && !q.IsRHierarchical() {
			t.Fatalf("hierarchical but not r-hierarchical: %v", q)
		}
	}
}

func TestEdgeCover(t *testing.T) {
	cases := []struct {
		name string
		q    *Hypergraph
		rho  int
	}{
		{"line-2", Line2(), 2},
		{"line-3", Line3(), 2},
		{"line-4", LineK(4), 3}, // 5 attrs, 2 per edge -> ceil(5/2)
		{"line-5", LineK(5), 3},
		{"star-3", StarK(3), 3},
		{"cartesian-3", CartesianK(3), 3},
		{"Q1", Q1TallFlat(), 3},
		{"single", New(NewAttrSet(1, 2)), 1},
	}
	for _, c := range cases {
		cover := c.q.EdgeCover()
		var u AttrSet
		for _, e := range cover {
			u = u.Union(c.q.Edges[e])
		}
		if !c.q.Attrs().SubsetOf(u) {
			t.Errorf("%s: cover %v does not cover all attrs", c.name, cover)
		}
		if len(cover) != c.rho {
			t.Errorf("%s: |cover| = %d, want %d", c.name, len(cover), c.rho)
		}
	}
}

func TestEdgeCoverPanicsOnCyclic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("EdgeCover on triangle did not panic")
		}
	}()
	Triangle().EdgeCover()
}

func TestEdgeCoverOptimalProperty(t *testing.T) {
	// The GYO-based cover must match the brute-force minimum cover size on
	// random acyclic graphs (Lemma 1: acyclic ⇒ integral optimum).
	rng := rand.New(rand.NewSource(17))
	for i := 0; i < 150; i++ {
		q := randomAcyclic(rng, 5, 2)
		got := len(q.EdgeCover())
		want := bruteMinCover(q)
		if got != want {
			t.Fatalf("cover size %d != brute force %d on %v", got, want, q)
		}
	}
}

func bruteMinCover(q *Hypergraph) int {
	all := q.Attrs()
	m := len(q.Edges)
	best := m
	for mask := 1; mask < 1<<m; mask++ {
		var u AttrSet
		n := 0
		for i := 0; i < m; i++ {
			if mask&(1<<i) != 0 {
				u = u.Union(q.Edges[i])
				n++
			}
		}
		if all.SubsetOf(u) && n < best {
			best = n
		}
	}
	return best
}

func TestFreeConnex(t *testing.T) {
	cases := []struct {
		name string
		q    *Hypergraph
		y    AttrSet
		want bool
	}{
		{"line-3 full output", Line3(), NewAttrSet(1, 2, 3, 4), true},
		{"line-3 ends only", Line3(), NewAttrSet(1, 4), false},
		{"line-3 prefix", Line3(), NewAttrSet(1, 2), true},
		{"line-3 middle", Line3(), NewAttrSet(2, 3), true},
		{"line-3 empty (count)", Line3(), NewAttrSet(), true},
		{"line-2 project shared", Line2(), NewAttrSet(2), true},
		{"Q2 single root", Q2Hierarchical(), NewAttrSet(1), true},
		{"triangle", Triangle(), NewAttrSet(1, 2), false},
		{"y not in Q", Line2(), NewAttrSet(99), false},
	}
	for _, c := range cases {
		w := WithOutput{Q: c.q, Y: c.y}
		if got := w.IsFreeConnex(); got != c.want {
			t.Errorf("%s: IsFreeConnex = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestOutHierarchical(t *testing.T) {
	// line-3 with y = {B,C}: residual {B},{B,C},{C} is r-hierarchical.
	w := WithOutput{Q: Line3(), Y: NewAttrSet(2, 3)}
	if !w.IsOutHierarchical() {
		t.Error("line-3 with y={B,C} should be out-hierarchical")
	}
	// line-4 with full output is acyclic but not out-hierarchical.
	full := LineK(4).Attrs()
	w2 := WithOutput{Q: LineK(4), Y: full}
	if w2.IsOutHierarchical() {
		t.Error("line-4 full output should not be out-hierarchical")
	}
}

func TestFreeConnexTree(t *testing.T) {
	w := WithOutput{Q: Line3(), Y: NewAttrSet(1, 2)}
	tree, virtual, ok := w.FreeConnexTree()
	if !ok {
		t.Fatal("expected free-connex tree")
	}
	if tree.Root != virtual || virtual != 3 {
		t.Errorf("root=%d virtual=%d, want both 3", tree.Root, virtual)
	}
	// Bottom-up order must place children before parents.
	pos := make(map[int]int)
	for i, u := range tree.RemovalOrder {
		pos[u] = i
	}
	for u, p := range tree.Parent {
		if p >= 0 && pos[u] > pos[p] {
			t.Errorf("node %d processed after its parent %d", u, p)
		}
	}
}

func TestOutputResidual(t *testing.T) {
	w := WithOutput{Q: Line3(), Y: NewAttrSet(2, 3)}
	res, src := w.OutputResidual()
	if len(res.Edges) != 3 {
		t.Fatalf("residual edges = %d, want 3", len(res.Edges))
	}
	if !res.Edges[0].Equal(NewAttrSet(2)) || !res.Edges[1].Equal(NewAttrSet(2, 3)) || !res.Edges[2].Equal(NewAttrSet(3)) {
		t.Errorf("residual = %v", res)
	}
	if src[0] != 0 || src[1] != 1 || src[2] != 2 {
		t.Errorf("src = %v", src)
	}
}

func TestFreeConnexResidualAcyclicProperty(t *testing.T) {
	// For free-connex (Q, y), the output residual must be acyclic — the
	// §6 pipeline depends on it.
	rng := rand.New(rand.NewSource(23))
	checked := 0
	for i := 0; i < 500; i++ {
		q := randomAcyclic(rng, 5, 2)
		attrs := q.Attrs()
		var y AttrSet
		for _, a := range attrs {
			if rng.Intn(2) == 0 {
				y = append(y, a)
			}
		}
		y = NewAttrSet(y...)
		w := WithOutput{Q: q, Y: y}
		if !w.IsFreeConnex() || len(y) == 0 {
			continue
		}
		checked++
		res, _ := w.OutputResidual()
		if !res.IsAcyclic() {
			t.Fatalf("free-connex residual cyclic: q=%v y=%v", q, y)
		}
	}
	if checked < 20 {
		t.Errorf("too few free-connex samples: %d", checked)
	}
}

func TestTopAttrNode(t *testing.T) {
	q := Line3()
	tree, _ := q.GYO()
	top := TopAttrNode(tree, q.Edges)
	// Attribute B=2 occurs in edges 0 and 1; its top is whichever is
	// shallower in the tree.
	if tree.Depth(top[2]) > tree.Depth(0) && tree.Depth(top[2]) > tree.Depth(1) {
		t.Errorf("top of attr 2 = %d not minimal depth", top[2])
	}
	for a, u := range top {
		if !q.Edges[u].Has(a) {
			t.Errorf("top node %d does not contain attr %d", u, a)
		}
	}
}

func TestJoinTreePostOrder(t *testing.T) {
	q := Fig5Example()
	tree, ok := q.GYO()
	if !ok {
		t.Fatal("Fig5 should be acyclic")
	}
	po := tree.PostOrder(tree.Root)
	if len(po) != len(q.Edges) {
		t.Fatalf("post-order covers %d of %d nodes", len(po), len(q.Edges))
	}
	if po[len(po)-1] != tree.Root {
		t.Error("post-order must end at root")
	}
	seen := make(map[int]bool)
	for _, u := range po {
		for _, c := range tree.Children[u] {
			if !seen[c] {
				t.Errorf("node %d before child %d", u, c)
			}
		}
		seen[u] = true
	}
}

func TestHypergraphString(t *testing.T) {
	if s := Line2().String(); s != "{(x1,x2),(x2,x3)}" {
		t.Errorf("String = %q", s)
	}
}

func TestEmptyHypergraph(t *testing.T) {
	h := New()
	if !h.IsAcyclic() {
		t.Error("empty hypergraph should be acyclic")
	}
	if len(h.Attrs()) != 0 {
		t.Error("empty hypergraph has attrs")
	}
}
