package hypergraph

// EdgeCover returns an integral edge cover of an acyclic hypergraph: a set
// of edge indices whose union is all attributes, of minimum cardinality.
// By Lemma 1 of the paper, acyclic joins have integral edge cover number, so
// this greedy GYO-style procedure is optimal:
//
//   - if e ⊆ e', drop e (weight 0 — shift weight to the larger edge);
//   - if some attribute is unique to e, take e (weight 1) and remove all of
//     e's attributes everywhere.
//
// It panics on cyclic inputs: callers classify first.
func (h *Hypergraph) EdgeCover() []int {
	if !h.IsAcyclic() {
		panic("hypergraph: EdgeCover on cyclic query")
	}
	n := len(h.Edges)
	cur := make([]AttrSet, n)
	for i, e := range h.Edges {
		cur[i] = e.Clone()
	}
	alive := make([]bool, n)
	for i := range alive {
		alive[i] = true
	}
	var cover []int
	for {
		progress := false
		// Rule 1: drop contained edges.
		for i := 0; i < n; i++ {
			if !alive[i] {
				continue
			}
			for j := 0; j < n; j++ {
				if i == j || !alive[j] {
					continue
				}
				if cur[i].SubsetOf(cur[j]) && !(cur[i].Equal(cur[j]) && i < j) {
					alive[i] = false
					progress = true
					break
				}
			}
		}
		// Rule 2: an attribute unique to a single edge forces that edge.
		counts := make(map[int]int) // attr -> #alive edges containing it
		for i := 0; i < n; i++ {
			if !alive[i] {
				continue
			}
			for _, a := range cur[i] {
				counts[int(a)]++
			}
		}
		for i := 0; i < n && !progress; i++ {
			if !alive[i] {
				continue
			}
			for _, a := range cur[i] {
				if counts[int(a)] == 1 {
					cover = append(cover, i)
					taken := cur[i]
					alive[i] = false
					for j := 0; j < n; j++ {
						if alive[j] {
							cur[j] = cur[j].Minus(taken)
						}
					}
					progress = true
					break
				}
			}
		}
		if !progress {
			break
		}
		// Drop edges that became empty.
		for i := 0; i < n; i++ {
			if alive[i] && len(cur[i]) == 0 {
				alive[i] = false
			}
		}
	}
	for i := 0; i < n; i++ {
		if alive[i] {
			// GYO on an acyclic query always empties via the two rules.
			panic("hypergraph: EdgeCover did not converge")
		}
	}
	return cover
}

// EdgeCoverNumber returns ρ, the (integral) edge cover number.
func (h *Hypergraph) EdgeCoverNumber() int { return len(h.EdgeCover()) }
