package hypergraph

import (
	"fmt"
	"strings"

	"repro/internal/relation"
)

// Hypergraph is a join query Q = (V, E): vertices are attributes, hyperedges
// are relation schemas. Edge order is significant only as an index into the
// caller's relation list.
type Hypergraph struct {
	Edges []AttrSet
}

// New returns a hypergraph with the given edges.
func New(edges ...AttrSet) *Hypergraph {
	h := &Hypergraph{Edges: make([]AttrSet, len(edges))}
	for i, e := range edges {
		h.Edges[i] = e.Clone()
	}
	return h
}

// FromSchemas builds a hypergraph whose i-th edge is the attribute set of
// the i-th schema.
func FromSchemas(schemas ...relation.Schema) *Hypergraph {
	h := &Hypergraph{Edges: make([]AttrSet, len(schemas))}
	for i, s := range schemas {
		h.Edges[i] = NewAttrSet([]relation.Attr(s)...)
	}
	return h
}

// Attrs returns V, the union of all edges.
func (h *Hypergraph) Attrs() AttrSet {
	var v AttrSet
	for _, e := range h.Edges {
		v = v.Union(e)
	}
	return v
}

// EdgesWith returns the indices of edges containing attribute a
// (the set E_a in the paper's notation).
func (h *Hypergraph) EdgesWith(a relation.Attr) []int {
	var out []int
	for i, e := range h.Edges {
		if e.Has(a) {
			out = append(out, i)
		}
	}
	return out
}

// String renders the hypergraph as "{(x1,x2),(x2,x3)}".
func (h *Hypergraph) String() string {
	var b strings.Builder
	b.WriteByte('{')
	for i, e := range h.Edges {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(e.Schema().String())
	}
	b.WriteByte('}')
	return b.String()
}

// Reduce applies the paper's reduce procedure: repeatedly remove an edge e
// if some other edge e' ⊇ e remains. It returns the reduced hypergraph and,
// for every original edge, the index (in the reduced graph) of a surviving
// edge that contains it. Ties between equal edges keep the lower index.
func (h *Hypergraph) Reduce() (*Hypergraph, []int) {
	n := len(h.Edges)
	alive := make([]bool, n)
	for i := range alive {
		alive[i] = true
	}
	// absorbedBy[i] = j means edge i was removed because e_i ⊆ e_j.
	absorbedBy := make([]int, n)
	for i := range absorbedBy {
		absorbedBy[i] = -1
	}
	for {
		removed := false
		for i := 0; i < n && !removed; i++ {
			if !alive[i] {
				continue
			}
			for j := 0; j < n; j++ {
				if i == j || !alive[j] {
					continue
				}
				if h.Edges[i].SubsetOf(h.Edges[j]) {
					// Equal edges: keep the lower index.
					if h.Edges[i].Equal(h.Edges[j]) && i < j {
						continue
					}
					alive[i] = false
					absorbedBy[i] = j
					removed = true
					break
				}
			}
		}
		if !removed {
			break
		}
	}
	reduced := &Hypergraph{}
	newIdx := make([]int, n)
	for i := range newIdx {
		newIdx[i] = -1
	}
	for i := 0; i < n; i++ {
		if alive[i] {
			newIdx[i] = len(reduced.Edges)
			reduced.Edges = append(reduced.Edges, h.Edges[i].Clone())
		}
	}
	host := make([]int, n)
	for i := 0; i < n; i++ {
		j := i
		for absorbedBy[j] >= 0 {
			j = absorbedBy[j]
		}
		host[i] = newIdx[j]
	}
	return reduced, host
}

// JoinTree is a rooted join tree over the edges of a hypergraph: node i
// corresponds to edge i. Parent[Root] = -1. RemovalOrder lists edges in the
// order the GYO reduction removed them (leaves first); it is a valid
// bottom-up processing order.
type JoinTree struct {
	Root         int
	Parent       []int
	Children     [][]int
	RemovalOrder []int
}

// PostOrder returns the node indices of the subtree rooted at r in
// post-order (children before parents).
func (t *JoinTree) PostOrder(r int) []int {
	var out []int
	var walk func(u int)
	walk = func(u int) {
		for _, c := range t.Children[u] {
			walk(c)
		}
		out = append(out, u)
	}
	walk(r)
	return out
}

// Depth returns the number of edges on the path from node u to the root.
func (t *JoinTree) Depth(u int) int {
	d := 0
	for t.Parent[u] >= 0 {
		u = t.Parent[u]
		d++
	}
	return d
}

// GYO runs the Graham/Yu–Ozsoyoglu reduction. It returns (tree, true) when
// the hypergraph is α-acyclic, and (nil, false) otherwise. The tree's root
// is the last surviving edge.
//
// An edge e is an "ear" if some other remaining edge e' contains every
// attribute of e that is shared with any other remaining edge; e is removed
// and attached to e' as its parent.
func (h *Hypergraph) GYO() (*JoinTree, bool) {
	n := len(h.Edges)
	if n == 0 {
		return &JoinTree{Root: -1}, true
	}
	alive := make([]bool, n)
	for i := range alive {
		alive[i] = true
	}
	parent := make([]int, n)
	for i := range parent {
		parent[i] = -1
	}
	var order []int
	remaining := n
	for remaining > 1 {
		removed := false
		for i := 0; i < n && !removed; i++ {
			if !alive[i] {
				continue
			}
			// shared = attrs of e_i appearing in some other alive edge.
			var shared AttrSet
			for j := 0; j < n; j++ {
				if j == i || !alive[j] {
					continue
				}
				shared = shared.Union(h.Edges[i].Intersect(h.Edges[j]))
			}
			for j := 0; j < n; j++ {
				if j == i || !alive[j] {
					continue
				}
				if shared.SubsetOf(h.Edges[j]) {
					alive[i] = false
					parent[i] = j
					order = append(order, i)
					remaining--
					removed = true
					break
				}
			}
		}
		if !removed {
			return nil, false
		}
	}
	root := -1
	for i := 0; i < n; i++ {
		if alive[i] {
			root = i
		}
	}
	order = append(order, root)
	children := make([][]int, n)
	for i, p := range parent {
		if p >= 0 {
			children[p] = append(children[p], i)
		}
	}
	return &JoinTree{Root: root, Parent: parent, Children: children, RemovalOrder: order}, true
}

// IsAcyclic reports whether the hypergraph is α-acyclic.
func (h *Hypergraph) IsAcyclic() bool {
	_, ok := h.GYO()
	return ok
}

// validateTree panics unless t is a structurally valid join tree for h;
// used by tests and debug builds.
func (h *Hypergraph) validateTree(t *JoinTree) {
	for _, a := range h.Attrs() {
		// Nodes containing a must form a connected subtree.
		nodes := h.EdgesWith(a)
		if len(nodes) <= 1 {
			continue
		}
		in := make(map[int]bool, len(nodes))
		for _, u := range nodes {
			in[u] = true
		}
		// Climb from each node towards the root, counting distinct
		// "top" nodes: a connected subtree has exactly one node whose
		// parent is outside the set.
		tops := 0
		for _, u := range nodes {
			if t.Parent[u] < 0 || !in[t.Parent[u]] {
				tops++
			}
		}
		if tops != 1 {
			panic(fmt.Sprintf("hypergraph: join tree violates connectivity for attr %d", a))
		}
	}
}
