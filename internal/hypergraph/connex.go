package hypergraph

import "repro/internal/relation"

// Section 6: join-aggregate queries. A query Q with output attributes y is
// free-connex iff Q is acyclic and Q⁺ = (V, E ∪ {y}) is acyclic (the
// standard characterization of Bagan, Durand and Grandjean, equivalent to
// the paper's width-1 free-connex GHD definition). It is out-hierarchical
// iff additionally the residual query over the output attributes,
// Q_out = (y, {e ∩ y : e ∈ E}), is r-hierarchical (Lemma 4).

// WithOutput bundles a query with its output attribute set.
type WithOutput struct {
	Q *Hypergraph
	Y AttrSet
}

// IsFreeConnex reports whether (Q, y) is a free-connex join-aggregate query.
// y must be a subset of Q's attributes. y = ∅ (full aggregation, e.g.
// computing |Q(R)|) is free-connex for every acyclic Q.
func (w WithOutput) IsFreeConnex() bool {
	if !w.Y.SubsetOf(w.Q.Attrs()) {
		return false
	}
	if !w.Q.IsAcyclic() {
		return false
	}
	if len(w.Y) == 0 {
		return true
	}
	plus := New(append(append([]AttrSet{}, w.Q.Edges...), w.Y.Clone())...)
	return plus.IsAcyclic()
}

// OutputResidual returns Q_out = (y, {e ∩ y : e ∈ E}) with empty
// intersections dropped, plus for each residual edge the index of the
// original edge it came from.
func (w WithOutput) OutputResidual() (*Hypergraph, []int) {
	out := &Hypergraph{}
	var src []int
	for i, e := range w.Q.Edges {
		r := e.Intersect(w.Y)
		if len(r) == 0 {
			continue
		}
		out.Edges = append(out.Edges, r)
		src = append(src, i)
	}
	return out, src
}

// IsOutHierarchical reports whether the query is free-connex with an
// r-hierarchical output residual (Lemma 4), in which case the §3.2
// instance-optimal algorithm applies to the reduced query.
func (w WithOutput) IsOutHierarchical() bool {
	if !w.IsFreeConnex() {
		return false
	}
	if len(w.Y) == 0 {
		return true
	}
	res, _ := w.OutputResidual()
	return res.IsRHierarchical()
}

// FreeConnexTree builds a join tree for Q⁺ = E ∪ {y} rooted at the virtual
// y-node and returns it together with the index of the virtual node (which
// equals len(Q.Edges)). It returns ok = false when the query is not
// free-connex. LinearAggroYannakakis (Section 6) processes real nodes
// bottom-up along this tree; the children of the virtual root become the
// frontier relations of the reduced output query T'.
func (w WithOutput) FreeConnexTree() (t *JoinTree, virtual int, ok bool) {
	if !w.IsFreeConnex() || len(w.Y) == 0 {
		return nil, -1, false
	}
	plus := New(append(append([]AttrSet{}, w.Q.Edges...), w.Y.Clone())...)
	tree, acyclic := plus.GYO()
	if !acyclic {
		return nil, -1, false
	}
	virtual = len(w.Q.Edges)
	tree = rerooted(tree, virtual)
	return tree, virtual, true
}

// rerooted returns the same undirected tree re-rooted at r.
func rerooted(t *JoinTree, r int) *JoinTree {
	n := len(t.Parent)
	adj := make([][]int, n)
	for i, p := range t.Parent {
		if p >= 0 {
			adj[i] = append(adj[i], p)
			adj[p] = append(adj[p], i)
		}
	}
	nt := &JoinTree{
		Root:     r,
		Parent:   make([]int, n),
		Children: make([][]int, n),
	}
	for i := range nt.Parent {
		nt.Parent[i] = -1
	}
	seen := make([]bool, n)
	var order []int
	queue := []int{r}
	seen[r] = true
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		order = append(order, u)
		for _, v := range adj[u] {
			if !seen[v] {
				seen[v] = true
				nt.Parent[v] = u
				nt.Children[u] = append(nt.Children[u], v)
				queue = append(queue, v)
			}
		}
	}
	// RemovalOrder: reverse BFS = children before parents.
	nt.RemovalOrder = make([]int, 0, len(order))
	for i := len(order) - 1; i >= 0; i-- {
		nt.RemovalOrder = append(nt.RemovalOrder, order[i])
	}
	return nt
}

// TopAttrNode returns, for each attribute, the highest node of the subtree
// of tree nodes containing it (TOP_T(x) in the paper's Algorithm 1). edges
// must be the node schemas indexed like the tree.
func TopAttrNode(tree *JoinTree, edges []AttrSet) map[relation.Attr]int {
	top := make(map[relation.Attr]int)
	depth := func(u int) int { return tree.Depth(u) }
	for u, e := range edges {
		for _, a := range e {
			if cur, ok := top[a]; !ok || depth(u) < depth(cur) {
				top[a] = u
			}
		}
	}
	return top
}
