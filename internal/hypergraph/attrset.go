// Package hypergraph models join queries as hypergraphs Q = (V, E) and
// implements the structural theory the paper builds on: GYO reduction and
// join trees, the classification hierarchy of Figure 1 (tall-flat ⊂
// hierarchical ⊂ r-hierarchical ⊂ acyclic), attribute forests (Figure 2),
// minimal paths of length 3 (Lemma 2), integral edge covers (Lemma 1), and
// the free-connex / out-hierarchical tests of Section 6.
package hypergraph

import (
	"sort"

	"repro/internal/relation"
)

// AttrSet is a set of attributes stored as a sorted, duplicate-free slice.
type AttrSet []relation.Attr

// NewAttrSet returns the set of the given attributes.
func NewAttrSet(attrs ...relation.Attr) AttrSet {
	s := append(AttrSet(nil), attrs...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	out := s[:0]
	for i, a := range s {
		if i == 0 || a != s[i-1] {
			out = append(out, a)
		}
	}
	return out
}

// Has reports whether a is in s.
func (s AttrSet) Has(a relation.Attr) bool {
	i := sort.Search(len(s), func(i int) bool { return s[i] >= a })
	return i < len(s) && s[i] == a
}

// SubsetOf reports whether every attribute of s is in t.
func (s AttrSet) SubsetOf(t AttrSet) bool {
	i, j := 0, 0
	for i < len(s) && j < len(t) {
		switch {
		case s[i] == t[j]:
			i++
			j++
		case s[i] > t[j]:
			j++
		default:
			return false
		}
	}
	return i == len(s)
}

// Equal reports whether s and t contain the same attributes.
func (s AttrSet) Equal(t AttrSet) bool {
	if len(s) != len(t) {
		return false
	}
	for i := range s {
		if s[i] != t[i] {
			return false
		}
	}
	return true
}

// Intersect returns s ∩ t.
func (s AttrSet) Intersect(t AttrSet) AttrSet {
	var out AttrSet
	i, j := 0, 0
	for i < len(s) && j < len(t) {
		switch {
		case s[i] == t[j]:
			out = append(out, s[i])
			i++
			j++
		case s[i] < t[j]:
			i++
		default:
			j++
		}
	}
	return out
}

// Union returns s ∪ t.
func (s AttrSet) Union(t AttrSet) AttrSet {
	out := make(AttrSet, 0, len(s)+len(t))
	i, j := 0, 0
	for i < len(s) || j < len(t) {
		switch {
		case j == len(t) || (i < len(s) && s[i] < t[j]):
			out = append(out, s[i])
			i++
		case i == len(s) || t[j] < s[i]:
			out = append(out, t[j])
			j++
		default:
			out = append(out, s[i])
			i++
			j++
		}
	}
	return out
}

// Minus returns s \ t.
func (s AttrSet) Minus(t AttrSet) AttrSet {
	var out AttrSet
	j := 0
	for _, a := range s {
		for j < len(t) && t[j] < a {
			j++
		}
		if j < len(t) && t[j] == a {
			continue
		}
		out = append(out, a)
	}
	return out
}

// IntersectSize returns |s ∩ t| without materializing the intersection.
func (s AttrSet) IntersectSize(t AttrSet) int {
	n, i, j := 0, 0, 0
	for i < len(s) && j < len(t) {
		switch {
		case s[i] == t[j]:
			n++
			i++
			j++
		case s[i] < t[j]:
			i++
		default:
			j++
		}
	}
	return n
}

// Disjoint reports whether s ∩ t = ∅.
func (s AttrSet) Disjoint(t AttrSet) bool { return s.IntersectSize(t) == 0 }

// Clone returns a copy of s.
func (s AttrSet) Clone() AttrSet { return append(AttrSet(nil), s...) }

// Schema converts the set to a relation.Schema (sorted attribute order).
func (s AttrSet) Schema() relation.Schema {
	return relation.NewSchema([]relation.Attr(s)...)
}
