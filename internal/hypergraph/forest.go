package hypergraph

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/relation"
)

// AttrForest is the attribute forest of a hierarchical query (Section 1.4,
// Figure 2): attribute x is a descendant of y iff E_x ⊆ E_y. Attributes with
// identical edge sets are chained deterministically by attribute id.
type AttrForest struct {
	Attrs    []relation.Attr // node i is attribute Attrs[i]
	Parent   []int           // parent node index, -1 for roots
	Children [][]int
	Roots    []int
	index    map[relation.Attr]int
}

// AttributeForest builds the attribute forest of h, which must be
// hierarchical (it panics otherwise: callers classify first).
func (h *Hypergraph) AttributeForest() *AttrForest {
	if !h.IsHierarchical() {
		panic("hypergraph: AttributeForest on non-hierarchical query")
	}
	attrs := h.Attrs()
	f := &AttrForest{
		Attrs:    []relation.Attr(attrs),
		Parent:   make([]int, len(attrs)),
		Children: make([][]int, len(attrs)),
		index:    make(map[relation.Attr]int, len(attrs)),
	}
	edgeSets := make([][]int, len(attrs))
	for i, a := range attrs {
		f.index[a] = i
		edgeSets[i] = h.EdgesWith(a)
	}
	// strictlyAbove(j, i): attribute j is a proper ancestor candidate of i.
	// E_j ⊃ E_i, or E_j = E_i with j's id smaller (deterministic chaining).
	strictlyAbove := func(j, i int) bool {
		if i == j {
			return false
		}
		if !intSubset(edgeSets[i], edgeSets[j]) {
			return false
		}
		if len(edgeSets[i]) == len(edgeSets[j]) {
			return attrs[j] < attrs[i]
		}
		return true
	}
	for i := range attrs {
		// Candidates form a ⊇-chain in a hierarchical query; the parent is
		// the minimal one (smallest edge set, then largest attribute id).
		best := -1
		for j := range attrs {
			if !strictlyAbove(j, i) {
				continue
			}
			if best < 0 || strictlyAbove(best, j) {
				best = j
			}
		}
		f.Parent[i] = best
		if best >= 0 {
			f.Children[best] = append(f.Children[best], i)
		} else {
			f.Roots = append(f.Roots, i)
		}
	}
	return f
}

// Node returns the node index of attribute a, or -1.
func (f *AttrForest) Node(a relation.Attr) int {
	i, ok := f.index[a]
	if !ok {
		return -1
	}
	return i
}

// Ancestors returns a and its proper ancestors, bottom-up.
func (f *AttrForest) Ancestors(a relation.Attr) []relation.Attr {
	var out []relation.Attr
	for i := f.Node(a); i >= 0; i = f.Parent[i] {
		out = append(out, f.Attrs[i])
	}
	return out
}

// RootOf returns the root attribute above a.
func (f *AttrForest) RootOf(a relation.Attr) relation.Attr {
	anc := f.Ancestors(a)
	return anc[len(anc)-1]
}

// Leaves returns the node indices with no children.
func (f *AttrForest) Leaves() []int {
	var out []int
	for i := range f.Attrs {
		if len(f.Children[i]) == 0 {
			out = append(out, i)
		}
	}
	return out
}

// String renders the forest with indentation, one attribute per line.
func (f *AttrForest) String() string {
	var b strings.Builder
	var walk func(i, depth int)
	walk = func(i, depth int) {
		fmt.Fprintf(&b, "%sx%d\n", strings.Repeat("  ", depth), int(f.Attrs[i]))
		kids := append([]int(nil), f.Children[i]...)
		sort.Ints(kids)
		for _, c := range kids {
			walk(c, depth+1)
		}
	}
	roots := append([]int(nil), f.Roots...)
	sort.Ints(roots)
	for _, r := range roots {
		walk(r, 0)
	}
	return b.String()
}
