package hypergraph

import "repro/internal/relation"

// MinimalPath3 finds a minimal path of length 3: four distinct attributes
// (x1,x2,x3,x4) such that consecutive pairs co-occur in some edge while no
// edge contains {x1,x3}, {x1,x4}, or {x2,x4}. By Lemma 2, an acyclic join
// has such a path iff it is not r-hierarchical. It returns (path, true) if
// one exists. The search is exhaustive; query sizes are constants.
func (h *Hypergraph) MinimalPath3() ([4]relation.Attr, bool) {
	attrs := h.Attrs()
	coocc := func(a, b relation.Attr) bool {
		for _, e := range h.Edges {
			if e.Has(a) && e.Has(b) {
				return true
			}
		}
		return false
	}
	for _, x1 := range attrs {
		for _, x2 := range attrs {
			if x2 == x1 || !coocc(x1, x2) {
				continue
			}
			for _, x3 := range attrs {
				if x3 == x1 || x3 == x2 || !coocc(x2, x3) || coocc(x1, x3) {
					continue
				}
				for _, x4 := range attrs {
					if x4 == x1 || x4 == x2 || x4 == x3 {
						continue
					}
					if coocc(x3, x4) && !coocc(x1, x4) && !coocc(x2, x4) {
						return [4]relation.Attr{x1, x2, x3, x4}, true
					}
				}
			}
		}
	}
	return [4]relation.Attr{}, false
}

// PathEdges returns, for a minimal path (x1,x2,x3,x4), indices of edges
// e1 ⊇ {x1,x2}, e2 ⊇ {x2,x3}, e3 ⊇ {x3,x4} (the first found of each).
func (h *Hypergraph) PathEdges(p [4]relation.Attr) [3]int {
	find := func(a, b relation.Attr) int {
		for i, e := range h.Edges {
			if e.Has(a) && e.Has(b) {
				return i
			}
		}
		return -1
	}
	return [3]int{find(p[0], p[1]), find(p[1], p[2]), find(p[2], p[3])}
}
