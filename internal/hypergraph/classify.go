package hypergraph

import "sort"

// Class is a position in the paper's Figure 1 hierarchy. Classes are
// cumulative: TallFlat implies Hierarchical implies RHierarchical implies
// Acyclic. Classify returns the most specific class.
type Class int

const (
	// Cyclic joins fall outside the paper's acyclic hierarchy.
	Cyclic Class = iota
	// Acyclic joins are α-acyclic but not r-hierarchical.
	Acyclic
	// RHierarchical joins reduce to hierarchical joins.
	RHierarchical
	// Hierarchical joins have laminar attribute edge-sets.
	Hierarchical
	// TallFlat joins are hierarchical with a single stem plus leaves.
	TallFlat
)

// String names the class as in the paper.
func (c Class) String() string {
	switch c {
	case Cyclic:
		return "cyclic"
	case Acyclic:
		return "acyclic"
	case RHierarchical:
		return "r-hierarchical"
	case Hierarchical:
		return "hierarchical"
	case TallFlat:
		return "tall-flat"
	}
	return "unknown"
}

// IsHierarchical reports whether for every pair of attributes x, y the edge
// sets satisfy E_x ⊆ E_y, E_y ⊆ E_x, or E_x ∩ E_y = ∅ (Section 1.4).
func (h *Hypergraph) IsHierarchical() bool {
	attrs := h.Attrs()
	sets := make(map[int][]int, len(attrs))
	for i, a := range attrs {
		sets[i] = h.EdgesWith(a)
	}
	for i := range attrs {
		for j := i + 1; j < len(attrs); j++ {
			if !laminar(sets[i], sets[j]) {
				return false
			}
		}
	}
	return true
}

// laminar reports whether sorted int sets a, b satisfy a⊆b, b⊆a, or a∩b=∅.
func laminar(a, b []int) bool {
	inter := 0
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			inter++
			i++
			j++
		case a[i] < b[j]:
			i++
		default:
			j++
		}
	}
	return inter == 0 || inter == len(a) || inter == len(b)
}

// IsRHierarchical reports whether the reduced hypergraph is hierarchical.
func (h *Hypergraph) IsRHierarchical() bool {
	r, _ := h.Reduce()
	return r.IsHierarchical()
}

// IsTallFlat reports whether the attributes can be ordered
// x1,…,xh,y1,…,yl such that (1) E_x1 ⊇ … ⊇ E_xh, (2) E_xh ⊇ E_yj for all j,
// and (3) |E_yj| = 1 for all j (Section 1.4, after [26]).
//
// Single-edge queries are trivially tall-flat. With two or more edges we
// require a non-empty stem (h ≥ 1): every relation must contain the top stem
// attribute.
func (h *Hypergraph) IsTallFlat() bool {
	if len(h.Edges) <= 1 {
		return true
	}
	attrs := h.Attrs()
	type av struct {
		deg   int
		edges []int
	}
	var stem []av
	var leaves []av
	for _, a := range attrs {
		es := h.EdgesWith(a)
		if len(es) == 1 {
			leaves = append(leaves, av{1, es})
		} else {
			stem = append(stem, av{len(es), es})
		}
	}
	if len(stem) == 0 {
		return false
	}
	// Sort prospective stem by degree descending; must be a ⊇-chain.
	sort.Slice(stem, func(i, j int) bool { return stem[i].deg > stem[j].deg })
	for i := 0; i+1 < len(stem); i++ {
		if !intSubset(stem[i+1].edges, stem[i].edges) {
			return false
		}
	}
	// E_x1 must be all edges (every relation contains the top stem attr).
	if stem[0].deg != len(h.Edges) {
		return false
	}
	// Every leaf attribute's single edge must contain the bottom stem attr.
	bottom := stem[len(stem)-1].edges
	for _, y := range leaves {
		if !intSubset(y.edges, bottom) {
			return false
		}
	}
	return true
}

// intSubset reports whether sorted int slice a ⊆ b.
func intSubset(a, b []int) bool {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			i++
			j++
		case a[i] > b[j]:
			j++
		default:
			return false
		}
	}
	return i == len(a)
}

// Classify returns the most specific class of the query in Figure 1's
// hierarchy.
func (h *Hypergraph) Classify() Class {
	if !h.IsAcyclic() {
		return Cyclic
	}
	if h.IsTallFlat() {
		return TallFlat
	}
	if h.IsHierarchical() {
		return Hierarchical
	}
	if h.IsRHierarchical() {
		return RHierarchical
	}
	return Acyclic
}
