package lint

import (
	"go/ast"
	"go/types"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
)

// DeterminismAnalyzer enforces the byte-determinism contract of the
// data-plane packages: results, charges, and rendered tables must be pure
// functions of (input, seed), identical at every data-plane width.
//
// It reports, in scoped packages (non-test files):
//
//   - a `range` over a map whose body emits (Emit/Append/AppendItem/Add…),
//     charges rounds (Charge/ChargeRound/…), or appends to an ordered
//     buffer declared outside the loop — map iteration order would leak
//     into an order-sensitive sink. Collect-then-sort loops are exempt:
//     appending to a slice that the same function later sorts is the
//     blessed idiom.
//   - any use of time.Now: wall-clock time on the deterministic path.
//   - any package-level math/rand function (Intn, Shuffle, …): the global
//     RNG is seeded per process, not per task. Constructing seeded
//     generators (rand.New, rand.NewSource) stays legal.
//   - any select with more than one communication clause: the runtime
//     picks a ready case pseudo-randomly.
var DeterminismAnalyzer = &analysis.Analyzer{
	Name:     "repodeterminism",
	Doc:      "flag map-iteration order, wall clock, global RNG, and select races on the deterministic data-plane path",
	Run:      runDeterminism,
	Requires: []*analysis.Analyzer{inspect.Analyzer},
}

func init() {
	DeterminismAnalyzer.Flags.String("scope", dataPlaneScope,
		"comma-separated package paths to check (\"all\" for every package)")
}

// orderSinkMethods are the method names that commit values in order: join
// emitters (Emit), columnar part and relation appends (Append, AppendItem,
// Add, AddAnnotated), and the table renderer (Add shares the name). A call
// to any of these inside a map range leaks iteration order.
var orderSinkMethods = map[string]bool{
	"Emit":          true,
	"Append":        true,
	"AppendItem":    true,
	"AppendColumns": true,
	"Add":           true,
	"AddAnnotated":  true,
	"WriteString":   true,
}

// chargeMethods are the cluster-charging entry points: calling one inside
// a map range makes the round structure depend on iteration order.
var chargeMethods = map[string]bool{
	"Charge":      true,
	"ChargeRound": true,
	"ChargeInput": true,
	"Receive":     true,
	"newRound":    true,
}

func runDeterminism(pass *analysis.Pass) (interface{}, error) {
	scope := pass.Analyzer.Flags.Lookup("scope").Value.String()
	if !inScope(scope, pass.Pkg.Path()) {
		return nil, nil
	}
	ignores := buildIgnoreIndex(pass, pass.Analyzer.Name)
	report := func(pos ast.Node, format string, args ...interface{}) {
		if !ignores.suppressed(pass.Fset, pass.Analyzer.Name, pos.Pos()) {
			pass.Reportf(pos.Pos(), format, args...)
		}
	}

	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	nodeFilter := []ast.Node{
		(*ast.RangeStmt)(nil),
		(*ast.SelectorExpr)(nil),
		(*ast.SelectStmt)(nil),
		(*ast.FuncDecl)(nil),
		(*ast.FuncLit)(nil),
	}

	// funcBodies tracks the enclosing function body stack so the map-range
	// check can look for a later sort of the appended buffer.
	var funcBodies []*ast.BlockStmt

	ins.WithStack(nodeFilter, func(n ast.Node, push bool, stack []ast.Node) bool {
		if isTestFile(pass.Fset, n.Pos()) {
			return false
		}
		switch v := n.(type) {
		case *ast.FuncDecl:
			if push {
				funcBodies = append(funcBodies, v.Body)
			} else {
				funcBodies = funcBodies[:len(funcBodies)-1]
			}
		case *ast.FuncLit:
			if push {
				funcBodies = append(funcBodies, v.Body)
			} else {
				funcBodies = funcBodies[:len(funcBodies)-1]
			}
		case *ast.RangeStmt:
			if push {
				var body *ast.BlockStmt
				if len(funcBodies) > 0 {
					body = funcBodies[len(funcBodies)-1]
				}
				checkMapRange(pass, report, v, body)
			}
		case *ast.SelectorExpr:
			if push {
				checkNondetSource(pass, report, v)
			}
		case *ast.SelectStmt:
			if push && len(v.Body.List) > 1 {
				report(v, "select with %d communication clauses on the deterministic path: case choice is scheduling-dependent", len(v.Body.List))
			}
		}
		return true
	})
	ignores.reportUnused(pass)
	return nil, nil
}

// checkMapRange reports order-sensitive sinks inside a range over a map.
func checkMapRange(pass *analysis.Pass, report func(ast.Node, string, ...interface{}), rng *ast.RangeStmt, funcBody *ast.BlockStmt) {
	t := pass.TypesInfo.TypeOf(rng.X)
	if t == nil {
		return
	}
	if _, ok := t.Underlying().(*types.Map); !ok {
		return
	}
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if isBuiltin(pass.TypesInfo, call, "append") {
			checkMapRangeAppend(pass, report, rng, call, funcBody)
			return true
		}
		fn := calleeFunc(pass.TypesInfo, call)
		if fn == nil || fn.Type().(*types.Signature).Recv() == nil {
			return true // plain functions and func-valued fields (semiring Add) are order-free
		}
		switch {
		case orderSinkMethods[fn.Name()]:
			report(call, "map iteration order reaches an ordered sink: %s called inside a range over %s", fn.Name(), types.TypeString(t, types.RelativeTo(pass.Pkg)))
		case chargeMethods[fn.Name()]:
			report(call, "round charge inside a range over a map: %s makes the charge order iteration-dependent", fn.Name())
		}
		return true
	})
}

// checkMapRangeAppend flags `buf = append(buf, …)` inside a map range when
// buf outlives the loop, unless the enclosing function later sorts buf
// (collect-then-sort is the deterministic idiom).
func checkMapRangeAppend(pass *analysis.Pass, report func(ast.Node, string, ...interface{}), rng *ast.RangeStmt, call *ast.CallExpr, funcBody *ast.BlockStmt) {
	if len(call.Args) == 0 {
		return
	}
	id := rootIdent(call.Args[0])
	if id == nil {
		return
	}
	obj := pass.TypesInfo.Uses[id]
	if obj == nil || obj.Parent() == nil {
		return
	}
	// Declared inside the loop body → dies with the iteration, order-free.
	if rng.Body.Pos() <= obj.Pos() && obj.Pos() <= rng.Body.End() {
		return
	}
	if funcBody != nil && sortedLater(pass, funcBody, obj) {
		return
	}
	report(call, "append to %s inside a range over a map: element order follows map iteration; collect and sort, or iterate a sorted key slice", id.Name)
}

// sortedLater reports whether the function body passes obj to a sorting
// function (sort.Strings, sort.Slice, slices.Sort, …) after collecting it.
func sortedLater(pass *analysis.Pass, body *ast.BlockStmt, obj types.Object) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) == 0 {
			return true
		}
		fn := calleeFunc(pass.TypesInfo, call)
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		if pkg := fn.Pkg().Path(); pkg != "sort" && pkg != "slices" {
			return true
		}
		if usesObject(pass.TypesInfo, call.Args[0], obj) {
			found = true
		}
		return !found
	})
	return found
}

// checkNondetSource flags time.Now and package-level math/rand functions.
func checkNondetSource(pass *analysis.Pass, report func(ast.Node, string, ...interface{}), sel *ast.SelectorExpr) {
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return
	}
	if fn.Type().(*types.Signature).Recv() != nil {
		return // methods (e.g. on a seeded *rand.Rand) are deterministic
	}
	switch fn.Pkg().Path() {
	case "time":
		if fn.Name() == "Now" {
			report(sel, "time.Now on the deterministic path: results must be pure functions of (input, seed)")
		}
	case "math/rand", "math/rand/v2":
		if fn.Name() == "New" || fn.Name() == "NewSource" || fn.Name() == "NewZipf" || fn.Name() == "NewPCG" || fn.Name() == "NewChaCha8" {
			return // constructing a seeded generator is the blessed pattern
		}
		report(sel, "global math/rand.%s on the deterministic path: derive a seeded generator (mpc.NewChildRng) instead", fn.Name())
	}
}
