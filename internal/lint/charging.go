package lint

import (
	"go/ast"
	"go/token"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/ctrlflow"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
	"golang.org/x/tools/go/cfg"
)

// ChargingAnalyzer enforces the charging contract: every communication step
// is charged to the cluster, and the round structure never depends on the
// data beyond its logical shape.
//
// Rule 1 — exported primitives charge on every return path. An exported
// function in a scoped package that performs any communication (a routed
// exchange — ShuffleByKey, ReplicateBy, GatherTo, MoveTo, … — a sorted
// chop, or an explicit Charge) must perform one on EVERY path from entry
// to return. A return reachable without any communicating call means some
// input reaches the caller uncharged. The one blessed exception is the
// trivially-empty early-out: a return dominated by an emptiness guard
// (`if x.Size() == 0`, `if len(xs) == 0`) may skip the rounds entirely,
// because a statically-empty sub-query has no communication to charge.
//
// Rule 2 — charges are not skipped behind non-emptiness guards. A call to
// Charge/ChargeRound/ChargeInput/chargeCoordinatorExchange nested under a
// positivity test (`if n > 0 { c.ChargeRound(...) }`) silently deletes a
// round exactly when the input is empty, so the round count stops being a
// function of the query's logical structure. Charge unconditionally, or
// early-out the whole primitive behind the emptiness guard.
var ChargingAnalyzer = &analysis.Analyzer{
	Name:     "repocharging",
	Doc:      "exported communicating primitives must charge the cluster on every return path, never behind a non-emptiness guard",
	Run:      runCharging,
	Requires: []*analysis.Analyzer{inspect.Analyzer, ctrlflow.Analyzer},
}

func init() {
	ChargingAnalyzer.Flags.String("scope", "repro/internal/primitives",
		"comma-separated package paths to check (\"all\" for every package)")
}

// commFuncs are the communicating entry points: every one charges the
// cluster internally (routes open a round, chops charge chunk loads), so a
// call to any of them satisfies rule 1 — and a path with none of them has
// communicated nothing and charged nothing.
var commFuncs = map[string]bool{
	// routed exchanges on mpc.Dist
	"route": true, "routeTasks": true,
	"ShuffleByKey": true, "ShuffleByAttrs": true, "ShuffleBy": true,
	"ReplicateBy": true, "Broadcast": true, "GatherTo": true, "MoveTo": true,
	// sort-and-chop plus the explicit charges
	"sortAndChop": true, "chopBounds": true, "chop": true, "serialSortAndChopRef": true,
	"Charge": true, "ChargeRound": true, "ChargeInput": true,
	"chargeCoordinatorExchange": true,
}

// chargeOnlyFuncs are the explicit synthetic charges rule 2 guards.
var chargeOnlyFuncs = map[string]bool{
	"Charge": true, "ChargeRound": true, "ChargeInput": true,
	"chargeCoordinatorExchange": true,
}

func runCharging(pass *analysis.Pass) (interface{}, error) {
	scope := pass.Analyzer.Flags.Lookup("scope").Value.String()
	if !inScope(scope, pass.Pkg.Path()) {
		return nil, nil
	}
	ignores := buildIgnoreIndex(pass, pass.Analyzer.Name)
	report := func(pos token.Pos, format string, args ...interface{}) {
		if !ignores.suppressed(pass.Fset, pass.Analyzer.Name, pos) {
			pass.Reportf(pos, format, args...)
		}
	}

	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	cfgs := pass.ResultOf[ctrlflow.Analyzer].(*ctrlflow.CFGs)

	ins.Preorder([]ast.Node{(*ast.FuncDecl)(nil)}, func(n ast.Node) {
		fd := n.(*ast.FuncDecl)
		if fd.Body == nil || isTestFile(pass.Fset, fd.Pos()) {
			return
		}
		checkChargeGuards(pass, report, fd)
		if !fd.Name.IsExported() {
			return
		}
		g := cfgs.FuncDecl(fd)
		if g == nil {
			return
		}
		checkReturnPaths(pass, report, fd, g)
	})
	ignores.reportUnused(pass)
	return nil, nil
}

// isCommCall reports whether the call invokes a communicating entry point.
func isCommCall(pass *analysis.Pass, call *ast.CallExpr) bool {
	fn := calleeFunc(pass.TypesInfo, call)
	return fn != nil && commFuncs[fn.Name()]
}

// checkReturnPaths walks the CFG of an exported function that communicates
// and reports every return reachable from entry without passing a
// communicating call, excepting emptiness-guarded early-outs.
func checkReturnPaths(pass *analysis.Pass, report func(token.Pos, string, ...interface{}), fd *ast.FuncDecl, g *cfg.CFG) {
	// Does the function communicate at all? (Scans the whole body,
	// including closures: a closure charging on behalf of the function
	// still marks it as a communicating primitive.)
	communicates := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok && isCommCall(pass, call) {
			communicates = true
		}
		return !communicates
	})
	if !communicates {
		return
	}

	exempt := emptyGuardedReturns(pass, fd)

	// blockCharges reports whether block b contains a communicating call
	// at statement granularity (closures inside a statement do not count:
	// a charge inside a deferred or forked closure is not sequenced on
	// this path).
	blockCharges := func(b *cfg.Block) bool {
		for _, n := range b.Nodes {
			charged := false
			ast.Inspect(n, func(m ast.Node) bool {
				switch v := m.(type) {
				case *ast.FuncLit:
					return false
				case *ast.CallExpr:
					if isCommCall(pass, v) {
						charged = true
					}
				}
				return !charged
			})
			if charged {
				return true
			}
		}
		return false
	}

	// DFS from entry, refusing to continue past a charging block: every
	// block reached is reachable with zero communication so far.
	reached := make(map[*cfg.Block]bool)
	var walk func(b *cfg.Block)
	walk = func(b *cfg.Block) {
		if reached[b] {
			return
		}
		reached[b] = true
		if blockCharges(b) {
			return
		}
		for _, s := range b.Succs {
			walk(s)
		}
	}
	if len(g.Blocks) == 0 {
		return
	}
	walk(g.Blocks[0])

	for _, b := range g.Blocks {
		if !reached[b] || blockCharges(b) {
			continue
		}
		for _, n := range b.Nodes {
			ret, ok := n.(*ast.ReturnStmt)
			if !ok || exempt[ret] {
				continue
			}
			// The CFG synthesizes a ReturnStmt at the closing brace for an
			// implicit return; falling off the end of a void function is
			// not an early-out (rule 2 still guards conditional charges).
			if ret.Pos() == fd.Body.Rbrace {
				continue
			}
			report(ret.Pos(), "%s communicates but returns without charging the cluster on this path; charge it or guard the early-out with an emptiness check", fd.Name.Name)
		}
	}
}

// emptyGuardedReturns collects the returns exempt from rule 1: those
// inside an if-branch taken exactly when an input is empty — a zero
// comparison (== 0, <= 0, < 1) of a len(...), .Size(), or .len() value,
// or the inverted test's else-branch.
func emptyGuardedReturns(pass *analysis.Pass, fd *ast.FuncDecl) map[*ast.ReturnStmt]bool {
	exempt := map[*ast.ReturnStmt]bool{}
	markReturns := func(n ast.Node) {
		if n == nil {
			return
		}
		ast.Inspect(n, func(m ast.Node) bool {
			if ret, ok := m.(*ast.ReturnStmt); ok {
				exempt[ret] = true
			}
			return true
		})
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		ifs, ok := n.(*ast.IfStmt)
		if !ok {
			return true
		}
		switch emptinessTest(pass, ifs.Cond) {
		case testIsEmpty:
			markReturns(ifs.Body)
		case testIsNonEmpty:
			markReturns(ifs.Else)
		}
		return true
	})
	return exempt
}

type emptiness int

const (
	testNeither emptiness = iota
	testIsEmpty
	testIsNonEmpty
)

// emptinessTest classifies a condition as an emptiness or non-emptiness
// test on a size-like value.
func emptinessTest(pass *analysis.Pass, cond ast.Expr) emptiness {
	be, ok := ast.Unparen(cond).(*ast.BinaryExpr)
	if !ok {
		return testNeither
	}
	size, zero := be.X, be.Y
	op := be.Op
	if isZeroLiteral(be.X) {
		size, zero = be.Y, be.X
		// normalize: put the size on the left
		switch op {
		case token.LSS:
			op = token.GTR
		case token.GTR:
			op = token.LSS
		case token.LEQ:
			op = token.GEQ
		case token.GEQ:
			op = token.LEQ
		}
	}
	if !isZeroLiteral(zero) || !isSizeExpr(pass, size) {
		return testNeither
	}
	switch op {
	case token.EQL, token.LEQ: // size == 0, size <= 0
		return testIsEmpty
	case token.NEQ, token.GTR: // size != 0, size > 0
		return testIsNonEmpty
	}
	return testNeither
}

// isSizeExpr reports whether e is a size-like value: len(...), a call to a
// method named Size/Len/len, or an int-typed identifier (a counted total).
func isSizeExpr(pass *analysis.Pass, e ast.Expr) bool {
	switch v := ast.Unparen(e).(type) {
	case *ast.CallExpr:
		if isBuiltin(pass.TypesInfo, v, "len") || isBuiltin(pass.TypesInfo, v, "cap") {
			return true
		}
		fn := calleeFunc(pass.TypesInfo, v)
		if fn == nil {
			return false
		}
		switch fn.Name() {
		case "Size", "Len", "len", "N", "TotalCount":
			return true
		}
	case *ast.Ident:
		return true // a counted total held in a variable
	case *ast.SelectorExpr:
		return true // a counted total held in a field
	}
	return false
}

// checkChargeGuards implements rule 2 for every function (exported or
// not): an explicit charge nested under a non-emptiness guard is reported.
func checkChargeGuards(pass *analysis.Pass, report func(token.Pos, string, ...interface{}), fd *ast.FuncDecl) {
	// Stack of open if-branches classified as non-emptiness-guarded.
	type frame struct {
		n       ast.Node // the guarded branch block
		guarded bool
	}
	var stack []frame
	var walk func(n ast.Node)
	walk = func(n ast.Node) {
		ast.Inspect(n, func(m ast.Node) bool {
			switch v := m.(type) {
			case *ast.IfStmt:
				guardedThen := emptinessTest(pass, v.Cond) == testIsNonEmpty
				if v.Init != nil {
					walk(v.Init)
				}
				walk(v.Cond)
				stack = append(stack, frame{n: v.Body, guarded: guardedThen})
				walk(v.Body)
				stack = stack[:len(stack)-1]
				if v.Else != nil {
					stack = append(stack, frame{n: v.Else, guarded: emptinessTest(pass, v.Cond) == testIsEmpty})
					walk(v.Else)
					stack = stack[:len(stack)-1]
				}
				return false
			case *ast.CallExpr:
				fn := calleeFunc(pass.TypesInfo, v)
				if fn == nil || !chargeOnlyFuncs[fn.Name()] {
					return true
				}
				for _, f := range stack {
					if f.guarded {
						report(v.Pos(), "%s is skipped when the input is empty: the round count must depend on the query's structure, not the data; charge unconditionally or early-out the whole primitive", fn.Name())
						return true
					}
				}
			}
			return true
		})
	}
	walk(fd.Body)
}
