// Package lint is the repository's static-analysis suite: nine custom
// go/analysis analyzers that enforce, at compile time, the contracts the
// runtime test fences (width sweeps, fuzz parity, -race, AllocsPerRun
// ceilings) can only sample:
//
//	determinism    no map-iteration order, wall clock, global RNG, or
//	               select race may reach an emitter, an ordered buffer,
//	               or a round charge in a data-plane package
//	charging       exported primitives that communicate must charge the
//	               cluster on every return path, and a Charge call must
//	               never be skipped behind a non-emptiness guard
//	poollifecycle  pooled buffers (record columns, sort scratch,
//	               interners, exchange-plan scratch) are released on
//	               every path and never escape their owner
//	forksafety     closures handed to runtime.Fork must not write shared
//	               captured state outside a per-task window
//	allochygiene   functions under an AllocsPerRun ceiling, marked
//	               lint:alloc-ceiling, must not allocate inside loops
//	roundcost      every function gets a static round-cost class (zero,
//	               const, log, loop, unknown) composed inter-procedurally
//	               from exported facts and checked against //lint:rounds
//	               declarations
//	repobound      every registered algorithm declares its round class,
//	               which its run body's static classification must respect
//	loadcost       every function gets a static load class (zero, const,
//	               perP, frac, linear, unknown) from the arithmetic shape
//	               of its cluster charge arguments, composed
//	               inter-procedurally from exported facts and checked
//	               against //lint:load declarations
//	repoload       every registered algorithm declares its load class,
//	               which its run body's static classification and its
//	               bound prose must respect
//
// The suite runs through cmd/repolint (`go vet -vettool`), so every
// package — including future ones — inherits the contracts for free.
// A finding that is a vetted false positive is suppressed in place with
//
//	//lint:ignore <analyzer> <reason>
//
// on the flagged line or the line above; the reason is mandatory and a
// directive without one never suppresses anything. A directive that
// suppresses nothing is itself reported, so stale escape hatches cannot
// accumulate.
package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"
)

// Analyzers returns the full suite in a stable order; cmd/repolint and the
// tests load exactly this set.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		DeterminismAnalyzer,
		ChargingAnalyzer,
		PoolLifecycleAnalyzer,
		ForkSafetyAnalyzer,
		AllocHygieneAnalyzer,
		RoundCostAnalyzer,
		RepoBoundAnalyzer,
		LoadCostAnalyzer,
		RepoLoadAnalyzer,
	}
}

// dataPlaneScope is the default package scope of the scoped analyzers: the
// packages whose emissions, charges, and buffers are covered by the
// byte-determinism and charging contracts documented in DESIGN.md.
const dataPlaneScope = "repro/internal/mpc,repro/internal/primitives,repro/internal/core,repro/internal/engine,repro/internal/harness"

// inScope reports whether pkgPath is covered by the comma-separated scope
// list. "all" covers everything (the fixture tests use it).
func inScope(scope, pkgPath string) bool {
	for _, s := range strings.Split(scope, ",") {
		s = strings.TrimSpace(s)
		if s == "all" || s == pkgPath {
			return true
		}
	}
	return false
}

// isTestFile reports whether pos lies in a _test.go file.
func isTestFile(fset *token.FileSet, pos token.Pos) bool {
	return strings.HasSuffix(fset.Position(pos).Filename, "_test.go")
}

// ignoreIndex records the //lint:ignore directives of one package: for each
// analyzer, the file lines on which its diagnostics are suppressed. A
// directive suppresses its own line and the line below, so it can sit on
// the flagged line or on its own line directly above. Each directive
// tracks whether it ever suppressed anything: a stale escape hatch — one
// that covers no diagnostic — is itself reported at the end of the run.
type ignoreIndex struct {
	self     string
	covered  map[string]map[lineKey]*ignoreDirective // analyzer name → covered lines
	selfDirs []*ignoreDirective                      // directives naming the running analyzer
}

type lineKey struct {
	file string
	line int
}

type ignoreDirective struct {
	pos  token.Pos
	used bool
}

// buildIgnoreIndex scans the package's comments for lint:ignore directives
// and reports malformed ones (no analyzer, or no reason) that mention the
// running analyzer — a reasonless suppression is itself a violation.
func buildIgnoreIndex(pass *analysis.Pass, self string) *ignoreIndex {
	idx := &ignoreIndex{self: self, covered: map[string]map[lineKey]*ignoreDirective{}}
	for _, f := range pass.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//lint:ignore")
				if !ok {
					continue
				}
				fields := strings.Fields(text)
				if len(fields) == 0 {
					continue
				}
				name := fields[0]
				if len(fields) < 2 {
					if name == self {
						pass.Reportf(c.Pos(), "lint:ignore %s directive needs a reason", name)
					}
					continue
				}
				p := pass.Fset.Position(c.Pos())
				d := &ignoreDirective{pos: c.Pos()}
				m := idx.covered[name]
				if m == nil {
					m = map[lineKey]*ignoreDirective{}
					idx.covered[name] = m
				}
				m[lineKey{p.Filename, p.Line}] = d
				m[lineKey{p.Filename, p.Line + 1}] = d
				if name == self {
					idx.selfDirs = append(idx.selfDirs, d)
				}
			}
		}
	}
	return idx
}

// suppressed reports whether a diagnostic of the named analyzer at pos is
// covered by a lint:ignore directive, marking the directive as used.
func (idx *ignoreIndex) suppressed(fset *token.FileSet, name string, pos token.Pos) bool {
	p := fset.Position(pos)
	d := idx.covered[name][lineKey{p.Filename, p.Line}]
	if d == nil {
		return false
	}
	d.used = true
	return true
}

// reportUnused reports every directive naming the running analyzer that
// suppressed no diagnostic: a stale escape hatch is a violation, so vetted
// exceptions can't outlive the code they excused. Analyzers call it at the
// end of their run, once every potential diagnostic has been tested.
func (idx *ignoreIndex) reportUnused(pass *analysis.Pass) {
	for _, d := range idx.selfDirs {
		if !d.used {
			pass.Reportf(d.pos, "lint:ignore %s suppresses no diagnostic; remove the stale directive", idx.self)
		}
	}
}

// calleeFunc resolves a call expression to the *types.Func it invokes
// (package function or method), or nil for builtins, conversions, and
// calls through function-typed variables or struct fields.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var obj types.Object
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = info.Uses[fn]
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fn]; ok {
			obj = sel.Obj()
		} else {
			obj = info.Uses[fn.Sel] // package-qualified call
		}
	}
	f, _ := obj.(*types.Func)
	return f
}

// isBuiltin reports whether the call invokes the named builtin.
func isBuiltin(info *types.Info, call *ast.CallExpr, name string) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	b, ok := info.Uses[id].(*types.Builtin)
	return ok && b.Name() == name
}

// rootIdent walks to the base identifier of expressions like x.F[i].G,
// returning nil when the base is not a plain identifier.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch v := ast.Unparen(e).(type) {
		case *ast.Ident:
			return v
		case *ast.SelectorExpr:
			e = v.X
		case *ast.IndexExpr:
			e = v.X
		case *ast.SliceExpr:
			e = v.X
		case *ast.StarExpr:
			e = v.X
		default:
			return nil
		}
	}
}

// usesObject reports whether the expression tree mentions the object.
func usesObject(info *types.Info, e ast.Node, obj types.Object) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && info.Uses[id] == obj {
			found = true
		}
		return !found
	})
	return found
}

// isZeroLiteral reports whether e is the integer literal 0.
func isZeroLiteral(e ast.Expr) bool {
	lit, ok := ast.Unparen(e).(*ast.BasicLit)
	return ok && lit.Kind == token.INT && lit.Value == "0"
}
