package lint

import (
	"go/ast"
	"go/token"
	"go/types"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
)

// ForkSafetyAnalyzer enforces the per-task-slot contract of runtime.Fork:
// tasks are claimed from an atomic counter, so which goroutine runs which
// task is scheduling-dependent, and a forked closure may only write state
// that is disjoint per task. Concretely, inside a closure passed to Fork:
//
//   - writing a captured variable directly (`total += n`, `buf = append…`)
//     is a data race and, worse, makes the result depend on task
//     interleaving even under -race-clean atomics;
//   - writing an element of a captured slice/map is legal ONLY when the
//     index is derived from the task parameter (a per-task window:
//     `out[task] = …`, `flat[base+i] = …` with base computed from task).
//     An index computed purely from captured state writes a shared slot.
//
// Reads of captured state are unrestricted — inputs are shared read-only.
var ForkSafetyAnalyzer = &analysis.Analyzer{
	Name:     "repoforksafety",
	Doc:      "closures passed to runtime.Fork may only write per-task slots indexed by the task parameter",
	Run:      runForkSafety,
	Requires: []*analysis.Analyzer{inspect.Analyzer},
}

func init() {
	ForkSafetyAnalyzer.Flags.String("scope", dataPlaneScope,
		"comma-separated package paths to check (\"all\" for every package)")
}

func runForkSafety(pass *analysis.Pass) (interface{}, error) {
	scope := pass.Analyzer.Flags.Lookup("scope").Value.String()
	if !inScope(scope, pass.Pkg.Path()) {
		return nil, nil
	}
	ignores := buildIgnoreIndex(pass, pass.Analyzer.Name)
	report := func(pos token.Pos, format string, args ...interface{}) {
		if !ignores.suppressed(pass.Fset, pass.Analyzer.Name, pos) {
			pass.Reportf(pos, format, args...)
		}
	}

	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	ins.Preorder([]ast.Node{(*ast.CallExpr)(nil)}, func(n ast.Node) {
		call := n.(*ast.CallExpr)
		if isTestFile(pass.Fset, call.Pos()) {
			return
		}
		lit := forkClosure(pass, call)
		if lit == nil {
			return
		}
		checkForkClosure(pass, report, lit)
	})
	ignores.reportUnused(pass)
	return nil, nil
}

// forkClosure returns the func literal passed to a runtime.Fork-shaped
// call — a function named Fork with signature (int, func(int)) — or nil.
// Matching is by name and shape, not import identity, so fixtures can
// declare their own Fork.
func forkClosure(pass *analysis.Pass, call *ast.CallExpr) *ast.FuncLit {
	fn := calleeFunc(pass.TypesInfo, call)
	if fn == nil || fn.Name() != "Fork" || len(call.Args) != 2 {
		return nil
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Params().Len() != 2 {
		return nil
	}
	if b, ok := sig.Params().At(0).Type().(*types.Basic); !ok || b.Kind() != types.Int {
		return nil
	}
	inner, ok := sig.Params().At(1).Type().(*types.Signature)
	if !ok || inner.Params().Len() != 1 || inner.Results().Len() != 0 {
		return nil
	}
	lit, _ := call.Args[1].(*ast.FuncLit)
	return lit
}

// checkForkClosure reports shared-state writes inside a forked closure.
func checkForkClosure(pass *analysis.Pass, report func(token.Pos, string, ...interface{}), lit *ast.FuncLit) {
	// declaredInside reports whether obj is declared within the closure —
	// the task parameter or any local. Everything else is captured.
	declaredInside := func(obj types.Object) bool {
		return obj != nil && lit.Pos() <= obj.Pos() && obj.Pos() <= lit.End()
	}

	checkWrite := func(target ast.Expr, pos token.Pos) {
		switch dst := ast.Unparen(target).(type) {
		case *ast.Ident:
			obj := pass.TypesInfo.ObjectOf(dst)
			if obj == nil || declaredInside(obj) || obj.Name() == "_" {
				return
			}
			report(pos, "forked closure writes captured variable %s: task interleaving reaches the result; write into a per-task slot instead", dst.Name)
		case *ast.IndexExpr:
			root := rootIdent(dst.X)
			if root == nil {
				return
			}
			obj := pass.TypesInfo.ObjectOf(root)
			if obj == nil || declaredInside(obj) {
				return
			}
			// A captured slice/map element: legal iff the index is derived
			// from the task (mentions something declared in the closure).
			if mentionsLocal(pass, dst.Index, declaredInside) {
				return
			}
			report(pos, "forked closure writes %s at an index not derived from the task parameter: tasks share this slot; index a per-task window instead", lhsString(dst.X))
		case *ast.SelectorExpr:
			root := rootIdent(dst)
			if root == nil {
				return
			}
			obj := pass.TypesInfo.ObjectOf(root)
			if obj == nil || declaredInside(obj) {
				return
			}
			report(pos, "forked closure writes field %s of captured %s: tasks share this field", dst.Sel.Name, root.Name)
		case *ast.StarExpr:
			root := rootIdent(dst.X)
			if root == nil {
				return
			}
			obj := pass.TypesInfo.ObjectOf(root)
			if obj == nil || declaredInside(obj) {
				return
			}
			report(pos, "forked closure writes through captured pointer %s", root.Name)
		}
	}

	ast.Inspect(lit.Body, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range v.Lhs {
				checkWrite(lhs, v.Pos())
			}
		case *ast.IncDecStmt:
			checkWrite(v.X, v.Pos())
		case *ast.FuncLit:
			if v != lit {
				return false // a nested closure is that call's problem
			}
		}
		return true
	})
}

// mentionsLocal reports whether the expression mentions any object for
// which inside() is true — i.e. derives from closure-local state.
func mentionsLocal(pass *analysis.Pass, e ast.Expr, inside func(types.Object) bool) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := pass.TypesInfo.ObjectOf(id); inside(obj) {
				found = true
			}
		}
		return !found
	})
	return found
}
