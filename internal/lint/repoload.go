package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"
)

// RepoLoadAnalyzer closes the load half of the registry loop: every
// `Register(&adapter{...})` must carry a machine-readable load declaration
// (`load: "perP|frac|linear"` — the three buckets a registered algorithm
// can honestly claim; zero/const algorithms don't exist in the catalog),
// the static class of its run body (computed by repoloadcost from the
// charging facts) must not exceed it, and the human-readable `bound` string
// must stay consistent with the declared class: a bound written in terms of
// /p, √p, or p^(c) must not be paired with a weaker declaration than the
// strongest marker it contains.
var RepoLoadAnalyzer = &analysis.Analyzer{
	Name:     "repoload",
	Doc:      "registered algorithms must declare a load class that their run body's static classification and bound prose respect",
	Run:      runRepoLoad,
	Requires: []*analysis.Analyzer{LoadCostAnalyzer},
}

func init() {
	RepoLoadAnalyzer.Flags.String("scope", "repro/internal/engine",
		"comma-separated package paths to check (\"all\" for every package)")
}

// loadRunClass classifies an adapter's run value: a function literal is
// classified in place, a named function through its (fact-backed) class.
func loadRunClass(lc *LoadCosts, info *types.Info, run ast.Expr) (LoadClass, bool) {
	switch v := ast.Unparen(run).(type) {
	case *ast.FuncLit:
		return lc.FuncLitClass(v), true
	case *ast.Ident:
		if fn, ok := info.Uses[v].(*types.Func); ok {
			return lc.FuncClass(fn), true
		}
	case *ast.SelectorExpr:
		if fn, ok := info.Uses[v.Sel].(*types.Func); ok {
			return lc.FuncClass(fn), true
		}
	}
	return LoadUnknown, false
}

// boundMarkerClass extracts the strongest load-class claim a Figure 1 bound
// string makes in prose: "sequential" claims linear, a √ or p^(…) term
// claims frac, a /p term claims perP, and anything else claims nothing
// (LoadZero, the bottom — no constraint). The declared class must be at
// least the marker: a bound may be stated conservatively in /p terms while
// the declaration carries the honest frac class (RHier's IN/p +
// L_instance), but a bound advertising √p with a perP tag is drift.
func boundMarkerClass(bound string) LoadClass {
	switch {
	case strings.Contains(bound, "sequential"):
		return LoadLinear
	case strings.Contains(bound, "√"), strings.Contains(bound, "p^("):
		return LoadFrac
	case strings.Contains(bound, "/p"):
		return LoadPerP
	}
	return LoadZero
}

// declarableLoad restricts registry declarations to the classes an
// algorithm can honestly claim.
func declarableLoad(s string) (LoadClass, bool) {
	class, ok := ParseLoadClass(s)
	if !ok || class < LoadPerP {
		return LoadUnknown, false
	}
	return class, true
}

func runRepoLoad(pass *analysis.Pass) (interface{}, error) {
	scope := pass.Analyzer.Flags.Lookup("scope").Value.String()
	if !inScope(scope, pass.Pkg.Path()) {
		return nil, nil
	}
	ignores := buildIgnoreIndex(pass, pass.Analyzer.Name)
	report := func(pos token.Pos, format string, args ...interface{}) {
		if !ignores.suppressed(pass.Fset, pass.Analyzer.Name, pos) {
			pass.Reportf(pos, format, args...)
		}
	}
	lc := pass.ResultOf[LoadCostAnalyzer].(*LoadCosts)

	// Only non-test files register algorithms.
	var files []*ast.File
	for _, f := range pass.Files {
		if !isTestFile(pass.Fset, f.Pos()) {
			files = append(files, f)
		}
	}

	for _, a := range parseAdapters(pass.TypesInfo, files) {
		name := a.name
		if name == "" {
			name = "adapter"
		}
		if !a.hasLoad {
			report(a.pos, "%s has no load declaration: add load: \"perP|frac|linear\" matching its Figure 1 load bound", name)
			continue
		}
		declared, ok := declarableLoad(a.load)
		if !ok {
			report(a.loadPos, "%s declares invalid load class %q (want perP, frac, or linear)", name, a.load)
			continue
		}
		if marker := boundMarkerClass(a.bound); marker > declared {
			report(a.boundPos, "%s's bound string %q claims load class %s in prose, stronger than its declared load %q", name, a.bound, marker, a.load)
		}
		if a.run == nil {
			report(a.pos, "%s has no run function to classify", name)
			continue
		}
		class, resolved := loadRunClass(lc, pass.TypesInfo, a.run)
		if !resolved || class == LoadUnknown {
			report(a.run.Pos(), "%s's run body classifies as unknown load; restructure it or declare its callees so the class resolves", name)
			continue
		}
		if class > declared {
			report(a.loadPos, "%s's run body reaches charges of load class %s, which exceeds its declared load %q", name, class, a.load)
		}
	}
	ignores.reportUnused(pass)
	return nil, nil
}
