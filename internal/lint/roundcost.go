package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"reflect"
	"sort"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
)

// RoundClass is the static round-cost lattice: how many communication
// rounds a function charges, as a function of the input size IN.
//
//	Zero    charges nothing
//	Const   O(1) rounds — a fixed number, set by the query's structure
//	Log     O(log IN) rounds
//	Loop    rounds scale with the data (charge inside a data-bound loop)
//	Unknown could not be classified
//
// The order is the lattice order: sequencing and branching compose by max,
// so a function's class is the worst class of anything it can reach.
type RoundClass int

const (
	RoundsZero RoundClass = iota
	RoundsConst
	RoundsLog
	RoundsLoop
	RoundsUnknown
)

func (c RoundClass) String() string {
	switch c {
	case RoundsZero:
		return "zero"
	case RoundsConst:
		return "const"
	case RoundsLog:
		return "log"
	case RoundsLoop:
		return "loop"
	}
	return "unknown"
}

// ParseRoundClass parses a declared class ("zero", "const", "log", "loop").
// Unknown is not declarable: a declaration exists to rule it out.
func ParseRoundClass(s string) (RoundClass, bool) {
	switch s {
	case "zero":
		return RoundsZero, true
	case "const":
		return RoundsConst, true
	case "log":
		return RoundsLog, true
	case "loop":
		return RoundsLoop, true
	}
	return RoundsUnknown, false
}

// RoundCostFact is the per-function summary exported for cross-package
// composition: the function charges at most Class rounds. Trusted facts
// come from `//lint:rounds <class> trust <reason>` declarations and are
// asserted, not computed — the grounding axioms of the analysis (e.g. the
// simulator's own newRound) and the assume/guarantee seeds for recursion.
type RoundCostFact struct {
	Class   RoundClass
	Trusted bool
}

func (*RoundCostFact) AFact() {}

func (f *RoundCostFact) String() string {
	if f.Trusted {
		return fmt.Sprintf("rounds(%s, trusted)", f.Class)
	}
	return fmt.Sprintf("rounds(%s)", f.Class)
}

// RoundCosts is RoundCostAnalyzer's result: a handle that lets dependent
// analyzers (repobound) classify functions and function literals of the
// analyzed package. Nil-safe: a scope-skipped package yields an empty
// handle whose queries return Unknown.
type RoundCosts struct {
	cl   *classifier
	info *types.Info
}

// FuncClass returns the round class of a function (same package: computed;
// imported: from its exported fact; neither: Zero).
func (r *RoundCosts) FuncClass(fn *types.Func) RoundClass {
	if r == nil || r.cl == nil {
		return RoundsUnknown
	}
	return r.cl.classifyFuncRef(fn)
}

// FuncLitClass classifies a function literal's body in place.
func (r *RoundCosts) FuncLitClass(lit *ast.FuncLit) RoundClass {
	if r == nil || r.cl == nil {
		return RoundsUnknown
	}
	fs := newFuncScope(r.info, lit.Body, nil)
	return r.cl.nodeClass(fs, lit.Body)
}

// RoundCostAnalyzer computes, per function, a round-cost summary from its
// body plus the exported facts of its callees, checks it against the
// function's machine-readable declaration, and exports it as a fact:
//
//	//lint:rounds <zero|const|log|loop>
//	//lint:rounds <class> trust <reason>
//
// The analysis is grounded entirely in trusted declarations (the
// simulator's newRound is the base charge); everything else composes:
// sequencing and branching take the max, a loop escalates its body's class
// by its bound (constant or structural bound keeps it, a log-shrinking
// bound lifts Const to Log, a data-dependent bound lifts anything charging
// to Loop). Calls into functions without facts — std lib, out-of-scope
// packages, dynamic calls through interfaces or function values — count as
// Zero; the harness's observed-rounds test backstops that assumption at
// runtime. Closures handed to runtime.Fork, go, or defer are skipped
// (forked work charges child clusters); immediately-invoked and
// locally-bound closures are inlined.
//
// Within declscope, an exported function that charges (class > zero) must
// carry a declaration, a computed class must not exceed its declaration,
// and a recursive function must declare its class (assume/guarantee). On a
// violation the declared class is exported, so drift is reported once, at
// the function, not at every transitive caller.
var RoundCostAnalyzer = &analysis.Analyzer{
	Name:       "reporoundcost",
	Doc:        "per-function static round-cost classification, checked against //lint:rounds declarations and exported as facts",
	Run:        runRoundCost,
	Requires:   []*analysis.Analyzer{inspect.Analyzer},
	FactTypes:  []analysis.Fact{(*RoundCostFact)(nil)},
	ResultType: reflect.TypeOf((*RoundCosts)(nil)),
}

func init() {
	RoundCostAnalyzer.Flags.String("scope", dataPlaneScope,
		"comma-separated package paths to classify (\"all\" for every package)")
	RoundCostAnalyzer.Flags.String("declscope", "repro/internal/mpc,repro/internal/primitives,repro/internal/core",
		"packages whose exported charging functions must carry //lint:rounds declarations")
}

func runRoundCost(pass *analysis.Pass) (interface{}, error) {
	scope := pass.Analyzer.Flags.Lookup("scope").Value.String()
	if !inScope(scope, pass.Pkg.Path()) {
		return (*RoundCosts)(nil), nil
	}
	declscope := pass.Analyzer.Flags.Lookup("declscope").Value.String()
	requireDecls := inScope(declscope, pass.Pkg.Path())

	ignores := buildIgnoreIndex(pass, pass.Analyzer.Name)
	report := func(pos token.Pos, format string, args ...interface{}) {
		if !ignores.suppressed(pass.Fset, pass.Analyzer.Name, pos) {
			pass.Reportf(pos, format, args...)
		}
	}

	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)

	// Index this package's function declarations (test files excluded: the
	// contracts cover shipped code, and _test.go files never export facts).
	decls := map[*types.Func]*ast.FuncDecl{}
	var order []*types.Func
	ins.Preorder([]ast.Node{(*ast.FuncDecl)(nil)}, func(n ast.Node) {
		fd := n.(*ast.FuncDecl)
		if fd.Body == nil || isTestFile(pass.Fset, fd.Pos()) {
			return
		}
		if fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
			decls[fn] = fd
			order = append(order, fn)
		}
	})

	cl := &classifier{
		lookup: func(fn *types.Func) (*ast.FuncDecl, *types.Info) {
			if fd, ok := decls[fn]; ok {
				return fd, pass.TypesInfo
			}
			return nil, nil
		},
		imported: func(fn *types.Func) (RoundClass, bool) {
			var fact RoundCostFact
			if pass.ImportObjectFact(fn, &fact) {
				return fact.Class, true
			}
			return RoundsZero, false
		},
		report:       report,
		requireDecls: requireDecls,
		memo:         map[*types.Func]RoundClass{},
		stack:        map[*types.Func]*classFrame{},
	}

	for _, fn := range order {
		class := cl.classifyFuncRef(fn)
		if class > RoundsZero && fn.Exported() {
			trusted := false
			if d := parseRoundDecl(decls[fn], nil); d != nil {
				trusted = d.trust
			}
			pass.ExportObjectFact(fn, &RoundCostFact{Class: class, Trusted: trusted})
		}
	}
	ignores.reportUnused(pass)
	return &RoundCosts{cl: cl, info: pass.TypesInfo}, nil
}

// roundDecl is a parsed //lint:rounds declaration.
type roundDecl struct {
	class RoundClass
	trust bool
	pos   token.Pos
}

// parseRoundDecl extracts the //lint:rounds declaration from a function's
// doc comment (the raw list: Doc.Text() strips directives). Malformed
// declarations are reported through report (when non-nil) and ignored.
func parseRoundDecl(fd *ast.FuncDecl, report func(pos token.Pos, format string, args ...interface{})) *roundDecl {
	if fd == nil || fd.Doc == nil {
		return nil
	}
	bad := func(pos token.Pos, format string, args ...interface{}) *roundDecl {
		if report != nil {
			report(pos, format, args...)
		}
		// A malformed directive is still a directive: returning the Unknown
		// sentinel keeps the missing-declaration check from double-firing.
		return &roundDecl{class: RoundsUnknown, pos: pos}
	}
	for _, c := range fd.Doc.List {
		rest, ok := strings.CutPrefix(c.Text, "//lint:rounds")
		if !ok {
			continue
		}
		// A nested // starts a comment within the directive (the fixture
		// harness rides want expectations there).
		if i := strings.Index(rest, "//"); i >= 0 {
			rest = rest[:i]
		}
		fields := strings.Fields(rest)
		if len(fields) == 0 {
			return bad(c.Pos(), "lint:rounds declaration on %s needs a class (zero, const, log, or loop)", fd.Name.Name)
		}
		class, ok := ParseRoundClass(fields[0])
		if !ok {
			return bad(c.Pos(), "lint:rounds declaration on %s has unknown class %q (want zero, const, log, or loop)", fd.Name.Name, fields[0])
		}
		trust := false
		if len(fields) > 1 {
			if fields[1] != "trust" {
				return bad(c.Pos(), "lint:rounds declaration on %s has trailing %q (only `trust <reason>` may follow the class)", fd.Name.Name, fields[1])
			}
			if len(fields) < 3 {
				return bad(c.Pos(), "lint:rounds trust declaration on %s needs a reason", fd.Name.Name)
			}
			trust = true
		}
		return &roundDecl{class: class, trust: trust, pos: c.Pos()}
	}
	return nil
}

// classifier resolves functions to round classes. It is driver-agnostic:
// the analyzer wires lookup to the current package and imported to the
// facts store; the contracts generator wires lookup to a whole-program
// index and leaves imported nil.
type classifier struct {
	lookup       func(fn *types.Func) (*ast.FuncDecl, *types.Info)
	imported     func(fn *types.Func) (RoundClass, bool)
	report       func(pos token.Pos, format string, args ...interface{})
	requireDecls bool
	collectSites bool

	memo    map[*types.Func]RoundClass
	sites   map[*types.Func][]string // declared charge primitives reachable, per function
	siteFns map[string]*types.Func   // site name → function, for cross-classifier rendering
	stack   map[*types.Func]*classFrame
}

type classFrame struct {
	decl     *roundDecl
	recursed bool // re-entered with no declaration to assume
}

func (c *classifier) reportf(pos token.Pos, format string, args ...interface{}) {
	if c.report != nil {
		c.report(pos, format, args...)
	}
}

// classifyFuncRef resolves fn to its round class: memoized, with
// declaration checking for functions whose bodies are in view and
// assume/guarantee handling for recursion (a cycle resolves to the
// in-progress function's declared class; an undeclared cycle is reported
// and resolves to Unknown).
func (c *classifier) classifyFuncRef(fn *types.Func) RoundClass {
	if class, ok := c.memo[fn]; ok {
		return class
	}
	if frame, ok := c.stack[fn]; ok {
		if frame.decl != nil {
			return frame.decl.class
		}
		frame.recursed = true
		return RoundsUnknown
	}
	fd, info := c.lookup(fn)
	if fd == nil {
		class := RoundsZero
		if c.imported != nil {
			if imp, ok := c.imported(fn); ok {
				class = imp
			}
		}
		c.memo[fn] = class
		return class
	}

	decl := parseRoundDecl(fd, c.report)
	frame := &classFrame{decl: decl}
	c.stack[fn] = frame

	var sites *siteSet
	if c.collectSites {
		sites = &siteSet{seen: map[string]bool{}}
	}

	var class RoundClass
	if decl != nil && decl.trust {
		class = decl.class
	} else {
		fs := newFuncScope(info, fd.Body, sites)
		class = c.nodeClass(fs, fd.Body)
		if frame.recursed {
			c.reportf(fd.Name.Pos(), "%s is recursive and needs a //lint:rounds declaration to classify (assume/guarantee)", fn.Name())
			class = RoundsUnknown
		}
		switch {
		case decl != nil:
			if class > decl.class {
				c.reportf(fd.Name.Pos(), "%s computes round class %s, which exceeds its declared //lint:rounds %s", fn.Name(), class, decl.class)
				class = decl.class // localize: callers see the declaration, drift is reported here once
			}
		case c.requireDecls && class == RoundsUnknown && !frame.recursed:
			c.reportf(fd.Name.Pos(), "%s cannot be classified (a recursive closure charges rounds) and needs a //lint:rounds declaration to anchor it", fn.Name())
		case c.requireDecls && fn.Exported() && class > RoundsZero && class != RoundsUnknown:
			c.reportf(fd.Name.Pos(), "exported %s charges rounds (class %s) but has no //lint:rounds declaration", fn.Name(), class)
		}
	}

	delete(c.stack, fn)
	c.memo[fn] = class
	if sites != nil {
		c.sites[fn] = sites.sorted()
	}
	return class
}

// SitesOf returns the sorted declared charge primitives reachable from fn
// (contracts mode only; the analyzer does not collect sites).
func (c *classifier) SitesOf(fn *types.Func) []string {
	return c.sites[fn]
}

// siteSet accumulates the declared charging primitives a body can reach.
type siteSet struct {
	seen map[string]bool
}

func (s *siteSet) add(name string) {
	s.seen[name] = true
}

func (s *siteSet) sorted() []string {
	out := make([]string, 0, len(s.seen))
	for name := range s.seen {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// siteName renders a function for CONTRACTS.md charge-site lists.
func siteName(fn *types.Func) string {
	return strings.ReplaceAll(fn.FullName(), "repro/internal/", "")
}

// funcScope is the per-body context for classification: single-assignment
// dataflow for loop-bound tracing, element-assignment tracking for
// ChargeRound slices, and closure-binding resolution.
type funcScope struct {
	info        *types.Info
	assigns     map[types.Object][]ast.Expr // ident → recorded RHS (nil = untraceable)
	elemAssigns map[types.Object][]ast.Expr // slice ident → element RHS (nil = accumulation)
	bindings    map[types.Object]*ast.FuncLit
	sites       *siteSet
	active      map[*ast.FuncLit]bool // inlining in progress (self-recursive closure guard)
	recursed    map[*ast.FuncLit]bool // closures whose inlining hit their own back-edge
}

func newFuncScope(info *types.Info, body *ast.BlockStmt, sites *siteSet) *funcScope {
	fs := &funcScope{
		info:        info,
		assigns:     map[types.Object][]ast.Expr{},
		elemAssigns: map[types.Object][]ast.Expr{},
		bindings:    map[types.Object]*ast.FuncLit{},
		sites:       sites,
		active:      map[*ast.FuncLit]bool{},
		recursed:    map[*ast.FuncLit]bool{},
	}
	record := func(id *ast.Ident, rhs ast.Expr) {
		if id.Name == "_" {
			return
		}
		obj := info.Defs[id]
		if obj == nil {
			obj = info.Uses[id]
		}
		if obj != nil {
			fs.assigns[obj] = append(fs.assigns[obj], rhs)
		}
	}
	recordElem := func(e ast.Expr, rhs ast.Expr) {
		ix, ok := e.(*ast.IndexExpr)
		if !ok {
			return
		}
		id, ok := ix.X.(*ast.Ident)
		if !ok {
			return
		}
		if obj := info.Uses[id]; obj != nil {
			fs.elemAssigns[obj] = append(fs.elemAssigns[obj], rhs)
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range v.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok {
					if v.Tok == token.ASSIGN && len(v.Rhs) == len(v.Lhs) {
						recordElem(lhs, v.Rhs[i])
					} else {
						recordElem(lhs, nil) // compound assign (+=): accumulation
					}
					continue
				}
				if len(v.Rhs) == len(v.Lhs) {
					record(id, v.Rhs[i])
				} else {
					record(id, nil) // multi-value: untraceable
				}
			}
		case *ast.IncDecStmt:
			if id, ok := v.X.(*ast.Ident); ok {
				record(id, nil)
			} else {
				// loads[s]++ steps the element by one: a const contribution.
				recordElem(v.X, &ast.BasicLit{Kind: token.INT, Value: "1"})
			}
		case *ast.RangeStmt:
			if id, ok := v.Key.(*ast.Ident); ok {
				record(id, nil)
			}
			if id, ok := v.Value.(*ast.Ident); ok {
				record(id, nil)
			}
		case *ast.GenDecl:
			for _, spec := range v.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, id := range vs.Names {
					if i < len(vs.Values) {
						record(id, vs.Values[i])
					}
				}
			}
		}
		return true
	})
	for obj, rhss := range fs.assigns {
		if len(rhss) == 1 && rhss[0] != nil {
			if lit, ok := ast.Unparen(rhss[0]).(*ast.FuncLit); ok {
				fs.bindings[obj] = lit
			}
		}
	}
	return fs
}

// nodeClass computes the round class of a statement/expression subtree:
// max over everything reachable, with loops escalated by their bound and
// closure bodies handled at their call sites.
func (c *classifier) nodeClass(fs *funcScope, n ast.Node) RoundClass {
	if n == nil {
		return RoundsZero
	}
	class := RoundsZero
	ast.Inspect(n, func(m ast.Node) bool {
		switch v := m.(type) {
		case *ast.ForStmt:
			class = max(class, c.nodeClass(fs, v.Init))
			inner := max(c.nodeClass(fs, v.Cond), c.nodeClass(fs, v.Post), c.nodeClass(fs, v.Body))
			class = max(class, loopApply(c.forBound(fs, v), inner))
			return false
		case *ast.RangeStmt:
			class = max(class, c.nodeClass(fs, v.X))
			inner := c.nodeClass(fs, v.Body)
			class = max(class, loopApply(c.rangeBound(fs, v), inner))
			return false
		case *ast.FuncLit:
			return false // classified where invoked; skipped where spawned
		case *ast.GoStmt:
			class = max(class, c.spawnClass(fs, v.Call))
			return false
		case *ast.DeferStmt:
			class = max(class, c.spawnClass(fs, v.Call))
			return false
		case *ast.CallExpr:
			class = max(class, c.callClass(fs, v))
			return true // args may hold nested calls
		}
		return true
	})
	return class
}

// spawnClass handles go/defer: a spawned closure's charges land on a child
// cluster (runtime.Fork's contract) or outside this round structure, so a
// FuncLit operand is skipped; a named callee is charged normally (a
// deferred charge still runs in this function's dynamic extent).
func (c *classifier) spawnClass(fs *funcScope, call *ast.CallExpr) RoundClass {
	class := RoundsZero
	for _, arg := range call.Args {
		class = max(class, c.nodeClass(fs, arg))
	}
	if _, ok := ast.Unparen(call.Fun).(*ast.FuncLit); !ok {
		class = max(class, c.callClass(fs, call))
	}
	return class
}

// callClass classifies one call: inlined closures, resolved functions
// (local bodies or imported facts), or Zero for dynamic callees.
func (c *classifier) callClass(fs *funcScope, call *ast.CallExpr) RoundClass {
	fun := ast.Unparen(call.Fun)
	if lit, ok := fun.(*ast.FuncLit); ok {
		return c.inlineLit(fs, lit)
	}
	if fn := calleeFunc(fs.info, call); fn != nil {
		class := c.classifyFuncRef(fn)
		if fs.sites != nil && class > RoundsZero {
			if fd, _ := c.lookup(fn); fd != nil {
				if parseRoundDecl(fd, nil) != nil {
					name := siteName(fn)
					fs.sites.add(name)
					if c.siteFns != nil {
						c.siteFns[name] = fn
					}
				}
				for _, s := range c.sites[fn] {
					fs.sites.add(s)
				}
			}
		}
		return class
	}
	// A call through a function-typed variable: resolvable only when the
	// variable is bound exactly once, to a literal (the routeSide/semi
	// idiom). Anything else — interface methods, func params — is Zero:
	// the observed-rounds harness test backstops this hole.
	if id, ok := fun.(*ast.Ident); ok {
		if lit := fs.bindings[fs.info.Uses[id]]; lit != nil {
			return c.inlineLit(fs, lit)
		}
	}
	return RoundsZero
}

// inlineLit classifies a closure body in the enclosing scope. A
// self-recursive closure (the `var walk func(...); walk = func(...)` tree
// walker idiom) is resolved by assume/guarantee at Zero: the back-edge is
// assumed to charge nothing, and if the computed body class confirms the
// guess the fixpoint is sound. A recursive closure that does charge has no
// declaration to anchor its fixpoint and classifies Unknown.
func (c *classifier) inlineLit(fs *funcScope, lit *ast.FuncLit) RoundClass {
	if fs.active[lit] {
		fs.recursed[lit] = true
		return RoundsZero
	}
	fs.active[lit] = true
	class := c.nodeClass(fs, lit.Body)
	delete(fs.active, lit)
	if fs.recursed[lit] {
		delete(fs.recursed, lit)
		if class != RoundsZero {
			return RoundsUnknown
		}
	}
	return class
}

// loopBound classifies a loop's trip count.
type loopBound int

const (
	boundConst loopBound = iota // literal, structural slice length, traced constant
	boundLog                    // halving search
	boundData                   // scales with the input data
)

// loopApply escalates a loop body's class by the loop's bound. A body that
// charges nothing stays Zero whatever the trip count.
func loopApply(bound loopBound, inner RoundClass) RoundClass {
	if inner == RoundsZero || inner == RoundsUnknown {
		return inner
	}
	switch bound {
	case boundConst:
		return inner
	case boundLog:
		if inner == RoundsConst {
			return RoundsLog
		}
		return RoundsLoop
	}
	return RoundsLoop // data-dependent trip count
}

// forBound classifies a for statement's trip count: a halving search is
// Log, a bound traced to a constant or structural length is Const, and
// anything else is Data.
func (c *classifier) forBound(fs *funcScope, v *ast.ForStmt) loopBound {
	if halvingLoop(v) {
		return boundLog
	}
	if v.Cond == nil {
		return boundData
	}
	be, ok := ast.Unparen(v.Cond).(*ast.BinaryExpr)
	if !ok {
		return boundData
	}
	// The loop variable is whatever the post statement steps; the bound is
	// the other side of the comparison.
	post := map[types.Object]bool{}
	switch p := v.Post.(type) {
	case *ast.IncDecStmt:
		if id, ok := p.X.(*ast.Ident); ok {
			post[fs.info.Uses[id]] = true
		}
	case *ast.AssignStmt:
		for _, lhs := range p.Lhs {
			if id, ok := lhs.(*ast.Ident); ok {
				post[fs.info.Uses[id]] = true
			}
		}
	}
	isPostVar := func(e ast.Expr) bool {
		id, ok := ast.Unparen(e).(*ast.Ident)
		return ok && post[fs.info.Uses[id]]
	}
	switch {
	case isPostVar(be.X):
		return c.exprBound(fs, be.Y, map[types.Object]bool{})
	case isPostVar(be.Y):
		return c.exprBound(fs, be.X, map[types.Object]bool{})
	}
	return boundData
}

// halvingLoop detects binary-search-shaped loops: a comparison condition
// with a body or post step that divides by two (x/2 or x>>1).
func halvingLoop(v *ast.ForStmt) bool {
	if v.Cond == nil {
		return false
	}
	if _, ok := ast.Unparen(v.Cond).(*ast.BinaryExpr); !ok {
		return false
	}
	halves := func(n ast.Node) bool {
		found := false
		ast.Inspect(n, func(m ast.Node) bool {
			switch w := m.(type) {
			case *ast.FuncLit:
				return false
			case *ast.BinaryExpr:
				if lit, ok := ast.Unparen(w.Y).(*ast.BasicLit); ok && lit.Kind == token.INT {
					if (w.Op == token.QUO && lit.Value == "2") || (w.Op == token.SHR && lit.Value == "1") {
						found = true
					}
				}
			}
			return !found
		})
		return found
	}
	inAssign := false
	ast.Inspect(v.Body, func(m ast.Node) bool {
		if as, ok := m.(*ast.AssignStmt); ok && halves(as) {
			inAssign = true
		}
		return !inAssign
	})
	if v.Post != nil && halves(v.Post) {
		inAssign = true
	}
	return inAssign
}

// rangeBound classifies a range statement's trip count from the ranged
// type: containers of data values (tuples, values, items, bytes) are Data,
// containers of structural values (indexes, distributions, stats) are
// Const, maps/chans/strings are Data, and range-over-int traces the bound.
func (c *classifier) rangeBound(fs *funcScope, v *ast.RangeStmt) loopBound {
	t := fs.info.TypeOf(v.X)
	if t == nil {
		return boundData
	}
	if b, ok := t.Underlying().(*types.Basic); ok && b.Info()&types.IsInteger != 0 {
		return c.exprBound(fs, v.X, map[types.Object]bool{})
	}
	return lenBound(t)
}

// exprBound classifies an integer bound expression, tracing
// single-assignment identifiers (visited guards assignment cycles).
func (c *classifier) exprBound(fs *funcScope, e ast.Expr, visited map[types.Object]bool) loopBound {
	e = ast.Unparen(e)
	if tv, ok := fs.info.Types[e]; ok && tv.Value != nil {
		return boundConst // compile-time constant
	}
	switch v := e.(type) {
	case *ast.BasicLit:
		return boundConst
	case *ast.Ident:
		obj := fs.info.Uses[v]
		if obj == nil || visited[obj] {
			return boundData
		}
		visited[obj] = true
		if rhss := fs.assigns[obj]; len(rhss) == 1 && rhss[0] != nil {
			return c.exprBound(fs, rhss[0], visited)
		}
		return boundData
	case *ast.BinaryExpr:
		return max(c.exprBound(fs, v.X, visited), c.exprBound(fs, v.Y, visited))
	case *ast.UnaryExpr:
		return c.exprBound(fs, v.X, visited)
	case *ast.CallExpr:
		if isBuiltin(fs.info, v, "len") || isBuiltin(fs.info, v, "cap") {
			if len(v.Args) == 1 {
				if t := fs.info.TypeOf(v.Args[0]); t != nil {
					return lenBound(t)
				}
			}
		}
		return boundData
	}
	return boundData
}

// lenBound classifies len(x) by x's type: the length of a container of
// data values scales with the input; the length of a container of
// structural values (relation indexes, per-server stats, sub-cluster
// handles) is set by the query, not the data.
func lenBound(t types.Type) loopBound {
	switch u := t.Underlying().(type) {
	case *types.Slice:
		if isDataElem(u.Elem()) {
			return boundData
		}
		return boundConst
	case *types.Array:
		return boundConst
	case *types.Pointer:
		if _, ok := u.Elem().Underlying().(*types.Array); ok {
			return boundConst
		}
	}
	return boundData // map, chan, string, interface, func
}

// isDataElem reports whether a slice of this element type holds data (one
// element per input tuple/value) rather than structure.
func isDataElem(t types.Type) bool {
	if named, ok := t.(*types.Named); ok {
		switch named.Obj().Name() {
		case "Value", "Tuple", "Item":
			return true
		}
	}
	if b, ok := t.Underlying().(*types.Basic); ok {
		switch {
		case b.Info()&types.IsString != 0:
			return true
		case b.Kind() == types.Uint8: // []byte
			return true
		}
	}
	if _, ok := t.Underlying().(*types.Interface); ok {
		return true
	}
	return false
}
