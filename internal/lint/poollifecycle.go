package lint

import (
	"go/ast"
	"go/token"
	"go/types"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
)

// PoolLifecycleAnalyzer enforces the buffer-recycling contract: a buffer
// acquired from a sync.Pool accessor (getRecCols, getSortScratch,
// getInterner, getInt32Zero/getInt32Cap) is owned by the acquiring
// function. It must be released with the matching put before the function
// returns, and it must never escape the function — not via a return value,
// not via a global or a foreign struct field, because a pooled buffer that
// outlives its owner aliases whatever the pool hands out next.
//
// Two shapes are blessed:
//
//   - handing the buffer to a carrier: assignment into a field of a local
//     value whose (same-package) type has a method that calls the matching
//     put — the exchange plan's scratch vectors, released by plan.release().
//   - releasing through a closure: a func literal in the same function
//     that puts the buffer (Lookup's `release := func() { putRecCols(rc) }`).
//
// Unlike the other analyzers this one checks _test.go files too: the pool
// is process-global, so a test helper that leaks a buffer corrupts the
// packages under test just as effectively as production code.
var PoolLifecycleAnalyzer = &analysis.Analyzer{
	Name:     "repopoollifecycle",
	Doc:      "pooled buffers must be released on every path and must not escape their acquiring function",
	Run:      runPoolLifecycle,
	Requires: []*analysis.Analyzer{inspect.Analyzer},
}

func init() {
	PoolLifecycleAnalyzer.Flags.String("scope", dataPlaneScope,
		"comma-separated package paths to check (\"all\" for every package)")
}

// poolPairs maps each pool accessor to its releasing put.
var poolPairs = map[string]string{
	"getRecCols":     "putRecCols",
	"getSortScratch": "putSortScratch",
	"getInterner":    "putInterner",
	"getInt32Zero":   "putInt32",
	"getInt32Cap":    "putInt32",
}

func runPoolLifecycle(pass *analysis.Pass) (interface{}, error) {
	scope := pass.Analyzer.Flags.Lookup("scope").Value.String()
	if !inScope(scope, pass.Pkg.Path()) {
		return nil, nil
	}
	ignores := buildIgnoreIndex(pass, pass.Analyzer.Name)
	report := func(pos token.Pos, format string, args ...interface{}) {
		if !ignores.suppressed(pass.Fset, pass.Analyzer.Name, pos) {
			pass.Reportf(pos, format, args...)
		}
	}

	carriers := carrierTypes(pass)

	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	ins.Preorder([]ast.Node{(*ast.FuncDecl)(nil)}, func(n ast.Node) {
		fd := n.(*ast.FuncDecl)
		if fd.Body == nil {
			return
		}
		checkPoolOwnership(pass, report, carriers, fd)
	})
	ignores.reportUnused(pass)
	return nil, nil
}

// poolGetCall reports whether call acquires from a pool, returning the name
// of the matching put.
func poolGetCall(pass *analysis.Pass, call *ast.CallExpr) (putName string, ok bool) {
	fn := calleeFunc(pass.TypesInfo, call)
	if fn == nil {
		return "", false
	}
	putName, ok = poolPairs[fn.Name()]
	return putName, ok
}

// carrierTypes collects the package's named types that own pooled scratch:
// those with a method whose body calls any put function. Handing a buffer
// to a field of such a type transfers ownership to the carrier.
func carrierTypes(pass *analysis.Pass) map[*types.TypeName]bool {
	puts := map[string]bool{}
	for _, p := range poolPairs {
		puts[p] = true
	}
	carriers := map[*types.TypeName]bool{}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || fd.Body == nil || len(fd.Recv.List) == 0 {
				continue
			}
			callsPut := false
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if call, ok := n.(*ast.CallExpr); ok {
					if fn := calleeFunc(pass.TypesInfo, call); fn != nil && puts[fn.Name()] {
						callsPut = true
					}
				}
				return !callsPut
			})
			if !callsPut {
				continue
			}
			rt := pass.TypesInfo.TypeOf(fd.Recv.List[0].Type)
			if ptr, ok := rt.(*types.Pointer); ok {
				rt = ptr.Elem()
			}
			if named, ok := rt.(*types.Named); ok {
				carriers[named.Obj()] = true
			}
		}
	}
	return carriers
}

// checkPoolOwnership tracks every pooled acquisition in fd and reports
// escapes and missing releases.
func checkPoolOwnership(pass *analysis.Pass, report func(token.Pos, string, ...interface{}), carriers map[*types.TypeName]bool, fd *ast.FuncDecl) {
	// acquisitions: local object → name of the put that releases it.
	type acq struct {
		obj  types.Object
		put  string
		pos  token.Pos
		name string
	}
	var acqs []acq
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != 1 || len(as.Lhs) != 1 {
			return true
		}
		call, ok := as.Rhs[0].(*ast.CallExpr)
		if !ok {
			return true
		}
		put, ok := poolGetCall(pass, call)
		if !ok {
			return true
		}
		id, ok := as.Lhs[0].(*ast.Ident)
		if !ok {
			return true
		}
		obj := pass.TypesInfo.ObjectOf(id)
		if obj == nil {
			return true
		}
		acqs = append(acqs, acq{obj: obj, put: put, pos: call.Pos(), name: id.Name})
		return true
	})
	if len(acqs) == 0 {
		return
	}

	for _, a := range acqs {
		released := false
		escaped := false
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			switch v := n.(type) {
			case *ast.ReturnStmt:
				for _, res := range v.Results {
					// Only a returned reference escapes: `return rc` or
					// `return rc.keys` leak pool-backed memory, while a
					// derived scalar (`return len(rc.keys)`) is fine —
					// its root is a call, not the buffer.
					if root := rootIdent(res); root != nil && pass.TypesInfo.ObjectOf(root) == a.obj {
						report(v.Pos(), "pooled buffer %s escapes via return: the caller would hold memory the pool is free to hand out again; have the caller acquire and pass it in", a.name)
						escaped = true
					}
				}
			case *ast.CallExpr:
				fn := calleeFunc(pass.TypesInfo, v)
				if fn != nil && fn.Name() == a.put {
					for _, arg := range v.Args {
						if usesObject(pass.TypesInfo, arg, a.obj) {
							released = true
						}
					}
				}
			case *ast.AssignStmt:
				for i, lhs := range v.Lhs {
					if i >= len(v.Rhs) && len(v.Rhs) != 1 {
						continue
					}
					rhs := v.Rhs[0]
					if len(v.Rhs) == len(v.Lhs) {
						rhs = v.Rhs[i]
					}
					if !usesObject(pass.TypesInfo, rhs, a.obj) {
						continue
					}
					// Writing a field of the buffer itself (sc.order = …)
					// mutates the owned value; no new reference escapes.
					if root := rootIdent(lhs); root != nil && pass.TypesInfo.ObjectOf(root) == a.obj {
						continue
					}
					switch dest := destKind(pass, carriers, lhs); dest {
					case destCarrier:
						released = true // ownership handed to the carrier's release method
					case destField:
						report(v.Pos(), "pooled buffer %s escapes into %s: only a type that releases it (a method calling %s) may hold a pooled buffer", a.name, lhsString(lhs), a.put)
						escaped = true
					case destGlobal:
						report(v.Pos(), "pooled buffer %s escapes into package-level state %s", a.name, lhsString(lhs))
						escaped = true
					}
				}
			}
			return true
		})
		if !released && !escaped {
			report(a.pos, "pooled buffer %s is acquired but never released: call %s on every path (defer it, or hand it to a releasing carrier)", a.name, a.put)
		}
	}
}

type destination int

const (
	destLocal destination = iota
	destCarrier
	destField
	destGlobal
)

// destKind classifies an assignment destination for a pooled buffer:
// a plain local (rebind, fine), a field of a carrier type (ownership
// transfer), a field of anything else (escape), or package-level state.
func destKind(pass *analysis.Pass, carriers map[*types.TypeName]bool, lhs ast.Expr) destination {
	root := rootIdent(lhs)
	if root == nil {
		return destField // e.g. a field through a call result: treat as escape
	}
	obj := pass.TypesInfo.ObjectOf(root)
	if obj == nil {
		return destLocal
	}
	if obj.Parent() == obj.Pkg().Scope() {
		return destGlobal
	}
	// Does the path go through a field selection?
	hasField := false
	ast.Inspect(lhs, func(n ast.Node) bool {
		if sel, ok := n.(*ast.SelectorExpr); ok {
			if s, isSel := pass.TypesInfo.Selections[sel]; isSel && s.Kind() == types.FieldVal {
				hasField = true
			}
		}
		return !hasField
	})
	if !hasField {
		return destLocal
	}
	t := obj.Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if named, ok := t.(*types.Named); ok && carriers[named.Obj()] {
		return destCarrier
	}
	return destField
}

// lhsString renders an assignment destination for a diagnostic.
func lhsString(e ast.Expr) string {
	switch v := e.(type) {
	case *ast.Ident:
		return v.Name
	case *ast.SelectorExpr:
		return lhsString(v.X) + "." + v.Sel.Name
	case *ast.IndexExpr:
		return lhsString(v.X) + "[...]"
	case *ast.StarExpr:
		return "*" + lhsString(v.X)
	default:
		return "destination"
	}
}
