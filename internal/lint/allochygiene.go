package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
)

// AllocHygieneAnalyzer guards the AllocsPerRun ceilings. Functions on the
// hot path carry a
//
//	//lint:alloc-ceiling
//
// marker in their doc comment, declaring that an allocation-regression
// test holds their steady-state allocation count to a fixed ceiling (the
// pooled-scratch design makes it near zero). Inside a marked function the
// analyzer flags any allocation that scales with the data — make, new, or
// a slice/map composite literal lexically inside a for/range loop (nested
// closures included: forked closures run their loops per task). Per-call
// setup allocations outside loops are fine; the ceilings already price
// them in.
//
// The runtime test and the analyzer fence the same invariant from both
// sides: AllocsPerRun catches a regression on the inputs it runs, the
// marker catches it on every input shape at compile time.
var AllocHygieneAnalyzer = &analysis.Analyzer{
	Name:     "repoallochygiene",
	Doc:      "functions marked lint:alloc-ceiling must not allocate inside loops",
	Run:      runAllocHygiene,
	Requires: []*analysis.Analyzer{inspect.Analyzer},
}

func init() {
	AllocHygieneAnalyzer.Flags.String("scope", dataPlaneScope,
		"comma-separated package paths to check (\"all\" for every package)")
}

const allocCeilingMarker = "lint:alloc-ceiling"

func runAllocHygiene(pass *analysis.Pass) (interface{}, error) {
	scope := pass.Analyzer.Flags.Lookup("scope").Value.String()
	if !inScope(scope, pass.Pkg.Path()) {
		return nil, nil
	}
	ignores := buildIgnoreIndex(pass, pass.Analyzer.Name)
	report := func(pos token.Pos, format string, args ...interface{}) {
		if !ignores.suppressed(pass.Fset, pass.Analyzer.Name, pos) {
			pass.Reportf(pos, format, args...)
		}
	}

	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	ins.Preorder([]ast.Node{(*ast.FuncDecl)(nil)}, func(n ast.Node) {
		fd := n.(*ast.FuncDecl)
		if fd.Body == nil || fd.Doc == nil || isTestFile(pass.Fset, fd.Pos()) {
			return
		}
		// Doc.Text() strips directive-style comments, so scan the raw list.
		marked := false
		for _, c := range fd.Doc.List {
			if strings.Contains(c.Text, allocCeilingMarker) {
				marked = true
			}
		}
		if !marked {
			return
		}
		checkAllocsInLoops(pass, report, fd)
	})
	ignores.reportUnused(pass)
	return nil, nil
}

// checkAllocsInLoops walks the marked function, tracking loop depth, and
// reports allocation expressions at depth ≥ 1. Closure bodies keep the
// enclosing depth: a closure created in a loop (or run per task by Fork)
// multiplies its own allocations the same way.
func checkAllocsInLoops(pass *analysis.Pass, report func(token.Pos, string, ...interface{}), fd *ast.FuncDecl) {
	name := fd.Name.Name
	var depth int
	var walk func(n ast.Node)
	walk = func(n ast.Node) {
		ast.Inspect(n, func(m ast.Node) bool {
			switch v := m.(type) {
			case *ast.ForStmt:
				if v.Init != nil {
					walk(v.Init)
				}
				if v.Cond != nil {
					walk(v.Cond)
				}
				if v.Post != nil {
					walk(v.Post)
				}
				depth++
				walk(v.Body)
				depth--
				return false
			case *ast.RangeStmt:
				walk(v.X)
				depth++
				walk(v.Body)
				depth--
				return false
			case *ast.CallExpr:
				if depth == 0 {
					return true
				}
				if isBuiltin(pass.TypesInfo, v, "make") {
					report(v.Pos(), "make inside a loop in %s, which is under an AllocsPerRun ceiling: hoist it, or draw from a pool", name)
				}
				if isBuiltin(pass.TypesInfo, v, "new") {
					report(v.Pos(), "new inside a loop in %s, which is under an AllocsPerRun ceiling: hoist it, or draw from a pool", name)
				}
			case *ast.CompositeLit:
				if depth == 0 {
					return true
				}
				t := pass.TypesInfo.TypeOf(v)
				if t == nil {
					return true
				}
				switch t.Underlying().(type) {
				case *types.Slice, *types.Map:
					report(v.Pos(), "slice/map literal inside a loop in %s, which is under an AllocsPerRun ceiling: hoist it, or draw from a pool", name)
				}
			}
			return true
		})
	}
	walk(fd.Body)
}
