package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"reflect"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
)

// LoadClass is the static load lattice: the per-round, per-server charge
// magnitude a function can reach, as a function of the input size IN and
// the server count p.
//
//	Zero    charges nothing
//	Const   O(1) or O(p) per server — independent of IN (coordinator
//	        summaries, directory entries)
//	PerP    O(IN/p) — the paper's linear-load bucket (Theorem 2 rounds)
//	Frac    O(IN/p^c) for some 0 < c < 1 — the √p and p^(2/3) bounds of
//	        Sections 4 and 7
//	Linear  O(IN) — a charge proportional to the input reaches one server
//	Unknown could not be classified
//
// The order is the lattice order: sequencing, branching, and loops all
// compose by max — the load of one round is the largest single charge, and
// more rounds never raise the per-round maximum (rounds are reporoundcost's
// axis, not this one).
type LoadClass int

const (
	LoadZero LoadClass = iota
	LoadConst
	LoadPerP
	LoadFrac
	LoadLinear
	LoadUnknown
)

func (c LoadClass) String() string {
	switch c {
	case LoadZero:
		return "zero"
	case LoadConst:
		return "const"
	case LoadPerP:
		return "perP"
	case LoadFrac:
		return "frac"
	case LoadLinear:
		return "linear"
	}
	return "unknown"
}

// ParseLoadClass parses a declared class ("zero", "const", "perP", "frac",
// "linear"). Unknown is not declarable: a declaration exists to rule it out.
func ParseLoadClass(s string) (LoadClass, bool) {
	switch s {
	case "zero":
		return LoadZero, true
	case "const":
		return LoadConst, true
	case "perP":
		return LoadPerP, true
	case "frac":
		return LoadFrac, true
	case "linear":
		return LoadLinear, true
	}
	return LoadUnknown, false
}

// LoadCostFact is the per-function summary exported for cross-package
// composition: the function charges at most Class load per round. Trusted
// facts come from `//lint:load <class> trust <reason>` declarations and are
// asserted, not computed — they carry the balance arguments (combiner caps,
// skew-free hashing, sub-problem size guarantees) the syntactic classifier
// cannot see.
type LoadCostFact struct {
	Class   LoadClass
	Trusted bool
}

func (*LoadCostFact) AFact() {}

func (f *LoadCostFact) String() string {
	if f.Trusted {
		return fmt.Sprintf("load(%s, trusted)", f.Class)
	}
	return fmt.Sprintf("load(%s)", f.Class)
}

// LoadCosts is LoadCostAnalyzer's result: a handle that lets dependent
// analyzers (repoload) classify functions and function literals of the
// analyzed package. Nil-safe: a scope-skipped package yields an empty
// handle whose queries return Unknown.
type LoadCosts struct {
	cl   *loadClassifier
	info *types.Info
}

// FuncClass returns the load class of a function (same package: computed;
// imported: from its exported fact; neither: Zero).
func (r *LoadCosts) FuncClass(fn *types.Func) LoadClass {
	if r == nil || r.cl == nil {
		return LoadUnknown
	}
	return r.cl.classifyFuncRef(fn)
}

// FuncLitClass classifies a function literal's body in place.
func (r *LoadCosts) FuncLitClass(lit *ast.FuncLit) LoadClass {
	if r == nil || r.cl == nil {
		return LoadUnknown
	}
	fs := newFuncScope(r.info, lit.Body, nil)
	return r.cl.nodeClass(fs, lit.Body)
}

// LoadCostAnalyzer computes, per function, a load-class summary from the
// arithmetic shape of the n argument at every cluster charge site, composes
// it with the exported facts of its callees, checks it against the
// function's machine-readable declaration, and exports it as a fact:
//
//	//lint:load <zero|const|perP|frac|linear>
//	//lint:load <class> trust <reason>
//
// The charge intrinsics are the Cluster methods themselves — Charge(s, n)
// classifies n, ChargeInput(total) classifies total divided by p, and
// ChargeRound(loads) classifies the loads slice's element assignments — so
// the analysis is grounded in the simulator's own accounting, recognized
// syntactically (method name on a cluster-typed receiver) so it composes
// across packages without needing facts for the intrinsics. Division by a
// p-expression steps linear down to perP; division by Isqrt(p)/Iroot(p, k)
// steps it to frac; sums, products, and remainders take the max/divisor;
// len of a data container is linear, of a structural container const.
// Calls without facts count as Zero and loops do not escalate (each charge
// opens its own round; the per-round max is what the paper bounds) — the
// harness's observed-load test backstops both assumptions at runtime.
//
// Unlike reporoundcost, a valid declaration always wins over the computed
// class: the physical exchange routes through Shard.Receive, invisible to
// this classifier, so declarations are the contract and the computed class
// is the drift detector (computed > declared is reported at the declaring
// function). Within declscope, an exported function whose computed class
// exceeds zero must carry a declaration, and a recursive function must
// declare its class (assume/guarantee).
var LoadCostAnalyzer = &analysis.Analyzer{
	Name:       "repoloadcost",
	Doc:        "per-function static load classification of cluster charge arguments, checked against //lint:load declarations and exported as facts",
	Run:        runLoadCost,
	Requires:   []*analysis.Analyzer{inspect.Analyzer},
	FactTypes:  []analysis.Fact{(*LoadCostFact)(nil)},
	ResultType: reflect.TypeOf((*LoadCosts)(nil)),
}

func init() {
	LoadCostAnalyzer.Flags.String("scope", dataPlaneScope,
		"comma-separated package paths to classify (\"all\" for every package)")
	LoadCostAnalyzer.Flags.String("declscope", "repro/internal/mpc,repro/internal/primitives,repro/internal/core",
		"packages whose exported charging functions must carry //lint:load declarations")
}

func runLoadCost(pass *analysis.Pass) (interface{}, error) {
	scope := pass.Analyzer.Flags.Lookup("scope").Value.String()
	if !inScope(scope, pass.Pkg.Path()) {
		return (*LoadCosts)(nil), nil
	}
	declscope := pass.Analyzer.Flags.Lookup("declscope").Value.String()
	requireDecls := inScope(declscope, pass.Pkg.Path())

	ignores := buildIgnoreIndex(pass, pass.Analyzer.Name)
	report := func(pos token.Pos, format string, args ...interface{}) {
		if !ignores.suppressed(pass.Fset, pass.Analyzer.Name, pos) {
			pass.Reportf(pos, format, args...)
		}
	}

	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)

	// Index this package's function declarations (test files excluded: the
	// contracts cover shipped code, and _test.go files never export facts).
	decls := map[*types.Func]*ast.FuncDecl{}
	var order []*types.Func
	ins.Preorder([]ast.Node{(*ast.FuncDecl)(nil)}, func(n ast.Node) {
		fd := n.(*ast.FuncDecl)
		if fd.Body == nil || isTestFile(pass.Fset, fd.Pos()) {
			return
		}
		if fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
			decls[fn] = fd
			order = append(order, fn)
		}
	})

	cl := &loadClassifier{
		lookup: func(fn *types.Func) (*ast.FuncDecl, *types.Info) {
			if fd, ok := decls[fn]; ok {
				return fd, pass.TypesInfo
			}
			return nil, nil
		},
		imported: func(fn *types.Func) (LoadClass, bool) {
			var fact LoadCostFact
			if pass.ImportObjectFact(fn, &fact) {
				return fact.Class, true
			}
			return LoadZero, false
		},
		report:       report,
		requireDecls: requireDecls,
		memo:         map[*types.Func]LoadClass{},
		stack:        map[*types.Func]*loadFrame{},
	}

	for _, fn := range order {
		class := cl.classifyFuncRef(fn)
		if class > LoadZero && fn.Exported() {
			trusted := false
			if d := parseLoadDecl(decls[fn], nil); d != nil {
				trusted = d.trust
			}
			pass.ExportObjectFact(fn, &LoadCostFact{Class: class, Trusted: trusted})
		}
	}
	ignores.reportUnused(pass)
	return &LoadCosts{cl: cl, info: pass.TypesInfo}, nil
}

// loadDecl is a parsed //lint:load declaration.
type loadDecl struct {
	class LoadClass
	trust bool
	pos   token.Pos
}

// parseLoadDecl extracts the //lint:load declaration from a function's doc
// comment (the raw list: Doc.Text() strips directives). Malformed
// declarations are reported through report (when non-nil) and ignored.
func parseLoadDecl(fd *ast.FuncDecl, report func(pos token.Pos, format string, args ...interface{})) *loadDecl {
	if fd == nil || fd.Doc == nil {
		return nil
	}
	bad := func(pos token.Pos, format string, args ...interface{}) *loadDecl {
		if report != nil {
			report(pos, format, args...)
		}
		// A malformed directive is still a directive: returning the Unknown
		// sentinel keeps the missing-declaration check from double-firing.
		return &loadDecl{class: LoadUnknown, pos: pos}
	}
	for _, c := range fd.Doc.List {
		rest, ok := strings.CutPrefix(c.Text, "//lint:load")
		if !ok {
			continue
		}
		// A nested // starts a comment within the directive (the fixture
		// harness rides want expectations there).
		if i := strings.Index(rest, "//"); i >= 0 {
			rest = rest[:i]
		}
		fields := strings.Fields(rest)
		if len(fields) == 0 {
			return bad(c.Pos(), "lint:load declaration on %s needs a class (zero, const, perP, frac, or linear)", fd.Name.Name)
		}
		class, ok := ParseLoadClass(fields[0])
		if !ok {
			return bad(c.Pos(), "lint:load declaration on %s has unknown class %q (want zero, const, perP, frac, or linear)", fd.Name.Name, fields[0])
		}
		trust := false
		if len(fields) > 1 {
			if fields[1] != "trust" {
				return bad(c.Pos(), "lint:load declaration on %s has trailing %q (only `trust <reason>` may follow the class)", fd.Name.Name, fields[1])
			}
			if len(fields) < 3 {
				return bad(c.Pos(), "lint:load trust declaration on %s needs a reason", fd.Name.Name)
			}
			trust = true
		}
		return &loadDecl{class: class, trust: trust, pos: c.Pos()}
	}
	return nil
}

// loadClassifier resolves functions to load classes. Driver-agnostic like
// classifier: the analyzer wires lookup to the current package and imported
// to the facts store; the contracts generator wires lookup to a
// whole-program index and leaves imported nil.
type loadClassifier struct {
	lookup       func(fn *types.Func) (*ast.FuncDecl, *types.Info)
	imported     func(fn *types.Func) (LoadClass, bool)
	report       func(pos token.Pos, format string, args ...interface{})
	requireDecls bool

	memo  map[*types.Func]LoadClass
	stack map[*types.Func]*loadFrame
}

type loadFrame struct {
	decl     *loadDecl
	recursed bool // re-entered with no declaration to assume
}

func (c *loadClassifier) reportf(pos token.Pos, format string, args ...interface{}) {
	if c.report != nil {
		c.report(pos, format, args...)
	}
}

// classifyFuncRef resolves fn to its load class: memoized, with declaration
// checking for functions whose bodies are in view and assume/guarantee
// handling for recursion. A valid declaration always wins over the computed
// class (the declaration is the contract; drift — computed > declared — is
// reported here once, at the function, not at every transitive caller).
func (c *loadClassifier) classifyFuncRef(fn *types.Func) LoadClass {
	if class, ok := c.memo[fn]; ok {
		return class
	}
	if frame, ok := c.stack[fn]; ok {
		if frame.decl != nil {
			return frame.decl.class
		}
		frame.recursed = true
		return LoadUnknown
	}
	fd, info := c.lookup(fn)
	if fd == nil {
		class := LoadZero
		if c.imported != nil {
			if imp, ok := c.imported(fn); ok {
				class = imp
			}
		}
		c.memo[fn] = class
		return class
	}

	decl := parseLoadDecl(fd, c.report)
	frame := &loadFrame{decl: decl}
	c.stack[fn] = frame

	var class LoadClass
	if decl != nil && decl.trust {
		class = decl.class
	} else {
		fs := newFuncScope(info, fd.Body, nil)
		class = c.nodeClass(fs, fd.Body)
		if frame.recursed {
			c.reportf(fd.Name.Pos(), "%s is recursive and needs a //lint:load declaration to classify (assume/guarantee)", fn.Name())
			class = LoadUnknown
		}
		switch {
		case decl != nil:
			if decl.class != LoadUnknown {
				if class > decl.class {
					c.reportf(fd.Name.Pos(), "%s computes load class %s, which exceeds its declared //lint:load %s", fn.Name(), class, decl.class)
				}
				class = decl.class // the declaration is the contract; the computed class only detects drift
			}
		case c.requireDecls && class == LoadUnknown && !frame.recursed:
			c.reportf(fd.Name.Pos(), "%s cannot be classified (a recursive closure charges load) and needs a //lint:load declaration to anchor it", fn.Name())
		case c.requireDecls && fn.Exported() && class > LoadZero && class != LoadUnknown:
			c.reportf(fd.Name.Pos(), "exported %s charges load (class %s) but has no //lint:load declaration", fn.Name(), class)
		}
	}

	delete(c.stack, fn)
	c.memo[fn] = class
	return class
}

// nodeClass computes the load class of a statement/expression subtree: max
// over every reachable charge. Loops do not escalate — each charge opens
// its own round, and the per-round maximum is the quantity the paper
// bounds. Closure bodies are handled at their call sites; spawned closures
// (go, defer, runtime.Fork arguments) are skipped: forked charges land on
// child clusters and return through the Merge* facts.
func (c *loadClassifier) nodeClass(fs *funcScope, n ast.Node) LoadClass {
	if n == nil {
		return LoadZero
	}
	class := LoadZero
	ast.Inspect(n, func(m ast.Node) bool {
		switch v := m.(type) {
		case *ast.FuncLit:
			return false // classified where invoked; skipped where spawned
		case *ast.GoStmt:
			class = max(class, c.spawnClass(fs, v.Call))
			return false
		case *ast.DeferStmt:
			class = max(class, c.spawnClass(fs, v.Call))
			return false
		case *ast.CallExpr:
			class = max(class, c.callClass(fs, v))
			return true // args may hold nested calls
		}
		return true
	})
	return class
}

// spawnClass handles go/defer: a spawned closure's charges land on a child
// cluster or outside this round structure, so a FuncLit operand is skipped;
// a named callee is charged normally.
func (c *loadClassifier) spawnClass(fs *funcScope, call *ast.CallExpr) LoadClass {
	class := LoadZero
	for _, arg := range call.Args {
		class = max(class, c.nodeClass(fs, arg))
	}
	if _, ok := ast.Unparen(call.Fun).(*ast.FuncLit); !ok {
		class = max(class, c.callClass(fs, call))
	}
	return class
}

// callClass classifies one call: the cluster charge intrinsics by the
// arithmetic shape of their arguments, inlined closures, resolved functions
// (local bodies or imported facts), or Zero for dynamic callees.
func (c *loadClassifier) callClass(fs *funcScope, call *ast.CallExpr) LoadClass {
	if class, ok := c.chargeIntrinsic(fs, call); ok {
		return class
	}
	fun := ast.Unparen(call.Fun)
	if lit, ok := fun.(*ast.FuncLit); ok {
		return c.inlineLit(fs, lit)
	}
	if fn := calleeFunc(fs.info, call); fn != nil {
		return c.classifyFuncRef(fn)
	}
	if id, ok := fun.(*ast.Ident); ok {
		if lit := fs.bindings[fs.info.Uses[id]]; lit != nil {
			return c.inlineLit(fs, lit)
		}
	}
	return LoadZero
}

// inlineLit classifies a closure body in the enclosing scope, with the same
// assume-Zero fixpoint for self-recursive closures as the round classifier.
func (c *loadClassifier) inlineLit(fs *funcScope, lit *ast.FuncLit) LoadClass {
	if fs.active[lit] {
		fs.recursed[lit] = true
		return LoadZero
	}
	fs.active[lit] = true
	class := c.nodeClass(fs, lit.Body)
	delete(fs.active, lit)
	if fs.recursed[lit] {
		delete(fs.recursed, lit)
		if class != LoadZero {
			return LoadUnknown
		}
	}
	return class
}

// chargeIntrinsic recognizes the cluster charging methods and classifies
// their arguments in place. Recognition is syntactic — the method name on a
// receiver whose type is named "cluster" (case-insensitively) — so the
// intrinsics compose across packages without facts and the offline fixtures
// can stub the cluster type.
func (c *loadClassifier) chargeIntrinsic(fs *funcScope, call *ast.CallExpr) (LoadClass, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return LoadZero, false
	}
	name := sel.Sel.Name
	if name != "Charge" && name != "ChargeRound" && name != "ChargeInput" {
		return LoadZero, false
	}
	if !isClusterExpr(fs.info, sel.X) {
		return LoadZero, false
	}
	switch {
	case name == "Charge" && len(call.Args) == 2:
		// Charge(s, n): the load is n's arithmetic shape.
		return c.loadExprClass(fs, call.Args[1], map[types.Object]bool{}), true
	case name == "ChargeInput" && len(call.Args) == 1:
		// ChargeInput(total): round-robin placement, ⌈total/p⌉ per server.
		return pDiv(c.loadExprClass(fs, call.Args[0], map[types.Object]bool{})), true
	case name == "ChargeRound" && len(call.Args) == 1:
		// ChargeRound(loads): the max element ever assigned into the slice.
		return c.sliceClass(fs, call.Args[0]), true
	}
	return LoadZero, false
}

// isClusterExpr reports whether e's type (after pointer indirection) is a
// named type called "cluster", case-insensitively — mpc.Cluster in the real
// tree, the stub cluster in fixtures.
func isClusterExpr(info *types.Info, e ast.Expr) bool {
	t := info.TypeOf(e)
	if t == nil {
		return false
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && strings.EqualFold(named.Obj().Name(), "cluster")
}

// loadExprClass classifies the arithmetic shape of a charge magnitude:
//
//	compile-time constants, p itself        → const
//	x / p-expression                        → pDiv(x): linear drops to perP
//	x / Isqrt(p), x / Iroot(p, k)           → rootDiv(x): linear drops to frac
//	x % y                                   → class of y (a remainder is < y)
//	x + y, x - y, x * y                     → max (the product hole: a
//	                                          product of sublinear factors
//	                                          may exceed their max; the
//	                                          harness load test backstops it)
//	len/cap of a structural container       → const; of a data container → linear
//	single-assignment locals                → traced through their RHS
//	anything else (params, calls, fields)   → linear
func (c *loadClassifier) loadExprClass(fs *funcScope, e ast.Expr, visited map[types.Object]bool) LoadClass {
	e = ast.Unparen(e)
	if tv, ok := fs.info.Types[e]; ok && tv.Value != nil {
		return LoadConst
	}
	switch v := e.(type) {
	case *ast.BasicLit:
		return LoadConst
	case *ast.SelectorExpr:
		if v.Sel.Name == "P" {
			return LoadConst // the server count is structure, not data
		}
		return LoadLinear
	case *ast.Ident:
		obj := fs.info.Uses[v]
		if obj == nil || visited[obj] {
			return LoadLinear
		}
		visited[obj] = true
		if rhss := fs.assigns[obj]; len(rhss) == 1 && rhss[0] != nil {
			return c.loadExprClass(fs, rhss[0], visited)
		}
		return LoadLinear
	case *ast.BinaryExpr:
		switch v.Op {
		case token.QUO:
			num := c.loadExprClass(fs, v.X, visited)
			switch divisorKind(fs, v.Y) {
			case divP:
				return pDiv(num)
			case divRoot:
				return rootDiv(num)
			}
			return num // integer division never increases the numerator
		case token.REM:
			return c.loadExprClass(fs, v.Y, visited)
		default:
			return max(c.loadExprClass(fs, v.X, visited), c.loadExprClass(fs, v.Y, visited))
		}
	case *ast.UnaryExpr:
		return c.loadExprClass(fs, v.X, visited)
	case *ast.CallExpr:
		if isBuiltin(fs.info, v, "len") || isBuiltin(fs.info, v, "cap") {
			if len(v.Args) == 1 {
				if t := fs.info.TypeOf(v.Args[0]); t != nil {
					if lenBound(t) == boundConst {
						return LoadConst
					}
					return LoadLinear
				}
			}
		}
		if conv := conversionArg(fs.info, v); conv != nil {
			return c.loadExprClass(fs, conv, visited)
		}
		return LoadLinear
	}
	return LoadLinear
}

// pDiv steps a load class down by a division by p: an input-proportional
// magnitude becomes IN/p; already-sublinear magnitudes stay at perP (a
// sound upper bound — IN/p^c / p ≤ IN/p); structural magnitudes stay put.
func pDiv(class LoadClass) LoadClass {
	switch class {
	case LoadLinear, LoadFrac, LoadPerP:
		return LoadPerP
	}
	return class
}

// rootDiv steps a load class down by a division by a fractional power of p
// (Isqrt(p), Iroot(p, k)): linear becomes frac; perP stays perP (already
// smaller); structural magnitudes stay put.
func rootDiv(class LoadClass) LoadClass {
	switch class {
	case LoadLinear, LoadFrac:
		return LoadFrac
	}
	return class
}

// divKind classifies a division's denominator.
type divKind int

const (
	divNone divKind = iota
	divP            // the server count p (or a constant multiple)
	divRoot         // a fractional power of p: Isqrt(p), Iroot(p, k)
)

// divisorKind classifies a divisor expression, tracing single-assignment
// locals (s := Isqrt(c.P); n / s).
func divisorKind(fs *funcScope, e ast.Expr) divKind {
	e = ast.Unparen(e)
	if isPExpr(fs, e, map[types.Object]bool{}) {
		return divP
	}
	switch v := e.(type) {
	case *ast.Ident:
		obj := fs.info.Uses[v]
		if obj == nil {
			return divNone
		}
		if rhss := fs.assigns[obj]; len(rhss) == 1 && rhss[0] != nil {
			return divisorKind(fs, rhss[0])
		}
	case *ast.CallExpr:
		if conv := conversionArg(fs.info, v); conv != nil {
			return divisorKind(fs, conv)
		}
		if fn := calleeFunc(fs.info, v); fn != nil && len(v.Args) >= 1 {
			switch fn.Name() {
			case "Isqrt", "IsqrtInt", "Iroot", "Ipow":
				if isPExpr(fs, v.Args[0], map[types.Object]bool{}) {
					return divRoot
				}
			}
		}
	}
	return divNone
}

// isPExpr reports whether e is the server count p — a selector named P, a
// single-assignment local bound to one, or either combined with
// compile-time constants ((n + p - 1) / p's denominator, 2*p).
func isPExpr(fs *funcScope, e ast.Expr, visited map[types.Object]bool) bool {
	e = ast.Unparen(e)
	switch v := e.(type) {
	case *ast.SelectorExpr:
		return v.Sel.Name == "P"
	case *ast.Ident:
		obj := fs.info.Uses[v]
		if obj == nil || visited[obj] {
			return false
		}
		visited[obj] = true
		if rhss := fs.assigns[obj]; len(rhss) == 1 && rhss[0] != nil {
			return isPExpr(fs, rhss[0], visited)
		}
		return false
	case *ast.BinaryExpr:
		xConst := isConstExpr(fs, v.X)
		yConst := isConstExpr(fs, v.Y)
		switch {
		case xConst && yConst:
			return false
		case xConst:
			return isPExpr(fs, v.Y, visited)
		case yConst:
			return isPExpr(fs, v.X, visited)
		}
		return false
	case *ast.CallExpr:
		if conv := conversionArg(fs.info, v); conv != nil {
			return isPExpr(fs, conv, visited)
		}
	}
	return false
}

// isConstExpr reports whether e has a compile-time constant value.
func isConstExpr(fs *funcScope, e ast.Expr) bool {
	tv, ok := fs.info.Types[ast.Unparen(e)]
	if ok && tv.Value != nil {
		return true
	}
	_, lit := ast.Unparen(e).(*ast.BasicLit)
	return lit
}

// conversionArg returns the operand of a type conversion (int(x),
// float64(x)), nil for real calls.
func conversionArg(info *types.Info, call *ast.CallExpr) ast.Expr {
	if len(call.Args) != 1 {
		return nil
	}
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		return call.Args[0]
	}
	return nil
}

// sliceClass classifies the per-server loads slice handed to ChargeRound:
// the max over every element assignment recorded for the slice variable
// (loads[s] = expr classifies expr; loads[s] += expr is an accumulation and
// classifies linear; loads[s]++ is const), on top of the slice's base class
// (born from make or a composite literal → its elements; anything else — a
// parameter, a function result — is input-proportional).
func (c *loadClassifier) sliceClass(fs *funcScope, e ast.Expr) LoadClass {
	e = ast.Unparen(e)
	id, ok := e.(*ast.Ident)
	if !ok {
		return LoadLinear
	}
	obj := fs.info.Uses[id]
	if obj == nil {
		return LoadLinear
	}
	class := LoadLinear
	if rhss := fs.assigns[obj]; len(rhss) == 1 && rhss[0] != nil {
		switch rhs := ast.Unparen(rhss[0]).(type) {
		case *ast.CallExpr:
			if isBuiltin(fs.info, rhs, "make") {
				class = LoadZero
			}
		case *ast.CompositeLit:
			class = LoadZero
			for _, elt := range rhs.Elts {
				if kv, ok := elt.(*ast.KeyValueExpr); ok {
					elt = kv.Value
				}
				class = max(class, c.loadExprClass(fs, elt, map[types.Object]bool{}))
			}
		}
	}
	for _, rhs := range fs.elemAssigns[obj] {
		if rhs == nil {
			return LoadLinear // accumulation or untraceable element write
		}
		class = max(class, c.loadExprClass(fs, rhs, map[types.Object]bool{}))
	}
	return class
}
