package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"
)

// RepoBoundAnalyzer closes the loop between what an algorithm declares and
// what its code can reach: every `Register(&adapter{...})` in the engine
// registry must carry a machine-readable round declaration
// (`rounds: "zero|const|log|loop"`), the static class of its run body
// (computed by reporoundcost from the charging facts) must not exceed it
// and must not be Unknown, and the human-readable `bound` string must not
// smuggle round-count claims in prose — the paper's Figure 1 bounds are
// load bounds; round behavior belongs in the checked rounds field.
var RepoBoundAnalyzer = &analysis.Analyzer{
	Name:     "repobound",
	Doc:      "registered algorithms must declare a round class that their run body's static classification respects",
	Run:      runRepoBound,
	Requires: []*analysis.Analyzer{RoundCostAnalyzer},
}

func init() {
	RepoBoundAnalyzer.Flags.String("scope", "repro/internal/engine",
		"comma-separated package paths to check (\"all\" for every package)")
}

// adapterLit is one extracted Register(&adapter{...}) registration.
type adapterLit struct {
	pos       token.Pos
	name      string // name: field value ("" if absent or non-literal)
	bound     string // bound: field value
	rounds    string // rounds: field value
	load      string // load: field value
	hasRounds bool
	hasLoad   bool
	roundsPos token.Pos
	boundPos  token.Pos
	loadPos   token.Pos
	run       ast.Expr // run: field value (nil if absent)
}

// parseAdapters extracts every Register(&T{...}) composite-literal
// registration from the files, in source order. Shared by the repobound
// analyzer and the CONTRACTS.md generator.
func parseAdapters(info *types.Info, files []*ast.File) []adapterLit {
	var out []adapterLit
	for _, f := range files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(info, call)
			if fn == nil || fn.Name() != "Register" || len(call.Args) == 0 {
				return true
			}
			arg := ast.Unparen(call.Args[0])
			if ue, ok := arg.(*ast.UnaryExpr); ok && ue.Op == token.AND {
				arg = ast.Unparen(ue.X)
			}
			lit, ok := arg.(*ast.CompositeLit)
			if !ok {
				return true
			}
			a := adapterLit{pos: lit.Pos()}
			for _, elt := range lit.Elts {
				kv, ok := elt.(*ast.KeyValueExpr)
				if !ok {
					continue
				}
				key, ok := kv.Key.(*ast.Ident)
				if !ok {
					continue
				}
				switch key.Name {
				case "name":
					a.name = stringLit(kv.Value)
				case "bound":
					a.bound = stringLit(kv.Value)
					a.boundPos = kv.Value.Pos()
				case "rounds":
					a.rounds = stringLit(kv.Value)
					a.hasRounds = true
					a.roundsPos = kv.Value.Pos()
				case "load":
					a.load = stringLit(kv.Value)
					a.hasLoad = true
					a.loadPos = kv.Value.Pos()
				case "run":
					a.run = kv.Value
				}
			}
			out = append(out, a)
			return true
		})
	}
	return out
}

// stringLit unquotes a string literal expression ("" for anything else).
func stringLit(e ast.Expr) string {
	lit, ok := ast.Unparen(e).(*ast.BasicLit)
	if !ok || lit.Kind != token.STRING {
		return ""
	}
	s := lit.Value
	if len(s) >= 2 {
		return s[1 : len(s)-1]
	}
	return ""
}

// runClass classifies an adapter's run value: a function literal is
// classified in place, a named function through its (fact-backed) class.
func runClass(rc *RoundCosts, info *types.Info, run ast.Expr) (RoundClass, bool) {
	switch v := ast.Unparen(run).(type) {
	case *ast.FuncLit:
		return rc.FuncLitClass(v), true
	case *ast.Ident:
		if fn, ok := info.Uses[v].(*types.Func); ok {
			return rc.FuncClass(fn), true
		}
	case *ast.SelectorExpr:
		if fn, ok := info.Uses[v.Sel].(*types.Func); ok {
			return rc.FuncClass(fn), true
		}
	}
	return RoundsUnknown, false
}

func runRepoBound(pass *analysis.Pass) (interface{}, error) {
	scope := pass.Analyzer.Flags.Lookup("scope").Value.String()
	if !inScope(scope, pass.Pkg.Path()) {
		return nil, nil
	}
	ignores := buildIgnoreIndex(pass, pass.Analyzer.Name)
	report := func(pos token.Pos, format string, args ...interface{}) {
		if !ignores.suppressed(pass.Fset, pass.Analyzer.Name, pos) {
			pass.Reportf(pos, format, args...)
		}
	}
	rc := pass.ResultOf[RoundCostAnalyzer].(*RoundCosts)

	// Only non-test files register algorithms.
	var files []*ast.File
	for _, f := range pass.Files {
		if !isTestFile(pass.Fset, f.Pos()) {
			files = append(files, f)
		}
	}

	for _, a := range parseAdapters(pass.TypesInfo, files) {
		name := a.name
		if name == "" {
			name = "adapter"
		}
		if !a.hasRounds {
			report(a.pos, "%s has no rounds declaration: add rounds: \"zero|const|log|loop\" matching its Figure 1 round behavior", name)
			continue
		}
		declared, ok := ParseRoundClass(a.rounds)
		if !ok {
			report(a.roundsPos, "%s declares invalid round class %q (want zero, const, log, or loop)", name, a.rounds)
			continue
		}
		if strings.Contains(strings.ToLower(a.bound), "round") {
			report(a.boundPos, "%s's bound string %q claims round behavior in prose; the bound field is the load bound — declare rounds in the checked rounds field", name, a.bound)
		}
		if a.run == nil {
			report(a.pos, "%s has no run function to classify", name)
			continue
		}
		class, resolved := runClass(rc, pass.TypesInfo, a.run)
		if !resolved || class == RoundsUnknown {
			report(a.run.Pos(), "%s's run body classifies as unknown round cost; restructure it or declare its callees so the class resolves", name)
			continue
		}
		if class > declared {
			report(a.roundsPos, "%s's run body reaches charges of class %s, which exceeds its declared rounds %q", name, class, a.rounds)
		}
	}
	ignores.reportUnused(pass)
	return nil, nil
}
