// Package loadcost exercises the static load classifier: a stub cluster
// grounds the intrinsics (Charge, ChargeInput, ChargeRound are recognized
// syntactically, so the stub works like the real simulator), and each
// function pins one arithmetic-shape or composition rule — positives flag,
// blessed idioms stay silent.
package loadcost

// Value is data-like by the element-type rule: a slice of Values holds one
// entry per input value, so its length scales with the data.
type Value string

type cluster struct {
	P    int
	load int
}

// Charge is the grounding intrinsic: the load is n's arithmetic shape.
func (c *cluster) Charge(s, n int) { c.load += n }

// ChargeInput is the round-robin placement intrinsic.
func (c *cluster) ChargeInput(total int) { c.load += total / c.P }

// ChargeRound is the per-server load-vector intrinsic.
func (c *cluster) ChargeRound(loads []int) {
	for _, n := range loads {
		c.load += n
	}
}

// Isqrt stands in for the integer square root; the divisor rule recognizes
// it by name over a p argument.
func Isqrt(p int) int {
	r := 0
	for (r+1)*(r+1) <= p {
		r++
	}
	return r
}

// PerServer charges an even share: data length divided by p is perP.
//
//lint:load perP
func PerServer(c *cluster, vals []Value) {
	c.Charge(0, len(vals)/c.P)
}

// Structural charges a structural length: []int is set by the query, not
// the data, so len stays const.
//
//lint:load const
func Structural(c *cluster, order []int) {
	c.Charge(0, len(order))
}

// RootShare divides by a fractional power of p: linear drops to frac.
//
//lint:load frac
func RootShare(c *cluster, vals []Value) {
	c.Charge(0, len(vals)/Isqrt(c.P))
}

// Traced follows the single assignment to a local ceil-division share.
//
//lint:load perP
func Traced(c *cluster, vals []Value) {
	share := (len(vals) + c.P - 1) / c.P
	c.Charge(0, share)
}

// Input charges the round-robin placement: ChargeInput divides by p.
//
//lint:load perP
func Input(c *cluster, vals []Value) {
	c.ChargeInput(len(vals))
}

// PerRound builds a per-server load vector: ChargeRound takes the max over
// the recorded element assignments on top of make's zero base.
//
//lint:load perP
func PerRound(c *cluster, vals []Value) {
	loads := make([]int, c.P)
	for s := range loads {
		loads[s] = len(vals) / c.P
	}
	c.ChargeRound(loads)
}

// Accumulated writes elements with +=: an accumulation is untraceable, so
// the vector classifies linear and the perP declaration is drift.
//
//lint:load perP
func Accumulated(c *cluster, vals []Value) { // want "Accumulated computes load class linear, which exceeds its declared //lint:load perP"
	loads := make([]int, c.P)
	for range vals {
		loads[0] += 1
	}
	c.ChargeRound(loads)
}

// Underdeclared claims perP but ships the whole input to one server.
//
//lint:load perP
func Underdeclared(c *cluster, vals []Value) { // want "Underdeclared computes load class linear, which exceeds its declared //lint:load perP"
	c.Charge(0, len(vals))
}

// Relay charges through a declared share with no declaration of its own:
// exported charging functions must declare.
func Relay(c *cluster, vals []Value) { // want "exported Relay charges load \\(class perP\\) but has no //lint:load declaration"
	c.Charge(0, len(vals)/c.P)
}

// TrustedPerP asserts perP over a body the classifier reads as linear —
// the balance-argument escape hatch; the body is never classified.
//
//lint:load perP trust fixture asserts hash balance
func TrustedPerP(c *cluster, vals []Value) {
	c.Charge(0, len(vals))
}

// Routed declares linear over a body the classifier reads as perP: a valid
// declaration always wins (the physical exchange is invisible to the
// classifier), so callers must see linear, not the computed perP.
//
//lint:load linear
func Routed(c *cluster, vals []Value) {
	c.Charge(0, len(vals)/c.P)
}

// Composes reaches Routed's declared linear, not its computed perP: the
// declared-wins rule propagates.
//
//lint:load perP
func Composes(c *cluster, vals []Value) { // want "Composes computes load class linear, which exceeds its declared //lint:load perP"
	Routed(c, vals)
}

// BadClass carries an unparseable declaration.
//
//lint:load banana // want "lint:load declaration on BadClass has unknown class \"banana\""
func BadClass(c *cluster) {
	c.Charge(0, 1)
}

// NoReason trusts without saying why.
//
//lint:load perP trust // want "lint:load trust declaration on NoReason needs a reason"
func NoReason(c *cluster, vals []Value) {
	c.Charge(0, len(vals)/c.P)
}

// RecDeclared recurses with a declaration: the cycle assumes the declared
// class (assume/guarantee), so it resolves without a diagnostic.
//
//lint:load perP
func RecDeclared(c *cluster, vals []Value) {
	if len(vals) == 0 {
		return
	}
	c.Charge(0, len(vals)/c.P)
	RecDeclared(c, vals[1:])
}

// recUndeclared recurses with nothing to assume.
func recUndeclared(c *cluster, vals []Value) { // want "recUndeclared is recursive and needs a //lint:load declaration to classify \\(assume/guarantee\\)"
	if len(vals) == 0 {
		return
	}
	c.Charge(0, len(vals))
	recUndeclared(c, vals[1:])
}

// ChargingWalk recurses through a closure that charges: no declaration can
// anchor an anonymous fixpoint, so the function itself must declare.
func ChargingWalk(c *cluster, depth int) { // want "ChargingWalk cannot be classified \\(a recursive closure charges load\\) and needs a //lint:load declaration to anchor it"
	var walk func(d int)
	walk = func(d int) {
		if d == 0 {
			return
		}
		c.Charge(0, 1)
		walk(d - 1)
	}
	walk(depth)
}

// Spawned charges only inside go/defer closures, which run outside this
// function's round structure (forked charges land on child clusters), so
// it classifies zero and needs no declaration.
func Spawned(c *cluster, vals []Value) {
	go func() { c.Charge(0, len(vals)) }()
	defer func() { c.Charge(0, len(vals)) }()
}

// SuppressedUndeclared is the vetted-exception path: the directive below
// covers the missing-declaration diagnostic, and by being used it escapes
// the stale-directive report.
//
//lint:ignore repoloadcost fixture exercises the suppression path
func SuppressedUndeclared(c *cluster, vals []Value) {
	c.Charge(0, len(vals)/c.P)
}

// Harmless charges nothing, so the directive suppresses nothing.
//
//lint:ignore repoloadcost stale excuse // want "lint:ignore repoloadcost suppresses no diagnostic; remove the stale directive"
func Harmless() {}
