// Package roundcost exercises the static round-cost classifier: a stub
// cluster grounds the lattice with one trusted base charge, and each
// function pins a composition or escalation rule — positives flag, blessed
// idioms stay silent.
package roundcost

// Value is data-like by the element-type rule: a slice of Values holds one
// entry per input value, so its length scales with the data.
type Value string

type cluster struct{ rounds int }

// newRound is the fixture's grounding axiom.
//
//lint:rounds const trust fixture base charge
func (c *cluster) newRound() { c.rounds++ }

// ChargeOnce is a declared charging primitive.
//
//lint:rounds const
func ChargeOnce(c *cluster) { c.newRound() }

// Undeclared composes ChargeOnce's class within the package but carries no
// declaration of its own.
func Undeclared(c *cluster) { // want "exported Undeclared charges rounds \\(class const\\) but has no //lint:rounds declaration"
	ChargeOnce(c)
}

// StructuralLoop charges inside a loop over a structural slice: []int
// lengths are set by the query, not the data, so the class stays const.
//
//lint:rounds const
func StructuralLoop(c *cluster, order []int) {
	for range order {
		c.newRound()
	}
}

// DataLoop charges once per data value; the declaration understates it.
//
//lint:rounds const
func DataLoop(c *cluster, vals []Value) { // want "DataLoop computes round class loop, which exceeds its declared //lint:rounds const"
	for range vals {
		c.newRound()
	}
}

// MapLoop ranges over a map: trip count scales with the data.
//
//lint:rounds const
func MapLoop(c *cluster, m map[int]int) { // want "MapLoop computes round class loop, which exceeds its declared //lint:rounds const"
	for range m {
		c.newRound()
	}
}

// TracedBound charges 2^k times where k is a structural length: the bound
// traces through the single assignment to the len of an []int.
//
//lint:rounds const
func TracedBound(c *cluster, order []int) {
	k := len(order)
	for i := 0; i < 1<<k; i++ {
		c.newRound()
	}
}

// DataBound traces to the len of a data slice.
//
//lint:rounds const
func DataBound(c *cluster, vals []Value) { // want "DataBound computes round class loop, which exceeds its declared //lint:rounds const"
	n := len(vals)
	for i := 0; i < n; i++ {
		c.newRound()
	}
}

// HalvingSearch charges once per halving step: a log-bounded loop lifts
// const to log.
//
//lint:rounds log
func HalvingSearch(c *cluster, n int) {
	lo, hi := 0, n
	for lo < hi {
		mid := (lo + hi) / 2
		c.newRound()
		if mid%2 == 0 {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
}

// HalvingUnderdeclared is the same loop declared const.
//
//lint:rounds const
func HalvingUnderdeclared(c *cluster, n int) { // want "HalvingUnderdeclared computes round class log, which exceeds its declared //lint:rounds const"
	lo, hi := 0, n
	for lo < hi {
		mid := (lo + hi) / 2
		c.newRound()
		if mid%2 == 0 {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
}

// TrustedZero asserts zero against a charging body: trust skips the check
// (the escape hatch recursion and simulator internals need).
//
//lint:rounds zero trust fixture asserts the body away
func TrustedZero(c *cluster) {
	c.newRound()
}

// BadClass carries an unparseable declaration.
//
//lint:rounds banana // want "lint:rounds declaration on BadClass has unknown class \"banana\""
func BadClass(c *cluster) {
	c.newRound()
}

// NoReason trusts without saying why.
//
//lint:rounds const trust // want "lint:rounds trust declaration on NoReason needs a reason"
func NoReason(c *cluster) {
	c.newRound()
}

// RecDeclared recurses with a declaration: the cycle assumes the declared
// class (assume/guarantee), so it resolves without a diagnostic.
//
//lint:rounds const
func RecDeclared(c *cluster, depth int) {
	if depth == 0 {
		return
	}
	c.newRound()
	RecDeclared(c, depth-1)
}

// recUndeclared recurses with nothing to assume.
func recUndeclared(c *cluster, n int) { // want "recUndeclared is recursive and needs a //lint:rounds declaration"
	if n == 0 {
		return
	}
	c.newRound()
	recUndeclared(c, n-1)
}

// ClosureBound resolves a call through a variable bound once to a literal.
//
//lint:rounds const
func ClosureBound(c *cluster) {
	step := func() { c.newRound() }
	step()
}

// Immediate inlines an immediately-invoked literal.
//
//lint:rounds const
func Immediate(c *cluster) {
	func() { c.newRound() }()
}

// Spawned charges only inside go/defer closures, which run outside this
// function's round structure (forked work charges child clusters), so it
// classifies zero and needs no declaration.
func Spawned(c *cluster) {
	go func() { c.newRound() }()
	defer func() { c.newRound() }()
}

// EarlyOut branches compose by max: the empty early-out does not lower the
// charging path's class, and the charging path does not raise the guard's.
//
//lint:rounds const
func EarlyOut(c *cluster, vals []Value) *cluster {
	if len(vals) == 0 {
		return nil
	}
	c.newRound()
	return c
}

// ZeroWalk uses the recursive-closure walker idiom without charging:
// assume/guarantee at Zero resolves the anonymous fixpoint, so the
// function classifies zero and needs no declaration.
func ZeroWalk(depths []int) int {
	total := 0
	var walk func(d int)
	walk = func(d int) {
		if d == 0 {
			total++
			return
		}
		walk(d - 1)
	}
	for _, d := range depths {
		walk(d)
	}
	return total
}

// ChargingWalk recurses through a closure that charges: no declaration can
// anchor an anonymous fixpoint, so it must be declared (or restructured).
func ChargingWalk(c *cluster, depth int) { // want "ChargingWalk cannot be classified \\(a recursive closure charges rounds\\) and needs a //lint:rounds declaration"
	var walk func(d int)
	walk = func(d int) {
		if d == 0 {
			return
		}
		c.newRound()
		walk(d - 1)
	}
	walk(depth)
}

// SuppressedUndeclared is the vetted-exception path: the directive below
// covers the missing-declaration diagnostic, and by being used it escapes
// the stale-directive report.
//
//lint:ignore reporoundcost fixture exercises the suppression path
func SuppressedUndeclared(c *cluster) {
	ChargeOnce(c)
}

// Harmless charges nothing, so the directive suppresses nothing.
//
//lint:ignore reporoundcost stale excuse // want "lint:ignore reporoundcost suppresses no diagnostic; remove the stale directive"
func Harmless() {}
