// Package fixture exercises the repoforksafety analyzer: closures passed
// to runtime.Fork may only write per-task slots indexed by the task
// parameter (or values derived from it inside the closure).
package fixture

// Fork stubs runtime.Fork; the analyzer matches by name and signature.
func Fork(n int, fn func(task int)) {
	for i := 0; i < n; i++ {
		fn(i)
	}
}

type stats struct{ total int }

func sharedWrites(out []int, st *stats, p *int) {
	total := 0
	k := 2
	Fork(4, func(task int) {
		total++         // want `forked closure writes captured variable total`
		out[k] = task   // want `forked closure writes out at an index not derived from the task`
		st.total = task // want `forked closure writes field total of captured st`
		*p = task       // want `forked closure writes through captured pointer p`
	})
	_ = total
}

func sharedAppend() []int {
	var buf []int
	Fork(4, func(task int) {
		buf = append(buf, task) // want `forked closure writes captured variable buf`
	})
	return buf
}

// perTaskSlots is the blessed shape: every write lands in a window indexed
// by the task parameter or a value derived from it.
func perTaskSlots(out []int, bases []int, perTask [][]int) {
	Fork(4, func(task int) {
		base := bases[task]
		out[task] = base
		for i := 0; i < 3; i++ {
			perTask[task] = append(perTask[task], base+i)
		}
	})
}

// localState inside the closure is task-private.
func localState(out []int) {
	Fork(4, func(task int) {
		acc := 0
		for i := 0; i < 10; i++ {
			acc += i
		}
		out[task] = acc
	})
}

// readsAreFree: captured inputs are shared read-only.
func readsAreFree(in []int, out []int) {
	Fork(len(in), func(task int) {
		out[task] = in[task] * 2
	})
}
