// Package chargee is the charging half of the cross-package fact fixture:
// it exports round-cost facts the caller package composes.
package chargee

// Value is data-like by the element-type rule.
type Value string

// Cluster is the stub simulator.
type Cluster struct{ rounds int }

// newRound is the grounding axiom.
//
//lint:rounds const trust fixture base charge
func (c *Cluster) newRound() { c.rounds++ }

// ChargeOnce charges one round; its const fact crosses the package
// boundary.
//
//lint:rounds const
func ChargeOnce(c *Cluster) { c.newRound() }

// Free charges nothing and exports no fact.
func Free(c *Cluster) {}
