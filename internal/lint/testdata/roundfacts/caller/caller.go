// Package caller composes round-cost facts imported from the chargee
// package: every diagnostic here exists only because the facts flowed
// across the package boundary.
package caller

import "fixture/roundfacts/chargee"

// Pipeline charges per structural step: imported const under a structural
// loop stays const.
//
//lint:rounds const
func Pipeline(c *chargee.Cluster, order []int) {
	for range order {
		chargee.ChargeOnce(c)
	}
}

// PerValue charges once per data value: the imported const fact escalates
// under the data-bound loop and exceeds the declaration.
//
//lint:rounds const
func PerValue(c *chargee.Cluster, vals []chargee.Value) { // want "PerValue computes round class loop, which exceeds its declared //lint:rounds const"
	for range vals {
		chargee.ChargeOnce(c)
	}
}

// Relay charges through the imported primitive with no declaration of its
// own; without the imported fact it would classify zero and stay silent.
func Relay(c *chargee.Cluster) { // want "exported Relay charges rounds \\(class const\\) but has no //lint:rounds declaration"
	chargee.ChargeOnce(c)
}

// FreeUse calls the fact-free function: no fact means zero, the std-lib
// assumption.
func FreeUse(c *chargee.Cluster) { chargee.Free(c) }
