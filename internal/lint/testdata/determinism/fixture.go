// Package fixture exercises the repodeterminism analyzer: the positive
// cases pin each diagnostic, the negative cases pin the blessed idioms
// (collect-then-sort, seeded generators, loop-local buffers).
package fixture

import (
	"math/rand"
	"sort"
	"time"
)

// emitter and cluster stub the repo's order-sensitive sinks; matching is by
// method name, so the stubs stand in for mpc.Emitter and mpc.Cluster.
type emitter struct{ rows []string }

func (e *emitter) Emit(s string)   {}
func (e *emitter) Drain() []string { return e.rows }

type cluster struct{}

func (c *cluster) ChargeRound(loads []int64) {}

func mapOrderLeaks(m map[string]int, e *emitter, c *cluster) []string {
	var out []string
	for k, v := range m {
		out = append(out, k) // want `append to out inside a range over a map`
		e.Emit(k)            // want `map iteration order reaches an ordered sink: Emit`
		c.ChargeRound(nil)   // want `round charge inside a range over a map`
		_ = v
	}
	return out
}

func wallClockAndGlobalRand() int {
	t := time.Now()                      // want `time\.Now on the deterministic path`
	return t.Nanosecond() + rand.Intn(7) // want `global math/rand\.Intn on the deterministic path`
}

func selectRace(a, b chan int) int {
	select { // want `select with 2 communication clauses`
	case v := <-a:
		return v
	case v := <-b:
		return v
	}
}

// collectThenSort is the blessed idiom: map order is erased by the sort
// before anything order-sensitive sees the data.
func collectThenSort(m map[string]int, e *emitter) {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		e.Emit(k)
	}
}

// loopLocalBuffer dies with each iteration, so its order never escapes.
func loopLocalBuffer(m map[string][]int) int {
	total := 0
	for _, vs := range m {
		var acc []int
		acc = append(acc, vs...)
		total += len(acc)
	}
	return total
}

// seededGenerator is deterministic: constructing (and using) a seeded
// *rand.Rand is the blessed replacement for the global functions.
func seededGenerator(seed int64) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(100)
}

// singleCaseSelect has no race to lose.
func singleCaseSelect(a chan int) int {
	select {
	case v := <-a:
		return v
	}
}

// suppressed shows the escape hatch: a reasoned lint:ignore directive.
func suppressed() time.Time {
	//lint:ignore repodeterminism fixture pins that a reasoned ignore suppresses
	return time.Now()
}
