// Package repoload exercises the load half of the registry contract:
// every registered algorithm declares its load class, the static load
// class of its run body must respect it, and bound strings must not claim
// a stronger class in prose than the declaration carries.
package repoload

type job struct{ n int }

type dist struct{}

// Value is data-like by the element-type rule.
type Value string

type cluster struct {
	P    int
	load int
}

// Charge is the grounding intrinsic.
func (c *cluster) Charge(s, n int) { c.load += n }

// chargePerP charges one balanced share.
//
//lint:load perP
func chargePerP(c *cluster, vals []Value) { c.Charge(0, len(vals)/c.P) }

// chargeAll ships the whole input to one server.
//
//lint:load linear
func chargeAll(c *cluster, vals []Value) { c.Charge(0, len(vals)) }

// recUndeclared cannot be classified (repoloadcost reports it separately).
func recUndeclared(c *cluster, vals []Value) {
	if len(vals) == 0 {
		return
	}
	c.Charge(0, len(vals))
	recUndeclared(c, vals[1:])
}

type adapter struct {
	name  string
	bound string
	load  string
	run   func(j job) (*dist, error)
}

var registry []*adapter

func Register(a *adapter) { registry = append(registry, a) }

var data = []Value{"a", "b"}

func init() {
	Register(&adapter{
		name: "good", bound: "IN/p", load: "perP",
		run: func(j job) (*dist, error) {
			var c cluster
			chargePerP(&c, data)
			return &dist{}, nil
		},
	})
	Register(&adapter{ // want "missing has no load declaration"
		name: "missing", bound: "IN/p",
		run: func(j job) (*dist, error) { return &dist{}, nil },
	})
	Register(&adapter{
		name:  "invalid",
		bound: "IN/p",
		load:  "zero", // want "invalid declares invalid load class \"zero\" \\(want perP, frac, or linear\\)"
		run:   func(j job) (*dist, error) { return &dist{}, nil },
	})
	Register(&adapter{
		name:  "prose",
		load:  "perP",
		bound: "IN/√p shares", // want "prose's bound string .* claims load class frac in prose, stronger than its declared load \"perP\""
		run: func(j job) (*dist, error) {
			var c cluster
			chargePerP(&c, data)
			return &dist{}, nil
		},
	})
	Register(&adapter{
		name:  "exceeds",
		bound: "IN/p",
		load:  "perP", // want "exceeds's run body reaches charges of load class linear, which exceeds its declared load \"perP\""
		run: func(j job) (*dist, error) {
			var c cluster
			chargeAll(&c, data)
			return &dist{}, nil
		},
	})
	Register(&adapter{ // want "norun has no run function to classify"
		name: "norun", bound: "IN/p", load: "perP",
	})
	Register(&adapter{
		name:  "unresolved",
		bound: "IN/p",
		load:  "perP",
		run: func(j job) (*dist, error) { // want "unresolved's run body classifies as unknown load"
			var c cluster
			recUndeclared(&c, data)
			return &dist{}, nil
		},
	})
	// The vetted-exception path: the directive covers the missing-load
	// diagnostic, and by being used it escapes the stale-directive report.
	//
	//lint:ignore repoload fixture exercises the suppression path
	Register(&adapter{
		name: "suppressed", bound: "IN/p",
		run: func(j job) (*dist, error) { return &dist{}, nil },
	})
}

// Clean carries a stale directive: nothing here ever flags.
//
//lint:ignore repoload stale excuse // want "lint:ignore repoload suppresses no diagnostic; remove the stale directive"
func Clean() {}
