// Package caller composes load facts imported from the chargee package:
// every diagnostic here exists only because the facts flowed across the
// package boundary.
package caller

import "fixture/loadfacts/chargee"

// Balanced composes the imported perP fact under a matching declaration.
//
//lint:load perP
func Balanced(c *chargee.Cluster, vals []chargee.Value) {
	chargee.EvenShare(c, vals)
}

// Gathers reaches the imported linear fact under a perP declaration.
//
//lint:load perP
func Gathers(c *chargee.Cluster, vals []chargee.Value) { // want "Gathers computes load class linear, which exceeds its declared //lint:load perP"
	chargee.Gather(c, vals)
}

// Relay charges through the imported primitive with no declaration of its
// own; without the imported fact it would classify zero and stay silent.
func Relay(c *chargee.Cluster, vals []chargee.Value) { // want "exported Relay charges load \\(class perP\\) but has no //lint:load declaration"
	chargee.EvenShare(c, vals)
}

// FreeUse calls the fact-free function: no fact means zero, the std-lib
// assumption.
func FreeUse(c *chargee.Cluster) { chargee.Free(c) }
