// Package chargee is the charging half of the cross-package load-fact
// fixture: it exports load facts the caller package composes.
package chargee

// Value is data-like by the element-type rule.
type Value string

// Cluster is the stub simulator.
type Cluster struct {
	P    int
	load int
}

// Charge is the grounding intrinsic.
func (c *Cluster) Charge(s, n int) { c.load += n }

// EvenShare charges one balanced share; its perP fact crosses the package
// boundary.
//
//lint:load perP
func EvenShare(c *Cluster, vals []Value) { c.Charge(0, len(vals)/c.P) }

// Gather ships everything to one server; its linear fact is trusted.
//
//lint:load linear trust one server receives the whole collection by design
func Gather(c *Cluster, vals []Value) { c.Charge(0, len(vals)) }

// Free charges nothing and exports no fact.
func Free(c *Cluster) {}
