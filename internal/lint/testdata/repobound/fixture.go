// Package repobound exercises the registry contract: every registered
// algorithm declares its round class, the static class of its run body
// must respect it, and bound strings must not claim rounds in prose.
package repobound

type job struct{ n int }

type dist struct{}

// Value is data-like by the element-type rule.
type Value string

type cluster struct{ rounds int }

// newRound is the fixture's grounding axiom.
//
//lint:rounds const trust fixture base charge
func (c *cluster) newRound() { c.rounds++ }

// chargeOnce is a declared charging primitive.
//
//lint:rounds const
func chargeOnce(c *cluster) { c.newRound() }

// recUndeclared cannot be classified (roundcost reports it separately).
func recUndeclared(c *cluster, n int) {
	if n == 0 {
		return
	}
	c.newRound()
	recUndeclared(c, n-1)
}

type adapter struct {
	name   string
	bound  string
	rounds string
	run    func(j job) (*dist, error)
}

var registry []*adapter

func Register(a *adapter) { registry = append(registry, a) }

func init() {
	Register(&adapter{
		name: "good", bound: "IN/p", rounds: "const",
		run: func(j job) (*dist, error) {
			var c cluster
			chargeOnce(&c)
			return &dist{}, nil
		},
	})
	Register(&adapter{ // want "missing has no rounds declaration"
		name: "missing", bound: "IN/p",
		run: func(j job) (*dist, error) { return &dist{}, nil },
	})
	Register(&adapter{
		name:   "invalid",
		bound:  "IN/p",
		rounds: "banana", // want "invalid declares invalid round class \"banana\""
		run:    func(j job) (*dist, error) { return &dist{}, nil },
	})
	Register(&adapter{
		name:   "prose",
		rounds: "const",
		bound:  "one round, degree shares", // want "prose's bound string .* claims round behavior in prose"
		run: func(j job) (*dist, error) {
			var c cluster
			chargeOnce(&c)
			return &dist{}, nil
		},
	})
	Register(&adapter{
		name:   "exceeds",
		bound:  "IN/p",
		rounds: "zero", // want "exceeds's run body reaches charges of class const, which exceeds its declared rounds \"zero\""
		run: func(j job) (*dist, error) {
			var c cluster
			chargeOnce(&c)
			return &dist{}, nil
		},
	})
	Register(&adapter{
		name:   "dataloop",
		bound:  "IN/p",
		rounds: "const", // want "dataloop's run body reaches charges of class loop, which exceeds its declared rounds \"const\""
		run: func(j job) (*dist, error) {
			var c cluster
			vals := []Value{"a", "b"}
			for range vals {
				chargeOnce(&c)
			}
			return &dist{}, nil
		},
	})
	Register(&adapter{
		name:   "unresolved",
		bound:  "IN/p",
		rounds: "const",
		run: func(j job) (*dist, error) { // want "unresolved's run body classifies as unknown round cost"
			var c cluster
			recUndeclared(&c, j.n)
			return &dist{}, nil
		},
	})
}
