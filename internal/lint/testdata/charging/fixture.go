// Package fixture exercises the repocharging analyzer: exported
// communicating primitives must charge on every return path (rule 1), and
// explicit charges must not hide behind non-emptiness guards (rule 2).
package fixture

// cluster and dist stub mpc.Cluster and mpc.Dist; the analyzer matches the
// communicating entry points by name.
type cluster struct{}

func (c *cluster) Charge(s, n int)           {}
func (c *cluster) ChargeRound(loads []int64) {}

type dist struct{ c *cluster }

func (d *dist) ShuffleByKey() {}
func (d *dist) Size() int     { return 0 }

// UnchargedEarlyOut returns without communicating on a path that is NOT an
// emptiness guard: callers with more than three parts get a free exchange.
func UnchargedEarlyOut(d *dist, parts int) int {
	if parts > 3 {
		return 0 // want `UnchargedEarlyOut communicates but returns without charging`
	}
	d.ShuffleByKey()
	return 1
}

// GuardedCharge deletes a round exactly when the input is empty, so the
// round count depends on the data instead of the query structure.
func GuardedCharge(c *cluster, n int) {
	if n > 0 {
		c.ChargeRound(nil) // want `ChargeRound is skipped when the input is empty`
	}
}

// EmptyEarlyOut is the blessed shape: a statically-empty input has no
// communication to charge, and every non-empty path shuffles.
func EmptyEarlyOut(d *dist) int {
	if d.Size() == 0 {
		return 0
	}
	d.ShuffleByKey()
	return 1
}

// UnconditionalCharge charges before any branching, so every return path
// is covered.
func UnconditionalCharge(d *dist, c *cluster, parts int) int {
	c.ChargeRound(nil)
	if parts > 3 {
		return 0
	}
	d.ShuffleByKey()
	return 1
}

// silent never communicates, so rule 1 does not apply to it at all.
func silent(xs []int) int {
	if len(xs) > 10 {
		return 0
	}
	return len(xs)
}
