// Package fixture exercises the repoallochygiene analyzer: functions whose
// doc comment carries the lint:alloc-ceiling marker (meaning an
// AllocsPerRun regression test holds their allocation count to a fixed
// ceiling) must not allocate inside loops.
package fixture

// hotLoop allocates per item on a ceilinged path.
//
//lint:alloc-ceiling
func hotLoop(n int, out [][]int) {
	for i := 0; i < n; i++ {
		buf := make([]int, 4) // want `make inside a loop in hotLoop`
		out[i] = buf
	}
}

// hotRange covers new and composite literals under a range loop.
//
//lint:alloc-ceiling
func hotRange(xs []int, sink func(interface{})) {
	for range xs {
		sink(new(int))    // want `new inside a loop in hotRange`
		sink([]int{1, 2}) // want `slice/map literal inside a loop in hotRange`
	}
}

// hotForked keeps the loop depth through a forked closure: the closure's
// loops run per task, so its allocations scale the same way.
//
//lint:alloc-ceiling
func hotForked(fork func(int, func(int)), out [][]byte) {
	fork(len(out), func(task int) {
		for i := range out[task] {
			out[task][i] = byte(len(make([]byte, 1))) // want `make inside a loop in hotForked`
		}
	})
}

// hotSetup allocates only outside loops: per-call setup is priced into the
// ceiling.
//
//lint:alloc-ceiling
func hotSetup(n int) []int {
	buf := make([]int, n)
	for i := range buf {
		buf[i] = i
	}
	return buf
}

// coldLoop has no marker, so per-item allocation is its own business.
func coldLoop(n int) [][]int {
	var out [][]int
	for i := 0; i < n; i++ {
		out = append(out, make([]int, 4))
	}
	return out
}
