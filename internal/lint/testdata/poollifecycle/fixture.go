// Package fixture exercises the repopoollifecycle analyzer: pooled buffers
// are owned by their acquiring function — released on every path, never
// escaping via return, field, or global — with ownership transferable to a
// carrier type that releases them.
package fixture

// recCols and the get/put pairs stub the repo's pool accessors; matching is
// by function name.
type recCols struct{ keys []int64 }

func (rc *recCols) append(k int64) { rc.keys = append(rc.keys, k) }

func getRecCols(n int) *recCols { return &recCols{keys: make([]int64, 0, n)} }
func putRecCols(rc *recCols)    {}

func getInt32Zero(n int) []int32 { return make([]int32, n) }
func putInt32(v []int32)         {}

type holder struct{ rc *recCols }

var leaked *recCols

// escapeViaReturn hands the pooled buffer to the caller — the shape of the
// recsToCols test-helper bug this analyzer exists to prevent.
func escapeViaReturn(n int) *recCols {
	rc := getRecCols(n)
	rc.append(1)
	return rc // want `pooled buffer rc escapes via return`
}

// escapeViaField parks the buffer in a struct that has no releasing method.
func escapeViaField(h *holder, n int) {
	rc := getRecCols(n)
	h.rc = rc // want `pooled buffer rc escapes into h.rc`
}

// escapeViaGlobal outlives everything.
func escapeViaGlobal(n int) {
	rc := getRecCols(n)
	leaked = rc // want `pooled buffer rc escapes into package-level state leaked`
}

// neverReleased acquires and forgets.
func neverReleased(n int) int {
	rc := getRecCols(n) // want `pooled buffer rc is acquired but never released`
	return len(rc.keys)
}

// deferredRelease is the standard shape: defer the put at acquisition.
func deferredRelease(n int) int {
	rc := getRecCols(n)
	defer putRecCols(rc)
	rc.append(2)
	return len(rc.keys)
}

// plan is a carrier: it owns pooled scratch and releases it, mirroring the
// exchange plan's release().
type plan struct{ scratch []int32 }

func (p *plan) release() { putInt32(p.scratch) }

// carrierHandoff transfers ownership to the carrier; the buffer may leave
// the function inside it because release() puts it back.
func carrierHandoff(n int) *plan {
	p := &plan{}
	v := getInt32Zero(n)
	p.scratch = v
	return p
}

// closureRelease releases through a local closure (the Lookup shape).
func closureRelease(n int) int {
	rc := getRecCols(n)
	release := func() { putRecCols(rc) }
	rc.append(3)
	m := len(rc.keys)
	release()
	return m
}

// selfFieldWrite mutates the owned buffer's own fields — not an escape.
func selfFieldWrite(n int) {
	rc := getRecCols(n)
	rc.keys = rc.keys[:0]
	putRecCols(rc)
}
