package lint

// The fixture harness: a small reimplementation of analysistest (which the
// offline toolchain does not vendor) sufficient for this suite. Each
// testdata/<analyzer> directory is one fixture package; the harness parses
// and typechecks it with the source importer (fixtures stub the repo's
// types and import only std), runs the analyzer with its dependencies
// resolved topologically, and matches every diagnostic against the
// `// want "regexp"` comment on the same line — unmatched diagnostics and
// unmet expectations both fail, so each fixture pins positives (flagged
// lines) and negatives (blessed idioms that must stay silent) at once.

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"reflect"
	"regexp"
	"sort"
	"strings"
	"testing"

	"golang.org/x/tools/go/analysis"
)

// runFixture runs a (with its Requires closure) over testdata/<dir> and
// checks diagnostics against the fixture's want comments.
func runFixture(t *testing.T, a *analysis.Analyzer, dir string) {
	t.Helper()
	runMultiFixture(t, a, dir, nil)
}

// runMultiFixture runs a over a multi-package fixture: testdata/<dir>/<sub>
// for each listed subdirectory, typechecked and analyzed in order, with
// facts flowing from earlier packages to later ones (the packages import
// each other as "fixture/<dir>/<sub>"). A nil subs list means dir itself is
// the single fixture package. Diagnostics of every package run are matched
// against the union of all want comments.
func runMultiFixture(t *testing.T, a *analysis.Analyzer, dir string, subs []string) {
	t.Helper()

	// Fixtures live outside the data-plane import paths, so widen every
	// scoping flag of the analyzer and its dependency closure for the
	// duration of the test.
	restore := widenScopes(t, a)
	defer restore()

	fset := token.NewFileSet()
	fixturePkgs := map[string]*types.Package{}
	imp := &fixtureImporter{
		pkgs:     fixturePkgs,
		fallback: importer.ForCompiler(fset, "source", nil),
	}

	facts := newFactStore()
	var diags []analysis.Diagnostic
	var allFiles []*ast.File
	paths := []string{dir}
	if len(subs) > 0 {
		paths = nil
		for _, sub := range subs {
			paths = append(paths, filepath.Join(dir, sub))
		}
	}
	for _, p := range paths {
		files, pkg, info := typecheckFixture(t, fset, p, imp)
		fixturePkgs["fixture/"+filepath.ToSlash(p)] = pkg
		allFiles = append(allFiles, files...)
		runAnalyzer(t, a, fset, files, pkg, info, facts, &diags)
	}
	checkWants(t, fset, allFiles, diags)
}

// widenScopes sets every string flag named scope/declscope to "all" on a
// and its Requires closure, returning a restore function.
func widenScopes(t *testing.T, root *analysis.Analyzer) func() {
	t.Helper()
	var restores []func()
	seen := map[*analysis.Analyzer]bool{}
	var widen func(a *analysis.Analyzer)
	widen = func(a *analysis.Analyzer) {
		if seen[a] {
			return
		}
		seen[a] = true
		for _, name := range []string{"scope", "declscope"} {
			if f := a.Flags.Lookup(name); f != nil {
				prev := f.Value.String()
				if err := a.Flags.Set(name, "all"); err != nil {
					t.Fatal(err)
				}
				flag, fname := a.Flags, name
				restores = append(restores, func() { flag.Set(fname, prev) })
			}
		}
		for _, dep := range a.Requires {
			widen(dep)
		}
	}
	widen(root)
	return func() {
		for _, r := range restores {
			r()
		}
	}
}

// fixtureImporter resolves "fixture/..." paths to already-typechecked
// fixture packages and everything else through the source importer.
type fixtureImporter struct {
	pkgs     map[string]*types.Package
	fallback types.Importer
}

func (i *fixtureImporter) Import(path string) (*types.Package, error) {
	if p, ok := i.pkgs[path]; ok {
		return p, nil
	}
	return i.fallback.Import(path)
}

// typecheckFixture parses and typechecks one fixture package rooted at
// testdata/<rel>, imported as "fixture/<rel>".
func typecheckFixture(t *testing.T, fset *token.FileSet, rel string, imp types.Importer) ([]*ast.File, *types.Package, *types.Info) {
	t.Helper()
	root := filepath.Join("testdata", rel)
	entries, err := os.ReadDir(root)
	if err != nil {
		t.Fatal(err)
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(root, e.Name()), nil, parser.ParseComments)
		if err != nil {
			t.Fatal(err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		t.Fatalf("no fixture files under %s", root)
	}

	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
		Instances:  map[*ast.Ident]types.Instance{},
	}
	conf := types.Config{Importer: imp}
	pkg, err := conf.Check("fixture/"+filepath.ToSlash(rel), fset, files, info)
	if err != nil {
		t.Fatalf("typecheck %s: %v", rel, err)
	}
	return files, pkg, info
}

// factStore holds object and package facts shared across the package runs
// of one fixture, so facts exported while analyzing package b are imported
// while analyzing a later package a that imports b — the same flow the
// unitchecker driver provides through its facts files.
type factStore struct {
	objFacts map[objFactKey]analysis.Fact
	pkgFacts map[pkgFactKey]analysis.Fact
}

type objFactKey struct {
	obj types.Object
	t   reflect.Type
}

type pkgFactKey struct {
	pkg *types.Package
	t   reflect.Type
}

func newFactStore() *factStore {
	return &factStore{
		objFacts: map[objFactKey]analysis.Fact{},
		pkgFacts: map[pkgFactKey]analysis.Fact{},
	}
}

// runAnalyzer executes a and its dependency closure, collecting the root
// analyzer's diagnostics into diags.
func runAnalyzer(t *testing.T, root *analysis.Analyzer, fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, facts *factStore, diags *[]analysis.Diagnostic) {
	t.Helper()
	results := map[*analysis.Analyzer]interface{}{}
	objFacts := facts.objFacts
	pkgFacts := facts.pkgFacts

	var run func(a *analysis.Analyzer)
	run = func(a *analysis.Analyzer) {
		if _, done := results[a]; done {
			return
		}
		for _, dep := range a.Requires {
			run(dep)
		}
		pass := &analysis.Pass{
			Analyzer:   a,
			Fset:       fset,
			Files:      files,
			Pkg:        pkg,
			TypesInfo:  info,
			TypesSizes: types.SizesFor("gc", "amd64"),
			ResultOf:   results,
			Report: func(d analysis.Diagnostic) {
				if a == root {
					*diags = append(*diags, d)
				}
			},
			ImportObjectFact: func(obj types.Object, fact analysis.Fact) bool {
				f, ok := objFacts[objFactKey{obj, reflect.TypeOf(fact)}]
				if ok {
					reflect.ValueOf(fact).Elem().Set(reflect.ValueOf(f).Elem())
				}
				return ok
			},
			ExportObjectFact: func(obj types.Object, fact analysis.Fact) {
				objFacts[objFactKey{obj, reflect.TypeOf(fact)}] = fact
			},
			ImportPackageFact: func(p *types.Package, fact analysis.Fact) bool {
				f, ok := pkgFacts[pkgFactKey{p, reflect.TypeOf(fact)}]
				if ok {
					reflect.ValueOf(fact).Elem().Set(reflect.ValueOf(f).Elem())
				}
				return ok
			},
			ExportPackageFact: func(fact analysis.Fact) {
				pkgFacts[pkgFactKey{pkg, reflect.TypeOf(fact)}] = fact
			},
			AllObjectFacts:  func() []analysis.ObjectFact { return nil },
			AllPackageFacts: func() []analysis.PackageFact { return nil },
		}
		res, err := a.Run(pass)
		if err != nil {
			t.Fatalf("%s: %v", a.Name, err)
		}
		results[a] = res
	}
	run(root)
}

var wantRE = regexp.MustCompile("// want (.*)$")

// checkWants matches diagnostics against `// want "re"` (or backquoted)
// expectations by file and line.
func checkWants(t *testing.T, fset *token.FileSet, files []*ast.File, diags []analysis.Diagnostic) {
	t.Helper()
	type key struct {
		file string
		line int
	}
	type expectation struct {
		re  *regexp.Regexp
		met bool
	}
	wants := map[key][]*expectation{}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				k := key{pos.Filename, pos.Line}
				for _, pat := range splitWantPatterns(m[1]) {
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s:%d: bad want pattern %q: %v", pos.Filename, pos.Line, pat, err)
					}
					wants[k] = append(wants[k], &expectation{re: re})
				}
			}
		}
	}

	for _, d := range diags {
		pos := fset.Position(d.Pos)
		k := key{pos.Filename, pos.Line}
		matched := false
		for _, exp := range wants[k] {
			if !exp.met && exp.re.MatchString(d.Message) {
				exp.met = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s:%d: unexpected diagnostic: %s", pos.Filename, pos.Line, d.Message)
		}
	}
	var keys []key
	for k := range wants {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].file != keys[j].file {
			return keys[i].file < keys[j].file
		}
		return keys[i].line < keys[j].line
	})
	for _, k := range keys {
		for _, exp := range wants[k] {
			if !exp.met {
				t.Errorf("%s:%d: expected diagnostic matching %q, got none", k.file, k.line, exp.re)
			}
		}
	}
}

// splitWantPatterns extracts the quoted or backquoted regexps from the tail
// of a want comment.
func splitWantPatterns(s string) []string {
	var out []string
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '"':
			if end := strings.IndexByte(s[i+1:], '"'); end >= 0 {
				if pat, err := unquote(s[i : i+end+2]); err == nil {
					out = append(out, pat)
				}
				i += end + 1
			}
		case '`':
			if end := strings.IndexByte(s[i+1:], '`'); end >= 0 {
				out = append(out, s[i+1:i+1+end])
				i += end + 1
			}
		}
	}
	return out
}

func unquote(s string) (string, error) {
	var out string
	_, err := fmt.Sscanf(s, "%q", &out)
	return out, err
}
