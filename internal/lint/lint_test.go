package lint

import (
	"os"
	"os/exec"
	"path/filepath"
	"testing"
)

func TestDeterminismFixture(t *testing.T)   { runFixture(t, DeterminismAnalyzer, "determinism") }
func TestChargingFixture(t *testing.T)      { runFixture(t, ChargingAnalyzer, "charging") }
func TestPoolLifecycleFixture(t *testing.T) { runFixture(t, PoolLifecycleAnalyzer, "poollifecycle") }
func TestForkSafetyFixture(t *testing.T)    { runFixture(t, ForkSafetyAnalyzer, "forksafety") }
func TestAllocHygieneFixture(t *testing.T)  { runFixture(t, AllocHygieneAnalyzer, "allochygiene") }
func TestRoundCostFixture(t *testing.T)     { runFixture(t, RoundCostAnalyzer, "roundcost") }
func TestRepoBoundFixture(t *testing.T)     { runFixture(t, RepoBoundAnalyzer, "repobound") }
func TestLoadCostFixture(t *testing.T)      { runFixture(t, LoadCostAnalyzer, "loadcost") }
func TestRepoLoadFixture(t *testing.T)      { runFixture(t, RepoLoadAnalyzer, "repoload") }

// TestRoundFactsAcrossPackages exercises the facts mechanism end to end:
// the chargee package exports round-cost facts, and the caller package
// composes them across the package boundary — the violations it pins exist
// only if the facts actually flowed.
func TestRoundFactsAcrossPackages(t *testing.T) {
	runMultiFixture(t, RoundCostAnalyzer, "roundfacts", []string{"chargee", "caller"})
}

// TestLoadFactsAcrossPackages is the load-axis twin: the caller package's
// violations exist only if the chargee's load facts flowed across the
// package boundary.
func TestLoadFactsAcrossPackages(t *testing.T) {
	runMultiFixture(t, LoadCostAnalyzer, "loadfacts", []string{"chargee", "caller"})
}

// TestSuiteComplete pins the suite's composition: exactly the nine
// contract analyzers, every one carrying the scope flag and a doc string,
// so cmd/repolint loads what DESIGN.md documents.
func TestSuiteComplete(t *testing.T) {
	want := []string{
		"repodeterminism",
		"repocharging",
		"repopoollifecycle",
		"repoforksafety",
		"repoallochygiene",
		"reporoundcost",
		"repobound",
		"repoloadcost",
		"repoload",
	}
	got := Analyzers()
	if len(got) != len(want) {
		t.Fatalf("suite has %d analyzers, want %d", len(got), len(want))
	}
	for i, a := range got {
		if a.Name != want[i] {
			t.Errorf("analyzer %d is %s, want %s", i, a.Name, want[i])
		}
		if a.Doc == "" {
			t.Errorf("%s has no doc", a.Name)
		}
		if a.Flags.Lookup("scope") == nil {
			t.Errorf("%s has no scope flag", a.Name)
		}
	}
}

// TestRepolintSmoke builds cmd/repolint and runs it through the real
// `go vet -vettool` protocol over a clean in-scope package: the driver
// must load all five analyzers and exit 0.
func TestRepolintSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a binary and runs go vet")
	}
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	tool := filepath.Join(t.TempDir(), "repolint")
	build := exec.Command("go", "build", "-o", tool, "./cmd/repolint")
	build.Dir = root
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building repolint: %v\n%s", err, out)
	}
	vet := exec.Command("go", "vet", "-vettool="+tool, "./internal/engine/...")
	vet.Dir = root
	vet.Env = append(os.Environ(), "GOFLAGS=-mod=mod")
	if out, err := vet.CombinedOutput(); err != nil {
		t.Fatalf("go vet -vettool on a clean package: %v\n%s", err, out)
	}
}
