GO ?= go

# bench knobs: BENCH filters the benchmark set, COUNT is the number of
# counted runs (benchstat wants ≥ 6 to report significance). The counted
# family pairs each parallel data-plane path with its retained serial
# reference: Exchange/Route, SampleSort/SerialSortRef, plus Lookup
# end-to-end over the sample sort.
BENCH ?= BenchmarkExchange|BenchmarkRoute|BenchmarkSampleSort|BenchmarkSerialSortRef|BenchmarkLookup|BenchmarkMicro_SemiJoin
COUNT ?= 6

.PHONY: ci fmt vet build test race smoke bench bench-all bench-smoke experiments

# ci is tier-1 plus race checking, a public-API smoke pass, and a
# bench-smoke pass in one command: if an example, CLI, or benchmark stops
# compiling or running, ci fails.
ci: fmt vet build race smoke bench-smoke

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# smoke builds and runs every public entry point at a small scale: all four
# examples, an auto-dispatched and an explicit joinrun, and both classify
# modes. Keeps the engine API surface from silently rotting.
smoke: build
	$(GO) run ./examples/quickstart > /dev/null
	$(GO) run ./examples/hierarchy > /dev/null
	$(GO) run ./examples/orders > /dev/null
	$(GO) run ./examples/aggregation > /dev/null
	$(GO) run ./cmd/joinrun -algo auto -family random -in 4096 -out 16384 -p 16 > /dev/null
	$(GO) run ./cmd/joinrun -algo rhier -family rhier -in 4096 -p 16 > /dev/null
	$(GO) run ./cmd/classify > /dev/null
	$(GO) run ./cmd/classify -q "1,2;2,3;3,4" > /dev/null
	@echo "smoke: all examples and CLIs ran"

# bench runs the exchange microbenchmarks (override with BENCH=…) as
# COUNT counted passes with allocation stats — pipe the output of two
# checkouts into benchstat to compare the data planes:
#
#	make bench > new.txt && git stash && make bench > old.txt
#	benchstat old.txt new.txt
bench:
	$(GO) test -run '^$$' -bench '$(BENCH)' -benchmem -count $(COUNT) ./...

# bench-all is the full uncounted suite (tables, figures, micro).
bench-all:
	$(GO) test -run '^$$' -bench . -benchmem ./...

# bench-smoke compiles and runs every counted benchmark once; keeps the
# benchmark surface from rotting without paying for counted runs.
bench-smoke:
	$(GO) test -run '^$$' -bench '$(BENCH)' -benchtime 1x . ./internal/mpc ./internal/primitives

experiments:
	$(GO) run ./cmd/experiments
