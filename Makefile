GO ?= go

# bench knobs: BENCH filters the benchmark set, COUNT is the number of
# counted runs (benchstat wants ≥ 6 to report significance). The counted
# family pairs each parallel data-plane path with its retained serial
# reference: Exchange/Route (columnar plan/scatter vs tuple-at-a-time),
# SampleSort/SerialSortRef (rank-vector sort vs coordinator sort), the
# columnar FromRelation placement, plus Lookup end-to-end over the pooled
# record columns and the cost-based dispatch overhead (AutoCost).
BENCH ?= BenchmarkExchange|BenchmarkRoute|BenchmarkFromRelation|BenchmarkSampleSort|BenchmarkSerialSortRef|BenchmarkLookup|BenchmarkMicro_SemiJoin|BenchmarkEngine_AutoCost
COUNT ?= 6

# Coverage floors for the data-plane packages (percent of statements).
# The columnar store and the record pool are proof-heavy code: if their
# tests rot, ci fails before the guarantees do.
COVER_FLOOR_MPC ?= 85
COVER_FLOOR_PRIMITIVES ?= 90

# fuzz-smoke budget per target.
FUZZTIME ?= 10s

# The benchmark trajectory file this PR generation writes (see ROADMAP),
# and the previous generation's file it is compared against: benchjson
# aggregates the COUNT samples into medians, prints per-benchmark deltas,
# warns past the advisory threshold, and `make bench-compare` fails when a
# median ns/op regresses past GATE percent. GATE sits well above the warn
# threshold because trajectory files come from whatever machine ran `make
# bench` — it must absorb machine drift while still catching a lost
# optimization.
BENCH_JSON ?= BENCH_10.json
BENCH_BASELINE ?= BENCH_9.json
GATE ?= 25

.PHONY: ci fmt vet build test race smoke bench bench-all bench-compare bench-smoke bench-verify fuzz-smoke cover lint lint-fix-list tidy-check contracts contracts-verify experiments

# ci is tier-1 plus race checking, a public-API smoke pass, coverage
# floors, a fuzz-smoke pass over the data-plane parity targets, a
# bench-smoke pass, the repolint static-analysis suite, the module tidy
# check, the benchmark-trajectory staleness gate, and the cross-generation
# benchmark regression gate in one command: if an example, CLI, benchmark,
# fuzz target, coverage floor, contract analyzer, or recorded perf win
# stops holding, ci fails.
ci: fmt vet lint tidy-check build race smoke cover fuzz-smoke bench-smoke bench-verify bench-compare contracts-verify

fmt:
	@out="$$(gofmt -l . | grep -v '^third_party/')"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

# lint runs the repository's contract analyzers (internal/lint) over every
# package through the standard vet driver. See DESIGN.md "Static analysis"
# for the contracts and the //lint:ignore escape hatch.
lint:
	@mkdir -p bin
	$(GO) build -o bin/repolint ./cmd/repolint
	$(GO) vet -vettool=$(CURDIR)/bin/repolint ./...

# lint-fix-list prints the violations as bare file:line:col lines for
# editor jumping (quickfix lists, vim -q, jump-to-error).
lint-fix-list:
	@mkdir -p bin
	@$(GO) build -o bin/repolint ./cmd/repolint
	@$(GO) vet -vettool=$(CURDIR)/bin/repolint ./... 2>&1 | grep -E '^[^ ]+\.go:[0-9]+' | cut -d: -f1-3 || true

# tidy-check fails when go.mod/go.sum need `go mod tidy`.
tidy-check:
	$(GO) mod tidy -diff

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# smoke builds and runs every public entry point at a small scale: all four
# examples, an auto-dispatched and an explicit joinrun, and both classify
# modes. Keeps the engine API surface from silently rotting.
smoke: build
	$(GO) run ./examples/quickstart > /dev/null
	$(GO) run ./examples/hierarchy > /dev/null
	$(GO) run ./examples/orders > /dev/null
	$(GO) run ./examples/aggregation > /dev/null
	$(GO) run ./cmd/joinrun -algo auto -family random -in 4096 -out 16384 -p 16 > /dev/null
	$(GO) run ./cmd/joinrun -algo rhier -family rhier -in 4096 -p 16 > /dev/null
	$(GO) run ./cmd/classify > /dev/null
	$(GO) run ./cmd/classify -q "1,2;2,3;3,4" > /dev/null
	@echo "smoke: all examples and CLIs ran"

# cover writes one profile per data-plane package (a single test run each)
# and enforces the per-package statement-coverage floors from the profile
# totals.
cover:
	@for spec in "repro/internal/mpc mpc $(COVER_FLOOR_MPC)" "repro/internal/primitives primitives $(COVER_FLOOR_PRIMITIVES)"; do \
		set -- $$spec; pkg=$$1; name=$$2; floor=$$3; \
		$(GO) test -coverprofile=cover-$$name.out $$pkg > /dev/null || exit 1; \
		pct=$$($(GO) tool cover -func=cover-$$name.out | awk '/^total:/ { sub(/%/, "", $$3); print $$3 }'); \
		if [ -z "$$pct" ]; then echo "cover: no coverage reported for $$pkg"; exit 1; fi; \
		ok=$$(awk -v p="$$pct" -v f="$$floor" 'BEGIN{print (p>=f)?1:0}'); \
		if [ "$$ok" != 1 ]; then \
			echo "cover: $$pkg at $$pct% is below the $$floor% floor"; exit 1; \
		fi; \
		echo "cover: $$pkg $$pct% (floor $$floor%)"; \
	done

# fuzz-smoke runs each native fuzz target for FUZZTIME: the exchange and
# the sample sort must stay value-identical to their retained serial
# references on randomized inputs, widths, and pool states.
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz '^FuzzExchangeParity$$' -fuzztime $(FUZZTIME) ./internal/mpc
	$(GO) test -run '^$$' -fuzz '^FuzzSampleSortParity$$' -fuzztime $(FUZZTIME) ./internal/primitives

# contracts regenerates CONTRACTS.md from the engine registry and the
# round-cost classifier (repolint -contracts runs standalone: under go
# vet, result caching would skip the write).
contracts:
	@mkdir -p bin
	$(GO) build -o bin/repolint ./cmd/repolint
	bin/repolint -contracts -o CONTRACTS.md

# contracts-verify fails when CONTRACTS.md drifted from the registry or
# the classifier: an algorithm, declaration, or charge path changed
# without `make contracts`.
contracts-verify:
	@mkdir -p bin
	@$(GO) build -o bin/repolint ./cmd/repolint
	@bin/repolint -contracts -o bin/CONTRACTS.md.new
	@if ! diff -u CONTRACTS.md bin/CONTRACTS.md.new; then \
		echo "contracts-verify: CONTRACTS.md is stale; run make contracts"; exit 1; \
	fi
	@echo "contracts-verify: CONTRACTS.md matches the registry"

# bench runs the exchange microbenchmarks (override with BENCH=…) as
# COUNT counted passes with allocation stats, and records the per-benchmark
# medians (with sample counts and ns/op spread) into $(BENCH_JSON) — the
# trajectory point ci's bench-verify gate checks for staleness and
# bench-compare gates against the previous generation. The raw lines still
# stream to stdout, so the benchstat workflow is unchanged:
#
#	make bench > new.txt && git stash && make bench > old.txt
#	benchstat old.txt new.txt
#
# -p 1 serializes the per-package test binaries: letting them run
# concurrently (the go test default) contends for cores and inflates the
# counted medians by double-digit percentages on loaded machines.
bench:
	$(GO) test -p 1 -run '^$$' -bench '$(BENCH)' -benchmem -count $(COUNT) ./... | $(GO) run ./cmd/benchjson -o $(BENCH_JSON) -baseline $(BENCH_BASELINE)

# bench-compare gates the recorded trajectory against the previous
# generation's without re-running anything: any shared benchmark whose
# median ns/op regressed past GATE percent fails ci.
bench-compare:
	$(GO) run ./cmd/benchjson -compare $(BENCH_JSON) -baseline $(BENCH_BASELINE) -gate $(GATE)

# bench-verify fails when $(BENCH_JSON) is stale relative to the counted
# benchmark list: a benchmark was added, renamed, or removed without
# re-recording the trajectory (`make bench`).
bench-verify:
	$(GO) test -run '^$$' -list '$(BENCH)' ./... | $(GO) run ./cmd/benchjson -verify $(BENCH_JSON)

# bench-all is the full uncounted suite (tables, figures, micro).
bench-all:
	$(GO) test -run '^$$' -bench . -benchmem ./...

# bench-smoke compiles and runs every counted benchmark once; keeps the
# benchmark surface from rotting without paying for counted runs.
bench-smoke:
	$(GO) test -run '^$$' -bench '$(BENCH)' -benchtime 1x . ./internal/mpc ./internal/primitives

experiments:
	$(GO) run ./cmd/experiments
