GO ?= go

.PHONY: ci fmt vet build test race bench experiments

# ci is tier-1 plus race checking in one command.
ci: fmt vet build race

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem

experiments:
	$(GO) run ./cmd/experiments
