GO ?= go

.PHONY: ci fmt vet build test race smoke bench experiments

# ci is tier-1 plus race checking plus a public-API smoke pass in one
# command: if an example or CLI stops compiling or running, ci fails.
ci: fmt vet build race smoke

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# smoke builds and runs every public entry point at a small scale: all four
# examples, an auto-dispatched and an explicit joinrun, and both classify
# modes. Keeps the engine API surface from silently rotting.
smoke: build
	$(GO) run ./examples/quickstart > /dev/null
	$(GO) run ./examples/hierarchy > /dev/null
	$(GO) run ./examples/orders > /dev/null
	$(GO) run ./examples/aggregation > /dev/null
	$(GO) run ./cmd/joinrun -algo auto -family random -in 4096 -out 16384 -p 16 > /dev/null
	$(GO) run ./cmd/joinrun -algo rhier -family rhier -in 4096 -p 16 > /dev/null
	$(GO) run ./cmd/classify > /dev/null
	$(GO) run ./cmd/classify -q "1,2;2,3;3,4" > /dev/null
	@echo "smoke: all examples and CLIs ran"

bench:
	$(GO) test -bench=. -benchmem

experiments:
	$(GO) run ./cmd/experiments
