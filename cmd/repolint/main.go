// Command repolint is the repository's static-analysis driver: it bundles
// the internal/lint analyzers into a unitchecker binary that plugs into
// the standard go vet machinery:
//
//	go build -o bin/repolint ./cmd/repolint
//	go vet -vettool=bin/repolint ./...
//
// `make lint` wires exactly that into ci. Each analyzer takes a -scope
// flag (comma-separated package paths, "all" for everything) defaulting
// to the data-plane packages its contract covers; see internal/lint for
// the contracts and the //lint:ignore suppression syntax.
//
// A second mode renders the algorithm round/communication contract table:
//
//	bin/repolint -contracts [-o CONTRACTS.md] [-root DIR]
//
// It runs standalone (not under go vet: vet caches analyzer results, so a
// cached run would skip the write) and regenerates CONTRACTS.md from the
// engine registry and the round-cost classifier; `make contracts` and the
// `make contracts-verify` drift gate wrap it.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"

	"golang.org/x/tools/go/analysis/unitchecker"

	"repro/internal/lint"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "-contracts" {
		fs := flag.NewFlagSet("repolint -contracts", flag.ExitOnError)
		out := fs.String("o", "CONTRACTS.md", "output file (- for stdout)")
		root := fs.String("root", ".", "module root directory")
		fs.Parse(os.Args[2:])

		var buf bytes.Buffer
		if err := lint.WriteContracts(&buf, *root); err != nil {
			fmt.Fprintf(os.Stderr, "repolint -contracts: %v\n", err)
			os.Exit(1)
		}
		if *out == "-" {
			os.Stdout.Write(buf.Bytes())
			return
		}
		if err := os.WriteFile(*out, buf.Bytes(), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "repolint -contracts: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *out)
		return
	}
	unitchecker.Main(lint.Analyzers()...)
}
