// Command repolint is the repository's static-analysis driver: it bundles
// the internal/lint analyzers into a unitchecker binary that plugs into
// the standard go vet machinery:
//
//	go build -o bin/repolint ./cmd/repolint
//	go vet -vettool=bin/repolint ./...
//
// `make lint` wires exactly that into ci. Each analyzer takes a -scope
// flag (comma-separated package paths, "all" for everything) defaulting
// to the data-plane packages its contract covers; see internal/lint for
// the contracts and the //lint:ignore suppression syntax.
package main

import (
	"golang.org/x/tools/go/analysis/unitchecker"

	"repro/internal/lint"
)

func main() {
	unitchecker.Main(lint.Analyzers()...)
}
