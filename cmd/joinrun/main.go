// Command joinrun executes one engine algorithm on one generated instance
// and reports the measured load, round count and output size next to the
// bound the algorithm is supposed to track. Algorithms and instance
// families both come from registries (internal/engine, internal/gen), so
// the flag surface grows with them; -algo auto routes the query through the
// engine's classification-driven dispatch.
//
// Usage:
//
//	joinrun                              # auto-dispatch on the random family
//	joinrun -algo line3      -in 16384 -out 131072 -p 64
//	joinrun -algo yannakakis -family hard   -in 16384 -out 131072
//	joinrun -algo auto       -family rhier  -in 16384
//	joinrun -algo triangle   -family triangle -in 16384 -out 65536
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/engine"
	"repro/internal/gen"
	"repro/internal/mpc"
	"repro/internal/stats"
)

func main() {
	algo := flag.String("algo", "auto", "algorithm: auto|"+strings.Join(engine.Names(), "|"))
	family := flag.String("family", "random", "instance family: "+strings.Join(gen.FamilyNames(), "|"))
	inSize := flag.Int("in", 1<<14, "target input size IN")
	outSize := flag.Int("out", 1<<17, "target output size OUT (family-dependent)")
	p := flag.Int("p", 64, "number of servers")
	seed := flag.Uint64("seed", 2019, "random seed")
	flag.Parse()

	in, err := gen.Build(*family, mpc.NewRng(*seed), *inSize, *outSize)
	if err != nil {
		fmt.Fprintln(os.Stderr, "joinrun:", err)
		os.Exit(1)
	}

	job := engine.Job{In: in, P: *p, Seed: *seed, CheckOracle: true}
	var res engine.Result
	if *algo == "auto" {
		// Cost-based dispatch: argmin predicted load over the class's
		// candidates; the error message lists every candidate tried.
		res, err = engine.AutoRun(job)
	} else {
		res, err = engine.RunNamed(*algo, job)
	}
	status := "OK"
	switch {
	case errors.Is(err, engine.ErrVerify):
		status = fmt.Sprintf("MISMATCH (%v)", err)
	case err != nil:
		fmt.Fprintln(os.Stderr, "joinrun:", err)
		os.Exit(1)
	case !res.Verified:
		status = "not oracle-checked"
	}

	a, _ := engine.Lookup(res.Algorithm)
	out := res.OUT
	if !engine.IsFullJoin(a) {
		out = res.Annot
	}
	fmt.Printf("%s on %s (%s): IN=%d OUT=%d p=%d\n",
		res.Algorithm, *family, in.Q.Classify(), in.IN(), out, *p)
	fmt.Printf("  load L = %d   rounds = %d   bound tracked: %s   verification: %s\n",
		res.Load, res.Rounds, res.Bound, status)
	fmt.Printf("  dispatch: predicted L = %.1f via %s   L/pred = %.3f\n",
		res.Predicted, res.PredictedBy, stats.Ratio(res.Load, res.Predicted))
	printScorecard(res.Candidates)
	fmt.Printf("  comm: total = %d tuples   exchanges = %d (%d tuples batched, %d active destinations)\n",
		res.TotalComm, res.Exchange.Exchanges, res.Exchange.Tuples, res.Exchange.ActiveDests)
	fmt.Printf("  bounds: linear IN/p = %.0f   Yannakakis IN/p+OUT/p = %.0f   paper IN/p+√(IN·OUT/p) = %.0f\n",
		stats.Linear(in.IN(), *p), stats.Yannakakis(in.IN(), out, *p), stats.Acyclic(in.IN(), out, *p))
}

// printScorecard renders the ranked dispatch candidates of an auto run
// (argmin first, rejected candidates last); explicit -algo runs carry none.
func printScorecard(cands []engine.Candidate) {
	if len(cands) == 0 {
		return
	}
	fmt.Println("  candidates (argmin predicted load first):")
	for _, c := range cands {
		if c.Rejected != "" {
			fmt.Printf("    %-12s rejected: %s\n", c.Name, c.Rejected)
			continue
		}
		fmt.Printf("    %-12s predicted L = %.1f via %s\n", c.Name, c.Predicted, c.PredictedBy)
	}
}
