// Command joinrun executes one algorithm on one generated instance and
// reports the measured load, round count and output size next to the bound
// the algorithm is supposed to track.
//
// Usage:
//
//	joinrun -algo line3      -in 16384 -out 131072 -p 64
//	joinrun -algo yannakakis -family hard   -in 16384 -out 131072
//	joinrun -algo rhier      -family rhier  -in 16384
//	joinrun -algo triangle   -family triangle -in 16384 -out 65536
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/mpc"
	"repro/internal/stats"
)

func main() {
	algo := flag.String("algo", "acyclic", "algorithm: naive|yannakakis|line3|acyclic|rhier|binhc|triangle|count")
	family := flag.String("family", "random", "instance family: random|hard|doubled|rhier|tallflat|triangle")
	inSize := flag.Int("in", 1<<14, "target input size IN")
	outSize := flag.Int("out", 1<<17, "target output size OUT (family-dependent)")
	p := flag.Int("p", 64, "number of servers")
	seed := flag.Uint64("seed", 2019, "random seed")
	flag.Parse()

	rng := mpc.NewRng(*seed)
	var in *core.Instance
	switch *family {
	case "random":
		in = gen.Line3Random(rng, *inSize, *outSize)
	case "hard":
		in = gen.YannakakisHard(*inSize, *outSize)
	case "doubled":
		in = gen.YannakakisHardDoubled(*inSize, *outSize)
	case "rhier":
		in = gen.RHierSkewed(rng, 4, isqrt(*inSize), *inSize/2)
	case "tallflat":
		in = gen.TallFlatSkewed(isqrt(4**inSize), *inSize/2)
	case "triangle":
		in = gen.TriangleRandom(rng, *inSize, *outSize)
	default:
		fmt.Fprintf(os.Stderr, "joinrun: unknown family %q\n", *family)
		os.Exit(1)
	}

	want := core.NaiveCount(in)
	c := mpc.NewCluster(*p)
	em := mpc.NewCountEmitter(in.Ring)
	switch *algo {
	case "naive":
		fmt.Printf("naive: IN=%d OUT=%d\n", in.IN(), want)
		return
	case "count":
		got := core.CountOutput(c, in, *seed)
		fmt.Printf("count: IN=%d OUT=%d load=%d rounds=%d (linear bound %.0f)\n",
			in.IN(), got, c.MaxLoad(), c.Rounds(), stats.Linear(in.IN(), *p))
		return
	case "yannakakis":
		core.Yannakakis(c, in, nil, *seed, em)
	case "line3":
		core.Line3(c, in, *seed, em)
	case "acyclic":
		core.AcyclicJoin(c, in, *seed, em)
	case "rhier":
		core.RHier(c, in, *seed, em)
	case "binhc":
		core.BinHC(c, in, *seed, false, em)
	case "triangle":
		core.Triangle(c, in, *seed, em)
	default:
		fmt.Fprintf(os.Stderr, "joinrun: unknown algorithm %q\n", *algo)
		os.Exit(1)
	}
	status := "OK"
	if em.N != want {
		status = fmt.Sprintf("MISMATCH (oracle %d)", want)
	}
	fmt.Printf("%s on %s: IN=%d OUT=%d p=%d\n", *algo, *family, in.IN(), em.N, *p)
	fmt.Printf("  load L = %d   rounds = %d   verification: %s\n", c.MaxLoad(), c.Rounds(), status)
	fmt.Printf("  bounds: linear IN/p = %.0f   Yannakakis IN/p+OUT/p = %.0f   paper IN/p+√(IN·OUT/p) = %.0f\n",
		stats.Linear(in.IN(), *p), stats.Yannakakis(in.IN(), want, *p), stats.Acyclic(in.IN(), want, *p))
}

func isqrt(x int) int {
	r := 1
	for r*r < x {
		r++
	}
	return r
}
