// Command benchjson turns `go test -bench` output into the repository's
// benchmark trajectory files (BENCH_<pr>.json) and verifies them against
// the live benchmark list.
//
// Record mode reads bench output on stdin, echoes it through unchanged,
// and writes a JSON object mapping benchmark name → metrics:
//
//	go test -run '^$' -bench . -benchmem ./... | benchjson -o BENCH_6.json
//
// Names are normalized by stripping the trailing -GOMAXPROCS suffix; with
// -count > 1 the metrics of the last pass win (the passes measure the same
// build, and a stable key set is what the trajectory needs).
//
// Verify mode reads `go test -list '^Benchmark'` output on stdin and fails
// if any live benchmark has no entry in the file, or the file records a
// benchmark that no longer exists — the staleness gate ci runs:
//
//	go test -run '^$' -list '^Benchmark' ./... | benchjson -verify BENCH_6.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Metrics is one benchmark's recorded trajectory point.
type Metrics struct {
	NsPerOp     float64 `json:"ns_op"`
	BytesPerOp  int64   `json:"bytes_op"`
	AllocsPerOp int64   `json:"allocs_op"`
}

var procSuffix = regexp.MustCompile(`-\d+$`)

func main() {
	out := flag.String("o", "", "record mode: write the JSON trajectory to this file")
	verify := flag.String("verify", "", "verify mode: check this trajectory file against the benchmark list on stdin")
	flag.Parse()

	switch {
	case *out != "" && *verify == "":
		if err := record(*out); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
	case *verify != "" && *out == "":
		if err := check(*verify); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
	default:
		fmt.Fprintln(os.Stderr, "benchjson: exactly one of -o or -verify is required")
		os.Exit(2)
	}
}

// record parses bench output from stdin (echoing it through) and writes
// the trajectory file.
func record(path string) error {
	results := map[string]Metrics{}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line)
		if name, m, ok := parseBenchLine(line); ok {
			results[name] = m
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if len(results) == 0 {
		return fmt.Errorf("no benchmark results on stdin; is -bench output being piped in?")
	}
	data, err := json.MarshalIndent(results, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d benchmarks to %s\n", len(results), path)
	return nil
}

// parseBenchLine extracts (name, metrics) from one `go test -bench` result
// line; ok is false for non-result lines.
func parseBenchLine(line string) (string, Metrics, bool) {
	f := strings.Fields(line)
	if len(f) < 4 || !strings.HasPrefix(f[0], "Benchmark") {
		return "", Metrics{}, false
	}
	var m Metrics
	seenNs := false
	for i := 2; i+1 < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			return "", Metrics{}, false
		}
		switch f[i+1] {
		case "ns/op":
			m.NsPerOp = v
			seenNs = true
		case "B/op":
			m.BytesPerOp = int64(v)
		case "allocs/op":
			m.AllocsPerOp = int64(v)
		}
	}
	if !seenNs {
		return "", Metrics{}, false
	}
	return procSuffix.ReplaceAllString(f[0], ""), m, true
}

// check compares the trajectory file against the benchmark list on stdin.
func check(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("%v (run `make bench` to record the trajectory)", err)
	}
	var results map[string]Metrics
	if err := json.Unmarshal(data, &results); err != nil {
		return fmt.Errorf("parsing %s: %v", path, err)
	}

	// Top-level benchmark names recorded in the file (keys may carry
	// /sub-benchmark paths).
	recorded := map[string]bool{}
	for name := range results {
		top, _, _ := strings.Cut(name, "/")
		recorded[top] = true
	}

	live := map[string]bool{}
	sc := bufio.NewScanner(os.Stdin)
	for sc.Scan() {
		name := strings.TrimSpace(sc.Text())
		if strings.HasPrefix(name, "Benchmark") && !strings.ContainsAny(name, " \t") {
			live[name] = true
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if len(live) == 0 {
		return fmt.Errorf("no benchmarks on stdin; is `go test -list '^Benchmark'` output being piped in?")
	}

	var missing, orphaned []string
	for name := range live {
		if !recorded[name] {
			missing = append(missing, name)
		}
	}
	for top := range recorded {
		if !live[top] {
			orphaned = append(orphaned, top)
		}
	}
	sort.Strings(missing)
	sort.Strings(orphaned)
	for _, n := range missing {
		fmt.Fprintf(os.Stderr, "benchjson: %s has no entry in %s\n", n, path)
	}
	for _, n := range orphaned {
		fmt.Fprintf(os.Stderr, "benchjson: %s records %s, which no longer exists\n", path, n)
	}
	if len(missing)+len(orphaned) > 0 {
		return fmt.Errorf("%s is stale relative to the benchmark list; run `make bench` to refresh it", path)
	}
	fmt.Fprintf(os.Stderr, "benchjson: %s covers all %d benchmarks\n", path, len(live))
	return nil
}
