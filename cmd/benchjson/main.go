// Command benchjson turns `go test -bench` output into the repository's
// benchmark trajectory files (BENCH_<pr>.json), verifies them against the
// live benchmark list, and gates one trajectory file against another.
//
// Record mode reads bench output on stdin, echoes it through unchanged,
// aggregates the counted samples of each benchmark (run with -count ≥ 6
// for benchstat-grade medians), and writes a JSON object mapping benchmark
// name → metrics — median ns/op, B/op and allocs/op over the samples, the
// sample count, and the ns/op spread (max−min as a percent of the median,
// the quick eyeball for noisy runs):
//
//	go test -run '^$' -bench . -benchmem -count 6 ./... | benchjson -o BENCH_8.json
//
// Names are normalized by stripping the trailing -GOMAXPROCS suffix.
// Files recorded before the counted format parse fine: the sample/spread
// fields read back as zero.
//
// Verify mode reads `go test -list '^Benchmark'` output on stdin and fails
// if any live benchmark has no entry in the file, or the file records a
// benchmark that no longer exists — the staleness gate ci runs:
//
//	go test -run '^$' -list '^Benchmark' ./... | benchjson -verify BENCH_6.json
//
// Record mode optionally compares against the previous generation's file:
//
//	... | benchjson -o BENCH_8.json -baseline BENCH_7.json
//
// prints per-benchmark median ns/op deltas for every name both files share
// and warns about regressions past -threshold percent.
//
// Compare mode gates one recorded trajectory against another without
// re-running anything — the ci regression gate:
//
//	benchjson -compare BENCH_8.json -baseline BENCH_7.json -gate 25
//
// exits non-zero when any shared benchmark's median ns/op regressed past
// -gate percent. The gate is looser than the warn threshold on purpose:
// trajectory files are recorded on whatever machine ran `make bench`, so
// the gate must absorb machine-to-machine drift while still catching a
// lost optimization. -gate also hardens record mode's -baseline deltas
// from warnings into failures.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Metrics is one benchmark's recorded trajectory point: medians over the
// counted samples, plus the sample count and ns/op spread. Samples and
// NsSpreadPct are zero in files recorded before the counted format.
type Metrics struct {
	NsPerOp     float64 `json:"ns_op"`
	BytesPerOp  int64   `json:"bytes_op"`
	AllocsPerOp int64   `json:"allocs_op"`
	Samples     int     `json:"samples,omitempty"`
	NsSpreadPct float64 `json:"ns_spread_pct,omitempty"`
}

var procSuffix = regexp.MustCompile(`-\d+$`)

func main() {
	out := flag.String("o", "", "record mode: write the JSON trajectory to this file")
	verify := flag.String("verify", "", "verify mode: check this trajectory file against the benchmark list on stdin")
	cmp := flag.String("compare", "", "compare mode: gate this trajectory file against -baseline")
	baseline := flag.String("baseline", "", "previous trajectory file to compute ns/op deltas against")
	threshold := flag.Float64("threshold", 15, "warn when median ns/op regresses by more than this percent over -baseline")
	gate := flag.Float64("gate", 0, "fail (exit non-zero) when median ns/op regresses by more than this percent over -baseline; 0 disables")
	flag.Parse()

	modes := 0
	for _, m := range []string{*out, *verify, *cmp} {
		if m != "" {
			modes++
		}
	}
	if modes != 1 {
		fmt.Fprintln(os.Stderr, "benchjson: exactly one of -o, -verify or -compare is required")
		os.Exit(2)
	}
	if *baseline != "" && *verify != "" {
		fmt.Fprintln(os.Stderr, "benchjson: -baseline is meaningless with -verify")
		os.Exit(2)
	}
	if *cmp != "" && *baseline == "" {
		fmt.Fprintln(os.Stderr, "benchjson: -compare requires -baseline")
		os.Exit(2)
	}

	var err error
	switch {
	case *out != "":
		err = record(*out, *baseline, *threshold, *gate)
	case *verify != "":
		err = check(*verify)
	case *cmp != "":
		err = compareFiles(*cmp, *baseline, *threshold, *gate)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// record parses bench output from stdin (echoing it through), aggregates
// the samples of each benchmark into medians, writes the trajectory file,
// and reports ns/op deltas against baseline (if given).
func record(path, baseline string, threshold, gate float64) error {
	samples := map[string][]Metrics{}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line)
		if name, m, ok := parseBenchLine(line); ok {
			samples[name] = append(samples[name], m)
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if len(samples) == 0 {
		return fmt.Errorf("no benchmark results on stdin; is -bench output being piped in?")
	}
	results := make(map[string]Metrics, len(samples))
	for name, ss := range samples {
		results[name] = aggregate(ss)
	}
	data, err := json.MarshalIndent(results, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d benchmarks to %s\n", len(results), path)
	if baseline != "" {
		base, err := loadTrajectory(baseline)
		if err != nil {
			// A missing baseline is not an error: the first generation has
			// nothing to compare against.
			fmt.Fprintf(os.Stderr, "benchjson: no baseline (%v); skipping deltas\n", err)
			return nil
		}
		return compare(results, base, baseline, threshold, gate)
	}
	return nil
}

// aggregate folds one benchmark's counted samples into its trajectory
// point: median ns/op, B/op and allocs/op, the sample count, and the ns/op
// spread as a percent of the median.
func aggregate(ss []Metrics) Metrics {
	ns := make([]float64, len(ss))
	bs := make([]int64, len(ss))
	as := make([]int64, len(ss))
	for i, s := range ss {
		ns[i], bs[i], as[i] = s.NsPerOp, s.BytesPerOp, s.AllocsPerOp
	}
	sort.Float64s(ns)
	sort.Slice(bs, func(i, j int) bool { return bs[i] < bs[j] })
	sort.Slice(as, func(i, j int) bool { return as[i] < as[j] })
	m := Metrics{
		NsPerOp:     medianF(ns),
		BytesPerOp:  bs[len(bs)/2],
		AllocsPerOp: as[len(as)/2],
		Samples:     len(ss),
	}
	if m.NsPerOp > 0 {
		m.NsSpreadPct = (ns[len(ns)-1] - ns[0]) / m.NsPerOp * 100
	}
	return m
}

// medianF is the median of a sorted float slice (mean of the middle pair
// for even lengths).
func medianF(s []float64) float64 {
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// loadTrajectory reads one trajectory file.
func loadTrajectory(path string) (map[string]Metrics, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var m map[string]Metrics
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("parsing %s: %v", path, err)
	}
	return m, nil
}

// compareFiles gates the trajectory file at path against the baseline file
// — the `make bench-compare` entry point, no benchmark re-run needed.
func compareFiles(path, baseline string, threshold, gate float64) error {
	results, err := loadTrajectory(path)
	if err != nil {
		return fmt.Errorf("%v (run `make bench` to record the trajectory)", err)
	}
	base, err := loadTrajectory(baseline)
	if err != nil {
		return err
	}
	return compare(results, base, baseline, threshold, gate)
}

// compare prints per-benchmark median ns/op deltas of results over the
// baseline trajectory. Regressions past threshold percent warn;
// regressions past gate percent (when gate > 0) fail. Cross-file deltas
// absorb machine drift, so the gate should sit well above the warn
// threshold.
func compare(results, base map[string]Metrics, baseline string, threshold, gate float64) error {
	var shared []string
	for name := range results {
		if _, ok := base[name]; ok {
			shared = append(shared, name)
		}
	}
	sort.Strings(shared)
	if len(shared) == 0 {
		fmt.Fprintf(os.Stderr, "benchjson: no benchmarks shared with %s; skipping deltas\n", baseline)
		return nil
	}

	fmt.Fprintf(os.Stderr, "benchjson: median ns/op deltas vs %s\n", baseline)
	warned, failed := 0, 0
	for _, name := range shared {
		old, new := base[name].NsPerOp, results[name].NsPerOp
		if old == 0 {
			continue
		}
		pct := (new - old) / old * 100
		mark := ""
		switch {
		case gate > 0 && pct > gate:
			mark = fmt.Sprintf("  FAIL: regression past the %.0f%% gate", gate)
			failed++
		case pct > threshold:
			mark = fmt.Sprintf("  WARNING: regression past %.0f%%", threshold)
			warned++
		}
		fmt.Fprintf(os.Stderr, "  %-60s %12.1f -> %12.1f  %+7.1f%%%s\n", name, old, new, pct, mark)
	}
	if warned > 0 {
		fmt.Fprintf(os.Stderr, "benchjson: %d benchmark(s) regressed past %.0f%% ns/op; investigate before recording\n", warned, threshold)
	}
	if failed > 0 {
		return fmt.Errorf("%d benchmark(s) regressed past the %.0f%% ns/op gate vs %s", failed, gate, baseline)
	}
	return nil
}

// parseBenchLine extracts (name, metrics) from one `go test -bench` result
// line; ok is false for non-result lines.
func parseBenchLine(line string) (string, Metrics, bool) {
	f := strings.Fields(line)
	if len(f) < 4 || !strings.HasPrefix(f[0], "Benchmark") {
		return "", Metrics{}, false
	}
	var m Metrics
	seenNs := false
	for i := 2; i+1 < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			return "", Metrics{}, false
		}
		switch f[i+1] {
		case "ns/op":
			m.NsPerOp = v
			seenNs = true
		case "B/op":
			m.BytesPerOp = int64(v)
		case "allocs/op":
			m.AllocsPerOp = int64(v)
		}
	}
	if !seenNs {
		return "", Metrics{}, false
	}
	return procSuffix.ReplaceAllString(f[0], ""), m, true
}

// check compares the trajectory file against the benchmark list on stdin.
func check(path string) error {
	results, err := loadTrajectory(path)
	if err != nil {
		return fmt.Errorf("%v (run `make bench` to record the trajectory)", err)
	}

	// Top-level benchmark names recorded in the file (keys may carry
	// /sub-benchmark paths).
	recorded := map[string]bool{}
	for name := range results {
		top, _, _ := strings.Cut(name, "/")
		recorded[top] = true
	}

	live := map[string]bool{}
	sc := bufio.NewScanner(os.Stdin)
	for sc.Scan() {
		name := strings.TrimSpace(sc.Text())
		if strings.HasPrefix(name, "Benchmark") && !strings.ContainsAny(name, " \t") {
			live[name] = true
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if len(live) == 0 {
		return fmt.Errorf("no benchmarks on stdin; is `go test -list '^Benchmark'` output being piped in?")
	}

	var missing, orphaned []string
	for name := range live {
		if !recorded[name] {
			missing = append(missing, name)
		}
	}
	for top := range recorded {
		if !live[top] {
			orphaned = append(orphaned, top)
		}
	}
	sort.Strings(missing)
	sort.Strings(orphaned)
	for _, n := range missing {
		fmt.Fprintf(os.Stderr, "benchjson: %s has no entry in %s\n", n, path)
	}
	for _, n := range orphaned {
		fmt.Fprintf(os.Stderr, "benchjson: %s records %s, which no longer exists\n", path, n)
	}
	if len(missing)+len(orphaned) > 0 {
		return fmt.Errorf("%s is stale relative to the benchmark list; run `make bench` to refresh it", path)
	}
	fmt.Fprintf(os.Stderr, "benchjson: %s covers all %d benchmarks\n", path, len(live))
	return nil
}
