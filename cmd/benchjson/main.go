// Command benchjson turns `go test -bench` output into the repository's
// benchmark trajectory files (BENCH_<pr>.json) and verifies them against
// the live benchmark list.
//
// Record mode reads bench output on stdin, echoes it through unchanged,
// and writes a JSON object mapping benchmark name → metrics:
//
//	go test -run '^$' -bench . -benchmem ./... | benchjson -o BENCH_6.json
//
// Names are normalized by stripping the trailing -GOMAXPROCS suffix; with
// -count > 1 the metrics of the last pass win (the passes measure the same
// build, and a stable key set is what the trajectory needs).
//
// Verify mode reads `go test -list '^Benchmark'` output on stdin and fails
// if any live benchmark has no entry in the file, or the file records a
// benchmark that no longer exists — the staleness gate ci runs:
//
//	go test -run '^$' -list '^Benchmark' ./... | benchjson -verify BENCH_6.json
//
// Record mode optionally compares against the previous generation's file:
//
//	... | benchjson -o BENCH_7.json -baseline BENCH_6.json
//
// prints per-benchmark ns/op deltas for every name both files share and
// warns (non-fatally: hardware varies across recording machines) about
// regressions past -threshold percent.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Metrics is one benchmark's recorded trajectory point.
type Metrics struct {
	NsPerOp     float64 `json:"ns_op"`
	BytesPerOp  int64   `json:"bytes_op"`
	AllocsPerOp int64   `json:"allocs_op"`
}

var procSuffix = regexp.MustCompile(`-\d+$`)

func main() {
	out := flag.String("o", "", "record mode: write the JSON trajectory to this file")
	verify := flag.String("verify", "", "verify mode: check this trajectory file against the benchmark list on stdin")
	baseline := flag.String("baseline", "", "record mode: previous trajectory file to print ns/op deltas against")
	threshold := flag.Float64("threshold", 15, "record mode: warn when ns/op regresses by more than this percent over -baseline")
	flag.Parse()

	if *baseline != "" && *out == "" {
		fmt.Fprintln(os.Stderr, "benchjson: -baseline requires -o (record mode)")
		os.Exit(2)
	}

	switch {
	case *out != "" && *verify == "":
		if err := record(*out, *baseline, *threshold); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
	case *verify != "" && *out == "":
		if err := check(*verify); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
	default:
		fmt.Fprintln(os.Stderr, "benchjson: exactly one of -o or -verify is required")
		os.Exit(2)
	}
}

// record parses bench output from stdin (echoing it through) and writes
// the trajectory file, then reports ns/op deltas against baseline (if
// given).
func record(path, baseline string, threshold float64) error {
	results := map[string]Metrics{}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line)
		if name, m, ok := parseBenchLine(line); ok {
			results[name] = m
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if len(results) == 0 {
		return fmt.Errorf("no benchmark results on stdin; is -bench output being piped in?")
	}
	data, err := json.MarshalIndent(results, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d benchmarks to %s\n", len(results), path)
	if baseline != "" {
		if err := compare(results, baseline, threshold); err != nil {
			return err
		}
	}
	return nil
}

// compare prints per-benchmark ns/op deltas of results over the baseline
// trajectory file. Regressions past threshold percent warn but do not
// fail: trajectory files are recorded on whatever machine ran `make
// bench`, so cross-file deltas are advisory, not a gate.
func compare(results map[string]Metrics, baseline string, threshold float64) error {
	data, err := os.ReadFile(baseline)
	if err != nil {
		// A missing baseline is not an error: the first generation has
		// nothing to compare against.
		fmt.Fprintf(os.Stderr, "benchjson: no baseline (%v); skipping deltas\n", err)
		return nil
	}
	var base map[string]Metrics
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("parsing baseline %s: %v", baseline, err)
	}

	var shared []string
	for name := range results {
		if _, ok := base[name]; ok {
			shared = append(shared, name)
		}
	}
	sort.Strings(shared)
	if len(shared) == 0 {
		fmt.Fprintf(os.Stderr, "benchjson: no benchmarks shared with %s; skipping deltas\n", baseline)
		return nil
	}

	fmt.Fprintf(os.Stderr, "benchjson: ns/op deltas vs %s\n", baseline)
	warned := 0
	for _, name := range shared {
		old, new := base[name].NsPerOp, results[name].NsPerOp
		if old == 0 {
			continue
		}
		pct := (new - old) / old * 100
		mark := ""
		if pct > threshold {
			mark = fmt.Sprintf("  WARNING: regression past %.0f%%", threshold)
			warned++
		}
		fmt.Fprintf(os.Stderr, "  %-60s %12.1f -> %12.1f  %+7.1f%%%s\n", name, old, new, pct, mark)
	}
	if warned > 0 {
		fmt.Fprintf(os.Stderr, "benchjson: %d benchmark(s) regressed past %.0f%% ns/op; investigate before recording\n", warned, threshold)
	}
	return nil
}

// parseBenchLine extracts (name, metrics) from one `go test -bench` result
// line; ok is false for non-result lines.
func parseBenchLine(line string) (string, Metrics, bool) {
	f := strings.Fields(line)
	if len(f) < 4 || !strings.HasPrefix(f[0], "Benchmark") {
		return "", Metrics{}, false
	}
	var m Metrics
	seenNs := false
	for i := 2; i+1 < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			return "", Metrics{}, false
		}
		switch f[i+1] {
		case "ns/op":
			m.NsPerOp = v
			seenNs = true
		case "B/op":
			m.BytesPerOp = int64(v)
		case "allocs/op":
			m.AllocsPerOp = int64(v)
		}
	}
	if !seenNs {
		return "", Metrics{}, false
	}
	return procSuffix.ReplaceAllString(f[0], ""), m, true
}

// check compares the trajectory file against the benchmark list on stdin.
func check(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("%v (run `make bench` to record the trajectory)", err)
	}
	var results map[string]Metrics
	if err := json.Unmarshal(data, &results); err != nil {
		return fmt.Errorf("parsing %s: %v", path, err)
	}

	// Top-level benchmark names recorded in the file (keys may carry
	// /sub-benchmark paths).
	recorded := map[string]bool{}
	for name := range results {
		top, _, _ := strings.Cut(name, "/")
		recorded[top] = true
	}

	live := map[string]bool{}
	sc := bufio.NewScanner(os.Stdin)
	for sc.Scan() {
		name := strings.TrimSpace(sc.Text())
		if strings.HasPrefix(name, "Benchmark") && !strings.ContainsAny(name, " \t") {
			live[name] = true
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if len(live) == 0 {
		return fmt.Errorf("no benchmarks on stdin; is `go test -list '^Benchmark'` output being piped in?")
	}

	var missing, orphaned []string
	for name := range live {
		if !recorded[name] {
			missing = append(missing, name)
		}
	}
	for top := range recorded {
		if !live[top] {
			orphaned = append(orphaned, top)
		}
	}
	sort.Strings(missing)
	sort.Strings(orphaned)
	for _, n := range missing {
		fmt.Fprintf(os.Stderr, "benchjson: %s has no entry in %s\n", n, path)
	}
	for _, n := range orphaned {
		fmt.Fprintf(os.Stderr, "benchjson: %s records %s, which no longer exists\n", path, n)
	}
	if len(missing)+len(orphaned) > 0 {
		return fmt.Errorf("%s is stale relative to the benchmark list; run `make bench` to refresh it", path)
	}
	fmt.Fprintf(os.Stderr, "benchjson: %s covers all %d benchmarks\n", path, len(live))
	return nil
}
