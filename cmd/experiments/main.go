// Command experiments regenerates every table and figure of the paper's
// evaluation as text tables (see DESIGN.md's per-experiment index).
//
// Usage:
//
//	experiments                 # run everything at the default scale
//	experiments -run fig4       # one experiment
//	experiments -p 128 -in 32768
//	experiments -workers 1      # serial scheduler (same tables, slower)
package main

import (
	"flag"
	"fmt"
	"strings"

	"repro/internal/harness"
	"repro/internal/runtime"
)

func main() {
	which := flag.String("run", "all",
		"experiment: all|fig1|fig2|fig3|fig4|fig5|fig6|table1|e2|e3|e4|e5|tau|grid")
	p := flag.Int("p", 0, "servers (0 = default scale)")
	inSize := flag.Int("in", 0, "input size (0 = default scale)")
	seed := flag.Uint64("seed", 0, "seed (0 = default scale)")
	workers := flag.Int("workers", runtime.DefaultWorkers(),
		"experiment scheduler parallelism (1 = serial; tables are identical for any value)")
	flag.Parse()

	s := harness.DefaultScale()
	if *p > 0 {
		s.P = *p
	}
	if *inSize > 0 {
		s.IN = *inSize
	}
	if *seed > 0 {
		s.Seed = *seed
	}
	s.Workers = *workers
	// One knob for both planes: the experiment scheduler's width and the
	// data plane (batched exchange scatter, parallel sub-clusters, oracle
	// probes). Tables are byte-identical for every value.
	runtime.SetParallelism(*workers)

	sel := strings.ToLower(*which)
	show := func(name string) bool { return sel == "all" || sel == name }

	if show("fig1") {
		fmt.Println(harness.Fig1Classification(s).Render())
	}
	if show("fig2") {
		fmt.Println(harness.Fig2Forests())
	}
	if show("fig3") {
		fmt.Println(harness.Fig3JoinOrder(s).Render())
	}
	if show("fig4") {
		fmt.Println(harness.Fig4Line3Sweep(s).Render())
	}
	if show("fig5") {
		fmt.Println(harness.Fig5JoinTree())
	}
	if show("fig6") {
		fmt.Println(harness.Fig6TriangleSweep(s).Render())
	}
	if show("table1") {
		fmt.Println(harness.Table1Loads(s).Render())
	}
	if show("e2") {
		fmt.Println(harness.E2RHierClosedForm(s).Render())
	}
	if show("e3") {
		fmt.Println(harness.E3AcyclicVsYannakakis(s).Render())
	}
	if show("e4") {
		fmt.Println(harness.E4Aggregate(s).Render())
	}
	if show("e5") {
		fmt.Println(harness.E5InstanceGap(s).Render())
	}
	if show("tau") {
		fmt.Println(harness.AblationTau(s).Render())
	}
	if show("grid") {
		fmt.Println(harness.AblationGrid(s).Render())
	}
}
