// Command classify prints the Figure 1 classification of the built-in query
// catalog (or of a query given as edge lists) together with attribute
// forests, join trees and minimal length-3 paths.
//
// Usage:
//
//	classify                  # classify the paper's query catalog
//	classify -q "1,2;2,3;3,4" # classify an ad-hoc query (edges of attrs)
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"repro/internal/engine"
	"repro/internal/gen"
	"repro/internal/harness"
	"repro/internal/hypergraph"
	"repro/internal/lint"
	"repro/internal/mpc"
	"repro/internal/relation"
	"repro/internal/stats"
)

func main() {
	query := flag.String("q", "", "ad-hoc query: semicolon-separated edges of comma-separated attribute ids")
	flag.Parse()

	if *query == "" {
		fmt.Print(harness.Fig1Classification(harness.DefaultScale()).Render())
		fmt.Println()
		fmt.Print(harness.Fig2Forests())
		fmt.Println()
		fmt.Print(harness.Fig5JoinTree())
		return
	}
	q, err := parseQuery(*query)
	if err != nil {
		fmt.Fprintln(os.Stderr, "classify:", err)
		os.Exit(1)
	}
	describe(q)
}

// printStaticClasses runs the whole-program round and load classifiers
// over the module source and prints the static classes of the dispatched
// algorithm's run body next to its declared ones. Outside a checkout (no
// go.mod above the working directory) the line is silently skipped — the
// declared classes above are still the repolint-verified contract.
func printStaticClasses(name string) {
	root, ok := moduleRoot()
	if !ok {
		return
	}
	classes, err := lint.StaticClasses(root)
	if err != nil {
		return
	}
	if c, ok := classes[name]; ok {
		fmt.Printf("static classes: rounds %s, load %s (whole-program repolint classifiers)\n",
			c.Rounds, c.Load)
	}
}

// moduleRoot walks up from the working directory to the nearest go.mod.
func moduleRoot() (string, bool) {
	dir, err := os.Getwd()
	if err != nil {
		return "", false
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, true
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", false
		}
		dir = parent
	}
}

// printCostDispatch runs cost-based dispatch on a small deterministic
// uniform instance of q and prints the predicted-vs-actual load with the
// full candidate ranking, so a misprediction is visible from the command
// line without the harness.
func printCostDispatch(q *hypergraph.Hypergraph) {
	const n, dom, p, seed = 64, 6, 16, 2019
	in := gen.ForQuery(mpc.NewChildRng(seed, 0), q, n, dom)
	res, err := engine.AutoRun(engine.Job{In: in, P: p, Seed: seed})
	if err != nil {
		fmt.Printf("cost dispatch failed: %v\n", err)
		return
	}
	fmt.Printf("cost dispatch (uniform n=%d dom=%d, p=%d): %s, predicted L = %.1f via %s, measured L = %d, L/pred = %.3f\n",
		n, dom, p, res.Algorithm, res.Predicted, res.PredictedBy, res.Load,
		stats.Ratio(res.Load, res.Predicted))
	fmt.Println("candidates (argmin predicted load first):")
	for _, c := range res.Candidates {
		if c.Rejected != "" {
			fmt.Printf("  %-12s rejected: %s\n", c.Name, c.Rejected)
			continue
		}
		fmt.Printf("  %-12s predicted L = %.1f via %s\n", c.Name, c.Predicted, c.PredictedBy)
	}
}

func parseQuery(s string) (*hypergraph.Hypergraph, error) {
	var edges []hypergraph.AttrSet
	for _, part := range strings.Split(s, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		var attrs []relation.Attr
		for _, f := range strings.Split(part, ",") {
			v, err := strconv.Atoi(strings.TrimSpace(f))
			if err != nil {
				return nil, fmt.Errorf("bad attribute %q: %v", f, err)
			}
			attrs = append(attrs, relation.Attr(v))
		}
		if len(attrs) == 0 {
			return nil, fmt.Errorf("empty edge in %q", s)
		}
		edges = append(edges, hypergraph.NewAttrSet(attrs...))
	}
	if len(edges) == 0 {
		return nil, fmt.Errorf("no edges in %q", s)
	}
	return hypergraph.New(edges...), nil
}

func describe(q *hypergraph.Hypergraph) {
	fmt.Printf("query: %v\n", q)
	cls := q.Classify()
	fmt.Printf("class: %s\n", cls)
	if a, err := engine.Auto(q); err == nil {
		fmt.Printf("engine dispatch: %s (bound %s; declared rounds %s, load %s)\n",
			a.Name(), engine.BoundOf(a), engine.RoundClassOf(a), engine.LoadClassOf(a))
		printStaticClasses(a.Name())
	}
	printCostDispatch(q)
	if cls == hypergraph.Cyclic {
		fmt.Println("join tree: none (cyclic)")
		return
	}
	tree, _ := q.GYO()
	fmt.Printf("join tree root: edge %d; parents: %v\n", tree.Root, tree.Parent)
	fmt.Printf("edge cover number ρ: %d\n", q.EdgeCoverNumber())
	if q.IsHierarchical() {
		fmt.Printf("attribute forest:\n%s", q.AttributeForest().String())
	} else if red, _ := q.Reduce(); red.IsHierarchical() {
		fmt.Printf("reduced attribute forest:\n%s", red.AttributeForest().String())
	}
	if p, ok := q.MinimalPath3(); ok {
		fmt.Printf("minimal path of length 3 (Lemma 2): x%d–x%d–x%d–x%d → not r-hierarchical\n",
			p[0], p[1], p[2], p[3])
	} else {
		fmt.Println("no minimal path of length 3 (Lemma 2): r-hierarchical")
	}
}
