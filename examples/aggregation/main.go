// Aggregation: a free-connex join-aggregate query (Section 6).
//
// COUNT(*) GROUP BY (segment, order): the full join customer ⋈ orders ⋈
// lineitem is large, but the aggregate output has one row per (B, C) group.
// LinearAggroYannakakis eliminates the non-output attributes at linear
// load, so the measured load is far below the full join's.
//
// The same pipeline also runs a MAX-score aggregation by overriding the
// job's semiring to the tropical ring — the engine re-rings the instance
// without mutating it.
package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/hypergraph"
	"repro/internal/relation"
	"repro/internal/stats"
)

func main() {
	r1 := relation.New("customer", relation.NewSchema(1, 2)) // (cust, segment)
	r2 := relation.New("orders", relation.NewSchema(2, 3))   // (segment, order)
	r3 := relation.New("lineitem", relation.NewSchema(3, 4)) // (order, item)
	for i := 0; i < 3000; i++ {
		r1.Add(relation.Value(i), relation.Value(i%20))
		r2.Add(relation.Value(i%20), relation.Value(i%400))
		r3.Add(relation.Value(i%400), relation.Value(i))
	}
	in := core.NewInstance(hypergraph.Line3(), r1.Dedup(), r2.Dedup(), r3.Dedup())

	y := hypergraph.NewAttrSet(2, 3) // GROUP BY (segment, order)
	w := hypergraph.WithOutput{Q: in.Q, Y: y}
	fmt.Printf("query: line-3, output attrs y = {B, C}\n")
	fmt.Printf("free-connex: %v, out-hierarchical: %v\n\n", w.IsFreeConnex(), w.IsOutHierarchical())

	const p = 32
	fullJoin := core.NaiveCount(in)

	// COUNT(*) GROUP BY under the counting semiring.
	res, err := engine.RunNamed("aggregate", engine.Job{In: in, P: p, Seed: 1, GroupBy: y})
	if err != nil {
		panic(err)
	}
	groups := res.Dist
	var total int64
	for _, it := range groups.All() {
		total += it.A
	}
	fmt.Printf("full join |Q(R)| = %d; aggregate output = %d groups (sum of counts %d)\n",
		fullJoin, groups.Size(), total)
	fmt.Printf("aggregate load L = %d vs linear IN/p = %.0f vs full-join Yannakakis bound %.0f\n",
		res.Load, stats.Linear(in.IN(), p), stats.Yannakakis(in.IN(), fullJoin, p))
	if total != fullJoin {
		panic("aggregate counts do not add up to the full join size")
	}

	// MAX aggregation: annotate lineitems with a score; the tropical
	// semiring computes max over join results of summed scores. Job.Ring
	// overrides the instance's semiring for this run only.
	r3s := relation.New("lineitem", relation.NewSchema(3, 4))
	for i, t := range r3.Tuples {
		r3s.AddAnnotated(int64(i%97), t[0], t[1])
	}
	inMax := core.NewInstance(hypergraph.Line3(), r1, r2, r3s)
	maxRes, err := engine.RunNamed("aggregate", engine.Job{
		In: inMax, P: p, Seed: 1, GroupBy: y, Ring: &relation.MaxPlusRing,
	})
	if err != nil {
		panic(err)
	}
	best := relation.MaxPlusRing.Zero
	for _, it := range maxRes.Dist.All() {
		if it.A > best {
			best = it.A
		}
	}
	fmt.Printf("\nMAX-score per group via (max,+) semiring: %d groups, best score %d, load %d\n",
		maxRes.Dist.Size(), best, maxRes.Load)
}
