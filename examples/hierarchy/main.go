// Hierarchy: a hierarchical query from the probabilistic-database setting
// the paper cites (Section 1.4): users(U) ⋈ logins(U,D) ⋈ purchases(U,P).
// The attribute forest is U → {D, P}; per-user, logins × purchases is a
// keyed product, so a few power users dominate the output — the skew that
// separates instance classes in MPC (Section 1.3).
//
// The example compares the paper's instance-optimal §3.2 algorithm against
// one-round BinHC and Yannakakis, relative to the per-instance lower bound
// L_instance(p, R) of equation (2) — all through the engine registry.
package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/hypergraph"
	"repro/internal/relation"
	"repro/internal/stats"
)

func main() {
	q := hypergraph.New(
		hypergraph.NewAttrSet(1),    // users(U)
		hypergraph.NewAttrSet(1, 2), // logins(U, D)
		hypergraph.NewAttrSet(1, 3), // purchases(U, P)
	)
	fmt.Printf("users ⋈ logins ⋈ purchases is %s; engine dispatch: %s\n",
		q.Classify(), engine.Route(q))

	users := relation.New("users", relation.NewSchema(1))
	logins := relation.New("logins", relation.NewSchema(1, 2))
	purchases := relation.New("purchases", relation.NewSchema(1, 3))
	// 3 power users: 300 logins and 300 purchases each (90 000 output rows
	// per user); 3000 regular users with 1 login and 1 purchase.
	id := 0
	addUser := func(u, nLogin, nPurch int) {
		users.Add(relation.Value(u))
		for i := 0; i < nLogin; i++ {
			logins.Add(relation.Value(u), relation.Value(id))
			id++
		}
		for i := 0; i < nPurch; i++ {
			purchases.Add(relation.Value(u), relation.Value(id))
			id++
		}
	}
	for u := 0; u < 3; u++ {
		addUser(u, 300, 300)
	}
	for u := 3; u < 3003; u++ {
		addUser(u, 1, 1)
	}
	in := core.NewInstance(q, users, logins, purchases)
	want := core.NaiveCount(in)
	const p = 32

	fmt.Printf("IN = %d, OUT = %d, p = %d\n", in.IN(), want, p)
	red := core.NaiveSemiJoinReduce(in)
	li := core.LInstance(red, p)
	bound := int64(in.IN()/p) + li
	fmt.Printf("per-instance bound IN/p + L_instance(p,R) = %d + %d = %d\n\n", in.IN()/p, li, bound)

	measure := func(algo, label string) {
		res, err := engine.RunNamed(algo, engine.Job{
			In: in, P: p, Seed: 1, Want: want, CheckWant: true,
		})
		if err != nil {
			panic(err)
		}
		fmt.Printf("%-28s load L = %6d  (%.1f× the instance bound)\n",
			label, res.Load, stats.Ratio(res.Load, float64(bound)))
	}
	measure("rhier", "RHier (§3.2, inst-optimal)")
	measure("binhc", "BinHC (one round)")
	measure("yannakakis", "Yannakakis")
	fmt.Printf("\n(Yannakakis must shuffle Θ(OUT) intermediate tuples: OUT/p = %d)\n", want/int64(p))
}
