// Quickstart: build a query, generate data, and let the engine do the rest.
//
// The engine API is three lines: wrap the data in a Job, call
// engine.AutoRun, read the Result. Classification-driven dispatch picks the
// paper's class-optimal algorithm (here: the §4.2 line-3 decomposition),
// runs it on a simulated MPC cluster, and verifies the output count against
// the sequential oracle.
package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/hypergraph"
	"repro/internal/relation"
	"repro/internal/stats"
)

func main() {
	// A query is a hypergraph: attributes are vertices, relations are
	// hyperedges. This is the paper's line-3 join R1(A,B)⋈R2(B,C)⋈R3(C,D).
	q := hypergraph.Line3()
	fmt.Printf("query %v is %s, engine routes it to %q\n", q, q.Classify(), engine.Route(q))

	// Relations are sets of tuples over a schema.
	r1 := relation.New("R1", relation.NewSchema(1, 2))
	r2 := relation.New("R2", relation.NewSchema(2, 3))
	r3 := relation.New("R3", relation.NewSchema(3, 4))
	for i := 0; i < 1000; i++ {
		r1.Add(relation.Value(i), relation.Value(i%50))      // A,B
		r2.Add(relation.Value(i%50), relation.Value(i%200))  // B,C
		r3.Add(relation.Value(i%200), relation.Value(i%333)) // C,D
	}

	// The whole engine API: instance in, measurement out.
	in := core.NewInstance(q, r1.Dedup(), r2.Dedup(), r3.Dedup())
	res, err := engine.AutoRun(engine.Job{In: in, P: 16, Seed: 1, CheckOracle: true})
	if err != nil {
		panic(err)
	}

	fmt.Printf("IN = %d tuples, OUT = %d results, p = 16 servers\n", in.IN(), res.OUT)
	fmt.Printf("%s measured load L = %d in %d rounds (tracks %s)\n",
		res.Algorithm, res.Load, res.Rounds, res.Bound)
	fmt.Printf("paper bound IN/p + sqrt(IN*OUT/p) = %.0f\n", stats.Acyclic(in.IN(), res.OUT, 16))
	fmt.Printf("Yannakakis would pay up to IN/p + OUT/p = %.0f\n", stats.Yannakakis(in.IN(), res.OUT, 16))
	if res.Verified {
		fmt.Println("verified against the sequential oracle ✓")
	}
}
