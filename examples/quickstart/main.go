// Quickstart: build a query, generate data, run the paper's output-optimal
// acyclic join on a simulated MPC cluster, and read off the measured load.
package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/hypergraph"
	"repro/internal/mpc"
	"repro/internal/relation"
	"repro/internal/stats"
)

func main() {
	// 1. A query is a hypergraph: attributes are vertices, relations are
	//    hyperedges. This is the paper's line-3 join R1(A,B)⋈R2(B,C)⋈R3(C,D).
	q := hypergraph.Line3()
	fmt.Printf("query %v is %s\n", q, q.Classify())

	// 2. Relations are sets of tuples over a schema.
	r1 := relation.New("R1", relation.NewSchema(1, 2))
	r2 := relation.New("R2", relation.NewSchema(2, 3))
	r3 := relation.New("R3", relation.NewSchema(3, 4))
	for i := 0; i < 1000; i++ {
		r1.Add(relation.Value(i), relation.Value(i%50))      // A,B
		r2.Add(relation.Value(i%50), relation.Value(i%200))  // B,C
		r3.Add(relation.Value(i%200), relation.Value(i%333)) // C,D
	}
	in := core.NewInstance(q, r1.Dedup(), r2.Dedup(), r3.Dedup())

	// 3. Run on a simulated MPC cluster of p servers. The emitter observes
	//    every join result; the cluster records the realized load L = the
	//    maximum number of tuples any server receives in any round.
	const p = 16
	c := mpc.NewCluster(p)
	em := mpc.NewCountEmitter(in.Ring)
	core.AcyclicJoin(c, in, 1 /* seed */, em)

	fmt.Printf("IN = %d tuples, OUT = %d results, p = %d servers\n", in.IN(), em.N, p)
	fmt.Printf("measured load L = %d in %d rounds\n", c.MaxLoad(), c.Rounds())
	fmt.Printf("paper bound IN/p + sqrt(IN*OUT/p) = %.0f\n", stats.Acyclic(in.IN(), em.N, p))
	fmt.Printf("Yannakakis would pay up to IN/p + OUT/p = %.0f\n", stats.Yannakakis(in.IN(), em.N, p))

	// 4. Cross-check against the in-memory oracle.
	if want := core.NaiveCount(in); want == em.N {
		fmt.Println("verified against the sequential oracle ✓")
	} else {
		fmt.Printf("MISMATCH: oracle says %d\n", core.NaiveCount(in))
	}
}
