// Orders: a customer → order → lineitem pipeline (the classic line-3 shape
// the paper's introduction motivates). A few "enterprise" customers place
// most orders, and a few bulk orders carry most line items — exactly the
// skew that makes join order matter in MPC (Section 4.1).
//
// The example runs the MPC Yannakakis algorithm with both join orders and
// the paper's Section 4.2 decomposition through the engine (Job.Order is
// the only thing that changes between the first two runs), and prints the
// measured loads.
package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/hypergraph"
	"repro/internal/relation"
	"repro/internal/stats"
)

const (
	attrCustomer = 1 // A: customer id
	attrSegment  = 2 // B: market segment
	attrOrder    = 3 // C: order id
	attrItem     = 4 // D: line item id
)

func main() {
	customers := relation.New("customer", relation.NewSchema(attrCustomer, attrSegment))
	orders := relation.New("orders", relation.NewSchema(attrSegment, attrOrder))
	lineitems := relation.New("lineitem", relation.NewSchema(attrOrder, attrItem))

	// 40 segments; segment 0 is "enterprise": 2000 customers and most of
	// the order volume concentrates there.
	nextOrder := 0
	for s := 0; s < 40; s++ {
		ncust := 10
		norder := 20
		if s == 0 {
			ncust = 2000
			norder = 400
		}
		for i := 0; i < ncust; i++ {
			customers.Add(relation.Value(s*10000+i), relation.Value(s))
		}
		for o := 0; o < norder; o++ {
			orders.Add(relation.Value(s), relation.Value(nextOrder))
			// Bulk orders (every 50th) have 100 items; others 2.
			items := 2
			if nextOrder%50 == 0 {
				items = 100
			}
			for it := 0; it < items; it++ {
				lineitems.Add(relation.Value(nextOrder), relation.Value(nextOrder*1000+it))
			}
			nextOrder++
		}
	}

	in := core.NewInstance(hypergraph.Line3(), customers, orders, lineitems)
	want := core.NaiveCount(in)
	const p = 32
	fmt.Printf("customer ⋈ orders ⋈ lineitem: IN = %d, OUT = %d, p = %d\n\n", in.IN(), want, p)

	type result struct {
		name string
		load int
	}
	var results []result
	measure := func(algo, label string, order []int) {
		res, err := engine.RunNamed(algo, engine.Job{
			In: in, P: p, Seed: 1, Order: order, Want: want, CheckWant: true,
		})
		if err != nil {
			panic(err)
		}
		results = append(results, result{label, res.Load})
	}
	measure("yannakakis", "Yannakakis (customer⋈orders) first", []int{0, 1, 2})
	measure("yannakakis", "Yannakakis (orders⋈lineitem) first", []int{2, 1, 0})
	measure("line3", "paper §4.2 degree decomposition", nil)
	for _, r := range results {
		fmt.Printf("%-40s load L = %6d\n", r.name, r.load)
	}
	fmt.Printf("\nbounds: linear IN/p = %.0f, Yannakakis IN/p+OUT/p = %.0f, paper IN/p+√(IN·OUT/p) = %.0f\n",
		stats.Linear(in.IN(), p), stats.Yannakakis(in.IN(), want, p), stats.Acyclic(in.IN(), want, p))
}
