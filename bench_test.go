// Package repro's root benchmark suite regenerates every table and figure
// of the paper (see DESIGN.md's per-experiment index). Each benchmark runs
// the corresponding experiment on the MPC simulator and reports the
// measured load as custom metrics (load = max tuples received by a server
// in a round; rounds = communication rounds), alongside the usual ns/op.
//
//	go test -bench=. -benchmem
//	go test -bench=. -workers=1   # serial experiment scheduler
package repro

import (
	"flag"
	"fmt"
	"os"
	"testing"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/gen"
	"repro/internal/harness"
	"repro/internal/hypergraph"
	"repro/internal/mpc"
	"repro/internal/primitives"
	"repro/internal/runtime"
)

// workersFlag caps the parallelism of both planes — the experiment
// scheduler driving the harness benchmarks (BenchmarkHarness_*) and smoke
// tests, and the data plane inside each cell (batched exchange, parallel
// sub-clusters, oracle probes). Tables and metrics are identical for any
// value; 1 runs everything serially.
var workersFlag = flag.Int("workers", runtime.DefaultWorkers(),
	"simulator parallelism (1 = serial)")

func TestMain(m *testing.M) {
	flag.Parse()
	runtime.SetParallelism(*workersFlag)
	os.Exit(m.Run())
}

// benchScale keeps per-iteration work moderate; the experiments command
// runs the full DefaultScale.
func benchScale() harness.Scale {
	return harness.Scale{P: 16, IN: 1 << 11, Seed: 2019, Workers: *workersFlag}
}

// measure runs one algorithm per iteration and reports load/round metrics.
func measure(b *testing.B, in *core.Instance, p int,
	algo func(c *mpc.Cluster, em mpc.Emitter)) {
	b.Helper()
	var load, rounds, out int
	for i := 0; i < b.N; i++ {
		c := mpc.NewCluster(p)
		em := mpc.NewCountEmitter(in.Ring)
		algo(c, em)
		load, rounds, out = c.MaxLoad(), c.Rounds(), int(em.N)
	}
	b.ReportMetric(float64(load), "load")
	b.ReportMetric(float64(rounds), "rounds")
	b.ReportMetric(float64(out), "OUT")
}

// --- Figure 1: classification ---------------------------------------------

func BenchmarkFig1_Classify(b *testing.B) {
	cat := hypergraph.Catalog()
	for i := 0; i < b.N; i++ {
		for _, e := range cat {
			_ = e.Q.Classify()
		}
	}
}

// --- Engine: classification-driven dispatch over the whole catalog ----------

// BenchmarkEngine_Dispatch measures routing alone: classify + registry walk
// for every catalog query, no data touched.
func BenchmarkEngine_Dispatch(b *testing.B) {
	cat := hypergraph.Catalog()
	for i := 0; i < b.N; i++ {
		for _, e := range cat {
			if _, err := engine.Auto(e.Q); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkEngine_AutoCost measures cost-based dispatch, no data-plane
// execution. "dispatch" is AutoCost end-to-end per catalog query —
// classification plus the cost model; classification is the dominant term
// and is the same work structural Auto does (BenchmarkEngine_Dispatch).
// "costmodel" isolates what cost-based dispatch adds on top: the
// statistics-only OUT estimate plus a predicted load for every registered
// algorithm, which must stay sub-microsecond per query.
func BenchmarkEngine_AutoCost(b *testing.B) {
	cat := hypergraph.Catalog()
	ins := make([]*core.Instance, len(cat))
	for i, e := range cat {
		ins[i] = gen.ForQuery(mpc.NewChildRng(2019, i), e.Q, 256, 12)
	}
	b.Run("dispatch", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for j := range cat {
				if _, _, err := engine.AutoCost(ins[j], 16, -1); err != nil {
					b.Fatal(err)
				}
			}
		}
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*len(cat)), "ns/dispatch")
	})
	b.Run("costmodel", func(b *testing.B) {
		// Mirror candidates(): only runnable candidates are priced. The
		// shape checks themselves are classification work structural Auto
		// already pays, so they sit outside the timed loop.
		runnable := make([][]engine.Algorithm, len(cat))
		for j, e := range cat {
			for _, a := range engine.All() {
				if a.Applies(e.Q) {
					runnable[j] = append(runnable[j], a)
				}
			}
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for j := range cat {
				outEst := engine.EstimateOut(ins[j])
				for _, a := range runnable[j] {
					engine.PredictLoad(a, ins[j], outEst, 16)
				}
			}
		}
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*len(cat)), "ns/query")
	})
}

// BenchmarkEngine_Auto runs every catalog query end-to-end through the
// engine on a uniform instance: dispatch, execution on the simulator, and
// the measured load/rounds/OUT as metrics. One sub-benchmark per catalog
// entry, named by class and the algorithm Auto selects.
func BenchmarkEngine_Auto(b *testing.B) {
	s := benchScale()
	for i, e := range hypergraph.Catalog() {
		rng := mpc.NewChildRng(s.Seed, i)
		in := gen.ForQuery(rng, e.Q, 256, 12)
		a, err := engine.Auto(e.Q)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("%02d_%s/%s", i, e.Class, a.Name()), func(b *testing.B) {
			var res engine.Result
			for j := 0; j < b.N; j++ {
				res, err = engine.Run(a, engine.Job{In: in, P: s.P, Seed: s.Seed})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(res.Load), "load")
			b.ReportMetric(float64(res.Rounds), "rounds")
			b.ReportMetric(float64(res.OUT), "OUT")
		})
	}
}

// --- Figure 2: attribute forests -------------------------------------------

func BenchmarkFig2_AttributeForest(b *testing.B) {
	q1, q2 := hypergraph.Q1TallFlat(), hypergraph.Q2Hierarchical()
	for i := 0; i < b.N; i++ {
		_ = q1.AttributeForest()
		_ = q2.AttributeForest()
	}
}

// --- Figure 3: join order on the hard instance -----------------------------

func BenchmarkFig3_JoinOrder(b *testing.B) {
	s := benchScale()
	for _, doubled := range []bool{false, true} {
		var in *core.Instance
		name := "onesided"
		if doubled {
			in = gen.YannakakisHardDoubled(s.IN, 8*s.IN)
			name = "doubled"
		} else {
			in = gen.YannakakisHard(s.IN, 8*s.IN)
		}
		b.Run(name+"/yannakakis_fwd", func(b *testing.B) {
			measure(b, in, s.P, func(c *mpc.Cluster, em mpc.Emitter) {
				core.Yannakakis(c, in, []int{0, 1, 2}, s.Seed, em)
			})
		})
		b.Run(name+"/yannakakis_bwd", func(b *testing.B) {
			measure(b, in, s.P, func(c *mpc.Cluster, em mpc.Emitter) {
				core.Yannakakis(c, in, []int{2, 1, 0}, s.Seed, em)
			})
		})
		b.Run(name+"/line3", func(b *testing.B) {
			measure(b, in, s.P, func(c *mpc.Cluster, em mpc.Emitter) {
				core.Line3(c, in, s.Seed, em)
			})
		})
		b.Run(name+"/acyclic", func(b *testing.B) {
			measure(b, in, s.P, func(c *mpc.Cluster, em mpc.Emitter) {
				core.AcyclicJoin(c, in, s.Seed, em)
			})
		})
	}
}

// --- Figure 4: line-3 OUT sweep on the random hard instance ----------------

func BenchmarkFig4_Line3Sweep(b *testing.B) {
	s := benchScale()
	rng := mpc.NewRng(s.Seed)
	for _, f := range []int{1, 4, 16, 64} {
		in := gen.Line3Random(rng, s.IN, s.IN*f)
		b.Run(fmt.Sprintf("outfactor=%d/line3", f), func(b *testing.B) {
			measure(b, in, s.P, func(c *mpc.Cluster, em mpc.Emitter) {
				core.Line3(c, in, s.Seed, em)
			})
		})
		b.Run(fmt.Sprintf("outfactor=%d/yannakakis", f), func(b *testing.B) {
			measure(b, in, s.P, func(c *mpc.Cluster, em mpc.Emitter) {
				core.Yannakakis(c, in, nil, s.Seed, em)
			})
		})
	}
}

// --- Figure 5: join tree construction ---------------------------------------

func BenchmarkFig5_JoinTree(b *testing.B) {
	q := hypergraph.Fig5Example()
	for i := 0; i < b.N; i++ {
		if _, ok := q.GYO(); !ok {
			b.Fatal("Fig5 query must be acyclic")
		}
	}
}

// --- Figure 6 / Theorem 11: triangle sweep ----------------------------------

func BenchmarkFig6_TriangleSweep(b *testing.B) {
	s := benchScale()
	rng := mpc.NewRng(s.Seed)
	for _, f := range []int{1, 4, 16} {
		in := gen.TriangleRandom(rng, s.IN, s.IN*f)
		b.Run(fmt.Sprintf("outfactor=%d", f), func(b *testing.B) {
			measure(b, in, 27, func(c *mpc.Cluster, em mpc.Emitter) {
				core.Triangle(c, in, s.Seed, em)
			})
		})
	}
}

// --- Table 1: one row per join class ----------------------------------------

func BenchmarkTable1_TallFlat(b *testing.B) {
	s := benchScale()
	in := gen.TallFlatSkewed(96, s.IN/2)
	b.Run("binhc", func(b *testing.B) {
		measure(b, in, s.P, func(c *mpc.Cluster, em mpc.Emitter) {
			core.BinHC(c, in, s.Seed, false, em)
		})
	})
	b.Run("rhier", func(b *testing.B) {
		measure(b, in, s.P, func(c *mpc.Cluster, em mpc.Emitter) {
			core.RHier(c, in, s.Seed, em)
		})
	})
}

func BenchmarkTable1_RHierarchical(b *testing.B) {
	s := benchScale()
	rng := mpc.NewRng(s.Seed)
	in := gen.RHierSkewed(rng, 4, 64, s.IN/2)
	b.Run("binhc", func(b *testing.B) {
		measure(b, in, s.P, func(c *mpc.Cluster, em mpc.Emitter) {
			core.BinHC(c, in, s.Seed, false, em)
		})
	})
	b.Run("rhier", func(b *testing.B) {
		measure(b, in, s.P, func(c *mpc.Cluster, em mpc.Emitter) {
			core.RHier(c, in, s.Seed, em)
		})
	})
	b.Run("yannakakis", func(b *testing.B) {
		measure(b, in, s.P, func(c *mpc.Cluster, em mpc.Emitter) {
			core.Yannakakis(c, in, nil, s.Seed, em)
		})
	})
}

func BenchmarkTable1_RHierDangling(b *testing.B) {
	s := benchScale()
	rng := mpc.NewRng(s.Seed)
	in := gen.WithDangling(gen.RHierSkewed(rng, 4, 64, s.IN/2), 1, s.IN)
	b.Run("binhc_oneround", func(b *testing.B) {
		measure(b, in, s.P, func(c *mpc.Cluster, em mpc.Emitter) {
			core.BinHC(c, in, s.Seed, false, em)
		})
	})
	b.Run("reduce_binhc", func(b *testing.B) {
		measure(b, in, s.P, func(c *mpc.Cluster, em mpc.Emitter) {
			core.BinHC(c, in, s.Seed, true, em)
		})
	})
	b.Run("rhier", func(b *testing.B) {
		measure(b, in, s.P, func(c *mpc.Cluster, em mpc.Emitter) {
			core.RHier(c, in, s.Seed, em)
		})
	})
}

func BenchmarkTable1_Acyclic(b *testing.B) {
	s := benchScale()
	rng := mpc.NewRng(s.Seed)
	in := gen.Line3Random(rng, s.IN, 8*s.IN)
	b.Run("yannakakis", func(b *testing.B) {
		measure(b, in, s.P, func(c *mpc.Cluster, em mpc.Emitter) {
			core.Yannakakis(c, in, nil, s.Seed, em)
		})
	})
	b.Run("line3", func(b *testing.B) {
		measure(b, in, s.P, func(c *mpc.Cluster, em mpc.Emitter) {
			core.Line3(c, in, s.Seed, em)
		})
	})
	b.Run("acyclic", func(b *testing.B) {
		measure(b, in, s.P, func(c *mpc.Cluster, em mpc.Emitter) {
			core.AcyclicJoin(c, in, s.Seed, em)
		})
	})
}

func BenchmarkTable1_Triangle(b *testing.B) {
	s := benchScale()
	rng := mpc.NewRng(s.Seed)
	in := gen.TriangleRandom(rng, s.IN, 4*s.IN)
	measure(b, in, 27, func(c *mpc.Cluster, em mpc.Emitter) {
		core.Triangle(c, in, s.Seed, em)
	})
}

// --- E2: Theorem 4 closed form ----------------------------------------------

func BenchmarkE2_RHierClosedForm(b *testing.B) {
	s := benchScale()
	for _, hub := range []int{16, 64, 256} {
		rng := mpc.NewRng(s.Seed)
		in := gen.RHierSkewed(rng, 2, hub, s.IN/4)
		b.Run(fmt.Sprintf("hub=%d", hub), func(b *testing.B) {
			measure(b, in, s.P, func(c *mpc.Cluster, em mpc.Emitter) {
				core.RHier(c, in, s.Seed, em)
			})
		})
	}
}

// --- E3: acyclic vs Yannakakis beyond line-3 --------------------------------

func BenchmarkE3_AcyclicVsYannakakis(b *testing.B) {
	s := benchScale()
	rng := mpc.NewRng(s.Seed)
	in := gen.LineKUniform(rng, 4, s.IN/4, 48)
	b.Run("yannakakis", func(b *testing.B) {
		measure(b, in, s.P, func(c *mpc.Cluster, em mpc.Emitter) {
			core.Yannakakis(c, in, nil, s.Seed, em)
		})
	})
	b.Run("acyclic", func(b *testing.B) {
		measure(b, in, s.P, func(c *mpc.Cluster, em mpc.Emitter) {
			core.AcyclicJoin(c, in, s.Seed, em)
		})
	})
}

// --- E4: join-aggregate ------------------------------------------------------

func BenchmarkE4_Aggregate(b *testing.B) {
	s := benchScale()
	rng := mpc.NewRng(s.Seed)
	in := gen.Line3Random(rng, s.IN, 32*s.IN)
	y := hypergraph.NewAttrSet(2, 3)
	var load int
	for i := 0; i < b.N; i++ {
		c := mpc.NewCluster(s.P)
		core.Aggregate(c, in, y, s.Seed, nil)
		load = c.MaxLoad()
	}
	b.ReportMetric(float64(load), "load")
}

func BenchmarkE4_CountOutput(b *testing.B) {
	s := benchScale()
	rng := mpc.NewRng(s.Seed)
	in := gen.Line3Random(rng, s.IN, 32*s.IN)
	var load int
	for i := 0; i < b.N; i++ {
		c := mpc.NewCluster(s.P)
		core.CountOutput(c, in, s.Seed)
		load = c.MaxLoad()
	}
	b.ReportMetric(float64(load), "load")
}

// --- E5: instance-optimality gap (Corollary 2/3) -----------------------------

func BenchmarkE5_InstanceOptimalityGap(b *testing.B) {
	s := benchScale()
	rng := mpc.NewRng(s.Seed)
	in := gen.Line3Random(rng, s.IN, s.P*s.IN)
	measure(b, in, s.P, func(c *mpc.Cluster, em mpc.Emitter) {
		core.Line3(c, in, s.Seed, em)
	})
}

// --- Ablations ----------------------------------------------------------------

func BenchmarkAblation_Tau(b *testing.B) {
	s := benchScale()
	rng := mpc.NewRng(s.Seed)
	in := gen.Line3Random(rng, s.IN, 16*s.IN)
	for _, tau := range []int64{1, 4, 16, 64} {
		b.Run(fmt.Sprintf("tau=%d", tau), func(b *testing.B) {
			measure(b, in, s.P, func(c *mpc.Cluster, em mpc.Emitter) {
				core.Line3WithTau(c, in, tau, s.Seed, em)
			})
		})
	}
}

// --- Harness scheduler: whole experiment matrices through the pool -----------

func BenchmarkHarness_Fig3Matrix(b *testing.B) {
	s := benchScale()
	for i := 0; i < b.N; i++ {
		_ = harness.Fig3JoinOrder(s)
	}
}

func BenchmarkHarness_Fig4Matrix(b *testing.B) {
	s := benchScale()
	for i := 0; i < b.N; i++ {
		_ = harness.Fig4Line3Sweep(s)
	}
}

// --- Microbenchmarks of the substrate ----------------------------------------

func BenchmarkMicro_BinaryJoin(b *testing.B) {
	s := benchScale()
	rng := mpc.NewRng(s.Seed)
	in := gen.LineKUniform(rng, 2, s.IN, 64)
	for i := 0; i < b.N; i++ {
		c := mpc.NewCluster(s.P)
		dists := core.LoadInstance(c, in)
		core.BinaryJoin(dists[0], dists[1], in.Ring, s.Seed, nil)
	}
}

func BenchmarkMicro_FullReduce(b *testing.B) {
	s := benchScale()
	rng := mpc.NewRng(s.Seed)
	in := gen.LineKUniform(rng, 4, s.IN/4, 48)
	for i := 0; i < b.N; i++ {
		c := mpc.NewCluster(s.P)
		dists := core.LoadInstance(c, in)
		core.FullReduce(in, dists)
	}
}

// BenchmarkMicro_SemiJoin drives the skew-sensitive primitives end-to-end
// from the top layer: DistinctByKey + Lookup, both riding the parallel
// sample sort (internal/primitives/samplesort.go). The counted pair lives
// in internal/primitives (BenchmarkSampleSort vs BenchmarkSerialSortRef).
func BenchmarkMicro_SemiJoin(b *testing.B) {
	s := benchScale()
	rng := mpc.NewRng(s.Seed)
	in := gen.LineKUniform(rng, 2, s.IN, 64)
	shared := in.Rels[0].Schema.Intersect(in.Rels[1].Schema)
	for i := 0; i < b.N; i++ {
		c := mpc.NewCluster(s.P)
		dists := core.LoadInstance(c, in)
		primitives.SemiJoin(dists[0], shared, dists[1], shared)
	}
}
